#include "energy/energy_model.hh"

namespace clearsim
{

EnergyBreakdown
computeEnergy(const EnergyParams &params, Cycle cycles,
              unsigned num_cores, const HtmStats &htm,
              const MemStats &mem)
{
    EnergyBreakdown e;
    e.staticEnergy = params.staticPerCoreCycle *
                     static_cast<double>(cycles) *
                     static_cast<double>(num_cores);

    const double uops = static_cast<double>(htm.committedUops) +
                        static_cast<double>(htm.abortedUops);
    e.dynamicEnergy =
        params.perUop * uops +
        params.perL1Access * static_cast<double>(mem.l1Hits) +
        params.perL2Access * static_cast<double>(mem.l2Hits) +
        params.perL3Access * static_cast<double>(mem.l3Hits) +
        params.perMemAccess * static_cast<double>(mem.memAccesses) +
        params.perInvalidation *
            static_cast<double>(mem.invalidations) +
        params.perRemoteTransfer *
            static_cast<double>(mem.remoteTransfers) +
        params.perAbort * static_cast<double>(htm.aborts) +
        params.perCachelineLock *
            static_cast<double>(htm.cachelineLocksAcquired);
    return e;
}

} // namespace clearsim
