/**
 * @file
 * Event-based energy model.
 *
 * The paper models energy with McPAT at 22nm. We substitute a
 * linear event-energy model: a static component proportional to
 * runtime (clock-gated cores still burn leakage + clock power) and
 * a dynamic component proportional to the work performed (micro-ops
 * executed — including those of aborted attempts — cache accesses
 * per level, coherence events, aborts, lock operations). This
 * captures exactly the two mechanisms behind Figure 10: CLEAR
 * executes faster (less static energy) and executes fewer
 * instructions because it aborts less (less dynamic energy).
 *
 * Units are abstract (nominally nJ); all evaluation uses energy
 * *ratios* normalized to the baseline, as the paper does.
 */

#ifndef CLEARSIM_ENERGY_ENERGY_MODEL_HH
#define CLEARSIM_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "common/types.hh"
#include "htm/htm_stats.hh"
#include "mem/memory_system.hh"

namespace clearsim
{

/** Per-event energy costs (nominally nJ, 22nm-class). */
struct EnergyParams
{
    double staticPerCoreCycle = 0.05;
    double perUop = 0.3;
    double perL1Access = 0.5;
    double perL2Access = 2.0;
    double perL3Access = 8.0;
    double perMemAccess = 60.0;
    double perInvalidation = 1.0;
    double perRemoteTransfer = 4.0;
    double perAbort = 20.0;
    double perCachelineLock = 1.0;
};

/** Static/dynamic decomposition of a run's energy. */
struct EnergyBreakdown
{
    double staticEnergy = 0.0;
    double dynamicEnergy = 0.0;

    double total() const { return staticEnergy + dynamicEnergy; }
};

/**
 * Compute the energy of one run.
 *
 * @param params per-event costs
 * @param cycles total simulated cycles of the region of interest
 * @param num_cores active cores
 * @param htm commit/abort/uop counters of the run
 * @param mem per-level access counters of the run
 */
EnergyBreakdown computeEnergy(const EnergyParams &params, Cycle cycles,
                              unsigned num_cores, const HtmStats &htm,
                              const MemStats &mem);

} // namespace clearsim

#endif // CLEARSIM_ENERGY_ENERGY_MODEL_HH
