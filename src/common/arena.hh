/**
 * @file
 * Slab/arena allocation for the simulator hot path.
 *
 * Three building blocks, all single-threaded by design (one System
 * and its event queue live entirely on one sweep worker thread):
 *
 *  - Arena: a bump allocator over geometrically reusable slabs.
 *    Allocation is a pointer increment; deallocation only exists in
 *    bulk (reset() rewinds to the first slab, keeping every slab for
 *    reuse). Destructors are the caller's business — the arena hands
 *    out raw storage.
 *
 *  - SlotPool<T>: a typed free list on top of an Arena. acquire()
 *    placement-constructs a T in a recycled slot (or fresh arena
 *    storage), release() destroys it and pushes the slot back. The
 *    event queue runs on one of these: after warm-up, scheduling an
 *    event allocates nothing.
 *
 *  - frameAlloc()/frameFree(): a size-bucketed thread-local free
 *    list for C++20 coroutine frames. Every simulated memory access
 *    creates and destroys a Task<> frame; routing those through the
 *    general-purpose heap dominated the allocation profile. Frames
 *    above the largest bucket fall through to operator new.
 */

#ifndef CLEARSIM_COMMON_ARENA_HH
#define CLEARSIM_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace clearsim
{

/** Bump allocator over reusable slabs. Storage only, no dtors. */
class Arena
{
  public:
    explicit Arena(std::size_t slab_bytes = 64 * 1024)
        : slabBytes_(slab_bytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena()
    {
        for (const Slab &slab : slabs_)
            ::operator delete(slab.data);
    }

    /** Allocate bytes with the given power-of-two alignment. */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        // Align the absolute address: slab bases only carry the
        // default operator-new alignment, so aligning the offset
        // alone would under-align over-aligned types.
        std::size_t at = alignedOffset(align);
        if (current_ >= slabs_.size() ||
            at + bytes > slabs_[current_].size) {
            nextSlab(bytes + align);
            at = alignedOffset(align);
        }
        offset_ = at + bytes;
        return slabs_[current_].data + at;
    }

    /** Typed allocation (construction is the caller's job). */
    template <typename T>
    T *
    allocate(std::size_t count = 1)
    {
        return static_cast<T *>(allocate(sizeof(T) * count,
                                         alignof(T)));
    }

    /**
     * Rewind to empty, keeping every slab for reuse. Invalidates
     * all outstanding allocations.
     */
    void
    reset()
    {
        current_ = 0;
        offset_ = 0;
    }

    /** Slabs held (reused across reset()). */
    std::size_t slabCount() const { return slabs_.size(); }

  private:
    struct Slab
    {
        char *data = nullptr;
        std::size_t size = 0;
    };

    /** Slab offset of the next align-aligned absolute address. */
    std::size_t
    alignedOffset(std::size_t align) const
    {
        if (current_ >= slabs_.size())
            return offset_;
        const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(
            slabs_[current_].data);
        return ((base + offset_ + align - 1) & ~(align - 1)) - base;
    }

    /** Advance to a slab with at least need free bytes. */
    void
    nextSlab(std::size_t need)
    {
        const std::size_t from =
            slabs_.empty() ? 0 : current_ + 1;
        for (std::size_t i = from; i < slabs_.size(); ++i) {
            if (slabs_[i].size >= need) {
                current_ = i;
                offset_ = 0;
                return;
            }
        }
        const std::size_t size =
            need > slabBytes_ ? need : slabBytes_;
        slabs_.push_back(
            Slab{static_cast<char *>(::operator new(size)), size});
        current_ = slabs_.size() - 1;
        offset_ = 0;
    }

    std::vector<Slab> slabs_;
    std::size_t current_ = 0;
    std::size_t offset_ = 0;
    std::size_t slabBytes_;
};

/**
 * Typed object pool: arena-backed slots recycled through a free
 * list. acquire()/release() pair construction with destruction;
 * the storage itself is never returned to the system until the
 * pool dies.
 */
template <typename T>
class SlotPool
{
  public:
    explicit SlotPool(std::size_t slab_bytes = 64 * 1024)
        : arena_(slab_bytes)
    {
    }

    SlotPool(const SlotPool &) = delete;
    SlotPool &operator=(const SlotPool &) = delete;

    /** Construct a T in a pooled slot. */
    template <typename... Args>
    T *
    acquire(Args &&...args)
    {
        Slot *slot = free_;
        if (slot != nullptr)
            free_ = slot->next;
        else
            slot = arena_.template allocate<Slot>();
        ++live_;
        return ::new (static_cast<void *>(slot->storage))
            T(std::forward<Args>(args)...);
    }

    /** Destroy a pooled T and recycle its slot. */
    void
    release(T *object)
    {
        object->~T();
        Slot *slot = reinterpret_cast<Slot *>(object);
        slot->next = free_;
        free_ = slot;
        --live_;
    }

    /** Objects currently acquired and not yet released. */
    std::size_t liveCount() const { return live_; }

  private:
    union Slot
    {
        Slot *next;
        alignas(T) unsigned char storage[sizeof(T)];
    };

    Arena arena_;
    Slot *free_ = nullptr;
    std::size_t live_ = 0;
};

/**
 * Allocate a coroutine frame of n bytes from the calling thread's
 * frame pool (size-bucketed free lists; large frames fall through
 * to operator new). Alignment is that of operator new.
 */
void *frameAlloc(std::size_t n);

/** Return a frame to the calling thread's pool. */
void frameFree(void *p, std::size_t n) noexcept;

/** Pooled frame bytes currently on the calling thread's free lists. */
std::size_t framePoolCachedBytes();

} // namespace clearsim

#endif // CLEARSIM_COMMON_ARENA_HH
