/**
 * @file
 * Execution tracing: the observability substrate of the simulator.
 *
 * An optional per-System trace sink receives one TraceEvent per
 * lifecycle action of a simulated transaction, across every layer:
 * attempt begin/commit/abort and fallback acquisition (region
 * executor), cacheline lock acquire/release/nack (lock manager),
 * directory invalidations, conflict-arbitration verdicts (conflict
 * manager), fallback-lock contention, and backoff waits. Each event
 * carries a typed payload describing the layer-specific detail.
 *
 * Emission costs exactly one branch per event site when no sink is
 * installed: components hold a `const Tracer *` that is null unless
 * tracing is active, and the region executor checks
 * `System::tracing()` before building an event.
 *
 * This header lives in common/ so that every layer (mem, htm, core)
 * can emit without upward link dependencies; it only uses the
 * header-only vocabulary of htm/htm_types.hh.
 */

#ifndef CLEARSIM_COMMON_TRACE_HH
#define CLEARSIM_COMMON_TRACE_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <variant>

#include "common/types.hh"
#include "htm/htm_types.hh"

namespace clearsim
{

/** What happened. */
enum class TraceKind : std::uint8_t
{
    /** An execution attempt started (mode says how). */
    AttemptBegin,
    /** The invocation committed (mode + counted retries). */
    Commit,
    /** An attempt aborted (reason; payload names the culprit line). */
    Abort,
    /** The fallback lock was acquired exclusively. */
    FallbackAcquired,

    // --- cacheline locking (mem layer) ---
    /** A cacheline lock was acquired. */
    LineLockAcquired,
    /** A cacheline lock was released (payload has hold cycles). */
    LineLockReleased,
    /** A request to a locked line was nacked (Figure 5 fix). */
    LineLockNacked,
    /** A request to a locked line was told to retry (Figure 6 fix). */
    LineLockRetried,
    /** A directory-set lock was acquired (group locking). */
    DirSetLockAcquired,
    /** A directory-set lock was released. */
    DirSetLockReleased,
    /** A write invalidated remote sharers (directory). */
    DirInvalidate,

    // --- conflict arbitration (htm layer) ---
    /** An arbitration resolved (payload: winner, victim count). */
    ConflictVerdict,

    // --- fallback lock contention (htm layer) ---
    /** An acquisition attempt found the fallback lock busy. */
    FallbackContended,
    /** The fallback lock was acquired shared (NS-CL/S-CL/power). */
    FallbackReadAcquired,
    /** A fallback hold was released (payload: remaining readers). */
    FallbackReleased,

    // --- waits (policy layer decisions, charged by the executor) ---
    /** A backoff wait was charged (payload: which wait, cycles). */
    BackoffWait,

    // --- fault injection (fault layer) ---
    /** An injected fault delayed something (payload: kind, cycles). */
    FaultDelay,
    /** An injected fault altered a protocol decision. */
    FaultVerdict,

    // --- certificate checking (analysis layer) ---
    /**
     * A certificate premise was falsified by the live run (payload:
     * premise code, observed counter value, certified bound). The
     * CertChecker synthesizes these; the machine itself never emits
     * them.
     */
    PremiseFalsified,
};

/** Number of TraceKind values, for array-indexed aggregation. */
constexpr unsigned kNumTraceKinds = 19;

/** Which of the three BackoffPolicy waits a BackoffWait event is. */
enum class BackoffWaitKind : std::uint8_t
{
    /** Linear backoff before a counted speculative retry. */
    SpeculativeRetry,
    /** Re-issue delay after a Retry response from a locked line. */
    LockRetry,
    /** Spin interval on a taken fallback lock. */
    FallbackSpin,
};

// --- typed payloads -------------------------------------------------

/** Payload of LineLock{Acquired,Released,Nacked,Retried}. */
struct LockPayload
{
    LineAddr line = 0;
    /** Cycles the lock was held (LineLockReleased only). */
    Cycle holdCycles = 0;
};

/** Payload of DirSetLock{Acquired,Released}. */
struct DirSetPayload
{
    unsigned set = 0;
};

/** Payload of DirInvalidate. */
struct InvalidatePayload
{
    LineAddr line = 0;
    /** Number of remote copies invalidated. */
    unsigned invalidated = 0;
};

/** Payload of ConflictVerdict. */
struct ConflictPayload
{
    LineAddr line = 0;
    /** Conflicting holders doomed by the requester (when it wins). */
    unsigned victims = 0;
    /** False when the requester was nacked by a holder. */
    bool requesterWins = true;
};

/** Payload of Fallback{Contended,ReadAcquired,Released}. */
struct FallbackPayload
{
    /** Shared holders after the event. */
    unsigned readers = 0;
    /** An exclusive (fallback) writer holds the lock. */
    bool writerHeld = false;
};

/** Payload of BackoffWait. */
struct BackoffPayload
{
    BackoffWaitKind wait = BackoffWaitKind::SpeculativeRetry;
    Cycle cycles = 0;
};

/** Payload of Abort: the line whose conflict doomed the attempt. */
struct AbortPayload
{
    /** Culprit cacheline, or 0 when the abort has no single line. */
    LineAddr line = 0;
};

/** Which fault class an injected fault belongs to. */
enum class FaultKind : std::uint8_t
{
    /** Scheduled event delayed by a random jitter. */
    EventJitter,
    /** Free-line lock check answered with a spurious NACK. */
    SpuriousNack,
    /** Free-line lock check answered with a spurious Retry. */
    SpuriousRetry,
    /** Extra delay added to a lock-retry backoff. */
    RetryDelay,
    /** A lock-release wakeup was deferred ("lost" grant). */
    GrantDefer,
    /** A directory sharer bit was spuriously evicted. */
    SharerEvict,
    /** A transactional access was forced to abort. */
    ForcedAbort,
    /** A conflict verdict was flipped against the requester. */
    ConflictFlip,
    /** The fallback lock hold was extended. */
    FallbackHold,
};

/** Payload of FaultDelay / FaultVerdict. */
struct FaultPayload
{
    FaultKind fault = FaultKind::EventJitter;
    /** Affected cacheline, or 0 when none applies. */
    LineAddr line = 0;
    /** Injected delay in cycles (FaultDelay only). */
    Cycle cycles = 0;
};

/**
 * Payload of PremiseFalsified. The premise code is the stable
 * numeric id of the certificate premise (analysis/certificate.hh
 * owns the catalogue; this layer treats it as opaque), and
 * observed/bound are the dynamic counter value and the certified
 * bound it broke.
 */
struct PremisePayload
{
    std::uint32_t premise = 0;
    std::uint64_t observed = 0;
    std::uint64_t bound = 0;
};

/** The per-kind detail of a trace event. */
using TracePayload =
    std::variant<std::monostate, LockPayload, DirSetPayload,
                 InvalidatePayload, ConflictPayload, FallbackPayload,
                 BackoffPayload, AbortPayload, FaultPayload,
                 PremisePayload>;

/** One trace record. */
struct TraceEvent
{
    Cycle cycle = 0;
    CoreId core = 0;
    RegionPc pc = 0;
    TraceKind kind = TraceKind::AttemptBegin;
    ExecMode mode = ExecMode::Speculative;
    AbortReason reason = AbortReason::None;
    unsigned countedRetries = 0;
    TracePayload payload{};
};

/** Receives every trace event of a System. */
using TraceSink = std::function<void(const TraceEvent &)>;

/**
 * The per-System event funnel. System owns one Tracer; components
 * below core/ (lock manager, directory, conflict manager, fallback
 * lock) hold a `const Tracer *` that System sets to the Tracer while
 * a sink is installed and to null otherwise, so a disabled trace
 * costs those sites exactly one null-pointer branch.
 */
class Tracer
{
  public:
    /** Install (or clear, with an empty function) the sink. */
    void setSink(TraceSink sink) { sink_ = std::move(sink); }

    /** True if a sink is installed. */
    bool active() const { return static_cast<bool>(sink_); }

    /**
     * Bind the simulated clock used to stamp events emitted through
     * emitAt(). Layers that know the cycle themselves fill it in
     * the event and use emit() directly.
     */
    void bindClock(const Cycle *now) { now_ = now; }

    /** Forward a fully-built event to the sink, if any. */
    void
    emit(const TraceEvent &event) const
    {
        if (sink_)
            sink_(event);
    }

    /**
     * Build and forward an event stamped with the bound clock.
     * Intended for component layers that do not track time.
     */
    void
    emitAt(TraceKind kind, CoreId core, TracePayload payload) const
    {
        if (!sink_)
            return;
        TraceEvent event;
        event.cycle = now_ ? *now_ : 0;
        event.core = core;
        event.kind = kind;
        event.payload = std::move(payload);
        sink_(event);
    }

  private:
    TraceSink sink_;
    const Cycle *now_ = nullptr;
};

/** Short name of a trace kind ("begin", "commit", ...). */
const char *traceKindName(TraceKind kind);

/** Short name of an execution mode ("spec", "s-cl", ...). */
const char *execModeName(ExecMode mode);

/** Short name of an abort reason ("conflict", "nacked", ...). */
const char *abortReasonName(AbortReason reason);

/** Short name of a backoff wait ("retry", "lock-retry", "spin"). */
const char *backoffWaitName(BackoffWaitKind wait);

/** Short name of a fault kind ("event-jitter", "forced-abort", ...). */
const char *faultKindName(FaultKind fault);

/** Parse a kind name back to the enum; false if unknown. */
bool traceKindFromName(const char *name, TraceKind &kind);

/** Parse a mode name back to the enum; false if unknown. */
bool execModeFromName(const char *name, ExecMode &mode);

/** Parse a reason name back to the enum; false if unknown. */
bool abortReasonFromName(const char *name, AbortReason &reason);

/** Parse a backoff-wait name back to the enum; false if unknown. */
bool backoffWaitFromName(const char *name, BackoffWaitKind &wait);

/** Parse a fault-kind name back to the enum; false if unknown. */
bool faultKindFromName(const char *name, FaultKind &fault);

} // namespace clearsim

#endif // CLEARSIM_COMMON_TRACE_HH
