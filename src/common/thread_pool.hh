/**
 * @file
 * A small fixed-size worker pool for embarrassingly parallel jobs.
 *
 * The experiment harness enumerates every (workload, config,
 * retry-limit, seed) point of a sweep as an independent simulation
 * and fans them out over CLEARSIM_JOBS OS threads (gem5-style
 * multi-run orchestration). The pool is deliberately minimal: FIFO
 * job queue, submit/wait, no futures — results are written into
 * pre-allocated slots by the jobs themselves, which keeps the
 * reduction step deterministic regardless of execution order.
 */

#ifndef CLEARSIM_COMMON_THREAD_POOL_HH
#define CLEARSIM_COMMON_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace clearsim
{

/** A fixed set of worker threads draining a FIFO job queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Waits for pending jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. Safe to call from any thread. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    /**
     * Block until every submitted job has finished or @p timeout
     * elapses.
     * @retval true when the pool drained within the timeout
     */
    bool waitFor(std::chrono::milliseconds timeout);

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * The default worker count: hardware_concurrency(), with a
     * floor of 1 for platforms that report 0.
     */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0; ///< queued + currently running jobs
    bool stopping_ = false;
};

} // namespace clearsim

#endif // CLEARSIM_COMMON_THREAD_POOL_HH
