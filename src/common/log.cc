#include "common/log.hh"

#include <cstdarg>
#include <mutex>

namespace clearsim
{

namespace
{
LogLevel globalLevel = LogLevel::Warn;

/**
 * Serializes whole messages to stderr: the parallel sweep executor
 * calls the log sink from worker threads, and interleaved vfprintf
 * chunks would garble the output.
 */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}
} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    if (static_cast<int>(level) > static_cast<int>(globalLevel))
        return;
    std::lock_guard<std::mutex> lock(logMutex());
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
}

void
logStatus(const char *fmt, ...)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fputs("fatal: ", stderr);
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fputs("panic: ", stderr);
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::abort();
}

} // namespace clearsim
