/**
 * @file
 * FlatMap: open-addressing hash map for the simulator hot path.
 *
 * The lock manager, directory, footprint, conflict registry and
 * write buffer all key small structs by integer addresses; the
 * node-based std::unordered_map pays one heap allocation and one
 * pointer chase per entry there. FlatMap stores slots contiguously
 * with linear probing and backward-shift deletion (no tombstones),
 * so lookups touch one cache line in the common case, clear()
 * keeps its storage for reuse across attempts, and erase never
 * degrades the table.
 *
 * Deliberately minimal: the key is assumed integral (hashed with a
 * splitmix64-style mixer), iteration order is the slot order (only
 * order-insensitive call sites may iterate), and references into
 * the table are invalidated by any insertion or erasure.
 */

#ifndef CLEARSIM_COMMON_FLAT_MAP_HH
#define CLEARSIM_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace clearsim
{

/** splitmix64 finalizer: avalanches dense integer keys. */
struct IntKeyHash
{
    std::size_t
    operator()(std::uint64_t x) const
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return static_cast<std::size_t>(x ^ (x >> 31));
    }
};

/** Open-addressing map from an integral key to V. */
template <typename K, typename V, typename Hash = IntKeyHash>
class FlatMap
{
    static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                  "FlatMap keys must be integral");

  public:
    /** One occupied entry; live slots expose key and value. */
    struct Slot
    {
        K key;
        V value;
    };

    FlatMap() = default;

    FlatMap(FlatMap &&other) noexcept { swap(other); }

    FlatMap &
    operator=(FlatMap &&other) noexcept
    {
        if (this != &other) {
            destroy();
            swap(other);
        }
        return *this;
    }

    FlatMap(const FlatMap &other) { copyFrom(other); }

    FlatMap &
    operator=(const FlatMap &other)
    {
        if (this != &other) {
            destroy();
            copyFrom(other);
        }
        return *this;
    }

    ~FlatMap() { destroy(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Value for key, or nullptr. Stable until the next mutation. */
    V *
    find(K key)
    {
        if (size_ == 0)
            return nullptr;
        std::size_t i = indexFor(key);
        while (full_[i]) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    const V *
    find(K key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool contains(K key) const { return find(key) != nullptr; }

    /** Value for key, default-constructed on first use. */
    V &
    operator[](K key)
    {
        if (needsGrowth())
            grow();
        std::size_t i = indexFor(key);
        while (full_[i]) {
            if (slots_[i].key == key)
                return slots_[i].value;
            i = (i + 1) & mask_;
        }
        ::new (static_cast<void *>(&slots_[i])) Slot{key, V{}};
        full_[i] = 1;
        ++size_;
        return slots_[i].value;
    }

    /**
     * Remove key's entry (backward-shift: subsequent displaced
     * slots move up, so probe chains never grow stale).
     * @retval false if key was absent.
     */
    bool
    erase(K key)
    {
        if (size_ == 0)
            return false;
        std::size_t i = indexFor(key);
        while (true) {
            if (!full_[i])
                return false;
            if (slots_[i].key == key)
                break;
            i = (i + 1) & mask_;
        }
        slots_[i].~Slot();
        full_[i] = 0;
        --size_;
        // Backward shift: pull every displaced follower one hole up.
        std::size_t hole = i;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask_;
            if (!full_[j])
                break;
            const std::size_t ideal = indexFor(slots_[j].key);
            if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
                ::new (static_cast<void *>(&slots_[hole]))
                    Slot(std::move(slots_[j]));
                full_[hole] = 1;
                slots_[j].~Slot();
                full_[j] = 0;
                hole = j;
            }
        }
        return true;
    }

    /** Drop every entry but keep the table storage for reuse. */
    void
    clear()
    {
        // An empty table already has every full_ flag down, and
        // trivially destructible slots (every hot instantiation:
        // integral keys, trivial values) need no destructor walk.
        if (slots_ == nullptr || size_ == 0)
            return;
        if constexpr (!std::is_trivially_destructible_v<Slot>) {
            for (std::size_t i = 0; i <= mask_; ++i) {
                if (full_[i])
                    slots_[i].~Slot();
            }
        }
        size_ = 0;
        std::memset(full_, 0, mask_ + 1);
    }

    /** Pre-size the table for n entries without rehashing later. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = kMinCapacity;
        while (cap * 3 < n * 4)
            cap *= 2;
        if (slots_ == nullptr || cap > mask_ + 1)
            rehash(cap);
    }

    // Slot iteration, in table order. Only order-insensitive
    // call sites (audits, bulk releases of independent entries)
    // may rely on it.
    class iterator
    {
      public:
        iterator(FlatMap *map, std::size_t i) : map_(map), at_(i)
        {
            settle();
        }

        Slot &operator*() const { return map_->slots_[at_]; }
        Slot *operator->() const { return &map_->slots_[at_]; }

        iterator &
        operator++()
        {
            ++at_;
            settle();
            return *this;
        }

        bool
        operator!=(const iterator &other) const
        {
            return at_ != other.at_;
        }

      private:
        void
        settle()
        {
            const std::size_t cap =
                map_->slots_ == nullptr ? 0 : map_->mask_ + 1;
            while (at_ < cap && !map_->full_[at_])
                ++at_;
        }

        FlatMap *map_;
        std::size_t at_;
    };

    class const_iterator
    {
      public:
        const_iterator(const FlatMap *map, std::size_t i)
            : map_(map), at_(i)
        {
            settle();
        }

        const Slot &operator*() const { return map_->slots_[at_]; }
        const Slot *operator->() const { return &map_->slots_[at_]; }

        const_iterator &
        operator++()
        {
            ++at_;
            settle();
            return *this;
        }

        bool
        operator!=(const const_iterator &other) const
        {
            return at_ != other.at_;
        }

      private:
        void
        settle()
        {
            const std::size_t cap =
                map_->slots_ == nullptr ? 0 : map_->mask_ + 1;
            while (at_ < cap && !map_->full_[at_])
                ++at_;
        }

        const FlatMap *map_;
        std::size_t at_;
    };

    iterator begin() { return iterator(this, 0); }

    iterator
    end()
    {
        return iterator(this,
                        slots_ == nullptr ? 0 : mask_ + 1);
    }

    const_iterator begin() const { return const_iterator(this, 0); }

    const_iterator
    end() const
    {
        return const_iterator(this,
                              slots_ == nullptr ? 0 : mask_ + 1);
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;

    std::size_t
    indexFor(K key) const
    {
        return Hash{}(static_cast<std::uint64_t>(key)) & mask_;
    }

    bool
    needsGrowth() const
    {
        // Max load factor 3/4.
        return slots_ == nullptr ||
               (size_ + 1) * 4 > (mask_ + 1) * 3;
    }

    void grow() { rehash(slots_ == nullptr ? kMinCapacity
                                           : (mask_ + 1) * 2); }

    void
    rehash(std::size_t capacity)
    {
        Slot *old_slots = slots_;
        unsigned char *old_full = full_;
        const std::size_t old_cap =
            old_slots == nullptr ? 0 : mask_ + 1;

        slots_ = static_cast<Slot *>(::operator new(
            capacity * sizeof(Slot), std::align_val_t(alignof(Slot))));
        full_ = static_cast<unsigned char *>(
            ::operator new(capacity));
        std::memset(full_, 0, capacity);
        mask_ = capacity - 1;

        for (std::size_t i = 0; i < old_cap; ++i) {
            if (!old_full[i])
                continue;
            std::size_t j = indexFor(old_slots[i].key);
            while (full_[j])
                j = (j + 1) & mask_;
            ::new (static_cast<void *>(&slots_[j]))
                Slot(std::move(old_slots[i]));
            full_[j] = 1;
            old_slots[i].~Slot();
        }
        if (old_slots != nullptr) {
            ::operator delete(old_slots,
                              std::align_val_t(alignof(Slot)));
            ::operator delete(old_full);
        }
    }

    void
    destroy()
    {
        if (slots_ == nullptr)
            return;
        clear();
        ::operator delete(slots_, std::align_val_t(alignof(Slot)));
        ::operator delete(full_);
        slots_ = nullptr;
        full_ = nullptr;
        mask_ = 0;
    }

    void
    copyFrom(const FlatMap &other)
    {
        if (other.slots_ == nullptr)
            return;
        const std::size_t cap = other.mask_ + 1;
        slots_ = static_cast<Slot *>(::operator new(
            cap * sizeof(Slot), std::align_val_t(alignof(Slot))));
        full_ = static_cast<unsigned char *>(::operator new(cap));
        std::memcpy(full_, other.full_, cap);
        mask_ = other.mask_;
        size_ = other.size_;
        for (std::size_t i = 0; i < cap; ++i) {
            if (full_[i]) {
                ::new (static_cast<void *>(&slots_[i]))
                    Slot(other.slots_[i]);
            }
        }
    }

    void
    swap(FlatMap &other)
    {
        std::swap(slots_, other.slots_);
        std::swap(full_, other.full_);
        std::swap(mask_, other.mask_);
        std::swap(size_, other.size_);
    }

    Slot *slots_ = nullptr;
    unsigned char *full_ = nullptr;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

/**
 * Open-addressing set of integral keys: a FlatMap with an empty
 * payload and key-only iteration. Same caveats as FlatMap apply
 * (slot-order iteration, references invalidated by mutation).
 */
template <typename K, typename Hash = IntKeyHash>
class FlatSet
{
    struct Empty
    {
    };

  public:
    void insert(K key) { map_[key]; }

    bool contains(K key) const { return map_.contains(key); }

    std::size_t count(K key) const
    {
        return map_.contains(key) ? 1 : 0;
    }

    bool erase(K key) { return map_.erase(key); }

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }

    void clear() { map_.clear(); }
    void reserve(std::size_t n) { map_.reserve(n); }

    class const_iterator
    {
        using Inner =
            typename FlatMap<K, Empty, Hash>::const_iterator;

      public:
        explicit const_iterator(Inner it) : it_(it) {}

        K operator*() const { return it_->key; }

        const_iterator &
        operator++()
        {
            ++it_;
            return *this;
        }

        bool
        operator!=(const const_iterator &other) const
        {
            return it_ != other.it_;
        }

      private:
        Inner it_;
    };

    const_iterator begin() const
    {
        return const_iterator(map_.begin());
    }

    const_iterator end() const { return const_iterator(map_.end()); }

  private:
    FlatMap<K, Empty, Hash> map_;
};

} // namespace clearsim

#endif // CLEARSIM_COMMON_FLAT_MAP_HH
