#include "common/rng.hh"

#include "common/log.hh"

namespace clearsim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    CLEARSIM_ASSERT(bound != 0, "nextBelow requires a nonzero bound");
    // Debiased via rejection sampling on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd3833e804f4c574bull);
}

} // namespace clearsim
