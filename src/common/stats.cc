#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/log.hh"

namespace clearsim
{

BoundedHistogram::BoundedHistogram(std::size_t capacity)
    : buckets_(capacity, 0)
{
}

void
BoundedHistogram::record(std::uint64_t value)
{
    if (value < buckets_.size())
        ++buckets_[value];
    else
        ++overflow_;
    ++total_;
    sum_ += value;
}

std::uint64_t
BoundedHistogram::count(std::uint64_t value) const
{
    return value < buckets_.size() ? buckets_[value] : 0;
}

double
BoundedHistogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(total_);
}

void
BoundedHistogram::clear()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
    sum_ = 0;
}

void
BoundedHistogram::merge(const BoundedHistogram &other)
{
    CLEARSIM_ASSERT(other.buckets_.size() == buckets_.size(),
                    "histogram capacity mismatch in merge");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
    sum_ += other.sum_;
}

std::uint64_t
BoundedHistogram::percentile(double p) const
{
    CLEARSIM_ASSERT(p > 0.0 && p <= 100.0,
                    "percentile must be in (0, 100]");
    if (total_ == 0)
        return 0;
    // Nearest rank: the smallest value whose cumulative count
    // reaches ceil(p/100 * total). The epsilon keeps binary float
    // artifacts (0.95 * 20 == 19.000000000000004) from bumping the
    // rank past an exact boundary.
    const std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(
        p * static_cast<double>(total_) / 100.0 - 1e-9));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cumulative += buckets_[i];
        if (cumulative >= rank)
            return i;
    }
    return buckets_.size(); // rank lands in the overflow bucket
}

std::uint64_t
BoundedHistogram::maxValue() const
{
    if (overflow_ != 0)
        return buckets_.size();
    for (std::size_t i = buckets_.size(); i-- > 0;) {
        if (buckets_[i] != 0)
            return i;
    }
    return 0;
}

void
Distribution::record(std::uint64_t value)
{
    if (!samples_.empty() && value < samples_.back())
        sorted_ = false;
    samples_.push_back(value);
    sum_ += value;
}

double
Distribution::mean() const
{
    if (samples_.empty())
        return 0.0;
    return static_cast<double>(sum_) /
           static_cast<double>(samples_.size());
}

std::uint64_t
Distribution::maxValue() const
{
    if (samples_.empty())
        return 0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    return samples_.back();
}

std::uint64_t
Distribution::percentile(double p) const
{
    CLEARSIM_ASSERT(p > 0.0 && p <= 100.0,
                    "percentile must be in (0, 100]");
    if (samples_.empty())
        return 0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const std::size_t n = samples_.size();
    // See BoundedHistogram::percentile for the epsilon.
    std::size_t rank = static_cast<std::size_t>(std::ceil(
        p * static_cast<double>(n) / 100.0 - 1e-9));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return samples_[rank - 1];
}

void
Distribution::merge(const Distribution &other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
    sum_ += other.sum_;
}

void
Distribution::clear()
{
    samples_.clear();
    sorted_ = true;
    sum_ = 0;
}

DistSummary
DistSummary::of(const Distribution &dist)
{
    DistSummary s;
    s.count = dist.count();
    s.sum = dist.sum();
    s.mean = dist.mean();
    s.p50 = dist.percentile(50.0);
    s.p95 = dist.percentile(95.0);
    s.max = dist.maxValue();
    return s;
}

DistSummary
DistSummary::of(const BoundedHistogram &hist)
{
    DistSummary s;
    s.count = hist.total();
    s.sum = hist.sum();
    s.mean = hist.mean();
    s.p50 = hist.percentile(50.0);
    s.p95 = hist.percentile(95.0);
    s.max = hist.maxValue();
    return s;
}

void
StatsRegistry::addCounter(const std::string &name,
                          const std::string &desc,
                          std::uint64_t value)
{
    auto it = counterIndex_.find(name);
    if (it != counterIndex_.end()) {
        counters_[it->second].value = value;
        return;
    }
    counterIndex_[name] = counters_.size();
    order_.push_back({EntryKind::Counter, counters_.size()});
    counters_.push_back({name, desc, value});
}

void
StatsRegistry::addScalar(const std::string &name,
                         const std::string &desc, double value)
{
    auto it = scalarIndex_.find(name);
    if (it != scalarIndex_.end()) {
        scalars_[it->second].value = value;
        return;
    }
    scalarIndex_[name] = scalars_.size();
    order_.push_back({EntryKind::Scalar, scalars_.size()});
    scalars_.push_back({name, desc, value});
}

void
StatsRegistry::addDistribution(const std::string &name,
                               const std::string &desc,
                               const DistSummary &summary)
{
    auto it = distIndex_.find(name);
    if (it != distIndex_.end()) {
        distributions_[it->second].summary = summary;
        return;
    }
    distIndex_[name] = distributions_.size();
    order_.push_back({EntryKind::Distribution, distributions_.size()});
    distributions_.push_back({name, desc, summary});
}

bool
StatsRegistry::counterValue(const std::string &name,
                            std::uint64_t &value) const
{
    auto it = counterIndex_.find(name);
    if (it == counterIndex_.end())
        return false;
    value = counters_[it->second].value;
    return true;
}

bool
StatsRegistry::scalarValue(const std::string &name,
                           double &value) const
{
    auto it = scalarIndex_.find(name);
    if (it == scalarIndex_.end())
        return false;
    value = scalars_[it->second].value;
    return true;
}

double
trimmedMean(std::vector<double> samples, std::size_t trim_each_side)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t lo = 0;
    std::size_t hi = samples.size();
    if (2 * trim_each_side < samples.size()) {
        lo = trim_each_side;
        hi = samples.size() - trim_each_side;
    }
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
        sum += samples[i];
    return sum / static_cast<double>(hi - lo);
}

double
mean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    const double sum =
        std::accumulate(samples.begin(), samples.end(), 0.0);
    return sum / static_cast<double>(samples.size());
}

double
geomean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : samples) {
        CLEARSIM_ASSERT(s > 0.0, "geomean requires positive samples");
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace clearsim
