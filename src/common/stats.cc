#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/log.hh"

namespace clearsim
{

BoundedHistogram::BoundedHistogram(std::size_t capacity)
    : buckets_(capacity, 0)
{
}

void
BoundedHistogram::record(std::uint64_t value)
{
    if (value < buckets_.size())
        ++buckets_[value];
    else
        ++overflow_;
    ++total_;
    sum_ += value;
}

std::uint64_t
BoundedHistogram::count(std::uint64_t value) const
{
    return value < buckets_.size() ? buckets_[value] : 0;
}

double
BoundedHistogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(total_);
}

void
BoundedHistogram::clear()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
    sum_ = 0;
}

void
BoundedHistogram::merge(const BoundedHistogram &other)
{
    CLEARSIM_ASSERT(other.buckets_.size() == buckets_.size(),
                    "histogram capacity mismatch in merge");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
    sum_ += other.sum_;
}

double
trimmedMean(std::vector<double> samples, std::size_t trim_each_side)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t lo = 0;
    std::size_t hi = samples.size();
    if (2 * trim_each_side < samples.size()) {
        lo = trim_each_side;
        hi = samples.size() - trim_each_side;
    }
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i)
        sum += samples[i];
    return sum / static_cast<double>(hi - lo);
}

double
mean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    const double sum =
        std::accumulate(samples.begin(), samples.end(), 0.0);
    return sum / static_cast<double>(samples.size());
}

double
geomean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : samples) {
        CLEARSIM_ASSERT(s > 0.0, "geomean requires positive samples");
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace clearsim
