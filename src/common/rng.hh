/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * clearsim runs must be exactly reproducible given a seed, so all
 * stochastic choices (workload picks, think times, hash seeds) flow
 * through this xoshiro256** implementation rather than std::rand or
 * any platform-dependent engine.
 */

#ifndef CLEARSIM_COMMON_RNG_HH
#define CLEARSIM_COMMON_RNG_HH

#include <cstdint>

namespace clearsim
{

/**
 * xoshiro256** 1.0 by Blackman and Vigna (public domain), seeded via
 * splitmix64. Small, fast, and identical across platforms.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Fork an independent stream. Used to give each simulated thread
     * its own generator so event ordering does not perturb draws.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace clearsim

#endif // CLEARSIM_COMMON_RNG_HH
