#include "common/trace.hh"

#include <cstring>

namespace clearsim
{

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::AttemptBegin:
        return "begin";
      case TraceKind::Commit:
        return "commit";
      case TraceKind::Abort:
        return "abort";
      case TraceKind::FallbackAcquired:
        return "fallback-acquired";
      case TraceKind::LineLockAcquired:
        return "lock-acquired";
      case TraceKind::LineLockReleased:
        return "lock-released";
      case TraceKind::LineLockNacked:
        return "lock-nacked";
      case TraceKind::LineLockRetried:
        return "lock-retried";
      case TraceKind::DirSetLockAcquired:
        return "dirset-acquired";
      case TraceKind::DirSetLockReleased:
        return "dirset-released";
      case TraceKind::DirInvalidate:
        return "invalidate";
      case TraceKind::ConflictVerdict:
        return "conflict-verdict";
      case TraceKind::FallbackContended:
        return "fallback-contended";
      case TraceKind::FallbackReadAcquired:
        return "fallback-read";
      case TraceKind::FallbackReleased:
        return "fallback-released";
      case TraceKind::BackoffWait:
        return "backoff";
      case TraceKind::FaultDelay:
        return "fault-delay";
      case TraceKind::FaultVerdict:
        return "fault-verdict";
      case TraceKind::PremiseFalsified:
        return "premise-falsified";
    }
    return "?";
}

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Speculative:
        return "spec";
      case ExecMode::SCl:
        return "s-cl";
      case ExecMode::NsCl:
        return "ns-cl";
      case ExecMode::Fallback:
        return "fallback";
    }
    return "?";
}

const char *
abortReasonName(AbortReason reason)
{
    switch (reason) {
      case AbortReason::None:
        return "none";
      case AbortReason::MemoryConflict:
        return "conflict";
      case AbortReason::Nacked:
        return "nacked";
      case AbortReason::ExplicitFallback:
        return "explicit-fallback";
      case AbortReason::OtherFallback:
        return "other-fallback";
      case AbortReason::CapacityOverflow:
        return "capacity";
      case AbortReason::Deviation:
        return "deviation";
      case AbortReason::Explicit:
        return "explicit";
    }
    return "?";
}

const char *
backoffWaitName(BackoffWaitKind wait)
{
    switch (wait) {
      case BackoffWaitKind::SpeculativeRetry:
        return "retry";
      case BackoffWaitKind::LockRetry:
        return "lock-retry";
      case BackoffWaitKind::FallbackSpin:
        return "spin";
    }
    return "?";
}

const char *
faultKindName(FaultKind fault)
{
    switch (fault) {
      case FaultKind::EventJitter:
        return "event-jitter";
      case FaultKind::SpuriousNack:
        return "spurious-nack";
      case FaultKind::SpuriousRetry:
        return "spurious-retry";
      case FaultKind::RetryDelay:
        return "retry-delay";
      case FaultKind::GrantDefer:
        return "grant-defer";
      case FaultKind::SharerEvict:
        return "sharer-evict";
      case FaultKind::ForcedAbort:
        return "forced-abort";
      case FaultKind::ConflictFlip:
        return "conflict-flip";
      case FaultKind::FallbackHold:
        return "fallback-hold";
    }
    return "?";
}

bool
traceKindFromName(const char *name, TraceKind &kind)
{
    for (unsigned k = 0; k < kNumTraceKinds; ++k) {
        const TraceKind candidate = static_cast<TraceKind>(k);
        if (std::strcmp(name, traceKindName(candidate)) == 0) {
            kind = candidate;
            return true;
        }
    }
    return false;
}

bool
execModeFromName(const char *name, ExecMode &mode)
{
    for (unsigned m = 0; m < kNumExecModes; ++m) {
        const ExecMode candidate = static_cast<ExecMode>(m);
        if (std::strcmp(name, execModeName(candidate)) == 0) {
            mode = candidate;
            return true;
        }
    }
    return false;
}

bool
abortReasonFromName(const char *name, AbortReason &reason)
{
    for (unsigned r = 0;
         r <= static_cast<unsigned>(AbortReason::Explicit); ++r) {
        const AbortReason candidate = static_cast<AbortReason>(r);
        if (std::strcmp(name, abortReasonName(candidate)) == 0) {
            reason = candidate;
            return true;
        }
    }
    return false;
}

bool
backoffWaitFromName(const char *name, BackoffWaitKind &wait)
{
    for (unsigned w = 0;
         w <= static_cast<unsigned>(BackoffWaitKind::FallbackSpin);
         ++w) {
        const BackoffWaitKind candidate =
            static_cast<BackoffWaitKind>(w);
        if (std::strcmp(name, backoffWaitName(candidate)) == 0) {
            wait = candidate;
            return true;
        }
    }
    return false;
}

bool
faultKindFromName(const char *name, FaultKind &fault)
{
    for (unsigned f = 0;
         f <= static_cast<unsigned>(FaultKind::FallbackHold); ++f) {
        const FaultKind candidate = static_cast<FaultKind>(f);
        if (std::strcmp(name, faultKindName(candidate)) == 0) {
            fault = candidate;
            return true;
        }
    }
    return false;
}

} // namespace clearsim
