/**
 * @file
 * System configuration structures.
 *
 * Defaults reproduce Table 2 of the CLEAR paper: a 32-core
 * out-of-order Icelake-like processor with a three-level cache
 * hierarchy, a directory with 800% coverage, and a TSX-like HTM with
 * a best-of-1-to-10 retry policy.
 */

#ifndef CLEARSIM_COMMON_CONFIG_HH
#define CLEARSIM_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "fault/fault_config.hh"
#include "policy/adapt_config.hh"

namespace clearsim
{

/** Which baseline conflict-resolution policy the HTM uses. */
enum class HtmPolicy
{
    /** Intel TSX-like: the requesting core wins, holders abort. */
    RequesterWins,
    /**
     * PowerTM: a transaction that has already aborted once may enter
     * power mode (one per system) and wins conflicts against
     * non-power transactions.
     */
    PowerTm,
};

/** Which speculation substrate bounds an atomic region. */
enum class SpeculationScope
{
    /** In-core only (SLE): ROB, LQ and SQ all bound the AR. */
    InCore,
    /** HTM: instructions retire; the SQ bounds failed discovery. */
    OutOfCore,
};

/** Out-of-order core resources (Table 2). */
struct CoreConfig
{
    unsigned robEntries = 352;
    unsigned lqEntries = 128;
    unsigned sqEntries = 72;
    unsigned physRegs = 180;
    unsigned fetchWidth = 5;
    unsigned issueWidth = 10;
    /** Cycles charged per non-memory micro-op. */
    unsigned aluLatency = 1;
};

/** Cache hierarchy geometry and latencies (Table 2). */
struct CacheConfig
{
    // L1D: 48KiB, 12-way, 64B lines -> 64 sets.
    unsigned l1Sets = 64;
    unsigned l1Ways = 12;
    Cycle l1Latency = 1;

    // L2: 512KiB, 8-way -> 1024 sets.
    unsigned l2Sets = 1024;
    unsigned l2Ways = 8;
    Cycle l2Latency = 10;

    // L3: 4MiB, 16-way -> 4096 sets.
    unsigned l3Sets = 4096;
    unsigned l3Ways = 16;
    Cycle l3Latency = 45;

    Cycle memLatency = 80;

    /**
     * Extra cycles for a cache-to-cache transfer or invalidation
     * round-trip over the crossbar.
     */
    Cycle remoteLatency = 30;

    /**
     * Number of sets in the shared directory cache. This also defines
     * the lexicographical order used for deadlock-free cacheline
     * locking (Section 5: "the set index of the smallest shared
     * structure, in our case the directory cache").
     */
    unsigned dirSets = 4096;
};

/** Fixed-cost timing parameters of the HTM machinery. */
struct HtmTimingConfig
{
    /** Pipeline flush + checkpoint restore on abort (RAS kept). */
    Cycle abortPenalty = 30;

    /** Backoff before re-issuing a request that got a retry
     *  response from a locked directory entry (Figure 6 fix). */
    Cycle lockRetryBackoff = 50;

    /** Interval between spins on a taken fallback lock. */
    Cycle fallbackSpinInterval = 50;

    /** Cost of a transactional commit (XEND). */
    Cycle commitLatency = 10;

    /** Cost of starting a transaction (XBEGIN checkpoint). */
    Cycle beginLatency = 5;

    /** Mean cycles of non-critical work between two ARs. */
    Cycle thinkTimeMean = 500;

    /**
     * Base of the linear backoff applied before the n-th counted
     * speculative retry (n * base cycles, plus a small per-core
     * stagger), as in common best-effort HTM retry loops.
     */
    Cycle retryBackoffBase = 120;
};

/** Sizes of the structures CLEAR adds (Section 5). */
struct ClearConfig
{
    /** Master switch; off reproduces the baseline HTM. */
    bool enabled = false;

    /** Explored Region Table entries (fully associative). */
    unsigned ertEntries = 16;

    /** Addresses-to-Lock Table entries (CAM with priority search). */
    unsigned altEntries = 32;

    /** Conflicting Reads Table entries. */
    unsigned crtEntries = 64;

    /** CRT associativity. */
    unsigned crtWays = 8;

    /**
     * Saturation value of the 2-bit SQ-Full counter; when reached,
     * discovery is disabled for that region.
     */
    unsigned sqFullSaturation = 3;

    /**
     * Ablation knob: lock every read in S-CL mode instead of the
     * paper's policy (write set plus reads recorded in the CRT).
     */
    bool sclLockAllReads = false;

    /** Ablation knob: disable failed-mode discovery continuation. */
    bool failedModeDiscovery = true;
};

/** Full system configuration. */
struct SystemConfig
{
    unsigned numCores = 32;
    CoreConfig core;
    CacheConfig cache;

    /** HTM-backed speculation by default (Section 4.4). */
    SpeculationScope scope = SpeculationScope::OutOfCore;
    HtmPolicy htmPolicy = HtmPolicy::RequesterWins;

    /**
     * Speculative retries before the fallback path is taken. The
     * paper sweeps 1..10 per application and reports the best.
     */
    unsigned maxRetries = 4;

    ClearConfig clear;

    HtmTimingConfig timing;

    /**
     * Fault-injection plan (fault/fault_config.hh). The default plan
     * injects nothing; System only builds a FaultInjector when
     * fault.anyActive(), so disabled fault injection is
     * cycle-identical to pre-fault-layer builds.
     */
    FaultConfig fault;

    /**
     * Adaptive per-region policy (preset "A"): when enabled, the
     * harness runs an analysis capture pass first and installs a
     * RegionPolicyTable mapping each region's static verdict to an
     * execution action (policy/adapt_config.hh).
     */
    AdaptConfig adapt;

    /**
     * Measurement-only mode: keep executing after a conflict so the
     * complete cacheline footprint of an aborted attempt can be
     * recorded (the instrumentation behind Table 1 and Figure 1).
     * Retry decisions stay those of the baseline HTM.
     */
    bool profileMode = false;

    /** Human-readable name used by the harness ("B", "P", "C", "W"). */
    std::string name = "B";
};

/**
 * Recording capacity of the discovery footprint, derived from the
 * configured ALT size: recording must extend past the ALT so that
 * "just fits" is distinguishable from "overflows", and it keeps a
 * floor of 64 lines so the Table 1 / Figure 1 mutability profiles
 * resolve footprints well beyond the lockable bound. Every
 * Footprint construction site (TxContext, RegionExecutor, the
 * static analyzer) derives its capacity from this one function, so
 * runtime and analyzer always agree on the overflow bound.
 */
constexpr unsigned
footprintCapacity(const ClearConfig &clear)
{
    return clear.altEntries * 2 > 64 ? clear.altEntries * 2 : 64;
}

/** The four evaluated configurations (Section 7). */
SystemConfig makeBaselineConfig();    ///< B: requester-wins
SystemConfig makePowerTmConfig();     ///< P: PowerTM
SystemConfig makeClearConfig();       ///< C: CLEAR over requester-wins
SystemConfig makeClearPowerConfig();  ///< W: CLEAR over PowerTM
SystemConfig makeAdaptiveConfig();    ///< A: per-region verdict-driven

/**
 * Canonical, semantics-complete rendering of a configuration: every
 * execution-relevant field in a fixed order, independent of the spec
 * text that produced it. Two specs that resolve to equal canonical
 * strings are guaranteed to execute identically, which is what the
 * daemon's dedupe layer hashes (spec texts such as "C+watchdog" and
 * "C:fault.watchdog=1" canonicalize to the same bytes). The name
 * field is deliberately excluded.
 */
std::string canonicalConfigString(const SystemConfig &cfg);

/**
 * Build a configuration from a ConfigRegistry spec string such as
 * "C", "C+scl-all-reads" or "B:maxRetries=4" (defined with the
 * registry in policy/config_registry.cc). fatal()s on an unknown
 * preset, naming the registered ones.
 */
SystemConfig makeConfigByName(const std::string &name);

} // namespace clearsim

#endif // CLEARSIM_COMMON_CONFIG_HH
