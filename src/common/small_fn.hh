/**
 * @file
 * InlineCallback: a non-allocating std::function<void()> stand-in.
 *
 * Event callbacks are the most frequently constructed objects in
 * the simulator; almost all of them capture a coroutine handle or
 * a this-pointer plus a word or two. InlineCallback stores such
 * callables in place (no heap traffic, no virtual dispatch beyond
 * one indirect call) and falls back to the heap only for captures
 * larger than its inline capacity. Move-only, so popping an event
 * moves the callable out instead of copying it.
 */

#ifndef CLEARSIM_COMMON_SMALL_FN_HH
#define CLEARSIM_COMMON_SMALL_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace clearsim
{

/** Move-only void() callable with Capacity bytes of inline storage. */
template <std::size_t Capacity>
class InlineCallback
{
  public:
    InlineCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InlineCallback>>>
    InlineCallback(F &&fn) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_))
                Fn(std::forward<F>(fn));
            ops_ = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &heapOps<Fn>;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept
        : ops_(other.ops_)
    {
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const { return ops_ != nullptr; }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= Capacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p) { (**static_cast<Fn **>(p))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn *(*static_cast<Fn **>(src));
        },
        [](void *p) { delete *static_cast<Fn **>(p); },
    };

    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[Capacity];
};

} // namespace clearsim

#endif // CLEARSIM_COMMON_SMALL_FN_HH
