/**
 * @file
 * Strict parsing of numeric knobs from the environment and the
 * command line.
 *
 * The CLEARSIM_* environment variables and the CLI flags control
 * experiment scale; a silently mis-parsed knob (atoi turning
 * garbage into 0, a negative wrapping to a huge unsigned) produces
 * figures that look real but are not. These helpers therefore
 * reject anything that is not a plain decimal integer within the
 * caller's range, with a fatal() naming the offending knob.
 */

#ifndef CLEARSIM_COMMON_ENV_HH
#define CLEARSIM_COMMON_ENV_HH

#include <cstdint>

namespace clearsim
{

/**
 * Parse @p text as a plain decimal unsigned integer.
 *
 * fatal()s, naming @p what, when text is empty, has a sign or any
 * non-digit character, overflows, or falls outside
 * [min_value, max_value].
 */
std::uint64_t parseUnsignedOrDie(const char *text, const char *what,
                                 std::uint64_t min_value,
                                 std::uint64_t max_value);

/**
 * Read environment variable @p name as a bounded unsigned integer.
 * @return @p fallback when the variable is unset;
 *         otherwise parseUnsignedOrDie() of its value
 */
std::uint64_t envUnsignedOr(const char *name, std::uint64_t fallback,
                            std::uint64_t min_value,
                            std::uint64_t max_value);

} // namespace clearsim

#endif // CLEARSIM_COMMON_ENV_HH
