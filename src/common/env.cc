#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/log.hh"

namespace clearsim
{

std::uint64_t
parseUnsignedOrDie(const char *text, const char *what,
                   std::uint64_t min_value, std::uint64_t max_value)
{
    if (!text || !*text)
        fatal("%s: empty value (expected an integer in [%llu, %llu])",
              what, static_cast<unsigned long long>(min_value),
              static_cast<unsigned long long>(max_value));

    // strtoull accepts leading whitespace, '+', '-' (wrapping the
    // negation!) and hex prefixes; require plain decimal digits.
    for (const char *p = text; *p; ++p) {
        if (!std::isdigit(static_cast<unsigned char>(*p)))
            fatal("%s: invalid value '%s' (expected an integer in "
                  "[%llu, %llu])",
                  what, text,
                  static_cast<unsigned long long>(min_value),
                  static_cast<unsigned long long>(max_value));
    }

    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(text, &end, 10);
    if (errno == ERANGE || end == text || *end)
        fatal("%s: value '%s' out of range (expected an integer in "
              "[%llu, %llu])",
              what, text, static_cast<unsigned long long>(min_value),
              static_cast<unsigned long long>(max_value));

    if (parsed < min_value || parsed > max_value)
        fatal("%s: value %llu out of range [%llu, %llu]", what,
              parsed, static_cast<unsigned long long>(min_value),
              static_cast<unsigned long long>(max_value));

    return parsed;
}

std::uint64_t
envUnsignedOr(const char *name, std::uint64_t fallback,
              std::uint64_t min_value, std::uint64_t max_value)
{
    const char *value = std::getenv(name);
    if (!value)
        return fallback;
    return parseUnsignedOrDie(value, name, min_value, max_value);
}

} // namespace clearsim
