#include "common/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace clearsim
{

// ---------------------------------------------------------------
// Writer
// ---------------------------------------------------------------

std::string
jsonQuote(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonWriter::separate()
{
    if (pendingKey_)
        return;
    if (!hasSibling_.empty()) {
        if (hasSibling_.back())
            out_.push_back(',');
        hasSibling_.back() = true;
    }
}

void
JsonWriter::beforeValue()
{
    separate();
    pendingKey_ = false;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    out_.push_back('{');
    hasSibling_.push_back(false);
}

void
JsonWriter::endObject()
{
    CLEARSIM_ASSERT(!hasSibling_.empty(), "endObject with no open container");
    hasSibling_.pop_back();
    out_.push_back('}');
}

void
JsonWriter::beginArray()
{
    beforeValue();
    out_.push_back('[');
    hasSibling_.push_back(false);
}

void
JsonWriter::endArray()
{
    CLEARSIM_ASSERT(!hasSibling_.empty(), "endArray with no open container");
    hasSibling_.pop_back();
    out_.push_back(']');
}

void
JsonWriter::key(std::string_view name)
{
    separate();
    out_ += jsonQuote(name);
    out_.push_back(':');
    pendingKey_ = true;
}

void
JsonWriter::value(std::string_view text)
{
    beforeValue();
    out_ += jsonQuote(text);
}

void
JsonWriter::value(std::uint64_t number)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(number));
    out_ += buf;
}

void
JsonWriter::value(std::int64_t number)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(number));
    out_ += buf;
}

void
JsonWriter::value(double number)
{
    beforeValue();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    out_ += buf;
}

void
JsonWriter::value(bool flag)
{
    beforeValue();
    out_ += flag ? "true" : "false";
}

void
JsonWriter::null()
{
    beforeValue();
    out_ += "null";
}

// ---------------------------------------------------------------
// Parser
// ---------------------------------------------------------------

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

double
JsonValue::asDouble() const
{
    switch (type) {
      case Type::Uint:
        return static_cast<double>(uintValue);
      case Type::Int:
        return static_cast<double>(intValue);
      case Type::Double:
        return doubleValue;
      default:
        return 0.0;
    }
}

std::uint64_t
JsonValue::asUint() const
{
    switch (type) {
      case Type::Uint:
        return uintValue;
      case Type::Int:
        return intValue < 0 ? 0 : static_cast<std::uint64_t>(intValue);
      case Type::Double:
        return doubleValue < 0.0
            ? 0 : static_cast<std::uint64_t>(doubleValue);
      default:
        return 0;
    }
}

namespace
{

/** Recursive-descent JSON parser over a string_view. */
class JsonParser
{
  public:
    JsonParser(std::string_view input, std::string &error)
        : input_(input), error_(error)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != input_.size())
            return fail("trailing content after JSON value");
        return true;
    }

  private:
    bool
    fail(const char *message)
    {
        error_ = std::string(message) + " at offset " +
                 std::to_string(pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < input_.size() &&
               (input_[pos_] == ' ' || input_[pos_] == '\t' ||
                input_[pos_] == '\n' || input_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(const char *text)
    {
        const std::size_t len = std::string_view(text).size();
        if (input_.substr(pos_, len) != text)
            return false;
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= input_.size())
            return fail("unexpected end of input");
        const char c = input_[pos_];
        switch (c) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.text);
          case 't':
            if (!literal("true"))
                return fail("invalid literal");
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return true;
          case 'f':
            if (!literal("false"))
                return fail("invalid literal");
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return true;
          case 'n':
            if (!literal("null"))
                return fail("invalid literal");
            out.type = JsonValue::Type::Null;
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        if (depth_ >= kJsonMaxDepth)
            return fail("nesting too deep");
        const DepthGuard guard(depth_);
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < input_.size() && input_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            std::string name;
            if (pos_ >= input_.size() || input_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(name))
                return false;
            skipSpace();
            if (pos_ >= input_.size() || input_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipSpace();
            JsonValue member;
            if (!parseValue(member))
                return false;
            out.members.emplace_back(std::move(name),
                                     std::move(member));
            skipSpace();
            if (pos_ >= input_.size())
                return fail("unterminated object");
            if (input_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (input_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        if (depth_ >= kJsonMaxDepth)
            return fail("nesting too deep");
        const DepthGuard guard(depth_);
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < input_.size() && input_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            JsonValue item;
            if (!parseValue(item))
                return false;
            out.items.push_back(std::move(item));
            skipSpace();
            if (pos_ >= input_.size())
                return fail("unterminated array");
            if (input_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (input_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < input_.size()) {
            const char c = input_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= input_.size())
                    return fail("unterminated escape");
                const char esc = input_[pos_];
                switch (esc) {
                  case '"':
                    out.push_back('"');
                    break;
                  case '\\':
                    out.push_back('\\');
                    break;
                  case '/':
                    out.push_back('/');
                    break;
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 'r':
                    out.push_back('\r');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'b':
                    out.push_back('\b');
                    break;
                  case 'f':
                    out.push_back('\f');
                    break;
                  case 'u': {
                    if (pos_ + 4 >= input_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = input_[pos_ + 1 + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("invalid \\u escape");
                    }
                    pos_ += 4;
                    // Only the exports' own escapes (< 0x20) need
                    // decoding; encode other codepoints as UTF-8.
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(
                            static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(
                            static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape character");
                }
                ++pos_;
                continue;
            }
            out.push_back(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        // JSON numbers may start with '-' but never '+'; strtod
        // would happily take "+1", so reject it here (fail closed
        // on wire input rather than accept a superset).
        if (pos_ < input_.size() && input_[pos_] == '+')
            return fail("expected a value");
        if (pos_ < input_.size() && input_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < input_.size()) {
            const char c = input_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return fail("expected a value");
        const std::string token(input_.substr(start, pos_ - start));
        char *end = nullptr;
        if (integral) {
            if (token[0] == '-') {
                errno = 0;
                const long long v =
                    std::strtoll(token.c_str(), &end, 10);
                if (errno != 0 || *end != '\0')
                    return fail("invalid integer");
                out.type = JsonValue::Type::Int;
                out.intValue = v;
                out.doubleValue = static_cast<double>(v);
                return true;
            }
            errno = 0;
            const unsigned long long v =
                std::strtoull(token.c_str(), &end, 10);
            if (errno != 0 || *end != '\0')
                return fail("invalid integer");
            out.type = JsonValue::Type::Uint;
            out.uintValue = v;
            out.doubleValue = static_cast<double>(v);
            return true;
        }
        errno = 0;
        const double v = std::strtod(token.c_str(), &end);
        if (*end != '\0')
            return fail("invalid number");
        out.type = JsonValue::Type::Double;
        out.doubleValue = v;
        return true;
    }

    /** Increment the live nesting depth for one container scope. */
    class DepthGuard
    {
      public:
        explicit DepthGuard(std::size_t &depth) : depth_(depth)
        {
            ++depth_;
        }
        ~DepthGuard() { --depth_; }

      private:
        std::size_t &depth_;
    };

    std::string_view input_;
    std::string &error_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

} // namespace

bool
parseJson(std::string_view input, JsonValue &out, std::string &error)
{
    out = JsonValue{};
    JsonParser parser(input, error);
    return parser.parseDocument(out);
}

} // namespace clearsim
