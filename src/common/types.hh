/**
 * @file
 * Fundamental types shared by every clearsim module.
 *
 * The simulator addresses a flat 64-bit simulated physical address
 * space. Cachelines are 64 bytes, matching the system modeled in the
 * CLEAR paper (Table 2). All time is expressed in core clock cycles.
 */

#ifndef CLEARSIM_COMMON_TYPES_HH
#define CLEARSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace clearsim
{

/** A simulated physical byte address. */
using Addr = std::uint64_t;

/** A cacheline-granular address (Addr >> lineShift). */
using LineAddr = std::uint64_t;

/** Simulated time, in core clock cycles. */
using Cycle = std::uint64_t;

/** Identifier of a simulated core (and of its one hardware thread). */
using CoreId = std::uint16_t;

/** Identifier of a static atomic region, the "PC" of its first insn. */
using RegionPc = std::uint64_t;

/** Cacheline size used throughout the simulator. */
constexpr unsigned kLineBytes = 64;

/** log2(kLineBytes). */
constexpr unsigned kLineShift = 6;

/** Sentinel for "no core". */
constexpr CoreId kNoCore = std::numeric_limits<CoreId>::max();

/** Sentinel for "no cycle scheduled". */
constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/**
 * Cycle addition saturating at kNoCycle instead of wrapping: a
 * delay or jitter that would overflow simulated time clamps to
 * "never" rather than silently landing in the past.
 */
constexpr Cycle
saturatingAdd(Cycle base, Cycle delta)
{
    return delta > kNoCycle - base ? kNoCycle : base + delta;
}

/** Map a byte address to the cacheline that contains it. */
constexpr LineAddr
lineOf(Addr addr)
{
    return addr >> kLineShift;
}

/** First byte address of a cacheline. */
constexpr Addr
lineBase(LineAddr line)
{
    return line << kLineShift;
}

} // namespace clearsim

#endif // CLEARSIM_COMMON_TYPES_HH
