#include "common/config.hh"

#include <cstdio>
#include <string>

namespace clearsim
{

SystemConfig
makeBaselineConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::RequesterWins;
    cfg.clear.enabled = false;
    cfg.name = "B";
    return cfg;
}

SystemConfig
makePowerTmConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::PowerTm;
    cfg.clear.enabled = false;
    cfg.name = "P";
    return cfg;
}

SystemConfig
makeClearConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::RequesterWins;
    cfg.clear.enabled = true;
    cfg.name = "C";
    return cfg;
}

SystemConfig
makeClearPowerConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::PowerTm;
    cfg.clear.enabled = true;
    cfg.name = "W";
    return cfg;
}

SystemConfig
makeAdaptiveConfig()
{
    // The adaptive preset starts from CLEAR (eligible regions run
    // the full machinery) and turns on per-region verdict routing.
    SystemConfig cfg = makeClearConfig();
    cfg.adapt.enabled = true;
    cfg.name = "A";
    return cfg;
}

std::string
canonicalConfigString(const SystemConfig &cfg)
{
    std::string out;
    out.reserve(768);
    auto field = [&out](const char *key, std::uint64_t value) {
        out += key;
        out += '=';
        out += std::to_string(value);
        out += ';';
    };

    out += "clearsim-config-v1{";
    field("cores", cfg.numCores);

    field("core.rob", cfg.core.robEntries);
    field("core.lq", cfg.core.lqEntries);
    field("core.sq", cfg.core.sqEntries);
    field("core.regs", cfg.core.physRegs);
    field("core.fetch", cfg.core.fetchWidth);
    field("core.issue", cfg.core.issueWidth);
    field("core.alu", cfg.core.aluLatency);

    field("cache.l1s", cfg.cache.l1Sets);
    field("cache.l1w", cfg.cache.l1Ways);
    field("cache.l1lat", cfg.cache.l1Latency);
    field("cache.l2s", cfg.cache.l2Sets);
    field("cache.l2w", cfg.cache.l2Ways);
    field("cache.l2lat", cfg.cache.l2Latency);
    field("cache.l3s", cfg.cache.l3Sets);
    field("cache.l3w", cfg.cache.l3Ways);
    field("cache.l3lat", cfg.cache.l3Latency);
    field("cache.mem", cfg.cache.memLatency);
    field("cache.remote", cfg.cache.remoteLatency);
    field("cache.dirsets", cfg.cache.dirSets);

    field("scope", cfg.scope == SpeculationScope::InCore ? 0 : 1);
    field("htm", cfg.htmPolicy == HtmPolicy::RequesterWins ? 0 : 1);
    field("maxRetries", cfg.maxRetries);

    field("clear.on", cfg.clear.enabled ? 1 : 0);
    field("clear.ert", cfg.clear.ertEntries);
    field("clear.alt", cfg.clear.altEntries);
    field("clear.crt", cfg.clear.crtEntries);
    field("clear.crtw", cfg.clear.crtWays);
    field("clear.sqsat", cfg.clear.sqFullSaturation);
    field("clear.sclreads", cfg.clear.sclLockAllReads ? 1 : 0);
    field("clear.failed", cfg.clear.failedModeDiscovery ? 1 : 0);

    field("t.abort", cfg.timing.abortPenalty);
    field("t.lockretry", cfg.timing.lockRetryBackoff);
    field("t.spin", cfg.timing.fallbackSpinInterval);
    field("t.commit", cfg.timing.commitLatency);
    field("t.begin", cfg.timing.beginLatency);
    field("t.think", cfg.timing.thinkTimeMean);
    field("t.backoff", cfg.timing.retryBackoffBase);

    field("f.seed", cfg.fault.seed);
    field("f.jitter", cfg.fault.eventJitterPermille);
    field("f.jittermax", cfg.fault.eventJitterMax);
    field("f.nack", cfg.fault.nackPermille);
    field("f.retry", cfg.fault.retryPermille);
    field("f.retrymax", cfg.fault.retryDelayExtraMax);
    field("f.grant", cfg.fault.grantDeferPermille);
    field("f.grantmax", cfg.fault.grantDeferMax);
    field("f.evict", cfg.fault.evictPermille);
    field("f.abort", cfg.fault.forcedAbortPermille);
    field("f.flip", cfg.fault.conflictFlipPermille);
    field("f.hold", cfg.fault.fallbackHoldExtra);
    field("f.watchdog", cfg.fault.watchdog ? 1 : 0);
    field("f.horizon", cfg.fault.horizon);

    field("a.on", cfg.adapt.enabled ? 1 : 0);
    field("a.eligible", static_cast<unsigned>(cfg.adapt.eligible));
    field("a.capacity",
          static_cast<unsigned>(cfg.adapt.capacityDoomed));
    field("a.indirection",
          static_cast<unsigned>(cfg.adapt.unboundedIndirection));
    field("a.lockorder",
          static_cast<unsigned>(cfg.adapt.lockOrderRisk));
    field("a.retries", cfg.adapt.boundedRetries);
    // pc-keyed overrides, in pc order; absent entries add no bytes,
    // so configs without overrides keep their pre-existing string.
    for (const auto &[pc, action] : cfg.adapt.pcOverrides) {
        char key[32];
        std::snprintf(key, sizeof key, "a.pc%llx",
                      static_cast<unsigned long long>(pc));
        field(key, static_cast<unsigned>(action));
    }

    field("profile", cfg.profileMode ? 1 : 0);
    out += '}';
    return out;
}

} // namespace clearsim
