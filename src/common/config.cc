#include "common/config.hh"

namespace clearsim
{

SystemConfig
makeBaselineConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::RequesterWins;
    cfg.clear.enabled = false;
    cfg.name = "B";
    return cfg;
}

SystemConfig
makePowerTmConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::PowerTm;
    cfg.clear.enabled = false;
    cfg.name = "P";
    return cfg;
}

SystemConfig
makeClearConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::RequesterWins;
    cfg.clear.enabled = true;
    cfg.name = "C";
    return cfg;
}

SystemConfig
makeClearPowerConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::PowerTm;
    cfg.clear.enabled = true;
    cfg.name = "W";
    return cfg;
}

} // namespace clearsim
