#include "common/config.hh"

#include "common/log.hh"

namespace clearsim
{

SystemConfig
makeBaselineConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::RequesterWins;
    cfg.clear.enabled = false;
    cfg.name = "B";
    return cfg;
}

SystemConfig
makePowerTmConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::PowerTm;
    cfg.clear.enabled = false;
    cfg.name = "P";
    return cfg;
}

SystemConfig
makeClearConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::RequesterWins;
    cfg.clear.enabled = true;
    cfg.name = "C";
    return cfg;
}

SystemConfig
makeClearPowerConfig()
{
    SystemConfig cfg;
    cfg.htmPolicy = HtmPolicy::PowerTm;
    cfg.clear.enabled = true;
    cfg.name = "W";
    return cfg;
}

SystemConfig
makeConfigByName(const std::string &name)
{
    if (name == "B")
        return makeBaselineConfig();
    if (name == "P")
        return makePowerTmConfig();
    if (name == "C")
        return makeClearConfig();
    if (name == "W")
        return makeClearPowerConfig();
    fatal("unknown configuration '%s' (expected B, P, C or W)",
          name.c_str());
}

} // namespace clearsim
