#include "common/arena.hh"

namespace clearsim
{

namespace
{

/**
 * Coroutine frames cluster around a handful of sizes (one per
 * coroutine function), so a few 64-byte-granular buckets capture
 * nearly all of them. Blocks are recycled per thread; the pool
 * frees everything it still holds when its thread exits, so leak
 * checkers see a clean heap.
 */
constexpr std::size_t kFrameGranule = 64;
constexpr std::size_t kFrameClasses = 16; // up to 1024 bytes

struct FreeBlock
{
    FreeBlock *next;
};

struct FramePool
{
    FreeBlock *buckets[kFrameClasses] = {};
    std::size_t cachedBytes = 0;

    ~FramePool()
    {
        for (FreeBlock *head : buckets) {
            while (head != nullptr) {
                FreeBlock *next = head->next;
                ::operator delete(head);
                head = next;
            }
        }
    }
};

thread_local FramePool tlsFramePool;

constexpr std::size_t
frameClass(std::size_t n)
{
    return (n + kFrameGranule - 1) / kFrameGranule;
}

} // namespace

void *
frameAlloc(std::size_t n)
{
    const std::size_t cls = frameClass(n);
    if (cls == 0 || cls > kFrameClasses)
        return ::operator new(n);
    FramePool &pool = tlsFramePool;
    FreeBlock *&head = pool.buckets[cls - 1];
    if (head != nullptr) {
        void *p = head;
        head = head->next;
        pool.cachedBytes -= cls * kFrameGranule;
        return p;
    }
    return ::operator new(cls * kFrameGranule);
}

void
frameFree(void *p, std::size_t n) noexcept
{
    const std::size_t cls = frameClass(n);
    if (cls == 0 || cls > kFrameClasses) {
        ::operator delete(p);
        return;
    }
    FramePool &pool = tlsFramePool;
    auto *block = static_cast<FreeBlock *>(p);
    block->next = pool.buckets[cls - 1];
    pool.buckets[cls - 1] = block;
    pool.cachedBytes += cls * kFrameGranule;
}

std::size_t
framePoolCachedBytes()
{
    return tlsFramePool.cachedBytes;
}

} // namespace clearsim
