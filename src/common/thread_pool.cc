#include "common/thread_pool.hh"

#include <algorithm>
#include <utility>

namespace clearsim
{

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned count = std::max(threads, 1u);
    workers_.reserve(count);
    for (unsigned t = 0; t < count; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock, [this] { return inFlight_ == 0; });
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push(std::move(job));
        ++inFlight_;
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

bool
ThreadPool::waitFor(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return allDone_.wait_for(lock, timeout,
                             [this] { return inFlight_ == 0; });
}

unsigned
ThreadPool::defaultThreads()
{
    return std::max(std::thread::hardware_concurrency(), 1u);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
        }
        allDone_.notify_all();
    }
}

} // namespace clearsim
