/**
 * @file
 * Minimal leveled logging and error-termination helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (simulator bugs), fatal() for user-caused conditions
 * (bad configuration), warn()/inform() for status messages.
 */

#ifndef CLEARSIM_COMMON_LOG_HH
#define CLEARSIM_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace clearsim
{

/** Verbosity levels for the debug trace stream. */
enum class LogLevel
{
    Silent = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
};

/** Global log verbosity; defaults to Warn. */
LogLevel logLevel();

/** Set the global log verbosity. */
void setLogLevel(LogLevel level);

/** printf-style message to stderr if level is enabled. */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Unconditional user-facing status line to stderr ("wrote file X",
 * sweep progress). Unlike logMessage() it ignores the verbosity
 * level, but shares the same mutex, so status lines from worker
 * threads never interleave with log or error output. A trailing
 * newline is appended.
 */
void logStatus(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate with an error message for a condition caused by the user
 * (bad configuration, invalid arguments). Exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate with an error message for a condition that should never
 * happen (a simulator bug). Calls abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Panic if cond is false. Used for internal invariants. */
#define CLEARSIM_ASSERT(cond, msg)                                        \
    do {                                                                  \
        if (!(cond))                                                      \
            ::clearsim::panic("assertion failed: %s (%s) at %s:%d",       \
                              msg, #cond, __FILE__, __LINE__);            \
    } while (0)

} // namespace clearsim

#endif // CLEARSIM_COMMON_LOG_HH
