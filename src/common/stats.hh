/**
 * @file
 * Small statistics toolkit used by the metrics layer and the
 * experiment harness: scalar counters, bounded histograms, and the
 * summary statistics the paper's methodology calls for (trimmed mean
 * over per-seed runs, geometric mean across benchmarks).
 */

#ifndef CLEARSIM_COMMON_STATS_HH
#define CLEARSIM_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace clearsim
{

/**
 * A bounded integer histogram with an overflow bucket.
 *
 * Bucket i counts samples with value == i for i < capacity; samples
 * >= capacity land in the overflow bucket. Used e.g. for the
 * commits-by-retry-count breakdown of Figure 13.
 */
class BoundedHistogram
{
  public:
    explicit BoundedHistogram(std::size_t capacity = 16);

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Count of samples with exactly this value. */
    std::uint64_t count(std::uint64_t value) const;

    /** Count of samples >= capacity. */
    std::uint64_t overflow() const { return overflow_; }

    /** Total number of recorded samples. */
    std::uint64_t total() const { return total_; }

    /** Sum of all recorded sample values. */
    std::uint64_t sum() const { return sum_; }

    /** Mean of recorded samples (0 if empty). */
    double mean() const;

    /** Number of exact buckets. */
    std::size_t capacity() const { return buckets_.size(); }

    /** Reset all counts. */
    void clear();

    /** Merge another histogram of the same capacity into this one. */
    void merge(const BoundedHistogram &other);

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * Mean after removing the k largest and k smallest samples, the
 * outlier-rejection scheme the paper applies across seeds
 * ("the trimmed mean is used to remove 3 outliers").
 * If 2k >= n the plain mean is returned.
 */
double trimmedMean(std::vector<double> samples, std::size_t trim_each_side);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &samples);

/** Geometric mean; requires all samples > 0. 0 for an empty vector. */
double geomean(const std::vector<double> &samples);

/** Render a double with fixed decimals, for table output. */
std::string formatFixed(double value, int decimals);

} // namespace clearsim

#endif // CLEARSIM_COMMON_STATS_HH
