/**
 * @file
 * Small statistics toolkit used by the metrics layer and the
 * experiment harness: scalar counters, bounded histograms, and the
 * summary statistics the paper's methodology calls for (trimmed mean
 * over per-seed runs, geometric mean across benchmarks).
 */

#ifndef CLEARSIM_COMMON_STATS_HH
#define CLEARSIM_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace clearsim
{

/**
 * A bounded integer histogram with an overflow bucket.
 *
 * Bucket i counts samples with value == i for i < capacity; samples
 * >= capacity land in the overflow bucket. Used e.g. for the
 * commits-by-retry-count breakdown of Figure 13.
 */
class BoundedHistogram
{
  public:
    explicit BoundedHistogram(std::size_t capacity = 16);

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Count of samples with exactly this value. */
    std::uint64_t count(std::uint64_t value) const;

    /** Count of samples >= capacity. */
    std::uint64_t overflow() const { return overflow_; }

    /** Total number of recorded samples. */
    std::uint64_t total() const { return total_; }

    /** Sum of all recorded sample values. */
    std::uint64_t sum() const { return sum_; }

    /** Mean of recorded samples (0 if empty). */
    double mean() const;

    /** Number of exact buckets. */
    std::size_t capacity() const { return buckets_.size(); }

    /** Reset all counts. */
    void clear();

    /** Merge another histogram of the same capacity into this one. */
    void merge(const BoundedHistogram &other);

    /**
     * Nearest-rank percentile of the recorded samples: the smallest
     * value v such that at least ceil(p/100 * total) samples are
     * <= v. Samples in the overflow bucket report capacity() (the
     * histogram only knows they are at least that large). 0 when
     * empty. @p p must be in (0, 100].
     */
    std::uint64_t percentile(double p) const;

    /**
     * Largest recorded value; saturates at capacity() when any
     * sample overflowed. 0 when empty.
     */
    std::uint64_t maxValue() const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * An exact scalar distribution: stores every recorded sample and
 * answers count/sum/mean/max plus nearest-rank percentiles. Used
 * for the quantities whose spread the observability layer reports
 * (cycles in backoff, lock-hold cycles). Samples are kept verbatim,
 * so merging and percentile extraction are deterministic.
 */
class Distribution
{
  public:
    /** Record one sample. */
    void record(std::uint64_t value);

    /** Number of recorded samples. */
    std::uint64_t count() const { return samples_.size(); }

    /** Sum of all samples. */
    std::uint64_t sum() const { return sum_; }

    /** Mean (0 when empty). */
    double mean() const;

    /** Largest sample (0 when empty). */
    std::uint64_t maxValue() const;

    /**
     * Nearest-rank percentile: the sample at rank
     * ceil(p/100 * count) of the sorted samples. 0 when empty.
     * @p p must be in (0, 100].
     */
    std::uint64_t percentile(double p) const;

    /** Append another distribution's samples. */
    void merge(const Distribution &other);

    /** Drop all samples. */
    void clear();

  private:
    /** Sorted lazily by the percentile queries. */
    mutable std::vector<std::uint64_t> samples_;
    mutable bool sorted_ = true;
    std::uint64_t sum_ = 0;
};

/**
 * Summary of a scalar distribution: the moments and nearest-rank
 * percentiles the observability exports report. Computable from a
 * Distribution (exact samples) or a BoundedHistogram (bucketed), so
 * the registry can publish both under one shape.
 */
struct DistSummary
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t max = 0;

    static DistSummary of(const Distribution &dist);
    static DistSummary of(const BoundedHistogram &hist);
};

/**
 * A registry of named statistics: integer counters, floating-point
 * scalars, and distribution summaries, each with a description.
 * Entries keep registration order — also across kinds, via order()
 * — which makes every export (text report, JSON) deterministic and
 * self-describing. RunResult publishes all of its counters into one
 * registry; exporters iterate it instead of hard-coding field lists.
 */
class StatsRegistry
{
  public:
    struct CounterEntry
    {
        std::string name;
        std::string desc;
        std::uint64_t value = 0;
    };

    struct ScalarEntry
    {
        std::string name;
        std::string desc;
        double value = 0.0;
    };

    struct DistributionEntry
    {
        std::string name;
        std::string desc;
        DistSummary summary;
    };

    /** What kind of entry an order() element refers to. */
    enum class EntryKind
    {
        Counter,
        Scalar,
        Distribution,
    };

    /** One element of the unified registration order. */
    struct OrderRef
    {
        EntryKind kind = EntryKind::Counter;
        /** Index into the matching per-kind vector. */
        std::size_t index = 0;
    };

    /** Register (or re-set) an integer counter. */
    void addCounter(const std::string &name, const std::string &desc,
                    std::uint64_t value);

    /** Register (or re-set) a floating-point scalar. */
    void addScalar(const std::string &name, const std::string &desc,
                   double value);

    /** Register (or replace) a distribution summary. */
    void addDistribution(const std::string &name,
                         const std::string &desc,
                         const DistSummary &summary);

    /** Counters in registration order. */
    const std::vector<CounterEntry> &counters() const
    {
        return counters_;
    }

    /** Scalars in registration order. */
    const std::vector<ScalarEntry> &scalars() const
    {
        return scalars_;
    }

    /** Distribution summaries in registration order. */
    const std::vector<DistributionEntry> &distributions() const
    {
        return distributions_;
    }

    /** All entries across kinds, in first-registration order. */
    const std::vector<OrderRef> &order() const { return order_; }

    /** Look up a counter value by name; false if absent. */
    bool counterValue(const std::string &name,
                      std::uint64_t &value) const;

    /** Look up a scalar value by name; false if absent. */
    bool scalarValue(const std::string &name, double &value) const;

  private:
    std::vector<CounterEntry> counters_;
    std::vector<ScalarEntry> scalars_;
    std::vector<DistributionEntry> distributions_;
    std::vector<OrderRef> order_;
    std::unordered_map<std::string, std::size_t> counterIndex_;
    std::unordered_map<std::string, std::size_t> scalarIndex_;
    std::unordered_map<std::string, std::size_t> distIndex_;
};

/**
 * Mean after removing the k largest and k smallest samples, the
 * outlier-rejection scheme the paper applies across seeds
 * ("the trimmed mean is used to remove 3 outliers").
 * If 2k >= n the plain mean is returned.
 */
double trimmedMean(std::vector<double> samples, std::size_t trim_each_side);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &samples);

/** Geometric mean; requires all samples > 0. 0 for an empty vector. */
double geomean(const std::vector<double> &samples);

/** Render a double with fixed decimals, for table output. */
std::string formatFixed(double value, int decimals);

} // namespace clearsim

#endif // CLEARSIM_COMMON_STATS_HH
