/**
 * @file
 * Minimal JSON toolkit for the observability exports.
 *
 * JsonWriter produces deterministic output: keys appear exactly in
 * the order the caller emits them, integers print losslessly, and
 * doubles use a fixed shortest-round-trip format ("%.17g"), so the
 * same data always serializes to the same bytes.
 *
 * The parser is the inverse used by trace_report and the round-trip
 * tests: it keeps object member order, distinguishes integers from
 * doubles (a number without '.', 'e' or 'E' parses losslessly into
 * 64 bits), and rejects trailing garbage.
 *
 * Since the clearsimd wire protocol feeds it bytes straight off a
 * socket, the parser must fail closed on adversarial input: nesting
 * is capped at kJsonMaxDepth (deeper documents are rejected, not
 * recursed into — no stack overflow), every read is bounds-checked,
 * and any malformed byte yields false with a position, never a
 * crash or over-read. tests/common/json_fuzz_test.cc pins this.
 */

#ifndef CLEARSIM_COMMON_JSON_HH
#define CLEARSIM_COMMON_JSON_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace clearsim
{

/**
 * Maximum container nesting the parser accepts. Deep enough for
 * every document clearsim emits (≤ 8 levels), small enough that a
 * "[[[[[..." bomb off the wire is rejected long before the
 * recursive parser could exhaust the stack.
 */
constexpr std::size_t kJsonMaxDepth = 64;

/** Append-only JSON serializer with caller-controlled key order. */
class JsonWriter
{
  public:
    /** Serialized text accumulates into @p out. */
    explicit JsonWriter(std::string &out) : out_(out) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next value() pairs with it. */
    void key(std::string_view name);

    void value(std::string_view text);
    void value(const char *text) { value(std::string_view(text)); }
    void value(std::uint64_t number);
    void value(std::int64_t number);
    void value(unsigned number) { value(std::uint64_t(number)); }
    void value(int number) { value(std::int64_t(number)); }
    void value(double number);
    void value(bool flag);
    void null();

  private:
    /** Insert the separating comma if a sibling was written. */
    void separate();

    /** A value (not a key) is about to be written. */
    void beforeValue();

    std::string &out_;
    /** One flag per open container: a sibling was already written. */
    std::vector<bool> hasSibling_;
    bool pendingKey_ = false;
};

/** Escape and double-quote a string for JSON output. */
std::string jsonQuote(std::string_view text);

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        /** Integral number that fit losslessly in uint64/int64. */
        Uint,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    std::uint64_t uintValue = 0;
    std::int64_t intValue = 0;
    double doubleValue = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    /** Object members in document order. */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Object member by key, or nullptr. */
    const JsonValue *find(std::string_view key) const;

    bool isNumber() const
    {
        return type == Type::Uint || type == Type::Int ||
               type == Type::Double;
    }

    /** Numeric value widened to double (0 for non-numbers). */
    double asDouble() const;

    /** Numeric value as uint64 (0 for non-numbers / negatives). */
    std::uint64_t asUint() const;
};

/**
 * Parse a complete JSON document. Trailing whitespace is allowed,
 * trailing content is an error.
 * @retval false with @p error describing the failure position.
 */
bool parseJson(std::string_view input, JsonValue &out,
               std::string &error);

} // namespace clearsim

#endif // CLEARSIM_COMMON_JSON_HH
