/**
 * @file
 * RunResult: everything measured in one simulation run, plus the
 * derived quantities each figure of the paper reports.
 */

#ifndef CLEARSIM_METRICS_RUN_RESULT_HH
#define CLEARSIM_METRICS_RUN_RESULT_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "energy/energy_model.hh"
#include "htm/htm_stats.hh"
#include "mem/memory_system.hh"

namespace clearsim
{

/** The complete outcome of one (config, workload, seed) run. */
struct RunResult
{
    std::string workload;
    std::string config;
    std::uint64_t seed = 0;
    unsigned maxRetries = 0;
    /** Cores the run simulated (0 when the producer predates it). */
    unsigned numCores = 0;

    Cycle cycles = 0;
    HtmStats htm;
    MemStats mem;
    EnergyBreakdown energy;

    /**
     * Per-region decision report of an adaptive (preset "A") run:
     * one line per region with its verdict, chosen action and retry
     * budget. Empty for static configurations.
     */
    std::string decisionReport;

    /** Cacheline lock-hold durations (cycles), from the LockManager. */
    Distribution lockHoldCycles;

    /** Figure 9: aborts per committed transaction. */
    double abortsPerCommit() const { return htm.abortsPerCommit(); }

    /** Figure 12: commit-mode fractions (Spec, S-CL, NS-CL, FB). */
    std::array<double, kNumExecModes>
    commitModeFractions() const
    {
        std::array<double, kNumExecModes> f{};
        const double total =
            htm.commits ? static_cast<double>(htm.commits) : 1.0;
        for (unsigned i = 0; i < kNumExecModes; ++i)
            f[i] = static_cast<double>(htm.commitsByMode[i]) / total;
        return f;
    }

    /** Figure 11: abort-category fractions. */
    std::array<double, kNumAbortCategories>
    abortCategoryFractions() const
    {
        std::array<double, kNumAbortCategories> f{};
        const double total =
            htm.aborts ? static_cast<double>(htm.aborts) : 1.0;
        for (unsigned i = 0; i < kNumAbortCategories; ++i)
            f[i] =
                static_cast<double>(htm.abortsByCategory[i]) / total;
        return f;
    }

    /**
     * Figure 13: among commits that needed at least one counted
     * retry, the fractions committing after exactly one retry,
     * after more than one retry, and on the fallback path.
     */
    struct RetryBreakdown
    {
        double oneRetry = 0.0;
        double multiRetry = 0.0;
        double fallback = 0.0;
        /** Share of all commits that needed >= 1 retry. */
        double retriedShare = 0.0;
    };

    RetryBreakdown
    retryBreakdown() const
    {
        RetryBreakdown b;
        const std::uint64_t non_fb_retried =
            htm.commitsByRetries.total() -
            htm.commitsByRetries.count(0);
        const std::uint64_t fb = htm.fallbackCommitRetries.total();
        const std::uint64_t retried = non_fb_retried + fb;
        if (retried == 0)
            return b;
        b.oneRetry =
            static_cast<double>(htm.commitsByRetries.count(1)) /
            static_cast<double>(retried);
        b.multiRetry = static_cast<double>(
                           non_fb_retried -
                           htm.commitsByRetries.count(1)) /
                       static_cast<double>(retried);
        b.fallback = static_cast<double>(fb) /
                     static_cast<double>(retried);
        if (htm.commits != 0) {
            b.retriedShare = static_cast<double>(retried) /
                             static_cast<double>(htm.commits);
        }
        return b;
    }

    /** Figure 8 overlay: share of time spent in failed-mode
     *  discovery (approximated per-core-cycle share). */
    double
    discoveryOverheadShare(unsigned num_cores) const
    {
        if (cycles == 0 || num_cores == 0)
            return 0.0;
        return static_cast<double>(htm.discoveryFailedModeCycles) /
               (static_cast<double>(cycles) * num_cores);
    }
};

} // namespace clearsim

#endif // CLEARSIM_METRICS_RUN_RESULT_HH
