/**
 * @file
 * Formatted statistics reports (gem5 stats-dump style).
 *
 * Renders every counter of a run — commits by mode and retry
 * count, aborts by category, CLEAR machinery activity, memory
 * hierarchy traffic, energy split — as an aligned key/value block
 * suitable for logs and diffing between runs.
 *
 * The report is driven by a StatsRegistry: buildStatsRegistry
 * publishes every quantity of a RunResult under a stable dotted
 * name, and both the text renderer here and the JSON exporter
 * (metrics/json_export.hh) iterate that registry, so the two
 * outputs can never disagree about what a run contains.
 */

#ifndef CLEARSIM_METRICS_STATS_REPORT_HH
#define CLEARSIM_METRICS_STATS_REPORT_HH

#include <ostream>
#include <string>

#include "common/stats.hh"
#include "metrics/run_result.hh"

namespace clearsim
{

/**
 * Publish every quantity of a run into a registry: counters,
 * derived scalars, and the distribution summaries
 * (retries-to-commit, cycles-in-backoff, lock-hold cycles).
 * Names and order match the text report exactly.
 */
StatsRegistry buildStatsRegistry(const RunResult &run,
                                 unsigned num_cores);

/** Write the full stats block of a run to a stream. */
void writeStatsReport(std::ostream &os, const RunResult &run,
                      unsigned num_cores);

/** Convenience: the report as a string. */
std::string statsReportString(const RunResult &run,
                              unsigned num_cores);

} // namespace clearsim

#endif // CLEARSIM_METRICS_STATS_REPORT_HH
