/**
 * @file
 * Formatted statistics reports (gem5 stats-dump style).
 *
 * Renders every counter of a run — commits by mode and retry
 * count, aborts by category, CLEAR machinery activity, memory
 * hierarchy traffic, energy split — as an aligned key/value block
 * suitable for logs and diffing between runs.
 */

#ifndef CLEARSIM_METRICS_STATS_REPORT_HH
#define CLEARSIM_METRICS_STATS_REPORT_HH

#include <ostream>
#include <string>

#include "metrics/run_result.hh"

namespace clearsim
{

/** Write the full stats block of a run to a stream. */
void writeStatsReport(std::ostream &os, const RunResult &run,
                      unsigned num_cores);

/** Convenience: the report as a string. */
std::string statsReportString(const RunResult &run,
                              unsigned num_cores);

} // namespace clearsim

#endif // CLEARSIM_METRICS_STATS_REPORT_HH
