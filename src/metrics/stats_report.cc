#include "metrics/stats_report.hh"

#include <iomanip>
#include <sstream>

namespace clearsim
{

namespace
{

void
line(std::ostream &os, const char *key, std::uint64_t value)
{
    os << std::left << std::setw(40) << key << std::right
       << std::setw(16) << value << "\n";
}

void
lineF(std::ostream &os, const char *key, double value)
{
    os << std::left << std::setw(40) << key << std::right
       << std::setw(16) << std::fixed << std::setprecision(4)
       << value << "\n";
}

} // namespace

void
writeStatsReport(std::ostream &os, const RunResult &run,
                 unsigned num_cores)
{
    os << "---------- clearsim stats: " << run.workload << " ["
       << run.config << "] seed=" << run.seed
       << " retries=" << run.maxRetries << " ----------\n";

    line(os, "sim.cycles", run.cycles);
    line(os, "sim.cores", num_cores);

    const HtmStats &h = run.htm;
    line(os, "tx.commits", h.commits);
    line(os, "tx.commits.speculative",
         h.commitsByMode[static_cast<unsigned>(
             ExecMode::Speculative)]);
    line(os, "tx.commits.s_cl",
         h.commitsByMode[static_cast<unsigned>(ExecMode::SCl)]);
    line(os, "tx.commits.ns_cl",
         h.commitsByMode[static_cast<unsigned>(ExecMode::NsCl)]);
    line(os, "tx.commits.fallback",
         h.commitsByMode[static_cast<unsigned>(
             ExecMode::Fallback)]);
    line(os, "tx.commits.first_try", h.commitsByRetries.count(0));
    line(os, "tx.commits.one_retry", h.commitsByRetries.count(1));

    line(os, "tx.aborts", h.aborts);
    line(os, "tx.aborts.memory_conflict",
         h.abortsByCategory[static_cast<unsigned>(
             AbortCategory::MemoryConflict)]);
    line(os, "tx.aborts.explicit_fallback",
         h.abortsByCategory[static_cast<unsigned>(
             AbortCategory::ExplicitFallback)]);
    line(os, "tx.aborts.other_fallback",
         h.abortsByCategory[static_cast<unsigned>(
             AbortCategory::OtherFallback)]);
    line(os, "tx.aborts.others",
         h.abortsByCategory[static_cast<unsigned>(
             AbortCategory::Others)]);
    lineF(os, "tx.aborts_per_commit", run.abortsPerCommit());

    line(os, "tx.uops.committed", h.committedUops);
    line(os, "tx.uops.aborted", h.abortedUops);

    line(os, "clear.ns_cl_attempts", h.nsClAttempts);
    line(os, "clear.s_cl_attempts", h.sClAttempts);
    line(os, "clear.cacheline_locks", h.cachelineLocksAcquired);
    line(os, "clear.crt_insertions", h.crtInsertions);
    line(os, "clear.discovery_disabled", h.discoveryDisabled);
    line(os, "clear.discovery_cycles",
         h.discoveryFailedModeCycles);
    lineF(os, "clear.discovery_share",
          run.discoveryOverheadShare(num_cores));

    line(os, "fallback.acquisitions", h.fallbackAcquisitions);

    const MemStats &m = run.mem;
    line(os, "mem.l1_hits", m.l1Hits);
    line(os, "mem.l2_hits", m.l2Hits);
    line(os, "mem.l3_hits", m.l3Hits);
    line(os, "mem.dram_accesses", m.memAccesses);
    line(os, "mem.invalidations", m.invalidations);
    line(os, "mem.remote_transfers", m.remoteTransfers);

    lineF(os, "energy.static", run.energy.staticEnergy);
    lineF(os, "energy.dynamic", run.energy.dynamicEnergy);
    lineF(os, "energy.total", run.energy.total());
}

std::string
statsReportString(const RunResult &run, unsigned num_cores)
{
    std::ostringstream ss;
    writeStatsReport(ss, run, num_cores);
    return ss.str();
}

} // namespace clearsim
