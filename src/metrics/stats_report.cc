#include "metrics/stats_report.hh"

#include <iomanip>
#include <sstream>

namespace clearsim
{

namespace
{

void
line(std::ostream &os, const std::string &key, std::uint64_t value)
{
    os << std::left << std::setw(40) << key << std::right
       << std::setw(16) << value << "\n";
}

void
lineF(std::ostream &os, const std::string &key, double value)
{
    os << std::left << std::setw(40) << key << std::right
       << std::setw(16) << std::fixed << std::setprecision(4)
       << value << "\n";
}

} // namespace

StatsRegistry
buildStatsRegistry(const RunResult &run, unsigned num_cores)
{
    StatsRegistry reg;
    auto mode = [&](ExecMode m) {
        return run.htm.commitsByMode[static_cast<unsigned>(m)];
    };
    auto category = [&](AbortCategory c) {
        return run.htm.abortsByCategory[static_cast<unsigned>(c)];
    };

    reg.addCounter("sim.cycles", "simulated cycles", run.cycles);
    reg.addCounter("sim.cores", "simulated cores", num_cores);

    const HtmStats &h = run.htm;
    reg.addCounter("tx.commits", "committed atomic regions",
                   h.commits);
    reg.addCounter("tx.commits.speculative",
                   "commits in speculative mode",
                   mode(ExecMode::Speculative));
    reg.addCounter("tx.commits.s_cl", "commits in S-CL mode",
                   mode(ExecMode::SCl));
    reg.addCounter("tx.commits.ns_cl", "commits in NS-CL mode",
                   mode(ExecMode::NsCl));
    reg.addCounter("tx.commits.fallback",
                   "commits under the fallback lock",
                   mode(ExecMode::Fallback));
    reg.addCounter("tx.commits.first_try",
                   "commits with zero counted retries",
                   h.commitsByRetries.count(0));
    reg.addCounter("tx.commits.one_retry",
                   "commits after exactly one counted retry",
                   h.commitsByRetries.count(1));

    reg.addCounter("tx.aborts", "aborted execution attempts",
                   h.aborts);
    reg.addCounter("tx.aborts.memory_conflict",
                   "aborts from memory conflicts (Fig. 11)",
                   category(AbortCategory::MemoryConflict));
    reg.addCounter("tx.aborts.explicit_fallback",
                   "aborts on start with the fallback lock held",
                   category(AbortCategory::ExplicitFallback));
    reg.addCounter("tx.aborts.other_fallback",
                   "aborts from a fallback acquisition elsewhere",
                   category(AbortCategory::OtherFallback));
    reg.addCounter("tx.aborts.others",
                   "capacity, explicit and other aborts",
                   category(AbortCategory::Others));
    reg.addScalar("tx.aborts_per_commit",
                  "aborts per committed region (Fig. 9)",
                  run.abortsPerCommit());

    reg.addCounter("tx.uops.committed",
                   "micro-ops retired by committed attempts",
                   h.committedUops);
    reg.addCounter("tx.uops.aborted",
                   "micro-ops discarded by aborted attempts",
                   h.abortedUops);

    reg.addCounter("clear.ns_cl_attempts", "NS-CL attempts started",
                   h.nsClAttempts);
    reg.addCounter("clear.s_cl_attempts", "S-CL attempts started",
                   h.sClAttempts);
    reg.addCounter("clear.cacheline_locks",
                   "cacheline locks acquired", h.cachelineLocksAcquired);
    reg.addCounter("clear.crt_insertions",
                   "conflicting-reads-table insertions",
                   h.crtInsertions);
    reg.addCounter("clear.discovery_disabled",
                   "regions whose discovery was disabled",
                   h.discoveryDisabled);
    reg.addCounter("clear.discovery_cycles",
                   "cycles in failed-mode discovery",
                   h.discoveryFailedModeCycles);
    reg.addScalar("clear.discovery_share",
                  "share of core-cycles in failed-mode discovery",
                  run.discoveryOverheadShare(num_cores));

    reg.addCounter("fallback.acquisitions",
                   "exclusive fallback-lock acquisitions",
                   h.fallbackAcquisitions);

    const MemStats &m = run.mem;
    reg.addCounter("mem.l1_hits", "L1 hits", m.l1Hits);
    reg.addCounter("mem.l2_hits", "L2 hits", m.l2Hits);
    reg.addCounter("mem.l3_hits", "L3 hits", m.l3Hits);
    reg.addCounter("mem.dram_accesses", "DRAM accesses",
                   m.memAccesses);
    reg.addCounter("mem.invalidations", "coherence invalidations",
                   m.invalidations);
    reg.addCounter("mem.remote_transfers",
                   "remote cache-to-cache transfers",
                   m.remoteTransfers);

    reg.addScalar("energy.static", "static energy (model units)",
                  run.energy.staticEnergy);
    reg.addScalar("energy.dynamic", "dynamic energy (model units)",
                  run.energy.dynamicEnergy);
    reg.addScalar("energy.total", "total energy (model units)",
                  run.energy.total());

    reg.addDistribution("tx.retries_to_commit",
                        "counted retries per non-fallback commit",
                        DistSummary::of(h.commitsByRetries));
    reg.addDistribution("tx.backoff_cycles",
                        "cycles per backoff wait (retry delays, "
                        "lock waits, fallback spins)",
                        DistSummary::of(h.backoffWaits));
    reg.addDistribution("lock.hold_cycles",
                        "cycles each cacheline lock was held",
                        DistSummary::of(run.lockHoldCycles));
    return reg;
}

void
writeStatsReport(std::ostream &os, const RunResult &run,
                 unsigned num_cores)
{
    os << "---------- clearsim stats: " << run.workload << " ["
       << run.config << "] seed=" << run.seed
       << " retries=" << run.maxRetries << " ----------\n";

    const StatsRegistry reg = buildStatsRegistry(run, num_cores);
    for (const StatsRegistry::OrderRef &ref : reg.order()) {
        switch (ref.kind) {
          case StatsRegistry::EntryKind::Counter: {
            const auto &e = reg.counters()[ref.index];
            line(os, e.name, e.value);
            break;
          }
          case StatsRegistry::EntryKind::Scalar: {
            const auto &e = reg.scalars()[ref.index];
            lineF(os, e.name, e.value);
            break;
          }
          case StatsRegistry::EntryKind::Distribution: {
            const auto &e = reg.distributions()[ref.index];
            line(os, e.name + ".count", e.summary.count);
            lineF(os, e.name + ".mean", e.summary.mean);
            line(os, e.name + ".p50", e.summary.p50);
            line(os, e.name + ".p95", e.summary.p95);
            line(os, e.name + ".max", e.summary.max);
            break;
          }
        }
    }
}

std::string
statsReportString(const RunResult &run, unsigned num_cores)
{
    std::ostringstream ss;
    writeStatsReport(ss, run, num_cores);
    return ss.str();
}

} // namespace clearsim
