#include "metrics/json_export.hh"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/json.hh"
#include "metrics/stats_report.hh"

namespace clearsim
{

namespace
{

void
writeRun(JsonWriter &json, const RunResult &run)
{
    const StatsRegistry reg = buildStatsRegistry(run, run.numCores);

    json.beginObject();
    json.key("workload");
    json.value(run.workload);
    json.key("config");
    json.value(run.config);
    json.key("seed");
    json.value(run.seed);
    json.key("max_retries");
    json.value(run.maxRetries);
    json.key("cores");
    json.value(run.numCores);
    writeStatsRegistryJson(json, reg);
    json.endObject();
}

} // namespace

void
writeStatsRegistryJson(JsonWriter &json, const StatsRegistry &reg)
{
    json.key("counters");
    json.beginObject();
    for (const auto &entry : reg.counters()) {
        json.key(entry.name);
        json.value(entry.value);
    }
    json.endObject();

    json.key("scalars");
    json.beginObject();
    for (const auto &entry : reg.scalars()) {
        json.key(entry.name);
        json.value(entry.value);
    }
    json.endObject();

    json.key("distributions");
    json.beginObject();
    for (const auto &entry : reg.distributions()) {
        json.key(entry.name);
        json.beginObject();
        json.key("count");
        json.value(entry.summary.count);
        json.key("sum");
        json.value(entry.summary.sum);
        json.key("mean");
        json.value(entry.summary.mean);
        json.key("p50");
        json.value(entry.summary.p50);
        json.key("p95");
        json.value(entry.summary.p95);
        json.key("max");
        json.value(entry.summary.max);
        json.endObject();
    }
    json.endObject();
}

std::string
statsJsonString(const std::vector<RunResult> &runs)
{
    std::string out;
    JsonWriter json(out);
    json.beginObject();
    json.key("schema");
    json.value(kStatsJsonSchema);
    json.key("runs");
    json.beginArray();
    for (const RunResult &run : runs)
        writeRun(json, run);
    json.endArray();
    json.endObject();
    out.push_back('\n');
    return out;
}

bool
writeStatsJson(const std::string &path,
               const std::vector<RunResult> &runs, std::string &error)
{
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
        if (ec) {
            error = "cannot create " +
                    target.parent_path().string() + ": " +
                    ec.message();
            return false;
        }
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        error = "cannot open " + path + ": " +
                std::strerror(errno);
        return false;
    }
    os << statsJsonString(runs);
    os.flush();
    if (!os) {
        error = "write to " + path + " failed";
        return false;
    }
    return true;
}

} // namespace clearsim
