/**
 * @file
 * Machine-readable trace export and offline aggregation.
 *
 * Two on-disk formats for a System's trace-event stream:
 *
 *  - JSONL: one JSON object per event, fixed key order, lossless
 *    integers — byte-identical for identical simulations, so traces
 *    can be diffed and golden-tested. readTraceJsonl() is the exact
 *    inverse.
 *  - Chrome trace_event JSON: attempts become duration (B/E) slices
 *    per core, everything else instant events; loads directly into
 *    Perfetto / chrome://tracing.
 *
 * attributeAborts() aggregates a trace into the abort-attribution
 * table behind tools' `trace_report`: per (region pc, culprit line),
 * aborts split by Figure 11 category. Its category totals equal the
 * HtmStats abortsByCategory counters of the same run by
 * construction (one Abort event is emitted exactly where
 * recordAbort() is called).
 */

#ifndef CLEARSIM_METRICS_TRACE_EXPORT_HH
#define CLEARSIM_METRICS_TRACE_EXPORT_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "htm/htm_types.hh"

namespace clearsim
{

/** Serialize one event as a single-line JSON object (no newline). */
std::string traceEventToJson(const TraceEvent &event);

/** Parse one JSONL line back into an event. */
bool traceEventFromJson(const std::string &line, TraceEvent &event,
                        std::string &error);

/**
 * Streaming JSONL sink: install `std::ref(writer)` (or a lambda
 * forwarding to write()) as a System's trace sink to stream every
 * event to @p os, one line each.
 */
class TraceJsonlWriter
{
  public:
    explicit TraceJsonlWriter(std::ostream &os) : os_(os) {}

    void write(const TraceEvent &event);

    void operator()(const TraceEvent &event) { write(event); }

    /** Events written so far. */
    std::uint64_t count() const { return count_; }

  private:
    std::ostream &os_;
    std::uint64_t count_ = 0;
};

/**
 * Read a whole JSONL trace. Empty lines are skipped.
 * @retval false with @p error naming the first bad line (1-based).
 */
bool readTraceJsonl(std::istream &is, std::vector<TraceEvent> &out,
                    std::string &error);

/**
 * Write the events as a Chrome trace_event document ("traceEvents"
 * array, microsecond timestamps = cycles). AttemptBegin opens a
 * duration slice on the core's track; Commit/Abort closes it;
 * other kinds become instant events.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events);

/** Abort counts of one (region, culprit line) pair. */
struct AbortAttributionRow
{
    RegionPc pc = 0;
    LineAddr line = 0;
    std::array<std::uint64_t, kNumAbortCategories> byCategory{};
    std::uint64_t total = 0;
};

/** The abort-attribution table of a trace. */
struct AbortAttribution
{
    /** Rows sorted by descending total (ties: pc, then line). */
    std::vector<AbortAttributionRow> rows;
    /** Per-category totals; match HtmStats::abortsByCategory. */
    std::array<std::uint64_t, kNumAbortCategories> totals{};
    std::uint64_t totalAborts = 0;
};

/** Aggregate every Abort event of a trace. */
AbortAttribution
attributeAborts(const std::vector<TraceEvent> &events);

/** Render the attribution as an aligned text table. */
void writeAbortAttributionTable(std::ostream &os,
                                const AbortAttribution &attribution);

} // namespace clearsim

#endif // CLEARSIM_METRICS_TRACE_EXPORT_HH
