#include "metrics/trace_export.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <utility>

#include "common/json.hh"

namespace clearsim
{

namespace
{

/** Hex-format an address as 0x... (the JSONL address encoding). */
std::string
hexAddr(std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** Parse a 0x-prefixed (or plain) hex/decimal address. */
bool
parseAddr(const JsonValue &value, std::uint64_t &out)
{
    if (value.isNumber()) {
        out = value.asUint();
        return true;
    }
    if (value.type != JsonValue::Type::String)
        return false;
    const std::string &s = value.text;
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(s.c_str(), &end, 0);
    return errno == 0 && end != s.c_str() && *end == '\0';
}

/** Append the payload-specific keys of an event. */
void
writePayload(JsonWriter &json, const TraceEvent &event)
{
    if (const auto *lock = std::get_if<LockPayload>(&event.payload)) {
        json.key("line");
        json.value(hexAddr(lock->line));
        if (event.kind == TraceKind::LineLockReleased) {
            json.key("hold");
            json.value(static_cast<std::uint64_t>(lock->holdCycles));
        }
        return;
    }
    if (const auto *set = std::get_if<DirSetPayload>(&event.payload)) {
        json.key("set");
        json.value(set->set);
        return;
    }
    if (const auto *inv =
            std::get_if<InvalidatePayload>(&event.payload)) {
        json.key("line");
        json.value(hexAddr(inv->line));
        json.key("invalidated");
        json.value(inv->invalidated);
        return;
    }
    if (const auto *conflict =
            std::get_if<ConflictPayload>(&event.payload)) {
        json.key("line");
        json.value(hexAddr(conflict->line));
        json.key("victims");
        json.value(conflict->victims);
        json.key("requester_wins");
        json.value(conflict->requesterWins);
        return;
    }
    if (const auto *fb =
            std::get_if<FallbackPayload>(&event.payload)) {
        json.key("readers");
        json.value(fb->readers);
        json.key("writer_held");
        json.value(fb->writerHeld);
        return;
    }
    if (const auto *backoff =
            std::get_if<BackoffPayload>(&event.payload)) {
        json.key("wait");
        json.value(backoffWaitName(backoff->wait));
        json.key("wait_cycles");
        json.value(static_cast<std::uint64_t>(backoff->cycles));
        return;
    }
    if (const auto *abort =
            std::get_if<AbortPayload>(&event.payload)) {
        json.key("line");
        json.value(hexAddr(abort->line));
        return;
    }
    if (const auto *fault =
            std::get_if<FaultPayload>(&event.payload)) {
        json.key("fault");
        json.value(faultKindName(fault->fault));
        json.key("line");
        json.value(hexAddr(fault->line));
        json.key("cycles");
        json.value(static_cast<std::uint64_t>(fault->cycles));
        return;
    }
    if (const auto *premise =
            std::get_if<PremisePayload>(&event.payload)) {
        json.key("premise");
        json.value(premise->premise);
        json.key("observed");
        json.value(premise->observed);
        json.key("bound");
        json.value(premise->bound);
        return;
    }
}

/** Reconstruct the payload from the parsed object, by kind. */
bool
readPayload(const JsonValue &obj, TraceEvent &event,
            std::string &error)
{
    auto addr = [&](const char *name, std::uint64_t &out) {
        const JsonValue *v = obj.find(name);
        return v != nullptr && parseAddr(*v, out);
    };
    auto uint = [&](const char *name, std::uint64_t &out) {
        const JsonValue *v = obj.find(name);
        if (v == nullptr || !v->isNumber())
            return false;
        out = v->asUint();
        return true;
    };
    auto boolean = [&](const char *name, bool &out) {
        const JsonValue *v = obj.find(name);
        if (v == nullptr || v->type != JsonValue::Type::Bool)
            return false;
        out = v->boolean;
        return true;
    };

    switch (event.kind) {
      case TraceKind::AttemptBegin:
      case TraceKind::Commit:
      case TraceKind::FallbackAcquired:
        return true;
      case TraceKind::Abort: {
        AbortPayload p;
        if (!addr("line", p.line))
            return false;
        event.payload = p;
        return true;
      }
      case TraceKind::LineLockAcquired:
      case TraceKind::LineLockNacked:
      case TraceKind::LineLockRetried:
      case TraceKind::LineLockReleased: {
        LockPayload p;
        if (!addr("line", p.line))
            return false;
        if (event.kind == TraceKind::LineLockReleased) {
            std::uint64_t hold = 0;
            if (!uint("hold", hold))
                return false;
            p.holdCycles = hold;
        }
        event.payload = p;
        return true;
      }
      case TraceKind::DirSetLockAcquired:
      case TraceKind::DirSetLockReleased: {
        DirSetPayload p;
        std::uint64_t set = 0;
        if (!uint("set", set))
            return false;
        p.set = static_cast<unsigned>(set);
        event.payload = p;
        return true;
      }
      case TraceKind::DirInvalidate: {
        InvalidatePayload p;
        std::uint64_t n = 0;
        if (!addr("line", p.line) || !uint("invalidated", n))
            return false;
        p.invalidated = static_cast<unsigned>(n);
        event.payload = p;
        return true;
      }
      case TraceKind::ConflictVerdict: {
        ConflictPayload p;
        std::uint64_t victims = 0;
        if (!addr("line", p.line) || !uint("victims", victims) ||
            !boolean("requester_wins", p.requesterWins)) {
            return false;
        }
        p.victims = static_cast<unsigned>(victims);
        event.payload = p;
        return true;
      }
      case TraceKind::FallbackContended:
      case TraceKind::FallbackReadAcquired:
      case TraceKind::FallbackReleased: {
        FallbackPayload p;
        std::uint64_t readers = 0;
        if (!uint("readers", readers) ||
            !boolean("writer_held", p.writerHeld)) {
            return false;
        }
        p.readers = static_cast<unsigned>(readers);
        event.payload = p;
        return true;
      }
      case TraceKind::BackoffWait: {
        BackoffPayload p;
        const JsonValue *wait = obj.find("wait");
        std::uint64_t cycles = 0;
        if (wait == nullptr ||
            wait->type != JsonValue::Type::String ||
            !backoffWaitFromName(wait->text.c_str(), p.wait) ||
            !uint("wait_cycles", cycles)) {
            return false;
        }
        p.cycles = cycles;
        event.payload = p;
        return true;
      }
      case TraceKind::FaultDelay:
      case TraceKind::FaultVerdict: {
        FaultPayload p;
        const JsonValue *fault = obj.find("fault");
        std::uint64_t cycles = 0;
        if (fault == nullptr ||
            fault->type != JsonValue::Type::String ||
            !faultKindFromName(fault->text.c_str(), p.fault) ||
            !addr("line", p.line) || !uint("cycles", cycles)) {
            return false;
        }
        p.cycles = cycles;
        event.payload = p;
        return true;
      }
      case TraceKind::PremiseFalsified: {
        PremisePayload p;
        std::uint64_t premise = 0;
        if (!uint("premise", premise) ||
            !uint("observed", p.observed) ||
            !uint("bound", p.bound)) {
            return false;
        }
        p.premise = static_cast<std::uint32_t>(premise);
        event.payload = p;
        return true;
      }
    }
    error = "unknown trace kind";
    return false;
}

} // namespace

std::string
traceEventToJson(const TraceEvent &event)
{
    std::string out;
    JsonWriter json(out);
    json.beginObject();
    json.key("cycle");
    json.value(static_cast<std::uint64_t>(event.cycle));
    json.key("core");
    json.value(static_cast<unsigned>(event.core));
    json.key("kind");
    json.value(traceKindName(event.kind));
    json.key("mode");
    json.value(execModeName(event.mode));
    json.key("reason");
    json.value(abortReasonName(event.reason));
    json.key("retries");
    json.value(event.countedRetries);
    json.key("pc");
    json.value(hexAddr(event.pc));
    writePayload(json, event);
    json.endObject();
    return out;
}

bool
traceEventFromJson(const std::string &line, TraceEvent &event,
                   std::string &error)
{
    JsonValue obj;
    if (!parseJson(line, obj, error))
        return false;
    if (obj.type != JsonValue::Type::Object) {
        error = "trace line is not a JSON object";
        return false;
    }

    event = TraceEvent{};
    const JsonValue *cycle = obj.find("cycle");
    const JsonValue *core = obj.find("core");
    const JsonValue *kind = obj.find("kind");
    const JsonValue *mode = obj.find("mode");
    const JsonValue *reason = obj.find("reason");
    const JsonValue *retries = obj.find("retries");
    const JsonValue *pc = obj.find("pc");
    if (!cycle || !cycle->isNumber() || !core || !core->isNumber() ||
        !kind || kind->type != JsonValue::Type::String || !mode ||
        mode->type != JsonValue::Type::String || !reason ||
        reason->type != JsonValue::Type::String || !retries ||
        !retries->isNumber() || !pc) {
        error = "trace line is missing required fields";
        return false;
    }
    event.cycle = cycle->asUint();
    event.core = static_cast<CoreId>(core->asUint());
    event.countedRetries =
        static_cast<unsigned>(retries->asUint());
    std::uint64_t pc_value = 0;
    if (!parseAddr(*pc, pc_value)) {
        error = "invalid pc";
        return false;
    }
    event.pc = pc_value;
    if (!traceKindFromName(kind->text.c_str(), event.kind)) {
        error = "unknown trace kind '" + kind->text + "'";
        return false;
    }
    if (!execModeFromName(mode->text.c_str(), event.mode)) {
        error = "unknown exec mode '" + mode->text + "'";
        return false;
    }
    if (!abortReasonFromName(reason->text.c_str(), event.reason)) {
        error = "unknown abort reason '" + reason->text + "'";
        return false;
    }
    if (!readPayload(obj, event, error)) {
        if (error.empty())
            error = "invalid payload for kind '" + kind->text + "'";
        return false;
    }
    return true;
}

void
TraceJsonlWriter::write(const TraceEvent &event)
{
    os_ << traceEventToJson(event) << '\n';
    ++count_;
}

bool
readTraceJsonl(std::istream &is, std::vector<TraceEvent> &out,
               std::string &error)
{
    out.clear();
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        TraceEvent event;
        std::string line_error;
        if (!traceEventFromJson(line, event, line_error)) {
            error = "line " + std::to_string(line_no) + ": " +
                    line_error;
            return false;
        }
        out.push_back(std::move(event));
    }
    return true;
}

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events)
{
    std::string out;
    JsonWriter json(out);
    json.beginObject();
    json.key("displayTimeUnit");
    json.value("ns");
    json.key("traceEvents");
    json.beginArray();

    auto common = [&](const TraceEvent &event, const char *phase,
                      const char *name) {
        json.beginObject();
        json.key("name");
        json.value(name);
        json.key("ph");
        json.value(phase);
        json.key("ts");
        json.value(static_cast<std::uint64_t>(event.cycle));
        json.key("pid");
        json.value(0);
        json.key("tid");
        json.value(static_cast<unsigned>(event.core));
    };
    auto args = [&](const TraceEvent &event) {
        json.key("args");
        json.beginObject();
        json.key("pc");
        json.value(hexAddr(event.pc));
        json.key("mode");
        json.value(execModeName(event.mode));
        json.key("reason");
        json.value(abortReasonName(event.reason));
        json.key("retries");
        json.value(event.countedRetries);
        json.endObject();
        json.endObject();
    };

    for (const TraceEvent &event : events) {
        switch (event.kind) {
          case TraceKind::AttemptBegin:
            common(event, "B", "attempt");
            args(event);
            break;
          case TraceKind::Commit:
          case TraceKind::Abort:
            common(event, "E", "attempt");
            args(event);
            break;
          default:
            common(event, "i", traceKindName(event.kind));
            json.key("s");
            json.value("t");
            args(event);
            break;
        }
    }

    json.endArray();
    json.endObject();
    os << out << '\n';
}

AbortAttribution
attributeAborts(const std::vector<TraceEvent> &events)
{
    AbortAttribution attribution;
    std::map<std::pair<RegionPc, LineAddr>, AbortAttributionRow>
        rows;
    for (const TraceEvent &event : events) {
        if (event.kind != TraceKind::Abort)
            continue;
        const unsigned category =
            static_cast<unsigned>(categorize(event.reason));
        LineAddr line = 0;
        if (const auto *p = std::get_if<AbortPayload>(&event.payload))
            line = p->line;
        AbortAttributionRow &row = rows[{event.pc, line}];
        row.pc = event.pc;
        row.line = line;
        ++row.byCategory[category];
        ++row.total;
        ++attribution.totals[category];
        ++attribution.totalAborts;
    }
    attribution.rows.reserve(rows.size());
    for (auto &[key, row] : rows)
        attribution.rows.push_back(row);
    std::sort(attribution.rows.begin(), attribution.rows.end(),
              [](const AbortAttributionRow &a,
                 const AbortAttributionRow &b) {
                  if (a.total != b.total)
                      return a.total > b.total;
                  if (a.pc != b.pc)
                      return a.pc < b.pc;
                  return a.line < b.line;
              });
    return attribution;
}

void
writeAbortAttributionTable(std::ostream &os,
                           const AbortAttribution &attribution)
{
    os << std::left << std::setw(12) << "pc" << std::setw(14)
       << "line" << std::right << std::setw(10) << "conflict"
       << std::setw(10) << "expl-fb" << std::setw(10) << "other-fb"
       << std::setw(10) << "others" << std::setw(10) << "total"
       << "\n";
    for (const AbortAttributionRow &row : attribution.rows) {
        os << std::left << std::setw(12) << hexAddr(row.pc)
           << std::setw(14) << hexAddr(row.line) << std::right;
        for (unsigned c = 0; c < kNumAbortCategories; ++c)
            os << std::setw(10) << row.byCategory[c];
        os << std::setw(10) << row.total << "\n";
    }
    os << std::left << std::setw(26) << "total" << std::right;
    for (unsigned c = 0; c < kNumAbortCategories; ++c)
        os << std::setw(10) << attribution.totals[c];
    os << std::setw(10) << attribution.totalAborts << "\n";
}

} // namespace clearsim
