/**
 * @file
 * Machine-readable stats export: the `--stats-json` document.
 *
 * Schema "clearsim-stats-v1" (all keys always present, fixed order):
 *
 * @code{.json}
 * {
 *   "schema": "clearsim-stats-v1",
 *   "runs": [
 *     {
 *       "workload": "<name>",
 *       "config": "<name>",
 *       "seed": <uint>,
 *       "max_retries": <uint>,
 *       "cores": <uint>,
 *       "counters": { "<name>": <uint>, ... },
 *       "scalars": { "<name>": <double>, ... },
 *       "distributions": {
 *         "<name>": { "count": <uint>, "sum": <uint>,
 *                     "mean": <double>, "p50": <uint>,
 *                     "p95": <uint>, "max": <uint> }, ...
 *       }
 *     }, ...
 *   ]
 * }
 * @endcode
 *
 * The entries come from buildStatsRegistry(), so the JSON and the
 * text stats report always list the same statistics in the same
 * order; serialization is deterministic byte-for-byte for identical
 * runs (lossless integers, "%.17g" doubles, fixed key order).
 */

#ifndef CLEARSIM_METRICS_JSON_EXPORT_HH
#define CLEARSIM_METRICS_JSON_EXPORT_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "metrics/run_result.hh"

namespace clearsim
{

/** Schema identifier written into every stats document. */
inline constexpr const char *kStatsJsonSchema = "clearsim-stats-v1";

/**
 * Write a StatsRegistry as the clearsim-stats-v1 body shape — the
 * "counters"/"scalars"/"distributions" objects, keys in
 * registration order — into an open JSON object. Shared by the
 * per-run stats export and the daemon's fabric-status payload, so
 * every registry this codebase serializes has the same shape.
 */
void writeStatsRegistryJson(JsonWriter &json,
                            const StatsRegistry &reg);

/** Serialize the runs as one clearsim-stats-v1 document. */
std::string statsJsonString(const std::vector<RunResult> &runs);

/**
 * Write statsJsonString(runs) to @p path, creating parent
 * directories as needed.
 * @retval false with @p error describing the failure.
 */
bool writeStatsJson(const std::string &path,
                    const std::vector<RunResult> &runs,
                    std::string &error);

} // namespace clearsim

#endif // CLEARSIM_METRICS_JSON_EXPORT_HH
