/**
 * @file
 * Per-execution accounting of out-of-order core resources.
 *
 * CLEAR's discovery hierarchy (Section 4.1, assessment 1) asks
 * whether an AR fits the core's speculative window. With in-core
 * speculation (SLE) the ROB and LQ/SQ bound the whole AR; with HTM,
 * instructions can retire and only the store queue limits a
 * failed-mode discovery (Section 4.2). This class counts the
 * micro-ops of one AR execution against the configured limits.
 */

#ifndef CLEARSIM_CPU_CORE_RESOURCES_HH
#define CLEARSIM_CPU_CORE_RESOURCES_HH

#include <cstdint>

#include "common/config.hh"

namespace clearsim
{

/** Micro-op counters for one AR execution attempt. */
class CoreResources
{
  public:
    explicit CoreResources(const CoreConfig &cfg,
                           SpeculationScope scope =
                               SpeculationScope::OutOfCore)
        : cfg_(cfg), scope_(scope)
    {
    }

    /** Begin a new AR execution attempt. */
    void
    reset()
    {
        uops_ = 0;
        loads_ = 0;
        stores_ = 0;
    }

    /** Account one load micro-op. */
    void
    countLoad()
    {
        ++uops_;
        ++loads_;
    }

    /** Account one store micro-op. */
    void
    countStore()
    {
        ++uops_;
        ++stores_;
    }

    /** Account n ALU/branch micro-ops. */
    void countAlu(unsigned n = 1) { uops_ += n; }

    /**
     * True if the speculative window is exhausted.
     *
     * For HTM-scope speculation, only a failed-mode discovery is
     * bounded (stores cannot drain from the SQ); normal speculative
     * execution tracks its write set in the cache instead and is
     * bounded there (capacity aborts).
     *
     * @param failed_mode true while discovery runs past a conflict
     */
    bool
    overflowed(bool failed_mode) const
    {
        if (scope_ == SpeculationScope::InCore) {
            return uops_ > cfg_.robEntries || loads_ > cfg_.lqEntries ||
                   stores_ > cfg_.sqEntries;
        }
        return failed_mode && stores_ > cfg_.sqEntries;
    }

    /** True if the SQ specifically overflowed (drives SQ-Full ctr). */
    bool sqOverflowed() const { return stores_ > cfg_.sqEntries; }

    std::uint64_t uops() const { return uops_; }
    std::uint64_t loads() const { return loads_; }
    std::uint64_t stores() const { return stores_; }

    SpeculationScope scope() const { return scope_; }
    void setScope(SpeculationScope scope) { scope_ = scope; }

  private:
    CoreConfig cfg_;
    SpeculationScope scope_;
    std::uint64_t uops_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
};

} // namespace clearsim

#endif // CLEARSIM_CPU_CORE_RESOURCES_HH
