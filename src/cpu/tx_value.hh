/**
 * @file
 * Taint-tracked 64-bit values: the indirection-bit mechanism.
 *
 * The paper extends every physical register with an indirection bit
 * that is set when the register is the destination of a load (or of
 * any instruction whose sources carry the bit), and is checked when
 * a memory operation or branch retires (Section 5, structure 1).
 *
 * In clearsim, workload AR bodies compute on TxValue instead of raw
 * integers. A TxValue returned by an in-AR load is tainted; all
 * arithmetic propagates the taint exactly as the hardware bit
 * propagates along register dependencies. Using a tainted value as
 * an address marks the AR as containing an indirection; branching on
 * a tainted value marks a value-dependent control flow. Both clear
 * the AR's Is Immutable property.
 */

#ifndef CLEARSIM_CPU_TX_VALUE_HH
#define CLEARSIM_CPU_TX_VALUE_HH

#include <cstdint>

namespace clearsim
{

/** A 64-bit value carrying an indirection (taint) bit. */
class TxValue
{
  public:
    constexpr TxValue() = default;

    /** An untainted constant (no load dependence). */
    constexpr TxValue(std::uint64_t value) // NOLINT: implicit by design
        : value_(value)
    {
    }

    /** Construct with an explicit taint, used by TxContext::load. */
    constexpr TxValue(std::uint64_t value, bool tainted)
        : value_(value), tainted_(tainted)
    {
    }

    /** The numeric value. */
    constexpr std::uint64_t raw() const { return value_; }

    /** True if this value depends on a load inside the AR. */
    constexpr bool tainted() const { return tainted_; }

    /** Signed view of the value. */
    constexpr std::int64_t rawSigned() const
    {
        return static_cast<std::int64_t>(value_);
    }

    // Arithmetic/logic: value semantics with taint union.
    friend constexpr TxValue
    operator+(TxValue a, TxValue b)
    {
        return {a.value_ + b.value_, a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator-(TxValue a, TxValue b)
    {
        return {a.value_ - b.value_, a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator*(TxValue a, TxValue b)
    {
        return {a.value_ * b.value_, a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator/(TxValue a, TxValue b)
    {
        return {b.value_ ? a.value_ / b.value_ : 0,
                a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator%(TxValue a, TxValue b)
    {
        return {b.value_ ? a.value_ % b.value_ : 0,
                a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator&(TxValue a, TxValue b)
    {
        return {a.value_ & b.value_, a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator|(TxValue a, TxValue b)
    {
        return {a.value_ | b.value_, a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator^(TxValue a, TxValue b)
    {
        return {a.value_ ^ b.value_, a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator<<(TxValue a, unsigned shift)
    {
        return {a.value_ << shift, a.tainted_};
    }

    friend constexpr TxValue
    operator>>(TxValue a, unsigned shift)
    {
        return {a.value_ >> shift, a.tainted_};
    }

    // Comparisons yield 0/1 TxValues so that the taint of the
    // condition survives until TxContext::branchOn inspects it.
    friend constexpr TxValue
    operator==(TxValue a, TxValue b)
    {
        return {a.value_ == b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator!=(TxValue a, TxValue b)
    {
        return {a.value_ != b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator<(TxValue a, TxValue b)
    {
        return {a.value_ < b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator<=(TxValue a, TxValue b)
    {
        return {a.value_ <= b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator>(TxValue a, TxValue b)
    {
        return {a.value_ > b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_};
    }

    friend constexpr TxValue
    operator>=(TxValue a, TxValue b)
    {
        return {a.value_ >= b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_};
    }

  private:
    std::uint64_t value_ = 0;
    bool tainted_ = false;
};

} // namespace clearsim

#endif // CLEARSIM_CPU_TX_VALUE_HH
