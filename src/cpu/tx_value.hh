/**
 * @file
 * Taint-tracked 64-bit values: the indirection-bit mechanism.
 *
 * The paper extends every physical register with an indirection bit
 * that is set when the register is the destination of a load (or of
 * any instruction whose sources carry the bit), and is checked when
 * a memory operation or branch retires (Section 5, structure 1).
 *
 * In clearsim, workload AR bodies compute on TxValue instead of raw
 * integers. A TxValue returned by an in-AR load is tainted; all
 * arithmetic propagates the taint exactly as the hardware bit
 * propagates along register dependencies. Using a tainted value as
 * an address marks the AR as containing an indirection; branching on
 * a tainted value marks a value-dependent control flow. Both clear
 * the AR's Is Immutable property.
 *
 * Alongside the single hardware bit, TxValue carries the pointer-
 * chase depth: the longest chain of dependent in-AR loads feeding
 * the value (0 for region-invariant values, 1 for a directly loaded
 * value, n for a value reached through n dependent loads). The
 * depth does not influence execution; it is the address-provenance
 * edge the static analyzer (src/analysis) consumes to bound how
 * many discovery passes a region's footprint needs.
 */

#ifndef CLEARSIM_CPU_TX_VALUE_HH
#define CLEARSIM_CPU_TX_VALUE_HH

#include <cstdint>

namespace clearsim
{

/** A 64-bit value carrying an indirection (taint) bit. */
class TxValue
{
  public:
    constexpr TxValue() = default;

    /** An untainted constant (no load dependence). */
    constexpr TxValue(std::uint64_t value) // NOLINT: implicit by design
        : value_(value)
    {
    }

    /** Construct with an explicit taint, used by TxContext::load. */
    constexpr TxValue(std::uint64_t value, bool tainted)
        : value_(value), tainted_(tainted)
    {
    }

    /** Construct with explicit taint and pointer-chase depth. */
    constexpr TxValue(std::uint64_t value, bool tainted,
                      std::uint16_t depth)
        : value_(value), depth_(depth), tainted_(tainted)
    {
    }

    /** The numeric value. */
    constexpr std::uint64_t raw() const { return value_; }

    /** True if this value depends on a load inside the AR. */
    constexpr bool tainted() const { return tainted_; }

    /** Longest chain of dependent in-AR loads feeding this value. */
    constexpr std::uint16_t chaseDepth() const { return depth_; }

    /** Signed view of the value. */
    constexpr std::int64_t rawSigned() const
    {
        return static_cast<std::int64_t>(value_);
    }

    // Arithmetic/logic: value semantics with taint union and
    // chase-depth max (the provenance of a combined value is its
    // deepest source chain).
    friend constexpr TxValue
    operator+(TxValue a, TxValue b)
    {
        return {a.value_ + b.value_, a.tainted_ || b.tainted_,
                maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator-(TxValue a, TxValue b)
    {
        return {a.value_ - b.value_, a.tainted_ || b.tainted_,
                maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator*(TxValue a, TxValue b)
    {
        return {a.value_ * b.value_, a.tainted_ || b.tainted_,
                maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator/(TxValue a, TxValue b)
    {
        return {b.value_ ? a.value_ / b.value_ : 0,
                a.tainted_ || b.tainted_, maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator%(TxValue a, TxValue b)
    {
        return {b.value_ ? a.value_ % b.value_ : 0,
                a.tainted_ || b.tainted_, maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator&(TxValue a, TxValue b)
    {
        return {a.value_ & b.value_, a.tainted_ || b.tainted_,
                maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator|(TxValue a, TxValue b)
    {
        return {a.value_ | b.value_, a.tainted_ || b.tainted_,
                maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator^(TxValue a, TxValue b)
    {
        return {a.value_ ^ b.value_, a.tainted_ || b.tainted_,
                maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator<<(TxValue a, unsigned shift)
    {
        return {a.value_ << shift, a.tainted_, a.depth_};
    }

    friend constexpr TxValue
    operator>>(TxValue a, unsigned shift)
    {
        return {a.value_ >> shift, a.tainted_, a.depth_};
    }

    // Comparisons yield 0/1 TxValues so that the taint of the
    // condition survives until TxContext::branchOn inspects it.
    friend constexpr TxValue
    operator==(TxValue a, TxValue b)
    {
        return {a.value_ == b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_, maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator!=(TxValue a, TxValue b)
    {
        return {a.value_ != b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_, maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator<(TxValue a, TxValue b)
    {
        return {a.value_ < b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_, maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator<=(TxValue a, TxValue b)
    {
        return {a.value_ <= b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_, maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator>(TxValue a, TxValue b)
    {
        return {a.value_ > b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_, maxDepth(a, b)};
    }

    friend constexpr TxValue
    operator>=(TxValue a, TxValue b)
    {
        return {a.value_ >= b.value_ ? 1ull : 0ull,
                a.tainted_ || b.tainted_, maxDepth(a, b)};
    }

  private:
    static constexpr std::uint16_t
    maxDepth(const TxValue &a, const TxValue &b)
    {
        return a.depth_ > b.depth_ ? a.depth_ : b.depth_;
    }

    std::uint64_t value_ = 0;
    std::uint16_t depth_ = 0;
    bool tainted_ = false;
};

} // namespace clearsim

#endif // CLEARSIM_CPU_TX_VALUE_HH
