#include "mem/memory_system.hh"

#include "common/log.hh"

namespace clearsim
{

MemorySystem::MemorySystem(const SystemConfig &cfg)
    : cfg_(cfg),
      directory_(cfg.cache.dirSets, cfg.numCores),
      l3_(cfg.cache.l3Sets, cfg.cache.l3Ways)
{
    locks_.configureDirSets(cfg.cache.dirSets);
    l1_.reserve(cfg.numCores);
    l2_.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        l1_.emplace_back(cfg.cache.l1Sets, cfg.cache.l1Ways);
        l2_.emplace_back(cfg.cache.l2Sets, cfg.cache.l2Ways);
    }
}

MemAccessResult
MemorySystem::access(CoreId core, LineAddr line, bool is_write, bool pin)
{
    MemAccessResult result;
    const CacheConfig &cc = cfg_.cache;
    CacheModel &l1 = l1_[core];
    CacheModel &l2 = l2_[core];

    // touchIfPresent folds the residency probe and the LRU update
    // into one tag scan. On the upgrade/miss path the insert() below
    // touches again; the extra useCounter_ tick cannot reorder ways
    // (each touch sets a fresh maximum), so eviction is unchanged.
    const bool l1Hit = l1.touchIfPresent(line);

    if (l1Hit &&
        (!is_write || directory_.isExclusive(core, line))) {
        // Pure L1 hit with sufficient permission.
        result.latency = cc.l1Latency;
        result.serviceLevel = 1;
        ++stats_.l1Hits;
    } else {
        // The L2 fill doubles as the residency probe (insert()
        // reports a prior hit), saving a second tag scan. L3 is
        // probed with contains() because an L3 hit must not update
        // L3 LRU state.
        const CacheInsertResult l2r = l2.insert(line);
        if (l1Hit) {
            // Upgrade miss: data present, permission missing.
            result.latency = cc.l1Latency + cc.remoteLatency;
            result.serviceLevel = 1;
            ++stats_.l1Hits;
        } else if (l2r.hit) {
            result.latency = cc.l2Latency;
            result.serviceLevel = 2;
            ++stats_.l2Hits;
        } else if (l3_.contains(line)) {
            result.latency = cc.l3Latency;
            result.serviceLevel = 3;
            ++stats_.l3Hits;
        } else {
            result.latency = cc.memLatency;
            result.serviceLevel = 4;
            ++stats_.memAccesses;
            l3_.insert(line);
        }

        // Fill the L1; a resident line was already touched above.
        if (!l1Hit && !l1.insert(line).inserted) {
            // Every way of the L1 set is pinned by the transaction.
            result.capacityOverflow = true;
            return result;
        }
    }

    if (pin)
        l1.pin(line);

    // Directory bookkeeping and remote effects.
    DirectoryResult dir = is_write ? directory_.onWrite(core, line)
                                   : directory_.onRead(core, line);
    if (dir.remoteTransfer) {
        result.remoteTransfer = true;
        result.latency += cc.remoteLatency;
        ++stats_.remoteTransfers;
    }
    for (CoreId victim : dir.invalidate) {
        l1_[victim].invalidate(line);
        l2_[victim].invalidate(line);
        ++stats_.invalidations;
    }
    result.invalidated = std::move(dir.invalidate);
    if (!result.invalidated.empty())
        result.latency += cc.remoteLatency;

    return result;
}

bool
MemorySystem::wouldOverflow(CoreId core, LineAddr line) const
{
    const CacheModel &l1 = l1_[core];
    if (l1.contains(line))
        return false;
    return l1.freeWaysFor(line) == 0;
}

bool
MemorySystem::hasExclusive(CoreId core, LineAddr line) const
{
    return l1_[core].contains(line) &&
           directory_.isExclusive(core, line);
}

unsigned
MemorySystem::l1FreeWaysFor(CoreId core, LineAddr line) const
{
    return l1_[core].freeWaysFor(line);
}

void
MemorySystem::unpinAll(CoreId core)
{
    l1_[core].unpinAll();
}

void
MemorySystem::dropLine(CoreId core, LineAddr line)
{
    l1_[core].invalidate(line);
    l2_[core].invalidate(line);
    directory_.dropSharer(core, line);
}

unsigned
MemorySystem::dirSetOf(LineAddr line) const
{
    return directory_.setOf(line);
}

void
MemorySystem::resetTimingState()
{
    for (auto &cache : l1_)
        cache.reset();
    for (auto &cache : l2_)
        cache.reset();
    l3_.reset();
    directory_.reset();
    locks_.reset();
    stats_ = MemStats{};
}

} // namespace clearsim
