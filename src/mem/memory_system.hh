/**
 * @file
 * Facade over the full memory hierarchy of the simulated machine:
 * per-core L1/L2 tag arrays, a shared L3, the full-map directory,
 * the cacheline lock manager and the functional backing store.
 *
 * Latencies follow Table 2 of the paper: L1 1 cycle, L2 10, L3 45,
 * memory 80, plus a crossbar round-trip charge for cache-to-cache
 * transfers and invalidations.
 */

#ifndef CLEARSIM_MEM_MEMORY_SYSTEM_HH
#define CLEARSIM_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "mem/backing_store.hh"
#include "mem/cache_model.hh"
#include "mem/directory.hh"
#include "mem/lock_manager.hh"

namespace clearsim
{

/** Timing and coherence outcome of one cacheline access. */
struct MemAccessResult
{
    /** Cycles until the data is available to the core. */
    Cycle latency = 0;

    /**
     * The access could not be cached because every way of the
     * target L1 set is pinned by the running transaction. The HTM
     * layer converts this into a capacity abort.
     */
    bool capacityOverflow = false;

    /** Cores whose copies were invalidated (writes only). */
    std::vector<CoreId> invalidated;

    /** Data was forwarded from a remote cache. */
    bool remoteTransfer = false;

    /** Which level serviced the access (1, 2, 3, or 4=memory). */
    unsigned serviceLevel = 1;
};

/** Access counters per hierarchy level, consumed by the energy model. */
struct MemStats
{
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l3Hits = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t remoteTransfers = 0;
};

/** The complete simulated memory hierarchy. */
class MemorySystem
{
  public:
    explicit MemorySystem(const SystemConfig &cfg);

    /**
     * Perform one cacheline access: classify hit level, update tag
     * arrays and directory, and compute latency.
     *
     * Lock checking is not done here; callers consult locks() first
     * (the lock manager is a separate agreement layer above
     * coherence, as in the paper).
     *
     * @param core requesting core
     * @param line target cacheline
     * @param is_write true for stores / exclusive requests
     * @param pin pin the line in L1 (transactional tracking)
     */
    MemAccessResult access(CoreId core, LineAddr line, bool is_write,
                           bool pin);

    /**
     * Probe-only: would this access overflow the pinned L1 set?
     * Used by discovery to assess lockability without side effects.
     */
    bool wouldOverflow(CoreId core, LineAddr line) const;

    /** True if core's L1 holds line with exclusive ownership. */
    bool hasExclusive(CoreId core, LineAddr line) const;

    /** Remaining unpinned ways in core's L1 set for this line. */
    unsigned l1FreeWaysFor(CoreId core, LineAddr line) const;

    /** Release all transactional pins of a core (tx ended). */
    void unpinAll(CoreId core);

    /**
     * Discard a core's copy of a line (abort rollback of a
     * speculatively written line).
     */
    void dropLine(CoreId core, LineAddr line);

    /** Directory set index: the lexicographic locking order key. */
    unsigned dirSetOf(LineAddr line) const;

    LockManager &locks() { return locks_; }
    const LockManager &locks() const { return locks_; }

    Directory &directory() { return directory_; }

    BackingStore &store() { return store_; }

    const MemStats &stats() const { return stats_; }

    const SystemConfig &config() const { return cfg_; }

    /** Reset caches/directory/locks (not the backing store). */
    void resetTimingState();

  private:
    SystemConfig cfg_;
    BackingStore store_;
    Directory directory_;
    LockManager locks_;
    std::vector<CacheModel> l1_;
    std::vector<CacheModel> l2_;
    CacheModel l3_;
    MemStats stats_;
};

} // namespace clearsim

#endif // CLEARSIM_MEM_MEMORY_SYSTEM_HH
