/**
 * @file
 * Shared directory tracking MESI-style ownership of each cacheline.
 *
 * The paper's system uses a three-level MESI protocol with a
 * directory of 800% coverage; we therefore model a directory that
 * never evicts (a full map), tracking for every line either one
 * exclusive owner or a set of sharers. The directory also defines
 * the lexicographical order used for deadlock-free cacheline
 * locking: the directory set index of a line.
 */

#ifndef CLEARSIM_MEM_DIRECTORY_HH
#define CLEARSIM_MEM_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "common/trace.hh"
#include "common/types.hh"

namespace clearsim
{

/** Coherence actions the directory reports for an access. */
struct DirectoryResult
{
    /** Cores whose copy must be invalidated (write) or downgraded. */
    std::vector<CoreId> invalidate;
    /** True if data is forwarded from a remote exclusive owner. */
    bool remoteTransfer = false;
};

/** Full-map MESI-style directory. */
class Directory
{
  public:
    /**
     * @param dir_sets number of directory sets; defines the
     *        lexicographic locking order (power of two)
     * @param num_cores cores tracked in the sharer mask (max 64)
     */
    Directory(unsigned dir_sets, unsigned num_cores);

    /**
     * Record a read by core. If another core holds the line
     * exclusively the result reports a remote transfer and the line
     * is downgraded to shared.
     */
    DirectoryResult onRead(CoreId core, LineAddr line);

    /**
     * Record a write by core. All other sharers/owner are reported
     * for invalidation and the line becomes exclusively owned.
     */
    DirectoryResult onWrite(CoreId core, LineAddr line);

    /** Remove a core's copy (silent eviction / rollback). */
    void dropSharer(CoreId core, LineAddr line);

    /** True if core is the exclusive owner of line. */
    bool isExclusive(CoreId core, LineAddr line) const;

    /** True if core holds line (shared or exclusive). */
    bool isSharer(CoreId core, LineAddr line) const;

    /** Cores currently holding the line (shared or exclusive). */
    std::vector<CoreId> holders(LineAddr line) const;

    /** Directory set index of a line (the locking order key). */
    unsigned setOf(LineAddr line) const;

    /** Number of directory sets. */
    unsigned sets() const { return dirSets_; }

    /** Report invalidation events through t (null = disabled). */
    void attachTracer(const Tracer *t) { tracer_ = t; }

    /** Drop all state. */
    void reset();

  private:
    struct Entry
    {
        CoreId owner = kNoCore;      // valid when exclusively owned
        std::uint64_t sharers = 0;   // bit per core when shared
    };

    unsigned dirSets_;
    unsigned numCores_;
    FlatMap<LineAddr, Entry> entries_;
    const Tracer *tracer_ = nullptr;
};

} // namespace clearsim

#endif // CLEARSIM_MEM_DIRECTORY_HH
