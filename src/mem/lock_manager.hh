/**
 * @file
 * Cacheline lock manager.
 *
 * Implements the hardware cacheline-locking substrate CLEAR builds
 * on (Intel SDM Vol 3, ch. 9.1.4 semantics generalized to multiple
 * lines): a line locked by a core cannot be read or written by any
 * other core until unlocked. Remote requests to a locked line are
 * either NACKed (aborting nack-able requesters, breaking the
 * two-core deadlock cycle of Figure 5) or asked to retry later
 * (releasing the directory entry, breaking the three-core transient
 * deadlock of Figure 6).
 *
 * Deadlock-free acquisition order is the caller's responsibility:
 * CLEAR locks in lexicographical (directory-set, line) order.
 */

#ifndef CLEARSIM_MEM_LOCK_MANAGER_HH
#define CLEARSIM_MEM_LOCK_MANAGER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_map.hh"
#include "common/small_fn.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"

namespace clearsim
{

/** How the lock manager answered a remote access to a locked line. */
enum class LockedLineResponse
{
    /** Line is not locked; proceed. */
    Free,
    /** Requester should abort (nack-able request hit a lock). */
    Nack,
    /**
     * Requester must re-issue later; the directory entry is released
     * meanwhile (the Figure 6 fix).
     */
    Retry,
};

/** Tracks which core holds each cacheline lock and who waits on it. */
class LockManager
{
  public:
    /**
     * Wake callbacks ride inline in the waiter list (the usual
     * capture is a queue pointer, a backoff and a coroutine
     * handle); std::function would heap-allocate each one.
     */
    using WakeCallback = InlineCallback<48>;

    /**
     * Configure the directory geometry used to map lines to
     * directory sets (for set-level locking of lexicographical
     * conflict groups). Must be a power of two.
     */
    void configureDirSets(unsigned dir_sets);

    /** Directory set of a line. */
    unsigned
    dirSetOf(LineAddr line) const
    {
        return static_cast<unsigned>(line & (dirSets_ - 1));
    }

    /** True if the line is currently locked by any core. */
    bool isLocked(LineAddr line) const;

    /** True if the line is locked by this core. */
    bool isLockedBy(LineAddr line, CoreId core) const;

    /** Holder of the line's lock, or kNoCore. */
    CoreId holder(LineAddr line) const;

    /**
     * Try to acquire the line lock for core.
     * @param now current cycle, recorded as the acquisition time so
     *        release can report the hold duration (0 = untimed)
     * @retval true on success (also when core already holds it).
     */
    bool tryLock(LineAddr line, CoreId core, Cycle now = 0);

    /** Release one line lock; wakes all waiters. */
    void unlock(LineAddr line, CoreId core, Cycle now = 0);

    /** Release every lock held by core (bulk unlock at AR end). */
    void unlockAll(CoreId core, Cycle now = 0);

    /** Number of lines core currently holds locked. */
    unsigned heldCount(CoreId core) const;

    /**
     * Classify a remote access to a possibly locked line.
     * @param line target line
     * @param requester core issuing the request
     * @param nackable true for requests allowed to be nacked
     *        (failed-mode discovery loads, S-CL non-locking loads)
     */
    LockedLineResponse classifyAccess(LineAddr line, CoreId requester,
                                      bool nackable) const;

    /**
     * Try to lock a whole directory set (group locking of a
     * lexicographical conflict group, Section 5). While a core
     * holds a set lock, no other core can acquire line locks in
     * that set.
     */
    bool tryLockDirSet(unsigned set, CoreId core);

    /** Release a directory set lock; wakes set waiters. */
    void unlockDirSet(unsigned set, CoreId core);

    /** True if another core holds the set lock covering line. */
    bool dirSetLockedByOther(LineAddr line, CoreId core) const;

    /** Callback when the set lock is released (immediate if free). */
    void onDirSetUnlock(unsigned set, WakeCallback cb);

    /**
     * Register a callback invoked (once) when the line is unlocked.
     * The callback runs synchronously from unlock(); callers
     * normally re-schedule themselves on the event queue from it.
     * If the line is not locked the callback fires immediately.
     */
    void onUnlock(LineAddr line, WakeCallback cb);

    /** Total lock acquisitions (stats). */
    std::uint64_t totalLocks() const { return totalLocks_; }

    /** Total nacks issued (stats). */
    std::uint64_t totalNacks() const { return totalNacks_; }

    /** Total retry responses issued (stats). */
    std::uint64_t totalRetries() const { return totalRetries_; }

    /**
     * Count a nack (called by the HTM layer when a nackable request
     * hits a locked line); traced as LineLockNacked.
     */
    void
    countNack(LineAddr line = 0, CoreId requester = kNoCore)
    {
        ++totalNacks_;
        if (tracer_) {
            tracer_->emitAt(TraceKind::LineLockNacked, requester,
                            LockPayload{line, 0});
        }
    }

    /**
     * Count a retry response (the requester re-issues later);
     * traced as LineLockRetried.
     */
    void
    countRetry(LineAddr line = 0, CoreId requester = kNoCore)
    {
        ++totalRetries_;
        if (tracer_) {
            tracer_->emitAt(TraceKind::LineLockRetried, requester,
                            LockPayload{line, 0});
        }
    }

    /** Distribution of lock-hold durations, in cycles. */
    const Distribution &holdCycles() const { return holdCycles_; }

    /** Report lifecycle events through t (null = disabled). */
    void attachTracer(const Tracer *t) { tracer_ = t; }

    /**
     * Route lock-grant wakeups through d (null restores synchronous
     * delivery). The fault layer installs a deliverer that defers a
     * random subset of grants, modelling lost-then-redelivered
     * grant messages without dropping any wakeup.
     */
    void setWakeDeliverer(std::function<void(WakeCallback)> d)
    {
        deliverer_ = std::move(d);
    }

    /**
     * Cross-structure consistency audit for the invariant checker:
     * every locked line must be tracked by its holder's held-set
     * and vice versa, no waiter may be parked on an unlocked line,
     * and no directory-set lock may survive without an owner.
     * @retval false on inconsistency; *why describes the first one
     */
    bool auditState(std::string *why) const;

    /** Drop all locks and waiters. */
    void reset();

  private:
    struct LockState
    {
        CoreId holder = kNoCore;
        Cycle acquiredAt = 0;
        std::vector<WakeCallback> waiters;
    };

    /** Record and trace one release of a held line. */
    void noteRelease(LineAddr line, CoreId core, Cycle acquired_at,
                     Cycle now);

    /** Fire one waiter, through the deliverer when one is set. */
    void
    deliverWake(WakeCallback cb)
    {
        if (deliverer_)
            deliverer_(std::move(cb));
        else
            cb();
    }

    unsigned dirSets_ = 4096;
    FlatMap<LineAddr, LockState> locks_;
    FlatMap<unsigned, LockState> setLocks_;
    FlatMap<CoreId, std::vector<LineAddr>> held_;
    std::uint64_t totalLocks_ = 0;
    std::uint64_t totalNacks_ = 0;
    std::uint64_t totalRetries_ = 0;
    Distribution holdCycles_;
    const Tracer *tracer_ = nullptr;
    std::function<void(WakeCallback)> deliverer_;
};

} // namespace clearsim

#endif // CLEARSIM_MEM_LOCK_MANAGER_HH
