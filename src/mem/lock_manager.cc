#include "mem/lock_manager.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"

namespace clearsim
{

bool
LockManager::isLocked(LineAddr line) const
{
    const LockState *state = locks_.find(line);
    return state != nullptr && state->holder != kNoCore;
}

bool
LockManager::isLockedBy(LineAddr line, CoreId core) const
{
    const LockState *state = locks_.find(line);
    return state != nullptr && state->holder == core;
}

CoreId
LockManager::holder(LineAddr line) const
{
    const LockState *state = locks_.find(line);
    return state == nullptr ? kNoCore : state->holder;
}

void
LockManager::configureDirSets(unsigned dir_sets)
{
    CLEARSIM_ASSERT(dir_sets != 0 && (dir_sets & (dir_sets - 1)) == 0,
                    "directory sets must be a power of two");
    dirSets_ = dir_sets;
}

bool
LockManager::tryLock(LineAddr line, CoreId core, Cycle now)
{
    if (dirSetLockedByOther(line, core))
        return false;
    LockState &state = locks_[line];
    if (state.holder == core)
        return true;
    if (state.holder != kNoCore)
        return false;
    state.holder = core;
    state.acquiredAt = now;
    held_[core].push_back(line);
    ++totalLocks_;
    if (tracer_) {
        tracer_->emitAt(TraceKind::LineLockAcquired, core,
                        LockPayload{line, 0});
    }
    return true;
}

void
LockManager::noteRelease(LineAddr line, CoreId core, Cycle acquired_at,
                         Cycle now)
{
    const Cycle held = now >= acquired_at ? now - acquired_at : 0;
    holdCycles_.record(held);
    if (tracer_) {
        tracer_->emitAt(TraceKind::LineLockReleased, core,
                        LockPayload{line, held});
    }
}

void
LockManager::unlock(LineAddr line, CoreId core, Cycle now)
{
    LockState *state = locks_.find(line);
    CLEARSIM_ASSERT(state != nullptr && state->holder == core,
                    "unlock of a line not held by this core");
    noteRelease(line, core, state->acquiredAt, now);
    state->holder = kNoCore;
    std::vector<WakeCallback> waiters = std::move(state->waiters);
    state->waiters.clear();
    if (waiters.empty())
        locks_.erase(line);

    auto &lines = held_[core];
    lines.erase(std::remove(lines.begin(), lines.end(), line),
                lines.end());

    for (auto &cb : waiters)
        deliverWake(std::move(cb));
}

void
LockManager::unlockAll(CoreId core, Cycle now)
{
    std::vector<LineAddr> *heldLines = held_.find(core);
    if (heldLines == nullptr)
        return;
    std::vector<LineAddr> lines = std::move(*heldLines);
    heldLines->clear();
    for (LineAddr line : lines) {
        // Re-find per line: a woken waiter may mutate the table.
        LockState *state = locks_.find(line);
        CLEARSIM_ASSERT(state != nullptr && state->holder == core,
                        "unlockAll found inconsistent lock state");
        noteRelease(line, core, state->acquiredAt, now);
        state->holder = kNoCore;
        std::vector<WakeCallback> waiters =
            std::move(state->waiters);
        state->waiters.clear();
        if (waiters.empty())
            locks_.erase(line);
        for (auto &cb : waiters)
            deliverWake(std::move(cb));
    }
}

unsigned
LockManager::heldCount(CoreId core) const
{
    const std::vector<LineAddr> *lines = held_.find(core);
    return lines == nullptr
        ? 0 : static_cast<unsigned>(lines->size());
}

LockedLineResponse
LockManager::classifyAccess(LineAddr line, CoreId requester,
                            bool nackable) const
{
    const LockState *state = locks_.find(line);
    if (state == nullptr || state->holder == kNoCore ||
        state->holder == requester) {
        return LockedLineResponse::Free;
    }
    return nackable ? LockedLineResponse::Nack
                    : LockedLineResponse::Retry;
}

bool
LockManager::tryLockDirSet(unsigned set, CoreId core)
{
    LockState &state = setLocks_[set];
    if (state.holder == core)
        return true;
    if (state.holder != kNoCore)
        return false;
    state.holder = core;
    if (tracer_) {
        tracer_->emitAt(TraceKind::DirSetLockAcquired, core,
                        DirSetPayload{set});
    }
    return true;
}

void
LockManager::unlockDirSet(unsigned set, CoreId core)
{
    LockState *state = setLocks_.find(set);
    CLEARSIM_ASSERT(state != nullptr && state->holder == core,
                    "unlockDirSet of a set not held by this core");
    state->holder = kNoCore;
    std::vector<WakeCallback> waiters = std::move(state->waiters);
    setLocks_.erase(set);
    if (tracer_) {
        tracer_->emitAt(TraceKind::DirSetLockReleased, core,
                        DirSetPayload{set});
    }
    for (auto &cb : waiters)
        deliverWake(std::move(cb));
}

bool
LockManager::dirSetLockedByOther(LineAddr line, CoreId core) const
{
    const LockState *state = setLocks_.find(dirSetOf(line));
    return state != nullptr && state->holder != kNoCore &&
           state->holder != core;
}

void
LockManager::onDirSetUnlock(unsigned set, WakeCallback cb)
{
    LockState *state = setLocks_.find(set);
    if (state == nullptr || state->holder == kNoCore) {
        cb();
        return;
    }
    state->waiters.push_back(std::move(cb));
}

void
LockManager::onUnlock(LineAddr line, WakeCallback cb)
{
    LockState *state = locks_.find(line);
    if (state == nullptr || state->holder == kNoCore) {
        cb();
        return;
    }
    state->waiters.push_back(std::move(cb));
}

bool
LockManager::auditState(std::string *why) const
{
    for (const auto &[line, state] : locks_) {
        if (state.holder == kNoCore) {
            if (!state.waiters.empty()) {
                if (why != nullptr) {
                    *why = std::to_string(state.waiters.size()) +
                           " waiter(s) parked on unlocked line " +
                           std::to_string(line);
                }
                return false;
            }
            continue;
        }
        const std::vector<LineAddr> *heldLines =
            held_.find(state.holder);
        const bool tracked =
            heldLines != nullptr &&
            std::find(heldLines->begin(), heldLines->end(),
                      line) != heldLines->end();
        if (!tracked) {
            if (why != nullptr) {
                *why = "line " + std::to_string(line) +
                       " locked by core " +
                       std::to_string(state.holder) +
                       " but missing from its held-set";
            }
            return false;
        }
    }
    for (const auto &[core, lines] : held_) {
        for (LineAddr line : lines) {
            const LockState *state = locks_.find(line);
            if (state == nullptr || state->holder != core) {
                if (why != nullptr) {
                    *why = "held-set of core " +
                           std::to_string(core) + " lists line " +
                           std::to_string(line) +
                           " it does not hold";
                }
                return false;
            }
        }
    }
    for (const auto &[set, state] : setLocks_) {
        if (state.holder == kNoCore) {
            if (why != nullptr) {
                *why = "directory-set lock " + std::to_string(set) +
                       " has no owner";
            }
            return false;
        }
    }
    return true;
}

void
LockManager::reset()
{
    locks_.clear();
    setLocks_.clear();
    held_.clear();
    holdCycles_.clear();
}

} // namespace clearsim
