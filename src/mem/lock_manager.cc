#include "mem/lock_manager.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"

namespace clearsim
{

bool
LockManager::isLocked(LineAddr line) const
{
    auto it = locks_.find(line);
    return it != locks_.end() && it->second.holder != kNoCore;
}

bool
LockManager::isLockedBy(LineAddr line, CoreId core) const
{
    auto it = locks_.find(line);
    return it != locks_.end() && it->second.holder == core;
}

CoreId
LockManager::holder(LineAddr line) const
{
    auto it = locks_.find(line);
    return it == locks_.end() ? kNoCore : it->second.holder;
}

void
LockManager::configureDirSets(unsigned dir_sets)
{
    CLEARSIM_ASSERT(dir_sets != 0 && (dir_sets & (dir_sets - 1)) == 0,
                    "directory sets must be a power of two");
    dirSets_ = dir_sets;
}

bool
LockManager::tryLock(LineAddr line, CoreId core, Cycle now)
{
    if (dirSetLockedByOther(line, core))
        return false;
    LockState &state = locks_[line];
    if (state.holder == core)
        return true;
    if (state.holder != kNoCore)
        return false;
    state.holder = core;
    state.acquiredAt = now;
    held_[core].push_back(line);
    ++totalLocks_;
    if (tracer_) {
        tracer_->emitAt(TraceKind::LineLockAcquired, core,
                        LockPayload{line, 0});
    }
    return true;
}

void
LockManager::noteRelease(LineAddr line, CoreId core, Cycle acquired_at,
                         Cycle now)
{
    const Cycle held = now >= acquired_at ? now - acquired_at : 0;
    holdCycles_.record(held);
    if (tracer_) {
        tracer_->emitAt(TraceKind::LineLockReleased, core,
                        LockPayload{line, held});
    }
}

void
LockManager::unlock(LineAddr line, CoreId core, Cycle now)
{
    auto it = locks_.find(line);
    CLEARSIM_ASSERT(it != locks_.end() && it->second.holder == core,
                    "unlock of a line not held by this core");
    noteRelease(line, core, it->second.acquiredAt, now);
    it->second.holder = kNoCore;
    std::vector<WakeCallback> waiters = std::move(it->second.waiters);
    it->second.waiters.clear();
    if (waiters.empty())
        locks_.erase(it);

    auto &lines = held_[core];
    lines.erase(std::remove(lines.begin(), lines.end(), line),
                lines.end());

    for (auto &cb : waiters)
        deliverWake(std::move(cb));
}

void
LockManager::unlockAll(CoreId core, Cycle now)
{
    auto it = held_.find(core);
    if (it == held_.end())
        return;
    std::vector<LineAddr> lines = std::move(it->second);
    it->second.clear();
    for (LineAddr line : lines) {
        auto lockIt = locks_.find(line);
        CLEARSIM_ASSERT(lockIt != locks_.end() &&
                        lockIt->second.holder == core,
                        "unlockAll found inconsistent lock state");
        noteRelease(line, core, lockIt->second.acquiredAt, now);
        lockIt->second.holder = kNoCore;
        std::vector<WakeCallback> waiters =
            std::move(lockIt->second.waiters);
        lockIt->second.waiters.clear();
        if (waiters.empty())
            locks_.erase(lockIt);
        for (auto &cb : waiters)
            deliverWake(std::move(cb));
    }
}

unsigned
LockManager::heldCount(CoreId core) const
{
    auto it = held_.find(core);
    return it == held_.end()
        ? 0 : static_cast<unsigned>(it->second.size());
}

LockedLineResponse
LockManager::classifyAccess(LineAddr line, CoreId requester,
                            bool nackable) const
{
    auto it = locks_.find(line);
    if (it == locks_.end() || it->second.holder == kNoCore ||
        it->second.holder == requester) {
        return LockedLineResponse::Free;
    }
    return nackable ? LockedLineResponse::Nack
                    : LockedLineResponse::Retry;
}

bool
LockManager::tryLockDirSet(unsigned set, CoreId core)
{
    LockState &state = setLocks_[set];
    if (state.holder == core)
        return true;
    if (state.holder != kNoCore)
        return false;
    state.holder = core;
    if (tracer_) {
        tracer_->emitAt(TraceKind::DirSetLockAcquired, core,
                        DirSetPayload{set});
    }
    return true;
}

void
LockManager::unlockDirSet(unsigned set, CoreId core)
{
    auto it = setLocks_.find(set);
    CLEARSIM_ASSERT(it != setLocks_.end() && it->second.holder == core,
                    "unlockDirSet of a set not held by this core");
    it->second.holder = kNoCore;
    std::vector<WakeCallback> waiters = std::move(it->second.waiters);
    setLocks_.erase(it);
    if (tracer_) {
        tracer_->emitAt(TraceKind::DirSetLockReleased, core,
                        DirSetPayload{set});
    }
    for (auto &cb : waiters)
        deliverWake(std::move(cb));
}

bool
LockManager::dirSetLockedByOther(LineAddr line, CoreId core) const
{
    auto it = setLocks_.find(dirSetOf(line));
    return it != setLocks_.end() && it->second.holder != kNoCore &&
           it->second.holder != core;
}

void
LockManager::onDirSetUnlock(unsigned set, WakeCallback cb)
{
    auto it = setLocks_.find(set);
    if (it == setLocks_.end() || it->second.holder == kNoCore) {
        cb();
        return;
    }
    it->second.waiters.push_back(std::move(cb));
}

void
LockManager::onUnlock(LineAddr line, WakeCallback cb)
{
    auto it = locks_.find(line);
    if (it == locks_.end() || it->second.holder == kNoCore) {
        cb();
        return;
    }
    it->second.waiters.push_back(std::move(cb));
}

bool
LockManager::auditState(std::string *why) const
{
    for (const auto &[line, state] : locks_) {
        if (state.holder == kNoCore) {
            if (!state.waiters.empty()) {
                if (why != nullptr) {
                    *why = std::to_string(state.waiters.size()) +
                           " waiter(s) parked on unlocked line " +
                           std::to_string(line);
                }
                return false;
            }
            continue;
        }
        auto heldIt = held_.find(state.holder);
        const bool tracked =
            heldIt != held_.end() &&
            std::find(heldIt->second.begin(), heldIt->second.end(),
                      line) != heldIt->second.end();
        if (!tracked) {
            if (why != nullptr) {
                *why = "line " + std::to_string(line) +
                       " locked by core " +
                       std::to_string(state.holder) +
                       " but missing from its held-set";
            }
            return false;
        }
    }
    for (const auto &[core, lines] : held_) {
        for (LineAddr line : lines) {
            auto it = locks_.find(line);
            if (it == locks_.end() || it->second.holder != core) {
                if (why != nullptr) {
                    *why = "held-set of core " +
                           std::to_string(core) + " lists line " +
                           std::to_string(line) +
                           " it does not hold";
                }
                return false;
            }
        }
    }
    for (const auto &[set, state] : setLocks_) {
        if (state.holder == kNoCore) {
            if (why != nullptr) {
                *why = "directory-set lock " + std::to_string(set) +
                       " has no owner";
            }
            return false;
        }
    }
    return true;
}

void
LockManager::reset()
{
    locks_.clear();
    setLocks_.clear();
    held_.clear();
    holdCycles_.clear();
}

} // namespace clearsim
