#include "mem/directory.hh"

#include "common/log.hh"

namespace clearsim
{

Directory::Directory(unsigned dir_sets, unsigned num_cores)
    : dirSets_(dir_sets), numCores_(num_cores)
{
    CLEARSIM_ASSERT(dir_sets != 0 && (dir_sets & (dir_sets - 1)) == 0,
                    "directory sets must be a power of two");
    CLEARSIM_ASSERT(num_cores <= 64, "sharer mask holds up to 64 cores");
}

unsigned
Directory::setOf(LineAddr line) const
{
    return static_cast<unsigned>(line & (dirSets_ - 1));
}

DirectoryResult
Directory::onRead(CoreId core, LineAddr line)
{
    DirectoryResult result;
    Entry &e = entries_[line];
    if (e.owner != kNoCore && e.owner != core) {
        // Downgrade the remote exclusive owner to shared.
        result.remoteTransfer = true;
        e.sharers |= (1ull << e.owner);
        e.owner = kNoCore;
    } else if (e.owner == core) {
        // Already exclusive here; nothing changes.
        return result;
    }
    e.sharers |= (1ull << core);
    return result;
}

DirectoryResult
Directory::onWrite(CoreId core, LineAddr line)
{
    DirectoryResult result;
    Entry &e = entries_[line];
    if (e.owner == core)
        return result; // already exclusive

    if (e.owner != kNoCore) {
        result.invalidate.push_back(e.owner);
        result.remoteTransfer = true;
    }
    for (unsigned c = 0; c < numCores_; ++c) {
        if (c == core)
            continue;
        if (e.sharers & (1ull << c))
            result.invalidate.push_back(static_cast<CoreId>(c));
    }
    e.owner = core;
    e.sharers = 0;
    if (tracer_ && !result.invalidate.empty()) {
        tracer_->emitAt(
            TraceKind::DirInvalidate, core,
            InvalidatePayload{
                line,
                static_cast<unsigned>(result.invalidate.size())});
    }
    return result;
}

void
Directory::dropSharer(CoreId core, LineAddr line)
{
    Entry *e = entries_.find(line);
    if (e == nullptr)
        return;
    if (e->owner == core)
        e->owner = kNoCore;
    e->sharers &= ~(1ull << core);
    if (e->owner == kNoCore && e->sharers == 0)
        entries_.erase(line);
}

bool
Directory::isExclusive(CoreId core, LineAddr line) const
{
    const Entry *e = entries_.find(line);
    return e != nullptr && e->owner == core;
}

bool
Directory::isSharer(CoreId core, LineAddr line) const
{
    const Entry *e = entries_.find(line);
    if (e == nullptr)
        return false;
    return e->owner == core || (e->sharers & (1ull << core));
}

std::vector<CoreId>
Directory::holders(LineAddr line) const
{
    std::vector<CoreId> result;
    const Entry *e = entries_.find(line);
    if (e == nullptr)
        return result;
    if (e->owner != kNoCore)
        result.push_back(e->owner);
    for (unsigned c = 0; c < numCores_; ++c) {
        if (e->sharers & (1ull << c))
            result.push_back(static_cast<CoreId>(c));
    }
    return result;
}

void
Directory::reset()
{
    entries_.clear();
}

} // namespace clearsim
