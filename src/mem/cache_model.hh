/**
 * @file
 * Set-associative cache content model with LRU replacement and
 * pinning support.
 *
 * One instance models one cache level of one core (or the shared
 * L3). Only tags are tracked; data lives in the BackingStore. Lines
 * belonging to an in-flight transaction's read/write set can be
 * pinned: a pinned line is never chosen as an eviction victim, and
 * if an insertion finds every way of a set pinned, the insertion
 * fails, which the HTM layer turns into a capacity abort.
 */

#ifndef CLEARSIM_MEM_CACHE_MODEL_HH
#define CLEARSIM_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/types.hh"

namespace clearsim
{

/** Result of inserting a line into a cache level. */
struct CacheInsertResult
{
    /** True if the line is now resident. */
    bool inserted = false;
    /** True if the line was already resident before the insert. */
    bool hit = false;
    /** True if a valid, different line was evicted to make room. */
    bool evicted = false;
    /** The evicted line (valid only if evicted). */
    LineAddr victim = 0;
};

/** Tag array of one set-associative cache. */
class CacheModel
{
  public:
    /**
     * @param sets number of sets (power of two)
     * @param ways associativity
     */
    CacheModel(unsigned sets, unsigned ways);

    /** True if line is resident. Does not update LRU. */
    bool contains(LineAddr line) const { return find(line) != nullptr; }

    /** Touch a resident line, moving it to MRU. No-op if absent. */
    void
    touch(LineAddr line)
    {
        if (Way *w = find(line))
            w->lastUse = ++useCounter_;
    }

    /**
     * Touch the line if resident and report whether it was. One tag
     * scan where contains()+touch() would take two.
     */
    bool
    touchIfPresent(LineAddr line)
    {
        Way *w = find(line);
        if (w == nullptr)
            return false;
        w->lastUse = ++useCounter_;
        return true;
    }

    /**
     * Insert a line (touching it if already resident). Pinned lines
     * are never victimized; if all ways of the target set are
     * pinned, insertion fails.
     */
    CacheInsertResult insert(LineAddr line);

    /** Remove a line if resident (e.g., remote invalidation). */
    void invalidate(LineAddr line);

    /** Pin a resident line, protecting it from eviction. */
    void pin(LineAddr line);

    /** Unpin a line. */
    void unpin(LineAddr line);

    /** Drop every pin (transaction ended). */
    void unpinAll();

    /** True if the line is resident and pinned. */
    bool isPinned(LineAddr line) const;

    /**
     * Number of additional lines mapping to this line's set that
     * could still be held simultaneously (free or unpinned ways).
     * CLEAR's discovery uses this to decide whether a footprint can
     * be locked in the cache all at once.
     */
    unsigned freeWaysFor(LineAddr line) const;

    /** Set index for a line. */
    unsigned setOf(LineAddr line) const
    {
        return static_cast<unsigned>(line & (sets_ - 1));
    }

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Drop all contents and pins. */
    void reset();

  private:
    /**
     * Fully trivial (no default member initializers): ways live
     * only in calloc()/memset()-zeroed storage, and all-zero bytes
     * are the reset state (invalid, unpinned, never used).
     */
    struct Way
    {
        LineAddr line;
        bool valid;
        bool pinned;
        std::uint64_t lastUse;
    };
    static_assert(std::is_trivial_v<Way> &&
                      std::is_trivially_copyable_v<Way>,
                  "tag array relies on zero-filled trivial storage");

    struct FreeDeleter
    {
        void operator()(Way *p) const { std::free(p); }
    };

    Way *
    find(LineAddr line)
    {
        Way *base = &ways_storage_[setOf(line) * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            if (base[w].valid && base[w].line == line)
                return &base[w];
        }
        return nullptr;
    }

    const Way *
    find(LineAddr line) const
    {
        return const_cast<CacheModel *>(this)->find(line);
    }

    unsigned sets_;
    unsigned ways_;
    /**
     * calloc-backed so a freshly constructed tag array maps lazy
     * zero pages instead of eagerly memsetting megabytes: sweeps
     * build one hierarchy per point but touch only a tiny fraction
     * of the sets. The all-zero byte pattern IS the reset state
     * (invalid, unpinned, never used).
     */
    std::unique_ptr<Way[], FreeDeleter> ways_storage_;
    /**
     * Indices of ways pinned since the last unpinAll(), so the bulk
     * release at transaction end is O(pins) instead of a sweep over
     * the whole tag array. Entries may go stale (unpin/invalidate
     * clear only the flag); unpinAll tolerates that.
     */
    std::vector<std::uint32_t> pinnedWays_;
    std::uint64_t useCounter_ = 0;
};

} // namespace clearsim

#endif // CLEARSIM_MEM_CACHE_MODEL_HH
