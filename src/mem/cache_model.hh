/**
 * @file
 * Set-associative cache content model with LRU replacement and
 * pinning support.
 *
 * One instance models one cache level of one core (or the shared
 * L3). Only tags are tracked; data lives in the BackingStore. Lines
 * belonging to an in-flight transaction's read/write set can be
 * pinned: a pinned line is never chosen as an eviction victim, and
 * if an insertion finds every way of a set pinned, the insertion
 * fails, which the HTM layer turns into a capacity abort.
 */

#ifndef CLEARSIM_MEM_CACHE_MODEL_HH
#define CLEARSIM_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace clearsim
{

/** Result of inserting a line into a cache level. */
struct CacheInsertResult
{
    /** True if the line is now resident. */
    bool inserted = false;
    /** True if a valid, different line was evicted to make room. */
    bool evicted = false;
    /** The evicted line (valid only if evicted). */
    LineAddr victim = 0;
};

/** Tag array of one set-associative cache. */
class CacheModel
{
  public:
    /**
     * @param sets number of sets (power of two)
     * @param ways associativity
     */
    CacheModel(unsigned sets, unsigned ways);

    /** True if line is resident. Does not update LRU. */
    bool contains(LineAddr line) const;

    /** Touch a resident line, moving it to MRU. No-op if absent. */
    void touch(LineAddr line);

    /**
     * Insert a line (touching it if already resident). Pinned lines
     * are never victimized; if all ways of the target set are
     * pinned, insertion fails.
     */
    CacheInsertResult insert(LineAddr line);

    /** Remove a line if resident (e.g., remote invalidation). */
    void invalidate(LineAddr line);

    /** Pin a resident line, protecting it from eviction. */
    void pin(LineAddr line);

    /** Unpin a line. */
    void unpin(LineAddr line);

    /** Drop every pin (transaction ended). */
    void unpinAll();

    /** True if the line is resident and pinned. */
    bool isPinned(LineAddr line) const;

    /**
     * Number of additional lines mapping to this line's set that
     * could still be held simultaneously (free or unpinned ways).
     * CLEAR's discovery uses this to decide whether a footprint can
     * be locked in the cache all at once.
     */
    unsigned freeWaysFor(LineAddr line) const;

    /** Set index for a line. */
    unsigned setOf(LineAddr line) const;

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Drop all contents and pins. */
    void reset();

  private:
    struct Way
    {
        LineAddr line = 0;
        bool valid = false;
        bool pinned = false;
        std::uint64_t lastUse = 0;
    };

    Way *find(LineAddr line);
    const Way *find(LineAddr line) const;

    unsigned sets_;
    unsigned ways_;
    std::vector<Way> ways_storage_;
    std::uint64_t useCounter_ = 0;
};

} // namespace clearsim

#endif // CLEARSIM_MEM_CACHE_MODEL_HH
