#include "mem/cache_model.hh"

#include <cstring>

#include "common/log.hh"

namespace clearsim
{

CacheModel::CacheModel(unsigned sets, unsigned ways)
    : sets_(sets), ways_(ways),
      ways_storage_(static_cast<Way *>(
          std::calloc(std::size_t(sets) * ways, sizeof(Way))))
{
    CLEARSIM_ASSERT(sets != 0 && (sets & (sets - 1)) == 0,
                    "cache sets must be a power of two");
    CLEARSIM_ASSERT(ways != 0, "cache must have at least one way");
    CLEARSIM_ASSERT(ways_storage_ != nullptr,
                    "tag array allocation failed");
}

CacheInsertResult
CacheModel::insert(LineAddr line)
{
    CacheInsertResult result;
    if (Way *w = find(line)) {
        w->lastUse = ++useCounter_;
        result.inserted = true;
        result.hit = true;
        return result;
    }

    Way *base = &ways_storage_[setOf(line) * ways_];
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].pinned)
            continue;
        if (!victim || base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (!victim)
        return result; // every way pinned: capacity overflow

    if (victim->valid) {
        result.evicted = true;
        result.victim = victim->line;
    }
    victim->line = line;
    victim->valid = true;
    victim->pinned = false;
    victim->lastUse = ++useCounter_;
    result.inserted = true;
    return result;
}

void
CacheModel::invalidate(LineAddr line)
{
    if (Way *w = find(line)) {
        w->valid = false;
        w->pinned = false;
    }
}

void
CacheModel::pin(LineAddr line)
{
    if (Way *w = find(line)) {
        if (!w->pinned) {
            w->pinned = true;
            pinnedWays_.push_back(static_cast<std::uint32_t>(
                w - ways_storage_.get()));
        }
    }
}

void
CacheModel::unpin(LineAddr line)
{
    if (Way *w = find(line))
        w->pinned = false;
}

void
CacheModel::unpinAll()
{
    // pinnedWays_ may hold stale indices (lines unpinned or
    // invalidated since), but clearing an already clear flag is
    // harmless and "drop every pin" is exactly the postcondition.
    for (std::uint32_t idx : pinnedWays_)
        ways_storage_[idx].pinned = false;
    pinnedWays_.clear();
}

bool
CacheModel::isPinned(LineAddr line) const
{
    const Way *w = find(line);
    return w && w->pinned;
}

unsigned
CacheModel::freeWaysFor(LineAddr line) const
{
    const Way *base = &ways_storage_[setOf(line) * ways_];
    unsigned free = 0;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid || !base[w].pinned)
            ++free;
    }
    return free;
}

void
CacheModel::reset()
{
    std::memset(ways_storage_.get(), 0,
                std::size_t(sets_) * ways_ * sizeof(Way));
    pinnedWays_.clear();
    useCounter_ = 0;
}

} // namespace clearsim
