#include "mem/cache_model.hh"

#include "common/log.hh"

namespace clearsim
{

CacheModel::CacheModel(unsigned sets, unsigned ways)
    : sets_(sets), ways_(ways), ways_storage_(sets * ways)
{
    CLEARSIM_ASSERT(sets != 0 && (sets & (sets - 1)) == 0,
                    "cache sets must be a power of two");
    CLEARSIM_ASSERT(ways != 0, "cache must have at least one way");
}

unsigned
CacheModel::setOf(LineAddr line) const
{
    return static_cast<unsigned>(line & (sets_ - 1));
}

CacheModel::Way *
CacheModel::find(LineAddr line)
{
    Way *base = &ways_storage_[setOf(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].line == line)
            return &base[w];
    }
    return nullptr;
}

const CacheModel::Way *
CacheModel::find(LineAddr line) const
{
    return const_cast<CacheModel *>(this)->find(line);
}

bool
CacheModel::contains(LineAddr line) const
{
    return find(line) != nullptr;
}

void
CacheModel::touch(LineAddr line)
{
    if (Way *w = find(line))
        w->lastUse = ++useCounter_;
}

CacheInsertResult
CacheModel::insert(LineAddr line)
{
    CacheInsertResult result;
    if (Way *w = find(line)) {
        w->lastUse = ++useCounter_;
        result.inserted = true;
        return result;
    }

    Way *base = &ways_storage_[setOf(line) * ways_];
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].pinned)
            continue;
        if (!victim || base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (!victim)
        return result; // every way pinned: capacity overflow

    if (victim->valid) {
        result.evicted = true;
        result.victim = victim->line;
    }
    victim->line = line;
    victim->valid = true;
    victim->pinned = false;
    victim->lastUse = ++useCounter_;
    result.inserted = true;
    return result;
}

void
CacheModel::invalidate(LineAddr line)
{
    if (Way *w = find(line)) {
        w->valid = false;
        w->pinned = false;
    }
}

void
CacheModel::pin(LineAddr line)
{
    if (Way *w = find(line))
        w->pinned = true;
}

void
CacheModel::unpin(LineAddr line)
{
    if (Way *w = find(line))
        w->pinned = false;
}

void
CacheModel::unpinAll()
{
    for (Way &w : ways_storage_)
        w.pinned = false;
}

bool
CacheModel::isPinned(LineAddr line) const
{
    const Way *w = find(line);
    return w && w->pinned;
}

unsigned
CacheModel::freeWaysFor(LineAddr line) const
{
    const Way *base = &ways_storage_[setOf(line) * ways_];
    unsigned free = 0;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid || !base[w].pinned)
            ++free;
    }
    return free;
}

void
CacheModel::reset()
{
    for (Way &w : ways_storage_)
        w = Way{};
    useCounter_ = 0;
}

} // namespace clearsim
