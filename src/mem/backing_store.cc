#include "mem/backing_store.hh"

#include "common/log.hh"

namespace clearsim
{

Addr
BackingStore::allocate(std::uint64_t bytes, std::uint64_t align)
{
    CLEARSIM_ASSERT(align != 0 && (align & (align - 1)) == 0,
                    "alignment must be a power of two");
    brk_ = (brk_ + align - 1) & ~(align - 1);
    const Addr base = brk_;
    brk_ += bytes == 0 ? align : bytes;
    return base;
}

Addr
BackingStore::allocateLines(std::uint64_t lines)
{
    return allocate(lines * kLineBytes, kLineBytes);
}

std::uint64_t
BackingStore::read(Addr addr) const
{
    const Addr word = addr & ~Addr(7);
    const std::uint64_t *value = words_.find(word);
    return value == nullptr ? 0 : *value;
}

void
BackingStore::write(Addr addr, std::uint64_t value)
{
    words_[addr & ~Addr(7)] = value;
}

} // namespace clearsim
