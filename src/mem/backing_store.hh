/**
 * @file
 * The simulated DRAM: a word-granular sparse backing store plus a
 * bump allocator for carving out simulated data structures.
 *
 * Workloads build their shared data structures (arrays, lists,
 * trees, hash tables) inside this address space, so footprint
 * mutability across retries is a measured property of real data,
 * not an annotation.
 */

#ifndef CLEARSIM_MEM_BACKING_STORE_HH
#define CLEARSIM_MEM_BACKING_STORE_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace clearsim
{

/** Functional (timing-free) simulated memory contents. */
class BackingStore
{
  public:
    /**
     * Allocate bytes of simulated memory.
     * @param bytes size of the allocation
     * @param align alignment; defaults to one word
     * @return base simulated address
     */
    Addr allocate(std::uint64_t bytes, std::uint64_t align = 8);

    /**
     * Allocate aligned to a cacheline boundary. Used by workloads to
     * control how their objects pack into cachelines, which in turn
     * controls footprint size and false sharing.
     */
    Addr allocateLines(std::uint64_t lines);

    /** Read one 64-bit word (unallocated memory reads as zero). */
    std::uint64_t read(Addr addr) const;

    /** Write one 64-bit word. */
    void write(Addr addr, std::uint64_t value);

    /** Highest allocated address (exclusive). */
    Addr brk() const { return brk_; }

  private:
    FlatMap<Addr, std::uint64_t> words_;
    // Simulated allocations start above zero so that address 0 can
    // serve as a null pointer inside simulated data structures.
    Addr brk_ = 0x10000;
};

} // namespace clearsim

#endif // CLEARSIM_MEM_BACKING_STORE_HH
