/**
 * @file
 * Fault-injection configuration.
 *
 * A FaultConfig is the declarative half of a fault plan: a set of
 * per-seam probabilities (expressed in permille so the ConfigRegistry
 * integer grammar can carry them) and magnitudes, plus the dedicated
 * fault seed. The FaultInjector (fault/fault_injector.hh) is the
 * executable half; it draws every decision from an Rng seeded by
 * `seed` alone, so a run is replayable from (config spec, fault.seed)
 * with no wall-clock or address-dependent state.
 *
 * This header is header-only and depends only on common/types.hh so
 * that common/config.hh can embed a FaultConfig in SystemConfig
 * without a link-time dependency on the fault library (the same
 * layering trick common/trace.hh uses with htm/htm_types.hh).
 */

#ifndef CLEARSIM_FAULT_FAULT_CONFIG_HH
#define CLEARSIM_FAULT_FAULT_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace clearsim
{

/**
 * Declarative fault plan. All probabilities are permille (0..1000);
 * a value of 0 disables that fault class. The default-constructed
 * plan injects nothing, and System only instantiates a FaultInjector
 * when anyActive() is true, so the zero plan is bit-identical to a
 * build without the fault layer.
 */
struct FaultConfig
{
    /**
     * Seed of the dedicated fault Rng stream. Kept separate from the
     * workload seed so the same workload randomness can be replayed
     * under different fault schedules and vice versa.
     */
    std::uint64_t seed = 0;

    // --- event queue seam (sim/event_queue) ---

    /** Permille of scheduled events delayed by a random jitter. */
    unsigned eventJitterPermille = 0;

    /** Maximum jitter, in cycles, added to a perturbed event. */
    Cycle eventJitterMax = 0;

    // --- memory seam (mem/lock_manager + mem/directory) ---

    /** Permille of free-line lock checks turned into spurious NACKs
     *  (only where the requester is abortable). */
    unsigned nackPermille = 0;

    /** Permille of free-line lock checks turned into spurious Retry
     *  responses (a delayed directory retry). */
    unsigned retryPermille = 0;

    /** Maximum extra delay, in cycles, added to a lock-retry wait. */
    Cycle retryDelayExtraMax = 0;

    /** Permille of lock-release wakeups deferred ("lost" grants that
     *  are re-delivered after grantDeferMax cycles at most). */
    unsigned grantDeferPermille = 0;

    /** Maximum deferral, in cycles, of a deferred lock grant. */
    Cycle grantDeferMax = 0;

    /** Permille of directory reads that spuriously evict the
     *  requester's sharer bit again (forces a re-fetch next time). */
    unsigned evictPermille = 0;

    // --- HTM seam (htm/tx_context + htm/conflict_manager) ---

    /** Permille of transactional accesses that force an abort of the
     *  running attempt (only in abortable modes). */
    unsigned forcedAbortPermille = 0;

    /** Permille of conflict verdicts adversarially flipped so the
     *  requester loses where it would have won. */
    unsigned conflictFlipPermille = 0;

    /** Extra cycles the fallback path holds the fallback lock. */
    Cycle fallbackHoldExtra = 0;

    // --- watchdog (fault/invariant_checker) ---

    /** Install the InvariantChecker + watchdog for this run. */
    bool watchdog = false;

    /**
     * Progress horizon, in cycles: the watchdog reports a livelock
     * if no region commits for this long while work is pending.
     */
    Cycle horizon = 2'000'000;

    /** True when any fault class can fire. */
    bool
    anyActive() const
    {
        return eventJitterPermille != 0 || nackPermille != 0 ||
               retryPermille != 0 || grantDeferPermille != 0 ||
               evictPermille != 0 || forcedAbortPermille != 0 ||
               conflictFlipPermille != 0 || fallbackHoldExtra != 0;
    }
};

} // namespace clearsim

#endif // CLEARSIM_FAULT_FAULT_CONFIG_HH
