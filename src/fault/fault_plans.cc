#include "fault/fault_plans.hh"

namespace clearsim
{

const std::vector<FaultPlanInfo> &
faultPlans()
{
    static const std::vector<FaultPlanInfo> plans = {
        {"faults-nack-storm",
         "spurious NACK/Retry storm on the lock manager"},
        {"faults-delay-jitter",
         "event jitter plus deferred lock grants"},
        {"faults-forced-abort",
         "forced aborts, flipped verdicts, fallback convoys"},
    };
    return plans;
}

bool
applyFaultPlan(const std::string &name, FaultConfig &cfg)
{
    if (name == "faults-nack-storm") {
        cfg.nackPermille = 80;
        cfg.retryPermille = 120;
        cfg.retryDelayExtraMax = 200;
        cfg.watchdog = true;
        return true;
    }
    if (name == "faults-delay-jitter") {
        cfg.eventJitterPermille = 300;
        cfg.eventJitterMax = 64;
        cfg.grantDeferPermille = 200;
        cfg.grantDeferMax = 300;
        cfg.watchdog = true;
        return true;
    }
    if (name == "faults-forced-abort") {
        cfg.forcedAbortPermille = 15;
        cfg.conflictFlipPermille = 50;
        cfg.fallbackHoldExtra = 500;
        cfg.watchdog = true;
        return true;
    }
    return false;
}

} // namespace clearsim
