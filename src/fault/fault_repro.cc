#include "fault/fault_repro.hh"

#include <cstdlib>

namespace clearsim
{

namespace
{

bool
parseUnsigned(const std::string &value, std::uint64_t &out)
{
    if (value.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(value.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

} // namespace

std::string
makeReproString(const ReproSpec &spec)
{
    std::string text = "repro{workload=";
    text += spec.workload;
    text += ";config=";
    text += spec.config;
    text += ";threads=" + std::to_string(spec.threads);
    text += ";ops=" + std::to_string(spec.ops);
    text += ";scale=" + std::to_string(spec.scale);
    text += ";seed=" + std::to_string(spec.seed);
    text += "}";
    return text;
}

bool
parseReproString(const std::string &text, ReproSpec &out,
                 std::string *error)
{
    const std::string prefix = "repro{";
    if (text.size() < prefix.size() + 1 ||
        text.compare(0, prefix.size(), prefix) != 0 ||
        text.back() != '}') {
        if (error != nullptr)
            *error = "not a repro{...} string";
        return false;
    }
    const std::string body = text.substr(
        prefix.size(), text.size() - prefix.size() - 1);

    ReproSpec spec;
    bool haveWorkload = false;
    bool haveConfig = false;
    std::size_t pos = 0;
    while (pos <= body.size()) {
        std::size_t end = body.find(';', pos);
        if (end == std::string::npos)
            end = body.size();
        const std::string field = body.substr(pos, end - pos);
        pos = end + 1;
        if (field.empty())
            continue;
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) {
            if (error != nullptr)
                *error = "field without '=': " + field;
            return false;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        std::uint64_t number = 0;
        if (key == "workload") {
            spec.workload = value;
            haveWorkload = true;
        } else if (key == "config") {
            spec.config = value;
            haveConfig = true;
        } else if (key == "threads") {
            if (!parseUnsigned(value, number)) {
                if (error != nullptr)
                    *error = "bad threads value: " + value;
                return false;
            }
            spec.threads = static_cast<unsigned>(number);
        } else if (key == "ops") {
            if (!parseUnsigned(value, number)) {
                if (error != nullptr)
                    *error = "bad ops value: " + value;
                return false;
            }
            spec.ops = static_cast<unsigned>(number);
        } else if (key == "scale") {
            if (!parseUnsigned(value, number)) {
                if (error != nullptr)
                    *error = "bad scale value: " + value;
                return false;
            }
            spec.scale = static_cast<unsigned>(number);
        } else if (key == "seed") {
            if (!parseUnsigned(value, number)) {
                if (error != nullptr)
                    *error = "bad seed value: " + value;
                return false;
            }
            spec.seed = number;
        } else {
            if (error != nullptr)
                *error = "unknown repro field: " + key;
            return false;
        }
    }
    if (!haveWorkload || !haveConfig) {
        if (error != nullptr)
            *error = "repro string missing workload or config";
        return false;
    }
    out = spec;
    return true;
}

} // namespace clearsim
