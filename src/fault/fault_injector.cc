#include "fault/fault_injector.hh"

#include <utility>

#include "common/log.hh"
#include "sim/event_queue.hh"

namespace clearsim
{

namespace
{

/**
 * Expand the user-visible fault seed into the injector stream. The
 * constant keeps seed 0 (the default) from colliding with the
 * workload Rng's default stream.
 */
constexpr std::uint64_t kFaultSeedSalt = 0xfa017d5eed000001ull;

} // namespace

FaultInjector::FaultInjector(const FaultConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed ^ kFaultSeedSalt)
{
}

bool
FaultInjector::chance(unsigned permille)
{
    if (permille == 0)
        return false;
    return rng_.nextBelow(1000) < permille;
}

Cycle
FaultInjector::magnitude(Cycle max)
{
    if (max == 0)
        return 0;
    return 1 + rng_.nextBelow(max);
}

void
FaultInjector::note(TraceKind kind, FaultKind fault, CoreId core,
                    LineAddr line, Cycle cycles)
{
    ++counts_[static_cast<unsigned>(fault)];
    if (tracer_)
        tracer_->emitAt(kind, core, FaultPayload{fault, line, cycles});
}

Cycle
FaultInjector::perturbSchedule()
{
    if (!chance(cfg_.eventJitterPermille))
        return 0;
    const Cycle jitter = magnitude(cfg_.eventJitterMax);
    if (jitter != 0) {
        note(TraceKind::FaultDelay, FaultKind::EventJitter, kNoCore, 0,
             jitter);
    }
    return jitter;
}

FaultInjector::FreeResponse
FaultInjector::perturbFreeResponse(LineAddr line, CoreId core,
                                   bool nackable)
{
    if (nackable && chance(cfg_.nackPermille)) {
        note(TraceKind::FaultVerdict, FaultKind::SpuriousNack, core,
             line, 0);
        return FreeResponse::Nack;
    }
    if (chance(cfg_.retryPermille)) {
        note(TraceKind::FaultVerdict, FaultKind::SpuriousRetry, core,
             line, 0);
        return FreeResponse::Retry;
    }
    return FreeResponse::Keep;
}

Cycle
FaultInjector::extraRetryDelay(LineAddr line, CoreId core)
{
    if (cfg_.retryDelayExtraMax == 0)
        return 0;
    const Cycle extra = magnitude(cfg_.retryDelayExtraMax);
    note(TraceKind::FaultDelay, FaultKind::RetryDelay, core, line,
         extra);
    return extra;
}

void
FaultInjector::deliverWake(InlineCallback<48> wake)
{
    if (queue_ != nullptr && chance(cfg_.grantDeferPermille)) {
        const Cycle defer = magnitude(cfg_.grantDeferMax);
        if (defer != 0) {
            note(TraceKind::FaultDelay, FaultKind::GrantDefer, kNoCore,
                 0, defer);
            queue_->scheduleAfter(defer, std::move(wake));
            return;
        }
    }
    wake();
}

bool
FaultInjector::dropSharerAfterRead(LineAddr line, CoreId core)
{
    if (!chance(cfg_.evictPermille))
        return false;
    note(TraceKind::FaultVerdict, FaultKind::SharerEvict, core, line,
         0);
    return true;
}

bool
FaultInjector::forceAbort(LineAddr line, CoreId core)
{
    if (!chance(cfg_.forcedAbortPermille))
        return false;
    note(TraceKind::FaultVerdict, FaultKind::ForcedAbort, core, line,
         0);
    return true;
}

bool
FaultInjector::flipVerdict(LineAddr line, CoreId requester)
{
    if (!chance(cfg_.conflictFlipPermille))
        return false;
    note(TraceKind::FaultVerdict, FaultKind::ConflictFlip, requester,
         line, 0);
    return true;
}

Cycle
FaultInjector::extendFallbackHold(CoreId core)
{
    if (cfg_.fallbackHoldExtra == 0)
        return 0;
    const Cycle extra = magnitude(cfg_.fallbackHoldExtra);
    note(TraceKind::FaultDelay, FaultKind::FallbackHold, core, 0,
         extra);
    return extra;
}

std::uint64_t
FaultInjector::totalInjected() const
{
    std::uint64_t total = 0;
    for (std::uint64_t count : counts_)
        total += count;
    return total;
}

} // namespace clearsim
