/**
 * @file
 * Repro strings: the minimized, self-contained description of one
 * simulated run.
 *
 * A violation report must let a human (or a test) re-create the
 * exact failing run. Because every run is a pure function of the
 * config spec (which carries the fault plan and fault.seed) plus
 * the workload parameters, the repro string is just those fields:
 *
 *   repro{workload=genome;config=C+faults-nack-storm:fault.seed=7;
 *         threads=8;ops=16;scale=1;seed=42}
 *
 * parseReproString() is the exact inverse of makeReproString(), so
 * the death-style watchdog tests replay the violation from the
 * string alone.
 */

#ifndef CLEARSIM_FAULT_FAULT_REPRO_HH
#define CLEARSIM_FAULT_FAULT_REPRO_HH

#include <cstdint>
#include <string>

namespace clearsim
{

/** The fields of a repro string. */
struct ReproSpec
{
    std::string workload;
    /** Full ConfigRegistry spec, fault plan and seed included. */
    std::string config;
    unsigned threads = 0;
    unsigned ops = 0;
    unsigned scale = 1;
    std::uint64_t seed = 0;
};

/** Render spec as a repro string. */
std::string makeReproString(const ReproSpec &spec);

/**
 * Parse a repro string produced by makeReproString().
 * @retval false on malformed input; *error names the problem
 */
bool parseReproString(const std::string &text, ReproSpec &out,
                      std::string *error);

} // namespace clearsim

#endif // CLEARSIM_FAULT_FAULT_REPRO_HH
