/**
 * @file
 * The deterministic fault injector.
 *
 * One FaultInjector per System, constructed only when the run's
 * FaultConfig has any active fault class, draws every injection
 * decision from a private xoshiro256** stream seeded purely by
 * `fault.seed`. Because the simulation is single-threaded and
 * event-ordered, the sequence of decision points — and therefore the
 * whole fault schedule — is a pure function of (config spec,
 * fault.seed): no wall clock, no addresses, no global state.
 *
 * The injector perturbs three protocol-critical seams:
 *
 *  - event queue: bounded random delay of scheduled events
 *    (EventQueue::setPerturber -> perturbSchedule());
 *  - memory system: spurious NACK/Retry responses on free lines,
 *    stretched lock-retry backoffs, deferred ("lost then
 *    re-delivered") lock-grant wakeups, spurious directory sharer
 *    evictions;
 *  - HTM: forced aborts of abortable attempts, adversarially
 *    flipped conflict verdicts, extended fallback-lock holds.
 *
 * Liveness is preserved by construction: grants are deferred, never
 * dropped; NACKs are only injected where the protocol allows an
 * abort; forced aborts never target the must-commit modes (NS-CL,
 * fallback). Every injected fault is traced as FaultDelay or
 * FaultVerdict so the JSONL trace shows the complete schedule.
 */

#ifndef CLEARSIM_FAULT_FAULT_INJECTOR_HH
#define CLEARSIM_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <functional>

#include "common/rng.hh"
#include "common/small_fn.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "fault/fault_config.hh"

namespace clearsim
{

class EventQueue;

/** Number of FaultKind values, for array-indexed counters. */
constexpr unsigned kNumFaultKinds = 9;

/** Seed-driven fault source; see file comment for the seam map. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg);

    /** Report injections through t (null = silent). */
    void attachTracer(const Tracer *t) { tracer_ = t; }

    /** Bind the queue used to re-deliver deferred lock grants. */
    void bindQueue(EventQueue *queue) { queue_ = queue; }

    // --- seam: sim/event_queue ---

    /**
     * Jitter, in cycles, to add to the event being scheduled
     * (0 = unperturbed). Installed as the queue's perturber.
     */
    Cycle perturbSchedule();

    // --- seam: mem/lock_manager ---

    /** How perturbFreeResponse() altered a Free classification. */
    enum class FreeResponse
    {
        Keep,  ///< no fault: the line really is free
        Nack,  ///< answer with a spurious NACK
        Retry, ///< answer with a spurious Retry
    };

    /**
     * Possibly turn a Free lock classification into a spurious
     * NACK or Retry. Nack is only injected when the requester is
     * nackable (abortable); Retry is always safe because every
     * retry loop re-checks the line state.
     */
    FreeResponse perturbFreeResponse(LineAddr line, CoreId core,
                                     bool nackable);

    /** Extra cycles to add to a lock-retry backoff (0 = none). */
    Cycle extraRetryDelay(LineAddr line, CoreId core);

    /**
     * Deliver a lock-grant wakeup, possibly deferring it by a
     * bounded random delay (a "lost" grant that is re-delivered).
     * Immediate delivery calls wake() synchronously, exactly like
     * the unperturbed lock manager.
     */
    void deliverWake(InlineCallback<48> wake);

    // --- seam: mem/directory ---

    /** Spuriously evict the reader's sharer bit after a read? */
    bool dropSharerAfterRead(LineAddr line, CoreId core);

    // --- seam: htm/tx_context + htm/conflict_manager + executor ---

    /** Force the running (abortable) attempt to abort here? */
    bool forceAbort(LineAddr line, CoreId core);

    /**
     * Flip a conflict verdict the requester would have won into a
     * requester-loses verdict (only offered where the requester can
     * lose, i.e. is abortable).
     */
    bool flipVerdict(LineAddr line, CoreId requester);

    /** Extra cycles to hold the fallback lock (0 = none). */
    Cycle extendFallbackHold(CoreId core);

    // --- accounting ---

    /** Number of injections of one fault kind so far. */
    std::uint64_t
    injected(FaultKind fault) const
    {
        return counts_[static_cast<unsigned>(fault)];
    }

    /** Total injections across all fault kinds. */
    std::uint64_t totalInjected() const;

    const FaultConfig &config() const { return cfg_; }

  private:
    /** Bernoulli draw in permille; permille == 0 draws nothing. */
    bool chance(unsigned permille);

    /** Uniform delay in [1, max]; max == 0 yields 0. */
    Cycle magnitude(Cycle max);

    /** Count and trace one injection. */
    void note(TraceKind kind, FaultKind fault, CoreId core,
              LineAddr line, Cycle cycles);

    FaultConfig cfg_;
    Rng rng_;
    const Tracer *tracer_ = nullptr;
    EventQueue *queue_ = nullptr;
    std::uint64_t counts_[kNumFaultKinds] = {};
};

} // namespace clearsim

#endif // CLEARSIM_FAULT_FAULT_INJECTOR_HH
