/**
 * @file
 * Runtime invariant checker and livelock/deadlock watchdog.
 *
 * Wired into core/System exactly like the Tracer: null unless
 * active, zero-cost when off. When installed (fault.watchdog), the
 * checker taps the trace stream (System chains it before any user
 * sink) and is stepped by the event loop after every event, so it
 * continuously asserts the paper's safety properties while the
 * simulation runs:
 *
 *  - single-retry-bound: no non-fallback commit consumes the full
 *    counted-retry budget (exhaustion must divert to the fallback
 *    path), and a converted NS-CL retry — the paper's single retry
 *    — commits without consuming any counted retry;
 *  - ns-cl-must-commit / fallback-must-commit: the pessimistic
 *    modes never abort (NS-CL may still deviate, which re-runs);
 *  - lock-order: cache-locked attempts acquire line locks in
 *    strictly increasing lexicographical (directory set, line)
 *    order — the dynamic twin of the PR-4 static proof;
 *  - lock-leak: a core never starts an attempt, or ends the run,
 *    still holding line locks;
 *  - zero-owner-lock: the lock manager's cross-structure state
 *    stays consistent — no line locked without a tracked owner, no
 *    waiter parked on an unlocked line (LockManager::auditState);
 *  - global-progress: some region commits within every horizon
 *    window while work is pending (livelock watchdog);
 *  - deadlock: the event queue must not drain while workload
 *    threads are unfinished.
 *
 * Violations are latched, never thrown from inside the trace sink
 * (which runs coroutine-deep): the System event loop calls raise()
 * between events, throwing an InvariantViolationError whose message
 * names the invariant and carries a bounded ring of recent trace
 * events plus the run's repro string.
 */

#ifndef CLEARSIM_FAULT_INVARIANT_CHECKER_HH
#define CLEARSIM_FAULT_INVARIANT_CHECKER_HH

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/trace.hh"
#include "common/types.hh"

namespace clearsim
{

class LockManager;

/** Thrown (outside coroutines) when a run violates an invariant. */
class InvariantViolationError : public std::runtime_error
{
  public:
    InvariantViolationError(std::string invariant,
                            const std::string &what)
        : std::runtime_error(what), invariant_(std::move(invariant))
    {
    }

    /** Name of the violated invariant ("lock-order", ...). */
    const std::string &invariant() const { return invariant_; }

  private:
    std::string invariant_;
};

/** See the file comment for the invariant catalogue. */
class InvariantChecker
{
  public:
    explicit InvariantChecker(const SystemConfig &cfg);

    /** Bind the lock manager consulted for leak/consistency audits. */
    void attachLocks(const LockManager *locks) { locks_ = locks; }

    /** Record the repro string printed with any violation. */
    void setRepro(std::string repro) { repro_ = std::move(repro); }

    const std::string &repro() const { return repro_; }

    /** Trace tap: System chains this before the user sink. */
    void onTrace(const TraceEvent &event);

    /**
     * Stepped by the System event loop after every event.
     * @param now current cycle
     * @param work_pending true while the queue has events
     */
    void afterEvent(Cycle now, bool work_pending);

    /** Final audit once the queue drains. */
    void atEnd(Cycle now);

    /** Latch a deadlock (queue drained, threads unfinished). */
    void noteDeadlock(Cycle now, unsigned unfinished);

    /** True once any invariant has been violated. */
    bool violated() const { return !invariant_.empty(); }

    /** Name of the first violated invariant; empty when clean. */
    const std::string &invariant() const { return invariant_; }

    /** Full diagnostic: violation, repro string, trace ring. */
    std::string report() const;

    /** Throw the latched violation as InvariantViolationError. */
    [[noreturn]] void raise() const;

  private:
    /** Latch the first violation (later ones are ignored). */
    void flag(const char *invariant, std::string detail);

    /** Run the lock-manager consistency + leak audits. */
    void audit(Cycle now, bool at_end);

    /** Per-core attempt state driving the lock-order check. */
    struct CoreState
    {
        ExecMode mode = ExecMode::Speculative;
        bool inAttempt = false;
        bool haveLast = false;
        unsigned lastSet = 0;
        LineAddr lastLine = 0;
        unsigned retriesAtBegin = 0;
    };

    SystemConfig cfg_;
    const LockManager *locks_ = nullptr;
    std::vector<CoreState> cores_;
    std::deque<TraceEvent> ring_;
    std::uint64_t seenEvents_ = 0;
    std::uint64_t commits_ = 0;
    Cycle lastProgress_ = 0;
    std::uint64_t sinceAudit_ = 0;
    std::string invariant_;
    std::string detail_;
    Cycle violationCycle_ = 0;
    std::string repro_;
};

} // namespace clearsim

#endif // CLEARSIM_FAULT_INVARIANT_CHECKER_HH
