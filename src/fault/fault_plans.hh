/**
 * @file
 * Canned fault plans.
 *
 * Three named presets cover the stress axes the paper's hardest
 * cases live on (NACK storms, timing races, abort storms). Each is
 * exposed as a ConfigRegistry modifier (`C+faults-nack-storm`) and
 * sets the corresponding FaultConfig knobs plus the watchdog, so a
 * fault run is self-checking by default. All plans preserve
 * liveness by construction — the CI fault-matrix job asserts zero
 * invariant violations under every plan.
 */

#ifndef CLEARSIM_FAULT_FAULT_PLANS_HH
#define CLEARSIM_FAULT_FAULT_PLANS_HH

#include <string>
#include <vector>

#include "fault/fault_config.hh"

namespace clearsim
{

/** A canned plan: registry modifier name + one-line description. */
struct FaultPlanInfo
{
    const char *name;
    const char *description;
};

/** The canned plans, in registration order. */
const std::vector<FaultPlanInfo> &faultPlans();

/**
 * Apply a canned plan's knobs (and enable the watchdog) on cfg.
 * @retval false if name is not a canned plan
 */
bool applyFaultPlan(const std::string &name, FaultConfig &cfg);

} // namespace clearsim

#endif // CLEARSIM_FAULT_FAULT_PLANS_HH
