#include "fault/invariant_checker.hh"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "mem/lock_manager.hh"

namespace clearsim
{

namespace
{

/** Ring capacity: enough context to see a violation's run-up. */
constexpr std::size_t kRingCapacity = 48;

/** Events between two periodic lock-state audits. */
constexpr std::uint64_t kAuditInterval = 1024;

std::string
formatEvent(const TraceEvent &event)
{
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "[%12" PRIu64 "] core=%-3u %-17s mode=%-8s",
                  static_cast<std::uint64_t>(event.cycle),
                  static_cast<unsigned>(event.core),
                  traceKindName(event.kind), execModeName(event.mode));
    std::string line = buf;
    if (event.reason != AbortReason::None) {
        line += " reason=";
        line += abortReasonName(event.reason);
    }
    if (const auto *lock = std::get_if<LockPayload>(&event.payload)) {
        std::snprintf(buf, sizeof buf, " line=%" PRIu64,
                      static_cast<std::uint64_t>(lock->line));
        line += buf;
    } else if (const auto *fault =
                   std::get_if<FaultPayload>(&event.payload)) {
        std::snprintf(buf, sizeof buf, " fault=%s line=%" PRIu64
                      " cycles=%" PRIu64,
                      faultKindName(fault->fault),
                      static_cast<std::uint64_t>(fault->line),
                      static_cast<std::uint64_t>(fault->cycles));
        line += buf;
    }
    return line;
}

} // namespace

InvariantChecker::InvariantChecker(const SystemConfig &cfg)
    : cfg_(cfg), cores_(cfg.numCores)
{
}

void
InvariantChecker::flag(const char *invariant, std::string detail)
{
    if (violated())
        return;
    invariant_ = invariant;
    detail_ = std::move(detail);
}

void
InvariantChecker::onTrace(const TraceEvent &event)
{
    ++seenEvents_;
    if (ring_.size() == kRingCapacity)
        ring_.pop_front();
    ring_.push_back(event);
    if (violated())
        return;

    const bool knownCore = event.core < cores_.size();
    char buf[160];
    switch (event.kind) {
      case TraceKind::AttemptBegin: {
        if (!knownCore)
            break;
        CoreState &state = cores_[event.core];
        state.mode = event.mode;
        state.inAttempt = true;
        state.haveLast = false;
        state.retriesAtBegin = event.countedRetries;
        if (locks_ != nullptr &&
            locks_->heldCount(event.core) != 0) {
            std::snprintf(buf, sizeof buf,
                          "core %u begins a %s attempt while still "
                          "holding %u line lock(s)",
                          static_cast<unsigned>(event.core),
                          execModeName(event.mode),
                          locks_->heldCount(event.core));
            flag("lock-leak", buf);
            violationCycle_ = event.cycle;
        }
        break;
      }
      case TraceKind::Commit: {
        ++commits_;
        lastProgress_ = event.cycle;
        // The machine's retry-bound contract, mode by mode. The
        // fallback path is the sanctioned escape hatch, so it is
        // exempt; every other commit must have stayed under the
        // counted-retry budget (the executor diverts to fallback
        // the moment the budget is exhausted), and a converted
        // (NS-CL) retry is CLEAR's single retry — it must commit
        // without consuming any further counted retries.
        if (event.mode != ExecMode::Fallback &&
            cfg_.maxRetries != 0 &&
            event.countedRetries >= cfg_.maxRetries) {
            std::snprintf(buf, sizeof buf,
                          "core %u committed a %s attempt with %u "
                          "counted retries; the budget (%u) must "
                          "divert to the fallback path",
                          static_cast<unsigned>(event.core),
                          execModeName(event.mode),
                          event.countedRetries, cfg_.maxRetries);
            flag("single-retry-bound", buf);
            violationCycle_ = event.cycle;
        } else if (event.mode == ExecMode::NsCl && knownCore &&
                   cores_[event.core].inAttempt &&
                   event.countedRetries !=
                       cores_[event.core].retriesAtBegin) {
            std::snprintf(buf, sizeof buf,
                          "core %u entered NS-CL with %u counted "
                          "retries but committed with %u; the "
                          "converted retry is CLEAR's single retry "
                          "and must not consume the budget",
                          static_cast<unsigned>(event.core),
                          cores_[event.core].retriesAtBegin,
                          event.countedRetries);
            flag("single-retry-bound", buf);
            violationCycle_ = event.cycle;
        }
        if (knownCore)
            cores_[event.core].inAttempt = false;
        break;
      }
      case TraceKind::Abort: {
        if (knownCore)
            cores_[event.core].inAttempt = false;
        if (event.mode == ExecMode::NsCl &&
            event.reason != AbortReason::Deviation) {
            std::snprintf(buf, sizeof buf,
                          "core %u aborted an NS-CL attempt "
                          "(reason %s); NS-CL must commit",
                          static_cast<unsigned>(event.core),
                          abortReasonName(event.reason));
            flag("ns-cl-must-commit", buf);
            violationCycle_ = event.cycle;
        } else if (event.mode == ExecMode::Fallback) {
            std::snprintf(buf, sizeof buf,
                          "core %u aborted a fallback execution "
                          "(reason %s); the fallback path must "
                          "commit",
                          static_cast<unsigned>(event.core),
                          abortReasonName(event.reason));
            flag("fallback-must-commit", buf);
            violationCycle_ = event.cycle;
        }
        break;
      }
      case TraceKind::LineLockAcquired: {
        if (!knownCore)
            break;
        CoreState &state = cores_[event.core];
        if (!state.inAttempt || (state.mode != ExecMode::SCl &&
                                 state.mode != ExecMode::NsCl)) {
            break;
        }
        const auto *lock = std::get_if<LockPayload>(&event.payload);
        if (lock == nullptr)
            break;
        const unsigned set = static_cast<unsigned>(
            lock->line & (cfg_.cache.dirSets - 1));
        if (state.haveLast &&
            (set < state.lastSet ||
             (set == state.lastSet && lock->line <= state.lastLine))) {
            std::snprintf(buf, sizeof buf,
                          "core %u locked line %" PRIu64 " (dir set "
                          "%u) after line %" PRIu64 " (dir set %u); "
                          "lexicographical (set, line) order is "
                          "required",
                          static_cast<unsigned>(event.core),
                          static_cast<std::uint64_t>(lock->line), set,
                          static_cast<std::uint64_t>(state.lastLine),
                          state.lastSet);
            flag("lock-order", buf);
            violationCycle_ = event.cycle;
        }
        state.haveLast = true;
        state.lastSet = set;
        state.lastLine = lock->line;
        break;
      }
      default:
        break;
    }
}

void
InvariantChecker::audit(Cycle now, bool at_end)
{
    if (locks_ == nullptr || violated())
        return;
    std::string why;
    if (!locks_->auditState(&why)) {
        flag("zero-owner-lock", why);
        violationCycle_ = now;
        return;
    }
    if (!at_end)
        return;
    for (unsigned core = 0; core < cfg_.numCores; ++core) {
        const unsigned held = locks_->heldCount(core);
        if (held == 0)
            continue;
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "core %u ended the run still holding %u line "
                      "lock(s)", core, held);
        flag("lock-leak", buf);
        violationCycle_ = now;
        return;
    }
}

void
InvariantChecker::afterEvent(Cycle now, bool work_pending)
{
    if (violated())
        return;
    if (work_pending && cfg_.fault.horizon != 0 &&
        now > lastProgress_ &&
        now - lastProgress_ > cfg_.fault.horizon) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "no region committed between cycle %" PRIu64
                      " and cycle %" PRIu64 " (horizon %" PRIu64
                      " cycles): livelock",
                      static_cast<std::uint64_t>(lastProgress_),
                      static_cast<std::uint64_t>(now),
                      static_cast<std::uint64_t>(cfg_.fault.horizon));
        flag("global-progress", buf);
        violationCycle_ = now;
        return;
    }
    if (++sinceAudit_ >= kAuditInterval) {
        sinceAudit_ = 0;
        audit(now, false);
    }
}

void
InvariantChecker::atEnd(Cycle now)
{
    audit(now, true);
}

void
InvariantChecker::noteDeadlock(Cycle now, unsigned unfinished)
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "event queue drained at cycle %" PRIu64 " with %u "
                  "workload thread(s) unfinished: deadlock",
                  static_cast<std::uint64_t>(now), unfinished);
    flag("deadlock", buf);
    violationCycle_ = now;
}

std::string
InvariantChecker::report() const
{
    std::string text = "invariant violated: ";
    text += invariant_.empty() ? "(none)" : invariant_;
    text += "\n  ";
    text += detail_;
    char buf[96];
    std::snprintf(buf, sizeof buf, "\n  cycle: %" PRIu64,
                  static_cast<std::uint64_t>(violationCycle_));
    text += buf;
    text += "\n  repro: ";
    text += repro_.empty() ? "(not recorded)" : repro_;
    std::snprintf(buf, sizeof buf,
                  "\n  recent trace (last %zu of %" PRIu64
                  " events):", ring_.size(), seenEvents_);
    text += buf;
    for (const TraceEvent &event : ring_) {
        text += "\n    ";
        text += formatEvent(event);
    }
    return text;
}

void
InvariantChecker::raise() const
{
    throw InvariantViolationError(invariant_, report());
}

} // namespace clearsim
