#include "analysis/certificate.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/json.hh"

namespace clearsim
{

const char *
premiseName(PremiseId id)
{
    switch (id) {
      case PremiseId::CapWindow:
        return "cap.window";
      case PremiseId::CapSq:
        return "cap.sq";
      case PremiseId::CapL1Pin:
        return "cap.l1pin";
      case PremiseId::CapFootprint:
        return "cap.footprint";
      case PremiseId::CapAlt:
        return "cap.alt";
      case PremiseId::IndOnePass:
        return "ind.one-pass";
      case PremiseId::LockOrder:
        return "lock.order";
      case PremiseId::ConflictQuiescent:
        return "conflict.quiescent";
      case PremiseId::SingleRetryBound:
        return "bound.single-retry";
    }
    return "?";
}

const char *
premiseKindName(PremiseId id)
{
    switch (id) {
      case PremiseId::CapWindow:
      case PremiseId::CapSq:
      case PremiseId::CapL1Pin:
      case PremiseId::CapFootprint:
      case PremiseId::CapAlt:
        return "capacity";
      case PremiseId::IndOnePass:
        return "indirection";
      case PremiseId::LockOrder:
        return "lock-order";
      case PremiseId::ConflictQuiescent:
        return "interference";
      case PremiseId::SingleRetryBound:
        return "retry-bound";
    }
    return "?";
}

const char *
premiseFalsifier(PremiseId id)
{
    switch (id) {
      case PremiseId::CapWindow:
        return "profile.max_attempt_uops";
      case PremiseId::CapSq:
        return "profile.sq_full_aborts";
      case PremiseId::CapL1Pin:
        return "profile.capacity_aborts";
      case PremiseId::CapFootprint:
        return "profile.max_footprint_lines";
      case PremiseId::CapAlt:
        return "profile.capacity_aborts";
      case PremiseId::IndOnePass:
        return "profile.footprint_changed";
      case PremiseId::LockOrder:
        return "trace.lock_order";
      case PremiseId::ConflictQuiescent:
        return "trace.conflict_aborts";
      case PremiseId::SingleRetryBound:
        return "trace.commit_retries";
    }
    return "?";
}

const RegionCertificate *
CertificateSet::find(RegionPc pc) const
{
    // Regions are sorted by pc (analysis order).
    const auto it = std::lower_bound(
        regions.begin(), regions.end(), pc,
        [](const RegionCertificate &cert, RegionPc key) {
            return cert.pc < key;
        });
    if (it == regions.end() || it->pc != pc)
        return nullptr;
    return &*it;
}

namespace
{

Premise
makePremise(PremiseId id, bool holds, std::uint64_t bound,
            std::uint64_t observed_static)
{
    Premise p;
    p.id = id;
    p.holds = holds;
    p.bound = bound;
    p.observedStatic = observed_static;
    return p;
}

RegionCertificate
certifyRegion(const RegionAnalysis &region,
              const AnalysisResult &analysis, const SystemConfig &cfg)
{
    const CapacityFindings &cap = region.capacity;
    const IndirectionFindings &ind = region.indirection;
    const LockOrderFindings &lock = region.lockOrder;
    const AnalysisLimits &limits = analysis.limits;

    RegionCertificate cert;
    cert.pc = region.pc;
    cert.verdict = region.verdict;
    cert.premises.reserve(kNumPremises);

    // Each premise mirrors the exact comparison of the analyzer
    // pass that produced it (analyzer.cc); the lockstep test
    // re-derives the verdict from premises alone.
    //
    // The window premise only constrains in-core (SLE-scope)
    // speculation: under cache-locked scopes it is vacuous, encoded
    // as bound 0 so the dynamic checker knows to skip it.
    const bool in_core = cfg.scope == SpeculationScope::InCore;
    cert.premises.push_back(makePremise(
        PremiseId::CapWindow, !cap.windowOverflow,
        in_core ? limits.robEntries : 0, cap.maxUops));
    cert.premises.push_back(makePremise(
        PremiseId::CapSq, !cap.predictsSqFull, limits.sqEntries,
        cap.maxStores));
    cert.premises.push_back(makePremise(
        PremiseId::CapL1Pin, !cap.predictsPinOverflow, limits.l1Ways,
        cap.maxL1SetLines));
    cert.premises.push_back(makePremise(
        PremiseId::CapFootprint, cap.footprintTrackable,
        limits.footprintCapacity, cap.maxLines));
    cert.premises.push_back(makePremise(
        PremiseId::CapAlt, cap.altLockable, limits.altEntries,
        cap.maxLines));
    cert.premises.push_back(makePremise(
        PremiseId::IndOnePass, ind.onePassDiscoverable, 0,
        (ind.addrTainted ? 1u : 0u) +
            (ind.branchTainted ? 2u : 0u)));
    cert.premises.push_back(makePremise(
        PremiseId::LockOrder, lock.provenAcyclic, 0,
        lock.violations.size()));

    // Quiescence can only be promised when the pairwise graph shows
    // no incident edge AND the region writes nothing shared: a
    // writing region can conflict with its own concurrent
    // invocations, which a pairwise (a < b) graph never models.
    cert.premises.push_back(makePremise(
        PremiseId::ConflictQuiescent,
        region.conflictScore == 0 && cap.maxWriteLines == 0, 0,
        region.conflictScore));

    // The paper's headline claim, stated as the machine contract:
    // an ELIGIBLE region under the CLEAR machinery commits without
    // exhausting the counted-retry budget (its NS-CL conversion is
    // the single retry, and consumes none of it). The bound is the
    // budget; bound 0 (an unlimited budget) makes the premise
    // dynamically vacuous, exactly like the InvariantChecker's
    // single-retry-bound invariant.
    cert.premises.push_back(makePremise(
        PremiseId::SingleRetryBound,
        cfg.clear.enabled && region.verdict == Verdict::Eligible,
        cfg.maxRetries, 0));

    cert.plannedLocks = lock.plannedLocks;
    cert.conflictGroups = lock.conflictGroups;
    cert.violations = lock.violations;

    for (const ConflictEdge &edge : analysis.edges) {
        if (edge.a == region.pc)
            cert.quiescentEdges.push_back({edge.b, edge.score});
        else if (edge.b == region.pc)
            cert.quiescentEdges.push_back({edge.a, edge.score});
    }
    return cert;
}

void
writePremise(JsonWriter &json, const Premise &premise)
{
    json.beginObject();
    json.key("id");
    json.value(premiseName(premise.id));
    json.key("code");
    json.value(static_cast<unsigned>(premise.id));
    json.key("kind");
    json.value(premiseKindName(premise.id));
    json.key("holds");
    json.value(premise.holds);
    json.key("bound");
    json.value(premise.bound);
    json.key("observed_static");
    json.value(premise.observedStatic);
    json.key("falsified_by");
    json.value(premiseFalsifier(premise.id));
    json.endObject();
}

void
writeRegionCert(JsonWriter &json, const RegionCertificate &cert)
{
    json.beginObject();
    json.key("pc");
    json.value(cert.pc);
    json.key("verdict");
    json.value(verdictName(cert.verdict));
    json.key("premises");
    json.beginArray();
    for (const Premise &premise : cert.premises)
        writePremise(json, premise);
    json.endArray();
    json.key("obligations");
    json.beginObject();
    json.key("planned_locks");
    json.value(cert.plannedLocks);
    json.key("conflict_groups");
    json.value(cert.conflictGroups);
    json.key("violations");
    json.beginArray();
    for (const LockOrderViolation &v : cert.violations) {
        json.beginObject();
        json.key("first");
        json.value(v.first);
        json.key("second");
        json.value(v.second);
        json.key("other_region");
        json.value(v.otherRegion);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.key("quiescent_edges");
    json.beginArray();
    for (const QuiescentEdge &edge : cert.quiescentEdges) {
        json.beginObject();
        json.key("peer");
        json.value(edge.peer);
        json.key("score");
        json.value(edge.score);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
writeCertSet(JsonWriter &json, const CertificateSet &set)
{
    json.beginObject();
    json.key("workload");
    json.value(set.workload);
    json.key("config");
    json.value(set.config);
    json.key("seed");
    json.value(set.seed);
    json.key("max_retries");
    json.value(set.maxRetries);
    json.key("clear_enabled");
    json.value(set.clearEnabled);
    json.key("limits");
    json.beginObject();
    json.key("rob");
    json.value(set.limits.robEntries);
    json.key("lq");
    json.value(set.limits.lqEntries);
    json.key("sq");
    json.value(set.limits.sqEntries);
    json.key("l1_ways");
    json.value(set.limits.l1Ways);
    json.key("alt_entries");
    json.value(set.limits.altEntries);
    json.key("footprint_capacity");
    json.value(set.limits.footprintCapacity);
    json.endObject();
    json.key("regions");
    json.beginArray();
    for (const RegionCertificate &cert : set.regions)
        writeRegionCert(json, cert);
    json.endArray();
    json.endObject();
}

} // namespace

CertificateSet
buildCertificates(const AnalysisResult &analysis,
                  const SystemConfig &cfg)
{
    CertificateSet set;
    set.workload = analysis.workload;
    set.config = analysis.config;
    set.seed = analysis.seed;
    set.maxRetries = cfg.maxRetries;
    set.clearEnabled = cfg.clear.enabled;
    set.limits = analysis.limits;
    set.regions.reserve(analysis.regions.size());
    for (const RegionAnalysis &region : analysis.regions)
        set.regions.push_back(certifyRegion(region, analysis, cfg));
    return set;
}

std::string
certJsonString(const std::vector<CertificateSet> &sets)
{
    std::string out;
    JsonWriter json(out);
    json.beginObject();
    json.key("schema");
    json.value(kCertJsonSchema);
    json.key("certificates");
    json.beginArray();
    for (const CertificateSet &set : sets)
        writeCertSet(json, set);
    json.endArray();
    json.endObject();
    out.push_back('\n');
    return out;
}

bool
writeCertJson(const std::string &path,
              const std::vector<CertificateSet> &sets,
              std::string &error)
{
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
        if (ec) {
            error = "cannot create " +
                    target.parent_path().string() + ": " +
                    ec.message();
            return false;
        }
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        error = "cannot open " + path + ": " + std::strerror(errno);
        return false;
    }
    os << certJsonString(sets);
    os.flush();
    if (!os) {
        error = "write to " + path + " failed";
        return false;
    }
    return true;
}

} // namespace clearsim
