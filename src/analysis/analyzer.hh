/**
 * @file
 * The static analysis passes over captured RegionModels.
 *
 * Four passes, mirroring the paper's eligibility reasoning:
 *
 *  1. Capacity: worst-case distinct-cacheline footprint, micro-op /
 *     load / store counts and L1 way pressure, checked against the
 *     configured core window (ROB/LQ/SQ), the footprint recording
 *     bound and the ALT lock capacity. Predicts capacity and
 *     SQ-Full aborts before any measurement run.
 *  2. Indirection: maximum pointer-chase depth and address/branch
 *     taint. A region whose addresses derive from in-AR loads has a
 *     data-dependent footprint that one failed-mode discovery pass
 *     cannot pin down (the paper's indirection bit).
 *  3. Lock order: mechanically verifies that the region's worst-case
 *     lock plan acquires cachelines in strictly increasing
 *     (directory set, line) order with contiguous set groups, and
 *     that any two regions acquire their common lines in a
 *     consistent order — the Figure 5/6 deadlock-freedom argument,
 *     proven rather than assumed. Violations name the line pairs.
 *  4. Conflict graph: pairwise read/write-set overlap between
 *     regions, scored 2 per shared written line and 1 per
 *     read-write shared line, ranking regions by conflict density.
 *
 * Verdict hierarchy (first match wins):
 *   CAPACITY-DOOMED > UNBOUNDED-INDIRECTION > LOCK-ORDER-RISK >
 *   ELIGIBLE.
 * An ELIGIBLE region provably fits every speculative and locking
 * structure, so a matching measurement run can never abort it with
 * a capacity or SQ-Full cause — the property the cross-check tests
 * assert.
 */

#ifndef CLEARSIM_ANALYSIS_ANALYZER_HH
#define CLEARSIM_ANALYSIS_ANALYZER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/region_ir.hh"
#include "common/config.hh"

namespace clearsim
{

/** Final eligibility verdict of one region. */
enum class Verdict : std::uint8_t
{
    Eligible,
    CapacityDoomed,
    UnboundedIndirection,
    LockOrderRisk,
};

/** Verdict name as printed in reports ("ELIGIBLE", ...). */
const char *verdictName(Verdict verdict);

/** Pass 1 output: structure-capacity checks. */
struct CapacityFindings
{
    std::uint64_t maxLines = 0;
    std::uint64_t maxWriteLines = 0;
    std::uint64_t maxUops = 0;
    std::uint64_t maxLoads = 0;
    std::uint64_t maxStores = 0;
    std::uint64_t maxL1SetLines = 0;

    /** Exceeds the in-core speculative window (SLE scope only). */
    bool windowOverflow = false;

    /** Failed-mode discovery would run the SQ dry. */
    bool predictsSqFull = false;

    /** More same-set lines than L1 ways: cannot pin the read/write
     *  set, speculative attempts capacity-abort. */
    bool predictsPinOverflow = false;

    /** The footprint fits the discovery recording bound. */
    bool footprintTrackable = true;

    /** Worst-case footprint fits the ALT and can be held locked. */
    bool altLockable = true;
};

/** Pass 2 output: address/branch provenance. */
struct IndirectionFindings
{
    std::uint16_t maxChaseDepth = 0;
    bool addrTainted = false;
    bool branchTainted = false;

    /** One failed-mode pass discovers the whole footprint. */
    bool onePassDiscoverable = true;
};

/** One offending acquisition-order pair. */
struct LockOrderViolation
{
    LineAddr first = 0;
    LineAddr second = 0;

    /** Other region involved (0: within this region's own plan). */
    RegionPc otherRegion = 0;
};

/** Pass 3 output: the deadlock-freedom proof for one region. */
struct LockOrderFindings
{
    /** Acquisition order verified acyclic (no violations). */
    bool provenAcyclic = true;

    /** Entries of the verified worst-case lock plan. */
    std::uint64_t plannedLocks = 0;

    /** Lexicographical conflict groups in that plan. */
    std::uint64_t conflictGroups = 0;

    std::vector<LockOrderViolation> violations;
};

/** Pass 4 output: one static conflict-graph edge. */
struct ConflictEdge
{
    RegionPc a = 0;
    RegionPc b = 0;
    std::uint64_t sharedWriteWrite = 0;
    std::uint64_t sharedReadWrite = 0;

    /** 2 * sharedWriteWrite + sharedReadWrite. */
    std::uint64_t score = 0;
};

/** Complete analysis of one region. */
struct RegionAnalysis
{
    RegionPc pc = 0;
    Verdict verdict = Verdict::Eligible;
    CapacityFindings capacity;
    IndirectionFindings indirection;
    LockOrderFindings lockOrder;

    /** Sum of incident conflict-edge scores. */
    std::uint64_t conflictScore = 0;

    /** Observed sample sizes behind the static bounds. */
    std::uint64_t observedInvocations = 0;
    std::uint64_t observedAttempts = 0;
    std::uint64_t observedCommits = 0;
};

/** The configured bounds the capacity pass checked against. */
struct AnalysisLimits
{
    std::uint64_t robEntries = 0;
    std::uint64_t lqEntries = 0;
    std::uint64_t sqEntries = 0;
    std::uint64_t l1Ways = 0;
    std::uint64_t altEntries = 0;
    std::uint64_t footprintCapacity = 0;
};

/** Analysis of one (workload, config) capture. */
struct AnalysisResult
{
    std::string workload;
    std::string config;
    std::uint64_t seed = 0;

    AnalysisLimits limits;

    /** Per-region verdicts, sorted by pc. */
    std::vector<RegionAnalysis> regions;

    /** Conflict edges with score > 0, sorted by (a, b). */
    std::vector<ConflictEdge> edges;
};

/** Runs the four passes against one configuration. */
class Analyzer
{
  public:
    explicit Analyzer(const SystemConfig &cfg) : cfg_(cfg) {}

    /** Analyze one capture's models into per-region verdicts. */
    AnalysisResult
    analyze(const std::map<RegionPc, RegionModel> &models) const;

  private:
    CapacityFindings capacityPass(const RegionModel &model) const;
    IndirectionFindings indirectionPass(const RegionModel &model) const;
    LockOrderFindings lockOrderPass(const RegionModel &model) const;

    /** Cross-region order consistency; appends to both sides. */
    void crossRegionOrderPass(
        const std::map<RegionPc, RegionModel> &models,
        std::vector<RegionAnalysis> &regions) const;

    void conflictGraphPass(
        const std::map<RegionPc, RegionModel> &models,
        AnalysisResult &result) const;

    SystemConfig cfg_;
};

} // namespace clearsim

#endif // CLEARSIM_ANALYSIS_ANALYZER_HH
