#include "analysis/cert_checker.hh"

#include <cinttypes>
#include <cstdio>

namespace clearsim
{

namespace
{

/** Synthesized-event ring bound: enough for every real audit, small
 *  enough that a pathological run cannot balloon memory. */
constexpr std::size_t kMaxFalsifiedEvents = 256;

bool
isCapacityPremise(PremiseId id)
{
    switch (id) {
      case PremiseId::CapWindow:
      case PremiseId::CapSq:
      case PremiseId::CapL1Pin:
      case PremiseId::CapFootprint:
      case PremiseId::CapAlt:
        return true;
      default:
        return false;
    }
}

} // namespace

const char *
mispredictKindName(MispredictKind kind)
{
    switch (kind) {
      case MispredictKind::FalseEligible:
        return "false-ELIGIBLE";
      case MispredictKind::FalseDoomed:
        return "false-DOOMED";
      case MispredictKind::OrderProofViolated:
        return "order-proof-violated";
      case MispredictKind::InterferenceUnderestimate:
        return "interference-underestimate";
    }
    return "?";
}

CertChecker::CertChecker(const CertificateSet &certs,
                         const SystemConfig &cfg)
    : certs_(certs), cfg_(cfg), cores_(cfg.numCores)
{
}

bool
CertChecker::alreadyFalsified(RegionPc pc, PremiseId premise) const
{
    const auto it = latched_.find(pc);
    if (it == latched_.end())
        return false;
    return it->second[static_cast<unsigned>(premise)].hit;
}

void
CertChecker::noteFalsified(RegionPc pc, PremiseId premise,
                           std::uint64_t observed,
                           std::uint64_t bound, Cycle cycle,
                           CoreId core)
{
    auto &slots = latched_[pc];
    if (slots.empty())
        slots.resize(kNumPremises);
    Falsification &slot = slots[static_cast<unsigned>(premise)];
    if (slot.hit)
        return;
    slot.hit = true;
    slot.observed = observed;
    slot.bound = bound;
    slot.cycle = cycle;
    ++falsifications_;

    TraceEvent event;
    event.cycle = cycle;
    event.core = core;
    event.pc = pc;
    event.kind = TraceKind::PremiseFalsified;
    PremisePayload payload;
    payload.premise = static_cast<std::uint32_t>(premise);
    payload.observed = observed;
    payload.bound = bound;
    event.payload = payload;
    if (events_.size() < kMaxFalsifiedEvents)
        events_.push_back(event);
    if (downstream_)
        downstream_(event);
}

void
CertChecker::onTrace(const TraceEvent &event)
{
    if (event.core >= cores_.size())
        return;
    CoreState &state = cores_[event.core];

    switch (event.kind) {
      case TraceKind::AttemptBegin:
        state.pc = event.pc;
        state.mode = event.mode;
        state.inAttempt = true;
        state.haveLast = false;
        break;

      case TraceKind::Commit: {
        RegionOutcome &outcome = outcomes_[event.pc];
        switch (event.mode) {
          case ExecMode::Speculative:
            ++outcome.specCommits;
            break;
          case ExecMode::SCl:
            ++outcome.sClCommits;
            break;
          case ExecMode::NsCl:
            ++outcome.nsClCommits;
            break;
          case ExecMode::Fallback:
            ++outcome.fallbackCommits;
            break;
        }
        // The single-retry bound, stated as the machine contract
        // the InvariantChecker enforces: every non-fallback commit
        // stays under the counted-retry budget (the converted NS-CL
        // retry — CLEAR's single retry — consumes none of it), and
        // the fallback path is the sanctioned escape hatch. The
        // stricter countedRetries <= 1 reading is falsified
        // fault-free on the default grid (conflict-aborted S-CL
        // retries legitimately consume budget before conversion),
        // so it would drown real mispredicts in machine noise.
        const RegionCertificate *cert = certs_.find(event.pc);
        if (cert != nullptr &&
            cert->premise(PremiseId::SingleRetryBound).holds) {
            const Premise &premise =
                cert->premise(PremiseId::SingleRetryBound);
            if (event.mode != ExecMode::Fallback &&
                premise.bound != 0 &&
                event.countedRetries >= premise.bound) {
                ++outcome.retryBoundViolations;
                noteFalsified(event.pc,
                              PremiseId::SingleRetryBound,
                              event.countedRetries, premise.bound,
                              event.cycle, event.core);
            }
        }
        state.inAttempt = false;
        state.haveLast = false;
        break;
      }

      case TraceKind::Abort: {
        if (event.reason == AbortReason::MemoryConflict ||
            event.reason == AbortReason::Nacked) {
            RegionOutcome &outcome = outcomes_[event.pc];
            ++outcome.conflictAborts;
            const RegionCertificate *cert = certs_.find(event.pc);
            if (cert != nullptr &&
                cert->premise(PremiseId::ConflictQuiescent).holds) {
                noteFalsified(event.pc,
                              PremiseId::ConflictQuiescent,
                              outcome.conflictAborts, 0, event.cycle,
                              event.core);
            }
        }
        state.inAttempt = false;
        state.haveLast = false;
        break;
      }

      case TraceKind::LineLockAcquired: {
        // Dynamic twin of the static lock-order proof: cache-locked
        // attempts must acquire in strictly increasing (dirSet,
        // line) order. Lock events carry no pc, so attribute via
        // the core's current attempt.
        if (!state.inAttempt || (state.mode != ExecMode::SCl &&
                                 state.mode != ExecMode::NsCl)) {
            break;
        }
        const auto *lock = std::get_if<LockPayload>(&event.payload);
        if (lock == nullptr)
            break;
        const unsigned set = static_cast<unsigned>(
            lock->line & (cfg_.cache.dirSets - 1));
        if (state.haveLast &&
            (set < state.lastSet ||
             (set == state.lastSet &&
              lock->line <= state.lastLine))) {
            RegionOutcome &outcome = outcomes_[state.pc];
            ++outcome.lockOrderViolations;
            const RegionCertificate *cert = certs_.find(state.pc);
            if (cert != nullptr &&
                cert->premise(PremiseId::LockOrder).holds) {
                noteFalsified(state.pc, PremiseId::LockOrder,
                              outcome.lockOrderViolations, 0,
                              event.cycle, event.core);
            }
        }
        state.haveLast = true;
        state.lastSet = set;
        state.lastLine = lock->line;
        break;
      }

      default:
        break;
    }
}

void
CertChecker::auditProfile(const RegionCertificate &cert,
                          const RegionProfile &profile,
                          Cycle end_cycle)
{
    const AnalysisLimits &limits = certs_.limits;
    const RegionPc pc = cert.pc;

    // cap.window (vacuous outside in-core scope: bound 0).
    const Premise &window = cert.premise(PremiseId::CapWindow);
    if (window.holds && window.bound > 0) {
        if (profile.maxAttemptUops > limits.robEntries) {
            noteFalsified(pc, PremiseId::CapWindow,
                          profile.maxAttemptUops, limits.robEntries,
                          end_cycle, 0);
        } else if (profile.maxAttemptLoads > limits.lqEntries) {
            noteFalsified(pc, PremiseId::CapWindow,
                          profile.maxAttemptLoads, limits.lqEntries,
                          end_cycle, 0);
        } else if (profile.maxAttemptStores > limits.sqEntries) {
            noteFalsified(pc, PremiseId::CapWindow,
                          profile.maxAttemptStores, limits.sqEntries,
                          end_cycle, 0);
        }
    }

    if (cert.premise(PremiseId::CapSq).holds &&
        profile.sqFullAborts > 0) {
        noteFalsified(pc, PremiseId::CapSq, profile.sqFullAborts,
                      limits.sqEntries, end_cycle, 0);
    }

    if (cert.premise(PremiseId::CapFootprint).holds &&
        profile.maxFootprintLines > limits.footprintCapacity) {
        noteFalsified(pc, PremiseId::CapFootprint,
                      profile.maxFootprintLines,
                      limits.footprintCapacity, end_cycle, 0);
    }

    if (cert.premise(PremiseId::CapAlt).holds &&
        profile.maxFootprintLines > limits.altEntries) {
        noteFalsified(pc, PremiseId::CapAlt,
                      profile.maxFootprintLines, limits.altEntries,
                      end_cycle, 0);
    }

    // Capacity aborts with no footprint-side explanation (neither a
    // statically failed nor a dynamically falsified footprint/ALT
    // premise) are attributed to L1-way pinning, the remaining
    // structural cause.
    const bool footprintExplains =
        !cert.premise(PremiseId::CapFootprint).holds ||
        alreadyFalsified(pc, PremiseId::CapFootprint) ||
        !cert.premise(PremiseId::CapAlt).holds ||
        alreadyFalsified(pc, PremiseId::CapAlt);
    if (cert.premise(PremiseId::CapL1Pin).holds &&
        profile.capacityAborts > 0 && !footprintExplains) {
        noteFalsified(pc, PremiseId::CapL1Pin,
                      profile.capacityAborts, limits.l1Ways,
                      end_cycle, 0);
    }

    if (cert.premise(PremiseId::IndOnePass).holds &&
        profile.footprintChanged) {
        noteFalsified(pc, PremiseId::IndOnePass, 1, 0, end_cycle, 0);
    }
}

void
CertChecker::finalize(const HtmStats &stats, Cycle end_cycle)
{
    if (finalized_)
        return;
    finalized_ = true;

    for (const RegionCertificate &cert : certs_.regions) {
        const auto it = stats.regions.find(cert.pc);
        if (it != stats.regions.end())
            auditProfile(cert, it->second, end_cycle);
    }

    // Roll latched falsifications into mispredict records, sorted by
    // (pc, premise) — certificate order is pc order, premise slots
    // are id order, so iteration order is already deterministic.
    for (const RegionCertificate &cert : certs_.regions) {
        const auto latched = latched_.find(cert.pc);
        if (latched != latched_.end()) {
            for (unsigned p = 0; p < kNumPremises; ++p) {
                const Falsification &slot = latched->second[p];
                if (!slot.hit)
                    continue;
                const auto premise = static_cast<PremiseId>(p);
                MispredictKind kind;
                if (premise == PremiseId::LockOrder) {
                    kind = MispredictKind::OrderProofViolated;
                } else if (premise == PremiseId::ConflictQuiescent) {
                    kind = MispredictKind::InterferenceUnderestimate;
                } else if (cert.verdict == Verdict::Eligible) {
                    kind = MispredictKind::FalseEligible;
                } else {
                    // A capacity/indirection premise falsified on a
                    // region the verdict already wrote off is not a
                    // verdict error.
                    continue;
                }
                Mispredict record;
                record.kind = kind;
                record.pc = cert.pc;
                record.verdict = cert.verdict;
                record.premise = premise;
                record.observed = slot.observed;
                record.bound = slot.bound;
                record.cycle = slot.cycle;
                record.repro = repro_;
                mispredicts_.push_back(std::move(record));
            }
        }

        // false-DOOMED: the doom never materialized — the region
        // committed speculatively, suffered no capacity/SQ-full
        // abort, and no dynamic maximum broke a limit of a
        // structure the execution actually exercised. Footprint
        // limits (the conversion table and the ALT) only bind in
        // the cache-locked modes; a region that committed its every
        // attempt speculatively never tested them, which is exactly
        // the interesting case — the analyzer wrote off a region
        // whose doom the machine never ran into.
        if (cert.verdict != Verdict::CapacityDoomed)
            continue;
        const auto profIt = stats.regions.find(cert.pc);
        const auto outIt = outcomes_.find(cert.pc);
        if (profIt == stats.regions.end() ||
            outIt == outcomes_.end()) {
            continue;
        }
        const RegionProfile &profile = profIt->second;
        const AnalysisLimits &limits = certs_.limits;
        if (outIt->second.specCommits == 0 ||
            profile.capacityAborts > 0 || profile.sqFullAborts > 0) {
            continue;
        }
        const Premise &window = cert.premise(PremiseId::CapWindow);
        const bool windowClean =
            window.bound == 0 ||
            (profile.maxAttemptUops <= limits.robEntries &&
             profile.maxAttemptLoads <= limits.lqEntries &&
             profile.maxAttemptStores <= limits.sqEntries);
        const bool cacheLocked = outIt->second.sClCommits > 0 ||
                                 outIt->second.nsClCommits > 0;
        const bool footprintDoomed =
            cacheLocked &&
            (profile.maxFootprintLines > limits.footprintCapacity ||
             profile.maxFootprintLines > limits.altEntries);
        if (!windowClean ||
            profile.maxAttemptStores > limits.sqEntries ||
            footprintDoomed) {
            continue;
        }
        // Blame the first capacity premise the verdict rested on.
        Mispredict record;
        record.kind = MispredictKind::FalseDoomed;
        record.pc = cert.pc;
        record.verdict = cert.verdict;
        record.premise = PremiseId::CapWindow;
        for (unsigned p = 0; p < kNumPremises; ++p) {
            const auto id = static_cast<PremiseId>(p);
            if (isCapacityPremise(id) && !cert.premise(id).holds) {
                record.premise = id;
                record.bound = cert.premise(id).bound;
                break;
            }
        }
        record.observed = profile.maxFootprintLines;
        record.cycle = end_cycle;
        record.repro = repro_;
        mispredicts_.push_back(std::move(record));
    }
}

std::string
CertChecker::report() const
{
    char buf[192];
    std::string out;
    std::snprintf(buf, sizeof buf,
                  "cert-check: %zu mispredicts, %" PRIu64
                  " falsified premises\n",
                  mispredicts_.size(), falsifications_);
    out += buf;
    for (const Mispredict &record : mispredicts_) {
        std::snprintf(buf, sizeof buf,
                      "  %s pc=%" PRIu64 " verdict=%s premise=%s"
                      " observed=%" PRIu64 " bound=%" PRIu64
                      " cycle=%" PRIu64 "\n",
                      mispredictKindName(record.kind),
                      static_cast<std::uint64_t>(record.pc),
                      verdictName(record.verdict),
                      premiseName(record.premise), record.observed,
                      record.bound,
                      static_cast<std::uint64_t>(record.cycle));
        out += buf;
        if (!record.repro.empty()) {
            out += "    ";
            out += record.repro;
            out += '\n';
        }
    }
    return out;
}

} // namespace clearsim
