#include "analysis/report.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/json.hh"

namespace clearsim
{

namespace
{

void
writeCapacity(JsonWriter &json, const CapacityFindings &cap)
{
    json.beginObject();
    json.key("max_lines");
    json.value(cap.maxLines);
    json.key("max_write_lines");
    json.value(cap.maxWriteLines);
    json.key("max_uops");
    json.value(cap.maxUops);
    json.key("max_loads");
    json.value(cap.maxLoads);
    json.key("max_stores");
    json.value(cap.maxStores);
    json.key("max_l1_set_lines");
    json.value(cap.maxL1SetLines);
    json.key("window_overflow");
    json.value(cap.windowOverflow);
    json.key("predicts_sq_full");
    json.value(cap.predictsSqFull);
    json.key("predicts_pin_overflow");
    json.value(cap.predictsPinOverflow);
    json.key("footprint_trackable");
    json.value(cap.footprintTrackable);
    json.key("alt_lockable");
    json.value(cap.altLockable);
    json.endObject();
}

void
writeIndirection(JsonWriter &json, const IndirectionFindings &ind)
{
    json.beginObject();
    json.key("max_chase_depth");
    json.value(std::uint64_t(ind.maxChaseDepth));
    json.key("addr_tainted");
    json.value(ind.addrTainted);
    json.key("branch_tainted");
    json.value(ind.branchTainted);
    json.key("one_pass_discoverable");
    json.value(ind.onePassDiscoverable);
    json.endObject();
}

void
writeLockOrder(JsonWriter &json, const LockOrderFindings &lock)
{
    json.beginObject();
    json.key("proven_acyclic");
    json.value(lock.provenAcyclic);
    json.key("planned_locks");
    json.value(lock.plannedLocks);
    json.key("conflict_groups");
    json.value(lock.conflictGroups);
    json.key("violations");
    json.beginArray();
    for (const LockOrderViolation &v : lock.violations) {
        json.beginObject();
        json.key("first");
        json.value(v.first);
        json.key("second");
        json.value(v.second);
        json.key("other_region");
        json.value(v.otherRegion);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
writeRegion(JsonWriter &json, const RegionAnalysis &region)
{
    json.beginObject();
    json.key("pc");
    json.value(region.pc);
    json.key("verdict");
    json.value(verdictName(region.verdict));
    json.key("capacity");
    writeCapacity(json, region.capacity);
    json.key("indirection");
    writeIndirection(json, region.indirection);
    json.key("lock_order");
    writeLockOrder(json, region.lockOrder);
    json.key("conflict_score");
    json.value(region.conflictScore);
    json.key("observed");
    json.beginObject();
    json.key("invocations");
    json.value(region.observedInvocations);
    json.key("attempts");
    json.value(region.observedAttempts);
    json.key("commits");
    json.value(region.observedCommits);
    json.endObject();
    json.endObject();
}

void
writeAnalysis(JsonWriter &json, const AnalysisResult &analysis)
{
    json.beginObject();
    json.key("workload");
    json.value(analysis.workload);
    json.key("config");
    json.value(analysis.config);
    json.key("seed");
    json.value(analysis.seed);
    json.key("limits");
    json.beginObject();
    json.key("rob");
    json.value(analysis.limits.robEntries);
    json.key("lq");
    json.value(analysis.limits.lqEntries);
    json.key("sq");
    json.value(analysis.limits.sqEntries);
    json.key("l1_ways");
    json.value(analysis.limits.l1Ways);
    json.key("alt_entries");
    json.value(analysis.limits.altEntries);
    json.key("footprint_capacity");
    json.value(analysis.limits.footprintCapacity);
    json.endObject();
    json.key("regions");
    json.beginArray();
    for (const RegionAnalysis &region : analysis.regions)
        writeRegion(json, region);
    json.endArray();
    json.key("conflict_edges");
    json.beginArray();
    for (const ConflictEdge &edge : analysis.edges) {
        json.beginObject();
        json.key("a");
        json.value(edge.a);
        json.key("b");
        json.value(edge.b);
        json.key("write_write");
        json.value(edge.sharedWriteWrite);
        json.key("read_write");
        json.value(edge.sharedReadWrite);
        json.key("score");
        json.value(edge.score);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace

std::string
analysisJsonString(const std::vector<AnalysisResult> &analyses)
{
    std::string out;
    JsonWriter json(out);
    json.beginObject();
    json.key("schema");
    json.value(kAnalysisJsonSchema);
    json.key("analyses");
    json.beginArray();
    for (const AnalysisResult &analysis : analyses)
        writeAnalysis(json, analysis);
    json.endArray();
    json.endObject();
    out.push_back('\n');
    return out;
}

bool
writeAnalysisJson(const std::string &path,
                  const std::vector<AnalysisResult> &analyses,
                  std::string &error)
{
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
        if (ec) {
            error = "cannot create " +
                    target.parent_path().string() + ": " +
                    ec.message();
            return false;
        }
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        error = "cannot open " + path + ": " + std::strerror(errno);
        return false;
    }
    os << analysisJsonString(analyses);
    os.flush();
    if (!os) {
        error = "write to " + path + " failed";
        return false;
    }
    return true;
}

void
writeAnalysisTable(std::ostream &os, const AnalysisResult &analysis)
{
    char line[160];
    std::snprintf(line, sizeof(line),
                  "# %s [%s] seed=%llu\n"
                  "# %-10s %-22s %6s %6s %6s %6s %5s %6s %6s\n",
                  analysis.workload.c_str(), analysis.config.c_str(),
                  static_cast<unsigned long long>(analysis.seed),
                  "pc", "verdict", "lines", "uops", "loads",
                  "stores", "chase", "locks", "confl");
    os << line;
    for (const RegionAnalysis &region : analysis.regions) {
        std::snprintf(
            line, sizeof(line),
            "  0x%-9llx %-22s %6llu %6llu %6llu %6llu %5u %6llu "
            "%6llu\n",
            static_cast<unsigned long long>(region.pc),
            verdictName(region.verdict),
            static_cast<unsigned long long>(region.capacity.maxLines),
            static_cast<unsigned long long>(region.capacity.maxUops),
            static_cast<unsigned long long>(
                region.capacity.maxLoads),
            static_cast<unsigned long long>(
                region.capacity.maxStores),
            unsigned(region.indirection.maxChaseDepth),
            static_cast<unsigned long long>(
                region.lockOrder.plannedLocks),
            static_cast<unsigned long long>(region.conflictScore));
        os << line;
        for (const LockOrderViolation &v : region.lockOrder.violations) {
            std::snprintf(
                line, sizeof(line),
                "    ! lock-order violation: line 0x%llx before "
                "0x%llx (vs region 0x%llx)\n",
                static_cast<unsigned long long>(v.first),
                static_cast<unsigned long long>(v.second),
                static_cast<unsigned long long>(v.otherRegion));
            os << line;
        }
    }
}

} // namespace clearsim
