#include "analysis/region_ir.hh"

#include <algorithm>

#include "common/log.hh"

namespace clearsim
{

RegionRecorder::RegionRecorder(const SystemConfig &cfg) : cfg_(cfg)
{
}

RegionRecorder::AttemptState &
RegionRecorder::state(CoreId core)
{
    if (core >= perCore_.size())
        perCore_.resize(core + 1);
    return perCore_[core];
}

void
RegionRecorder::onInvocationBegin(CoreId core, RegionPc pc)
{
    (void)core;
    RegionModel &model = models_[pc];
    model.pc = pc;
    ++model.invocations;
}

void
RegionRecorder::onInvocationEnd(CoreId core)
{
    (void)core;
}

void
RegionRecorder::onAttemptBegin(CoreId core, RegionPc pc,
                               ExecMode mode)
{
    (void)mode;
    AttemptState &st = state(core);
    st = AttemptState{};
    st.active = true;
    st.pc = pc;
}

void
RegionRecorder::onOp(CoreId core, const IrOp &op)
{
    AttemptState &st = state(core);
    if (!st.active)
        return;
    switch (op.kind) {
      case IrOpKind::Load:
        ++st.uops;
        ++st.loads;
        st.lines.emplace(op.line, false);
        st.maxChase = std::max(st.maxChase, op.chaseDepth);
        st.addrTainted |= op.tainted;
        break;
      case IrOpKind::Store:
        ++st.uops;
        ++st.stores;
        st.lines[op.line] = true;
        st.maxChase = std::max(st.maxChase, op.chaseDepth);
        st.addrTainted |= op.tainted;
        break;
      case IrOpKind::Alu:
        st.uops += op.count;
        break;
      case IrOpKind::AddrUse:
        // The feeding alu(1) already arrived as an Alu op; this op
        // only contributes provenance.
        st.maxChase = std::max(st.maxChase, op.chaseDepth);
        st.addrTainted |= op.tainted;
        break;
      case IrOpKind::Branch:
        st.maxChase = std::max(st.maxChase, op.chaseDepth);
        st.branchTainted |= op.tainted;
        break;
    }
}

void
RegionRecorder::onAttemptEnd(CoreId core, bool reached_end,
                             bool committed)
{
    AttemptState &st = state(core);
    if (!st.active)
        return;
    st.active = false;

    RegionModel &model = models_[st.pc];
    model.pc = st.pc;
    ++model.attempts;
    if (committed)
        ++model.committedAttempts;
    if (reached_end)
        ++model.completeAttempts;

    const std::uint64_t distinct = st.lines.size();
    std::uint64_t writes = 0;
    std::map<unsigned, std::uint64_t> per_set;
    std::uint64_t worst_set = 0;
    const unsigned set_mask = cfg_.cache.l1Sets - 1;
    for (const auto &[line, wrote] : st.lines) {
        if (wrote) {
            ++writes;
            model.writeLines.insert(line);
        } else {
            model.readLines.insert(line);
        }
        worst_set = std::max(
            worst_set,
            ++per_set[static_cast<unsigned>(line & set_mask)]);
    }

    model.maxDistinctLines = std::max(model.maxDistinctLines, distinct);
    model.maxWriteLines = std::max(model.maxWriteLines, writes);
    model.maxUops = std::max(model.maxUops, st.uops);
    model.maxLoads = std::max(model.maxLoads, st.loads);
    model.maxStores = std::max(model.maxStores, st.stores);
    model.maxL1SetLines = std::max(model.maxL1SetLines, worst_set);
    model.maxChaseDepth = std::max(model.maxChaseDepth, st.maxChase);
    model.addrTainted |= st.addrTainted;
    model.branchTainted |= st.branchTainted;

    if (!reached_end)
        return;

    // --- complete attempts feed footprint variation and the
    // worst-case (lock-plan) footprint ---

    std::vector<LineAddr> lines;
    lines.reserve(st.lines.size());
    for (const auto &[line, wrote] : st.lines)
        lines.push_back(line); // std::map iteration: already sorted

    auto first = firstComplete_.find(st.pc);
    if (first == firstComplete_.end())
        firstComplete_.emplace(st.pc, lines);
    else if (first->second != lines)
        model.footprintVaries = true;

    if (lines.size() > model.worstLines.size()) {
        model.worstLines = std::move(lines);
        model.worstWriteLines.clear();
        for (const auto &[line, wrote] : st.lines) {
            if (wrote)
                model.worstWriteLines.push_back(line);
        }
    }
}

} // namespace clearsim
