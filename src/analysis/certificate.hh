/**
 * @file
 * Machine-checkable eligibility certificates.
 *
 * A verdict alone asserts; a certificate *argues*. For every region
 * the analyzer classifies, buildCertificates() derives the explicit
 * premises the verdict rests on — one per structure-capacity margin
 * (ROB/LQ/SQ window, SQ discovery bound, L1-way pinning, footprint
 * recording bound, ALT lockability), the one-pass-discoverability
 * witness, the (dirSet, line) lock-order proof obligations, the
 * conflict-graph edges assumed quiescent, and CLEAR's single-retry
 * bound itself. Each premise records whether it holds statically,
 * the bound it was checked against, the static worst case observed
 * by the capture pass, and the name of the dynamic counter that
 * would falsify it at run time. The CertChecker
 * (analysis/cert_checker.hh) validates exactly these premises
 * against a live run; a verdict is only as good as its cheapest
 * falsified premise.
 *
 * Serialization: the `clearsim-cert-v1` document — all keys always
 * present, fixed order, integers and fixed strings only, so the
 * bytes are stable across platforms, runs and job counts (the same
 * contract as `clearsim-analysis-v1`).
 *
 * @code{.json}
 * {
 *   "schema": "clearsim-cert-v1",
 *   "certificates": [
 *     { "workload": "<name>", "config": "<name>", "seed": u,
 *       "max_retries": u, "clear_enabled": b,
 *       "limits": { "rob": u, "lq": u, "sq": u, "l1_ways": u,
 *                   "alt_entries": u, "footprint_capacity": u },
 *       "regions": [
 *         { "pc": u, "verdict": "<ELIGIBLE|...>",
 *           "premises": [
 *             { "id": "<cap.window|...>", "code": u,
 *               "kind": "<capacity|indirection|lock-order|
 *                         interference|retry-bound>",
 *               "holds": b, "bound": u, "observed_static": u,
 *               "falsified_by": "<counter name>" } ],
 *           "obligations": { "planned_locks": u,
 *             "conflict_groups": u,
 *             "violations": [ { "first": u, "second": u,
 *                               "other_region": u } ] },
 *           "quiescent_edges": [ { "peer": u, "score": u } ] } ] } ]
 * }
 * @endcode
 */

#ifndef CLEARSIM_ANALYSIS_CERTIFICATE_HH
#define CLEARSIM_ANALYSIS_CERTIFICATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"

namespace clearsim
{

/** Schema identifier of the certificate JSON document. */
inline constexpr const char *kCertJsonSchema = "clearsim-cert-v1";

/**
 * Stable numeric premise ids. Codes are wire format (they ride in
 * PremisePayload trace events and in the cert/audit documents):
 * append only, never renumber.
 */
enum class PremiseId : std::uint8_t
{
    /** In-core speculative window fits (SLE scope only). */
    CapWindow = 0,
    /** Failed-mode discovery never runs the SQ dry. */
    CapSq = 1,
    /** No L1 set needs more pinned lines than it has ways. */
    CapL1Pin = 2,
    /** The footprint fits the discovery recording bound. */
    CapFootprint = 3,
    /** The worst-case footprint fits (and locks in) the ALT. */
    CapAlt = 4,
    /** One failed-mode pass discovers the whole footprint. */
    IndOnePass = 5,
    /** The worst-case lock plan is proven acyclic. */
    LockOrder = 6,
    /** Every incident conflict-graph edge stays quiescent. */
    ConflictQuiescent = 7,
    /** CLEAR commits this region within a single counted retry. */
    SingleRetryBound = 8,
};

/** Number of premise ids (every region certificate carries all). */
constexpr unsigned kNumPremises = 9;

/** Stable premise name ("cap.window", ...). */
const char *premiseName(PremiseId id);

/** Premise family name ("capacity", "indirection", ...). */
const char *premiseKindName(PremiseId id);

/**
 * Name of the dynamic counter that falsifies the premise
 * ("profile.max_attempt_uops", "trace.lock_order", ...).
 */
const char *premiseFalsifier(PremiseId id);

/** One premise of one region's certificate. */
struct Premise
{
    PremiseId id = PremiseId::CapWindow;

    /** The premise holds statically (its margin is non-negative). */
    bool holds = true;

    /** The configured bound the premise was checked against. */
    std::uint64_t bound = 0;

    /** The static worst case the capture pass observed. */
    std::uint64_t observedStatic = 0;
};

/** One conflict-graph edge the certificate assumes quiescent. */
struct QuiescentEdge
{
    RegionPc peer = 0;
    std::uint64_t score = 0;
};

/** The certificate of one region's verdict. */
struct RegionCertificate
{
    RegionPc pc = 0;
    Verdict verdict = Verdict::Eligible;

    /** All kNumPremises premises, in PremiseId order. */
    std::vector<Premise> premises;

    /** Lock-order proof obligations (pass 3 evidence). */
    std::uint64_t plannedLocks = 0;
    std::uint64_t conflictGroups = 0;
    std::vector<LockOrderViolation> violations;

    /** Incident conflict edges the verdict assumes stay quiescent. */
    std::vector<QuiescentEdge> quiescentEdges;

    /** Premise by id (always present). */
    const Premise &premise(PremiseId id) const
    {
        return premises[static_cast<unsigned>(id)];
    }
};

/** All certificates of one (workload, config) capture. */
struct CertificateSet
{
    std::string workload;
    std::string config;
    std::uint64_t seed = 0;

    /** Retry budget the single-retry premise is stated against. */
    unsigned maxRetries = 0;

    /** CLEAR machinery on: the retry-bound premise is checkable. */
    bool clearEnabled = false;

    AnalysisLimits limits;

    /** Per-region certificates, sorted by pc. */
    std::vector<RegionCertificate> regions;

    /** Certificate for @p pc, or nullptr when never captured. */
    const RegionCertificate *find(RegionPc pc) const;
};

/**
 * Derive the certificates of one analysis. Every premise mirrors
 * the exact comparison the analyzer's passes made, so
 * certificate.holds recomputes to the same verdict the analyzer
 * assigned (the cert/analysis lockstep test pins this).
 */
CertificateSet buildCertificates(const AnalysisResult &analysis,
                                 const SystemConfig &cfg);

/** Serialize certificate sets as one clearsim-cert-v1 document. */
std::string certJsonString(const std::vector<CertificateSet> &sets);

/**
 * Write certJsonString() to @p path, creating parent directories as
 * needed.
 * @retval false with @p error describing the failure.
 */
bool writeCertJson(const std::string &path,
                   const std::vector<CertificateSet> &sets,
                   std::string &error);

} // namespace clearsim

#endif // CLEARSIM_ANALYSIS_CERTIFICATE_HH
