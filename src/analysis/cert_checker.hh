/**
 * @file
 * Run-time validation of analyzer certificates.
 *
 * The CertChecker is the dynamic half of the certifying analyzer:
 * where the InvariantChecker asserts the *machine's* safety
 * properties, the CertChecker asserts the *analyzer's* promises. It
 * taps a System's trace stream (installed through
 * System::setTraceTap, the same null-unless-installed discipline as
 * every other sink) and, at finalize time, audits the run's
 * HtmStats region profiles against the premises of a
 * CertificateSet. Each premise names the dynamic counter that
 * falsifies it; the checker watches exactly those counters.
 *
 * Falsifications are latched once per (region, premise). Every
 * latch synthesizes a TraceKind::PremiseFalsified event — forwarded
 * to an optional downstream sink so falsifications appear in traces
 * next to the machine events that caused them — and, after
 * finalize(), is rolled up into structured Mispredict records:
 *
 *  - false-ELIGIBLE: an ELIGIBLE verdict lost a capacity,
 *    indirection or retry-bound premise at run time;
 *  - false-DOOMED: a CAPACITY-DOOMED region committed speculatively
 *    with no capacity/SQ-full abort and dynamic maxima inside every
 *    configured limit — the static doom never materialized;
 *  - order-proof-violated: a proven-acyclic lock plan acquired out
 *    of (dirSet, line) order dynamically;
 *  - interference-underestimate: a conflict-quiescence assumption
 *    met a real conflict abort.
 *
 * Each Mispredict carries the region pc, the falsified premise, the
 * observed counter value vs the certified bound, and the run's repro
 * string, so any mispredict replays byte-identically from its
 * record alone.
 */

#ifndef CLEARSIM_ANALYSIS_CERT_CHECKER_HH
#define CLEARSIM_ANALYSIS_CERT_CHECKER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/certificate.hh"
#include "common/config.hh"
#include "common/trace.hh"
#include "htm/htm_stats.hh"

namespace clearsim
{

/** How a verdict was wrong. */
enum class MispredictKind : std::uint8_t
{
    /** ELIGIBLE region falsified a capacity/indirection/retry
     *  premise. */
    FalseEligible = 0,
    /** CAPACITY-DOOMED region ran clean within every limit. */
    FalseDoomed = 1,
    /** Proven-acyclic lock plan violated (dirSet, line) order. */
    OrderProofViolated = 2,
    /** Assumed-quiescent region suffered real conflict aborts. */
    InterferenceUnderestimate = 3,
};

/** Number of mispredict kinds. */
constexpr unsigned kNumMispredictKinds = 4;

/** Stable kind name ("false-ELIGIBLE", ...). */
const char *mispredictKindName(MispredictKind kind);

/** One falsified promise of one region, with its evidence. */
struct Mispredict
{
    MispredictKind kind = MispredictKind::FalseEligible;
    RegionPc pc = 0;
    Verdict verdict = Verdict::Eligible;
    PremiseId premise = PremiseId::CapWindow;

    /** Dynamic counter value that broke the premise. */
    std::uint64_t observed = 0;

    /** The certified bound it broke. */
    std::uint64_t bound = 0;

    /** Cycle of the falsifying event (0: finalize-time audit). */
    Cycle cycle = 0;

    /** PR-5 repro string of the falsifying run. */
    std::string repro;
};

/** Dynamic per-region tallies the checker accumulates from traces. */
struct RegionOutcome
{
    std::uint64_t specCommits = 0;
    std::uint64_t sClCommits = 0;
    std::uint64_t nsClCommits = 0;
    std::uint64_t fallbackCommits = 0;
    std::uint64_t conflictAborts = 0;
    std::uint64_t lockOrderViolations = 0;
    std::uint64_t retryBoundViolations = 0;
};

/** See the file comment. */
class CertChecker
{
  public:
    /**
     * @param certs certificates of the capture this run replays;
     *        must outlive the checker
     * @param cfg the (full, possibly faulted) run configuration
     */
    CertChecker(const CertificateSet &certs, const SystemConfig &cfg);

    /** Record the repro string stamped into every Mispredict. */
    void setRepro(std::string repro) { repro_ = std::move(repro); }

    /**
     * Install a sink receiving the synthesized PremiseFalsified
     * events (e.g. the run's user trace sink).
     */
    void setDownstream(TraceSink sink)
    {
        downstream_ = std::move(sink);
    }

    /** Trace tap: install via System::setTraceTap. */
    void onTrace(const TraceEvent &event);

    /**
     * Finalize-time audit of the run's region profiles (capacity and
     * indirection premises live in HtmStats, not the trace stream),
     * then roll every latched falsification into Mispredict records.
     * Call exactly once, after System::runToCompletion.
     */
    void finalize(const HtmStats &stats, Cycle end_cycle);

    /** True once any premise was falsified. */
    bool anyFalsified() const { return falsifications_ > 0; }

    /** Latched falsifications (valid any time). */
    std::uint64_t falsificationCount() const
    {
        return falsifications_;
    }

    /** Mispredict records, sorted by (pc, premise); post-finalize. */
    const std::vector<Mispredict> &mispredicts() const
    {
        return mispredicts_;
    }

    /** Dynamic tallies per region pc (valid any time). */
    const std::map<RegionPc, RegionOutcome> &outcomes() const
    {
        return outcomes_;
    }

    /** Synthesized PremiseFalsified events (bounded). */
    const std::vector<TraceEvent> &falsifiedEvents() const
    {
        return events_;
    }

    /** Human-readable summary of every mispredict. */
    std::string report() const;

  private:
    /** Latch one (pc, premise) falsification. */
    void noteFalsified(RegionPc pc, PremiseId premise,
                       std::uint64_t observed, std::uint64_t bound,
                       Cycle cycle, CoreId core);

    bool alreadyFalsified(RegionPc pc, PremiseId premise) const;

    /** Audit one region's profile counters against its premises. */
    void auditProfile(const RegionCertificate &cert,
                      const RegionProfile &profile, Cycle end_cycle);

    /** Per-core attempt state driving the trace-time checks. */
    struct CoreState
    {
        RegionPc pc = 0;
        ExecMode mode = ExecMode::Speculative;
        bool inAttempt = false;
        bool haveLast = false;
        unsigned lastSet = 0;
        LineAddr lastLine = 0;
    };

    /** One latched falsification. */
    struct Falsification
    {
        bool hit = false;
        std::uint64_t observed = 0;
        std::uint64_t bound = 0;
        Cycle cycle = 0;
    };

    const CertificateSet &certs_;
    SystemConfig cfg_;
    std::vector<CoreState> cores_;
    std::map<RegionPc, std::vector<Falsification>> latched_;
    std::map<RegionPc, RegionOutcome> outcomes_;
    std::vector<Mispredict> mispredicts_;
    std::vector<TraceEvent> events_;
    TraceSink downstream_;
    std::uint64_t falsifications_ = 0;
    bool finalized_ = false;
    std::string repro_;
};

} // namespace clearsim

#endif // CLEARSIM_ANALYSIS_CERT_CHECKER_HH
