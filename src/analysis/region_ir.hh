/**
 * @file
 * Region IR capture: RegionRecorder implements the htm layer's
 * RegionRecordSink and folds the per-operation callback stream into
 * one RegionModel per static atomic region.
 *
 * The recorder aggregates on the fly — it never stores whole op
 * lists — so capturing a long run costs O(regions * footprint)
 * memory. All aggregate maxima are uncapped: unlike the runtime
 * Footprint, which stops recording at its capacity bound, the model
 * keeps exact distinct-line counts, which is what lets the static
 * capacity pass dominate every dynamically observed value.
 *
 * Because recording hooks are a null-unless-installed pointer in
 * TxContext, a capture run is cycle-identical to a plain run with
 * the same (configuration, seed); the models therefore describe
 * exactly the executions a matching measurement run performs.
 */

#ifndef CLEARSIM_ANALYSIS_REGION_IR_HH
#define CLEARSIM_ANALYSIS_REGION_IR_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/config.hh"
#include "htm/region_record.hh"

namespace clearsim
{

/** Aggregated static model of one atomic region. */
struct RegionModel
{
    RegionPc pc = 0;

    /** Invocations that began while recording. */
    std::uint64_t invocations = 0;

    /** Execution attempts observed (all modes). */
    std::uint64_t attempts = 0;

    /** Attempts that committed. */
    std::uint64_t committedAttempts = 0;

    /** Attempts whose body ran to the region's end. */
    std::uint64_t completeAttempts = 0;

    // --- per-attempt maxima (uncapped) ---

    /** Largest distinct-cacheline footprint of any attempt. */
    std::uint64_t maxDistinctLines = 0;

    /** Largest distinct written-line count of any attempt. */
    std::uint64_t maxWriteLines = 0;

    /** Largest micro-op / load / store count of any attempt. */
    std::uint64_t maxUops = 0;
    std::uint64_t maxLoads = 0;
    std::uint64_t maxStores = 0;

    /** Worst same-L1-set line count of any attempt (way pressure). */
    std::uint64_t maxL1SetLines = 0;

    /** Deepest pointer chase feeding an address or branch. */
    std::uint16_t maxChaseDepth = 0;

    // --- provenance flags ---

    /** Some memory address derived from an in-AR load. */
    bool addrTainted = false;

    /** Some branch condition derived from an in-AR load. */
    bool branchTainted = false;

    /** Two complete attempts touched different line sets. */
    bool footprintVaries = false;

    // --- union sets over all attempts (conflict graph inputs) ---

    std::set<LineAddr> readLines;
    std::set<LineAddr> writeLines;

    /**
     * Line set of the largest complete attempt (sorted), with the
     * written subset: the footprint a worst-case discovery would
     * learn, and the basis of the lock-order proof.
     */
    std::vector<LineAddr> worstLines;
    std::vector<LineAddr> worstWriteLines;
};

/** RegionRecordSink that aggregates the stream into RegionModels. */
class RegionRecorder : public RegionRecordSink
{
  public:
    /** @param cfg the configuration of the System recorded from
     *        (cache geometry shapes the per-set pressure metric) */
    explicit RegionRecorder(const SystemConfig &cfg);

    void onInvocationBegin(CoreId core, RegionPc pc) override;
    void onInvocationEnd(CoreId core) override;
    void onAttemptBegin(CoreId core, RegionPc pc,
                        ExecMode mode) override;
    void onOp(CoreId core, const IrOp &op) override;
    void onAttemptEnd(CoreId core, bool reached_end,
                      bool committed) override;

    /** Models keyed (and thus deterministically ordered) by pc. */
    const std::map<RegionPc, RegionModel> &models() const
    {
        return models_;
    }

  private:
    /** In-flight per-core attempt aggregation. */
    struct AttemptState
    {
        bool active = false;
        RegionPc pc = 0;
        /** line -> attempt wrote it */
        std::map<LineAddr, bool> lines;
        std::uint64_t uops = 0;
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint16_t maxChase = 0;
        bool addrTainted = false;
        bool branchTainted = false;
    };

    AttemptState &state(CoreId core);

    SystemConfig cfg_;
    std::vector<AttemptState> perCore_;
    std::map<RegionPc, RegionModel> models_;

    /**
     * First complete attempt's line set per region, for the
     * footprint-variation flag.
     */
    std::map<RegionPc, std::vector<LineAddr>> firstComplete_;
};

} // namespace clearsim

#endif // CLEARSIM_ANALYSIS_REGION_IR_HH
