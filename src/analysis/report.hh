/**
 * @file
 * Serialization of analysis results: the `clearsim-analysis-v1`
 * JSON document and the human verdict table.
 *
 * Schema "clearsim-analysis-v1" (all keys always present, fixed
 * order, integers only — no doubles — so the document is
 * byte-stable across platforms and runs):
 *
 * @code{.json}
 * {
 *   "schema": "clearsim-analysis-v1",
 *   "analyses": [
 *     {
 *       "workload": "<name>", "config": "<name>", "seed": <uint>,
 *       "limits": { "rob": u, "lq": u, "sq": u, "l1_ways": u,
 *                   "alt_entries": u, "footprint_capacity": u },
 *       "regions": [
 *         { "pc": u, "verdict": "<ELIGIBLE|...>",
 *           "capacity": { "max_lines": u, "max_write_lines": u,
 *             "max_uops": u, "max_loads": u, "max_stores": u,
 *             "max_l1_set_lines": u, "window_overflow": b,
 *             "predicts_sq_full": b, "predicts_pin_overflow": b,
 *             "footprint_trackable": b, "alt_lockable": b },
 *           "indirection": { "max_chase_depth": u,
 *             "addr_tainted": b, "branch_tainted": b,
 *             "one_pass_discoverable": b },
 *           "lock_order": { "proven_acyclic": b,
 *             "planned_locks": u, "conflict_groups": u,
 *             "violations": [ { "first": u, "second": u,
 *                               "other_region": u } ] },
 *           "conflict_score": u,
 *           "observed": { "invocations": u, "attempts": u,
 *                         "commits": u } } ],
 *       "conflict_edges": [
 *         { "a": u, "b": u, "write_write": u, "read_write": u,
 *           "score": u } ]
 *     } ]
 * }
 * @endcode
 */

#ifndef CLEARSIM_ANALYSIS_REPORT_HH
#define CLEARSIM_ANALYSIS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"

namespace clearsim
{

/** Schema identifier of the analysis JSON document. */
inline constexpr const char *kAnalysisJsonSchema =
    "clearsim-analysis-v1";

/** Serialize analyses as one clearsim-analysis-v1 document. */
std::string analysisJsonString(
    const std::vector<AnalysisResult> &analyses);

/**
 * Write analysisJsonString() to @p path, creating parent
 * directories as needed.
 * @retval false with @p error describing the failure.
 */
bool writeAnalysisJson(const std::string &path,
                       const std::vector<AnalysisResult> &analyses,
                       std::string &error);

/** Print the human verdict table for one analysis. */
void writeAnalysisTable(std::ostream &os,
                        const AnalysisResult &analysis);

} // namespace clearsim

#endif // CLEARSIM_ANALYSIS_REPORT_HH
