#include "analysis/analyzer.hh"

#include <algorithm>

#include "core/alt.hh"
#include "core/crt.hh"
#include "htm/footprint.hh"

namespace clearsim
{

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Eligible:
        return "ELIGIBLE";
      case Verdict::CapacityDoomed:
        return "CAPACITY-DOOMED";
      case Verdict::UnboundedIndirection:
        return "UNBOUNDED-INDIRECTION";
      case Verdict::LockOrderRisk:
        return "LOCK-ORDER-RISK";
    }
    return "?";
}

namespace
{

/** The (directory set, line) key that orders lock acquisition. */
std::pair<unsigned, LineAddr>
lockKey(LineAddr line, unsigned dir_sets)
{
    return {static_cast<unsigned>(line & (dir_sets - 1)), line};
}

/** Sort lines into the lexicographical acquisition order. */
std::vector<LineAddr>
acquisitionOrder(std::vector<LineAddr> lines, unsigned dir_sets)
{
    std::sort(lines.begin(), lines.end(),
              [dir_sets](LineAddr a, LineAddr b) {
                  return lockKey(a, dir_sets) < lockKey(b, dir_sets);
              });
    return lines;
}

/** Build the worst-case discovery footprint of a model. */
Footprint
worstFootprint(const RegionModel &model, const SystemConfig &cfg)
{
    Footprint fp(footprintCapacity(cfg.clear));
    for (LineAddr line : model.worstLines) {
        const bool wrote =
            std::binary_search(model.worstWriteLines.begin(),
                               model.worstWriteLines.end(), line);
        fp.record(line, wrote);
    }
    return fp;
}

} // namespace

CapacityFindings
Analyzer::capacityPass(const RegionModel &model) const
{
    CapacityFindings out;
    out.maxLines = model.maxDistinctLines;
    out.maxWriteLines = model.maxWriteLines;
    out.maxUops = model.maxUops;
    out.maxLoads = model.maxLoads;
    out.maxStores = model.maxStores;
    out.maxL1SetLines = model.maxL1SetLines;

    const CoreConfig &core = cfg_.core;
    out.windowOverflow = cfg_.scope == SpeculationScope::InCore &&
                         (model.maxUops > core.robEntries ||
                          model.maxLoads > core.lqEntries ||
                          model.maxStores > core.sqEntries);
    out.predictsSqFull = model.maxStores > core.sqEntries;
    out.predictsPinOverflow =
        model.maxL1SetLines > cfg_.cache.l1Ways;
    out.footprintTrackable =
        model.maxDistinctLines <= footprintCapacity(cfg_.clear);

    if (model.worstLines.empty()) {
        // Nothing to lock: trivially holdable.
        out.altLockable = true;
    } else {
        const Alt alt(cfg_.clear.altEntries, cfg_.cache.dirSets,
                      cfg_.cache.l1Sets, cfg_.cache.l1Ways);
        out.altLockable =
            alt.lockable(worstFootprint(model, cfg_)) &&
            model.maxDistinctLines <= cfg_.clear.altEntries;
    }
    return out;
}

IndirectionFindings
Analyzer::indirectionPass(const RegionModel &model) const
{
    IndirectionFindings out;
    out.maxChaseDepth = model.maxChaseDepth;
    out.addrTainted = model.addrTainted;
    out.branchTainted = model.branchTainted;
    // Load-derived addresses (or branches steering the access path)
    // make the footprint data-dependent: a single failed-mode pass
    // sees one instantiation, not the region's reachable set.
    out.onePassDiscoverable =
        !model.addrTainted && !model.branchTainted;
    return out;
}

LockOrderFindings
Analyzer::lockOrderPass(const RegionModel &model) const
{
    LockOrderFindings out;
    if (model.worstLines.empty())
        return out;

    const Alt alt(cfg_.clear.altEntries, cfg_.cache.dirSets,
                  cfg_.cache.l1Sets, cfg_.cache.l1Ways);
    const Footprint fp = worstFootprint(model, cfg_);
    if (!alt.lockable(fp)) {
        // No plan can be built; the region serializes through the
        // fallback lock, which is a total order by itself.
        return out;
    }

    const Crt empty_crt(cfg_.clear.crtEntries, cfg_.clear.crtWays);
    const std::vector<LockPlanEntry> plan =
        alt.buildPlan(fp, empty_crt, /*lock_all=*/true);
    out.plannedLocks = plan.size();

    // Proof obligation 1: strictly increasing (dirSet, line) order
    // across the whole plan — a total order admits no cycle.
    const unsigned dir_sets = cfg_.cache.dirSets;
    for (std::size_t i = 1; i < plan.size(); ++i) {
        if (!(lockKey(plan[i - 1].line, dir_sets) <
              lockKey(plan[i].line, dir_sets))) {
            out.provenAcyclic = false;
            out.violations.push_back(
                LockOrderViolation{plan[i - 1].line, plan[i].line, 0});
        }
    }

    // Proof obligation 2: conflict groups are contiguous runs of one
    // directory set, in increasing set order (group/set locking
    // never interleaves two sets).
    const std::vector<AltGroup> groups = alt.groupsOf(plan);
    out.conflictGroups = groups.size();
    unsigned prev_set = 0;
    bool have_prev = false;
    for (const AltGroup &group : groups) {
        for (std::size_t i = group.begin; i < group.end; ++i) {
            if (!plan[i].needsLock)
                continue;
            const unsigned set = static_cast<unsigned>(
                plan[i].line & (dir_sets - 1));
            if (set != group.dirSet) {
                out.provenAcyclic = false;
                out.violations.push_back(LockOrderViolation{
                    plan[group.begin].line, plan[i].line, 0});
            }
        }
        if (have_prev && group.dirSet <= prev_set) {
            out.provenAcyclic = false;
            out.violations.push_back(LockOrderViolation{
                plan[group.begin].line, plan[group.begin].line, 0});
        }
        prev_set = group.dirSet;
        have_prev = true;
    }
    return out;
}

void
Analyzer::crossRegionOrderPass(
    const std::map<RegionPc, RegionModel> &models,
    std::vector<RegionAnalysis> &regions) const
{
    // Proof obligation 3: any two regions acquire their common lines
    // in the same relative order, so no cross-region cycle can form.
    const unsigned dir_sets = cfg_.cache.dirSets;
    std::map<RegionPc, std::vector<LineAddr>> order;
    for (const auto &[pc, model] : models)
        order[pc] = acquisitionOrder(model.worstLines, dir_sets);

    std::map<RegionPc, RegionAnalysis *> byPc;
    for (RegionAnalysis &r : regions)
        byPc[r.pc] = &r;

    for (auto a = order.begin(); a != order.end(); ++a) {
        for (auto b = std::next(a); b != order.end(); ++b) {
            std::vector<LineAddr> common;
            std::set_intersection(
                models.at(a->first).worstLines.begin(),
                models.at(a->first).worstLines.end(),
                models.at(b->first).worstLines.begin(),
                models.at(b->first).worstLines.end(),
                std::back_inserter(common));
            if (common.size() < 2)
                continue;
            auto filtered = [&common](
                                const std::vector<LineAddr> &seq) {
                std::vector<LineAddr> out;
                for (LineAddr line : seq) {
                    if (std::binary_search(common.begin(),
                                           common.end(), line))
                        out.push_back(line);
                }
                return out;
            };
            const std::vector<LineAddr> fa = filtered(a->second);
            const std::vector<LineAddr> fb = filtered(b->second);
            for (std::size_t i = 0; i < fa.size() && i < fb.size();
                 ++i) {
                if (fa[i] == fb[i])
                    continue;
                RegionAnalysis &ra = *byPc.at(a->first);
                RegionAnalysis &rb = *byPc.at(b->first);
                ra.lockOrder.provenAcyclic = false;
                ra.lockOrder.violations.push_back(LockOrderViolation{
                    fa[i], fb[i], b->first});
                rb.lockOrder.provenAcyclic = false;
                rb.lockOrder.violations.push_back(LockOrderViolation{
                    fb[i], fa[i], a->first});
                break;
            }
        }
    }
}

void
Analyzer::conflictGraphPass(
    const std::map<RegionPc, RegionModel> &models,
    AnalysisResult &result) const
{
    std::map<RegionPc, std::uint64_t> scores;
    for (auto a = models.begin(); a != models.end(); ++a) {
        for (auto b = std::next(a); b != models.end(); ++b) {
            const RegionModel &ma = a->second;
            const RegionModel &mb = b->second;

            // Lines touched by both regions, classified by who
            // wrote: write-write sharing weighs double (both
            // directions conflict), read-write single.
            std::set<LineAddr> touched_a = ma.readLines;
            touched_a.insert(ma.writeLines.begin(),
                             ma.writeLines.end());
            ConflictEdge edge;
            edge.a = a->first;
            edge.b = b->first;
            for (LineAddr line : touched_a) {
                const bool wa = ma.writeLines.count(line) != 0;
                const bool wb = mb.writeLines.count(line) != 0;
                const bool rb = mb.readLines.count(line) != 0;
                if (!wb && !rb)
                    continue;
                if (wa && wb)
                    ++edge.sharedWriteWrite;
                else if (wa || wb)
                    ++edge.sharedReadWrite;
            }
            edge.score =
                2 * edge.sharedWriteWrite + edge.sharedReadWrite;
            if (edge.score == 0)
                continue;
            scores[edge.a] += edge.score;
            scores[edge.b] += edge.score;
            result.edges.push_back(edge);
        }
    }
    for (RegionAnalysis &region : result.regions)
        region.conflictScore = scores[region.pc];
}

AnalysisResult
Analyzer::analyze(
    const std::map<RegionPc, RegionModel> &models) const
{
    AnalysisResult result;
    result.limits.robEntries = cfg_.core.robEntries;
    result.limits.lqEntries = cfg_.core.lqEntries;
    result.limits.sqEntries = cfg_.core.sqEntries;
    result.limits.l1Ways = cfg_.cache.l1Ways;
    result.limits.altEntries = cfg_.clear.altEntries;
    result.limits.footprintCapacity = footprintCapacity(cfg_.clear);
    result.regions.reserve(models.size());

    for (const auto &[pc, model] : models) {
        RegionAnalysis region;
        region.pc = pc;
        region.capacity = capacityPass(model);
        region.indirection = indirectionPass(model);
        region.lockOrder = lockOrderPass(model);
        region.observedInvocations = model.invocations;
        region.observedAttempts = model.attempts;
        region.observedCommits = model.committedAttempts;
        result.regions.push_back(std::move(region));
    }

    crossRegionOrderPass(models, result.regions);
    conflictGraphPass(models, result);

    for (RegionAnalysis &region : result.regions) {
        const CapacityFindings &cap = region.capacity;
        if (cap.windowOverflow || cap.predictsSqFull ||
            cap.predictsPinOverflow || !cap.footprintTrackable ||
            !cap.altLockable) {
            region.verdict = Verdict::CapacityDoomed;
        } else if (!region.indirection.onePassDiscoverable) {
            region.verdict = Verdict::UnboundedIndirection;
        } else if (!region.lockOrder.provenAcyclic) {
            region.verdict = Verdict::LockOrderRisk;
        } else {
            region.verdict = Verdict::Eligible;
        }
    }
    return result;
}

} // namespace clearsim
