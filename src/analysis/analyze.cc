#include "analysis/analyze.hh"

#include "analysis/region_ir.hh"
#include "core/system.hh"

namespace clearsim
{

AnalyzeOutcome
analyzeWorkload(const AnalyzeRequest &request)
{
    SystemConfig cfg = makeConfigByName(request.config);
    cfg.maxRetries = request.maxRetries;
    if (request.params.threads < cfg.numCores)
        cfg.numCores = request.params.threads;

    AnalyzeOutcome outcome;
    outcome.config = cfg;

    System sys(cfg, request.params.seed);
    RegionRecorder recorder(cfg);
    sys.setRegionRecorder(&recorder);

    auto workload = makeWorkload(request.workload, request.params);
    outcome.cycles = runWorkloadThreads(sys, *workload);
    outcome.dynamicStats = sys.stats();

    const Analyzer analyzer(cfg);
    outcome.analysis = analyzer.analyze(recorder.models());
    outcome.analysis.workload = request.workload;
    outcome.analysis.config = request.config;
    outcome.analysis.seed = request.params.seed;
    return outcome;
}

} // namespace clearsim
