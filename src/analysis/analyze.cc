#include "analysis/analyze.hh"

#include "analysis/region_ir.hh"
#include "core/system.hh"

namespace clearsim
{

AnalyzeOutcome
analyzeWithConfig(const SystemConfig &cfg,
                  const std::string &workload_name,
                  const WorkloadParams &params)
{
    AnalyzeOutcome outcome;
    outcome.config = cfg;

    System sys(cfg, params.seed);
    RegionRecorder recorder(cfg);
    sys.setRegionRecorder(&recorder);

    auto workload = makeWorkload(workload_name, params);
    outcome.cycles = runWorkloadThreads(sys, *workload);
    outcome.dynamicStats = sys.stats();

    const Analyzer analyzer(cfg);
    outcome.analysis = analyzer.analyze(recorder.models());
    outcome.analysis.workload = workload_name;
    outcome.analysis.config = cfg.name;
    outcome.analysis.seed = params.seed;
    return outcome;
}

AnalyzeOutcome
analyzeWorkload(const AnalyzeRequest &request)
{
    SystemConfig cfg = makeConfigByName(request.config);
    cfg.maxRetries = request.maxRetries;
    if (request.params.threads < cfg.numCores)
        cfg.numCores = request.params.threads;

    AnalyzeOutcome outcome =
        analyzeWithConfig(cfg, request.workload, request.params);
    // The report labels the analysis with the requested spec, not
    // the resolved name (kept for the pinned golden files).
    outcome.analysis.config = request.config;
    return outcome;
}

RegionVerdictMap
verdictMap(const AnalysisResult &analysis)
{
    RegionVerdictMap verdicts;
    for (const RegionAnalysis &region : analysis.regions) {
        RegionVerdict verdict = RegionVerdict::Eligible;
        switch (region.verdict) {
        case Verdict::Eligible:
            verdict = RegionVerdict::Eligible;
            break;
        case Verdict::CapacityDoomed:
            verdict = RegionVerdict::CapacityDoomed;
            break;
        case Verdict::UnboundedIndirection:
            verdict = RegionVerdict::UnboundedIndirection;
            break;
        case Verdict::LockOrderRisk:
            verdict = RegionVerdict::LockOrderRisk;
            break;
        }
        verdicts.emplace(region.pc, verdict);
    }
    return verdicts;
}

} // namespace clearsim
