/**
 * @file
 * Ahead-of-run analysis orchestration.
 *
 * analyzeWorkload() performs one capture run: it builds a System
 * for the requested configuration, installs a RegionRecorder,
 * executes the workload exactly as a measurement run would, and
 * feeds the captured RegionModels through the Analyzer's passes.
 *
 * Because the recorder never perturbs execution, the capture run is
 * cycle-identical to a plain run with the same (configuration,
 * seed). The returned dynamic statistics are therefore the very
 * statistics a matching measurement run produces, which is what the
 * static-dominates-dynamic property tests exploit.
 */

#ifndef CLEARSIM_ANALYSIS_ANALYZE_HH
#define CLEARSIM_ANALYSIS_ANALYZE_HH

#include <string>

#include "analysis/analyzer.hh"
#include "htm/htm_stats.hh"
#include "policy/region_policy.hh"
#include "workloads/workload.hh"

namespace clearsim
{

/** One capture-and-analyze request. */
struct AnalyzeRequest
{
    /** ConfigRegistry spec string ("C", "B:maxRetries=8", ...). */
    std::string config = "C";

    /** Workload name from the registry. */
    std::string workload = "bitcoin";

    WorkloadParams params;

    /** Retry limit applied to the capture configuration. */
    unsigned maxRetries = 4;
};

/** Everything one capture run yields. */
struct AnalyzeOutcome
{
    /** The static analysis (verdicts, proofs, conflict graph). */
    AnalysisResult analysis;

    /** The configuration the capture ran under. */
    SystemConfig config;

    /** Dynamic counters of the capture run (cross-check input). */
    HtmStats dynamicStats;

    /** Total simulated cycles of the capture run. */
    Cycle cycles = 0;
};

/** Run one capture and analyze it. fatal()s on unknown names. */
AnalyzeOutcome analyzeWorkload(const AnalyzeRequest &request);

/**
 * Run one capture under exactly @p cfg — no spec re-resolution, no
 * thread capping — and analyze it. This is the primitive behind
 * analyzeWorkload() and the one the daemon and the adaptive preset
 * use so that capture and measured run share one resolved config.
 * outcome.analysis.config is set to cfg.name.
 */
AnalyzeOutcome analyzeWithConfig(const SystemConfig &cfg,
                                 const std::string &workload,
                                 const WorkloadParams &params);

/**
 * The analysis verdicts as a machine-usable map of region pc ->
 * policy-layer RegionVerdict, the input RegionPolicyTable::
 * fromVerdicts consumes (the policy library cannot see the
 * analyzer's own Verdict enum, which layers above it).
 */
RegionVerdictMap verdictMap(const AnalysisResult &analysis);

} // namespace clearsim

#endif // CLEARSIM_ANALYSIS_ANALYZE_HH
