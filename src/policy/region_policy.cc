#include "policy/region_policy.hh"

#include <cinttypes>
#include <cstdio>

#include "common/config.hh"

namespace clearsim
{
namespace
{

AdaptAction
actionFor(RegionVerdict verdict, const AdaptConfig &adapt)
{
    switch (verdict) {
    case RegionVerdict::Eligible:
        return adapt.eligible;
    case RegionVerdict::CapacityDoomed:
        return adapt.capacityDoomed;
    case RegionVerdict::UnboundedIndirection:
        return adapt.unboundedIndirection;
    case RegionVerdict::LockOrderRisk:
        return adapt.lockOrderRisk;
    }
    return AdaptAction::Clear;
}

} // namespace

namespace
{

RegionDecision
resolveForAction(RegionVerdict verdict, AdaptAction action,
                 const SystemConfig &cfg)
{
    RegionDecision decision;
    decision.verdict = verdict;
    decision.action = action;

    switch (decision.action) {
    case AdaptAction::Clear:
        decision.retryBudget = cfg.maxRetries;
        decision.allowDiscovery = true;
        decision.allowCacheLocked = true;
        break;
    case AdaptAction::Fallback:
        decision.retryBudget = 0;
        decision.allowDiscovery = false;
        decision.allowCacheLocked = false;
        break;
    case AdaptAction::BoundedRetry:
        // Clamp so the single-retry-bound invariant (no non-fallback
        // commit at countedRetries >= maxRetries) holds under "A".
        decision.retryBudget =
            cfg.adapt.boundedRetries < cfg.maxRetries
                ? cfg.adapt.boundedRetries
                : cfg.maxRetries;
        decision.allowDiscovery = false;
        decision.allowCacheLocked = false;
        break;
    case AdaptAction::ConservativeLock:
        // Discovery may run (it feeds the ERT) but the region never
        // enters a cacheline-locked mode: it retries speculatively,
        // then serializes on the fallback lock, which is ordered
        // against every other region by construction.
        decision.retryBudget = cfg.maxRetries;
        decision.allowDiscovery = true;
        decision.allowCacheLocked = false;
        break;
    case AdaptAction::Sle:
        decision.retryBudget = cfg.maxRetries;
        decision.allowDiscovery = false;
        decision.allowCacheLocked = false;
        decision.inCoreSpeculation = true;
        break;
    }
    return decision;
}

} // namespace

RegionDecision
resolveRegionDecision(RegionVerdict verdict, const SystemConfig &cfg)
{
    return resolveForAction(verdict, actionFor(verdict, cfg.adapt),
                            cfg);
}

RegionPolicyTable
RegionPolicyTable::fromVerdicts(const RegionVerdictMap &verdicts,
                                const SystemConfig &cfg)
{
    RegionPolicyTable table;
    for (const auto &[pc, verdict] : verdicts) {
        // A pc-keyed override (the audit's feedback edge) beats the
        // verdict-class mapping for exactly that region.
        const auto forced = cfg.adapt.pcOverrides.find(pc);
        if (forced != cfg.adapt.pcOverrides.end()) {
            table.decisions_.emplace(
                pc,
                resolveForAction(verdict, forced->second, cfg));
        } else {
            table.decisions_.emplace(
                pc, resolveRegionDecision(verdict, cfg));
        }
    }
    return table;
}

std::string
RegionPolicyTable::report() const
{
    std::string out;
    out.reserve(decisions_.size() * 64);
    for (const auto &[pc, decision] : decisions_) {
        char line[128];
        std::snprintf(line, sizeof line,
                      "region 0x%-6" PRIx64 " %-21s -> %-17s "
                      "budget=%u\n",
                      pc, regionVerdictName(decision.verdict),
                      adaptActionName(decision.action),
                      decision.retryBudget);
        out += line;
    }
    return out;
}

} // namespace clearsim
