#include "policy/config_registry.hh"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>

#include "common/json.hh"
#include "common/log.hh"
#include "fault/fault_plans.hh"

namespace clearsim
{

namespace
{

/** Strict full-string decimal parse (no signs, no suffixes). */
bool
parseValue(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    const char *begin = text.data();
    const char *end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out, 10);
    return ec == std::errc() && ptr == end;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

} // namespace

ConfigRegistry &
ConfigRegistry::instance()
{
    static ConfigRegistry registry;
    return registry;
}

ConfigRegistry::ConfigRegistry()
{
    registerPreset("B",
                   "baseline best-effort HTM (TSX-like "
                   "requester-wins conflicts)",
                   makeBaselineConfig);
    registerPreset("P",
                   "PowerTM: one prioritized power-mode "
                   "transaction system-wide",
                   makePowerTmConfig);
    registerPreset("C",
                   "CLEAR over requester-wins (the paper's main "
                   "configuration)",
                   makeClearConfig);
    registerPreset("W", "CLEAR over PowerTM (Section 5.2 rules)",
                   makeClearPowerConfig);
    registerPreset("A",
                   "adaptive: static per-region verdicts choose the "
                   "policy (CLEAR / fallback / bounded-retry / "
                   "conservative-lock)",
                   makeAdaptiveConfig);

    registerModifier("scl-all-reads",
                     "S-CL locks every learned address instead of "
                     "writes plus CRT reads",
                     [](SystemConfig &cfg) {
                         cfg.clear.sclLockAllReads = true;
                     });
    registerModifier("no-failed-mode",
                     "disable failed-mode discovery continuation "
                     "(Section 4.1)",
                     [](SystemConfig &cfg) {
                         cfg.clear.failedModeDiscovery = false;
                     });
    registerModifier("sle",
                     "in-core (SLE) speculation: ROB/LQ/SQ bound "
                     "the region",
                     [](SystemConfig &cfg) {
                         cfg.scope = SpeculationScope::InCore;
                     });
    registerModifier("htm",
                     "out-of-core (HTM) speculation (the default)",
                     [](SystemConfig &cfg) {
                         cfg.scope = SpeculationScope::OutOfCore;
                     });
    registerModifier("profile",
                     "measurement-only mode: keep executing past "
                     "conflicts to record full footprints",
                     [](SystemConfig &cfg) {
                         cfg.profileMode = true;
                     });
    registerModifier("watchdog",
                     "install the invariant checker + livelock "
                     "watchdog (no faults injected by itself)",
                     [](SystemConfig &cfg) {
                         cfg.fault.watchdog = true;
                     });
    for (const FaultPlanInfo &plan : faultPlans()) {
        const std::string plan_name = plan.name;
        registerModifier(plan_name, plan.description,
                         [plan_name](SystemConfig &cfg) {
                             applyFaultPlan(plan_name, cfg.fault);
                         });
    }

    auto add = [this](const char *name, const char *description,
                      std::uint64_t min_value, std::uint64_t max_value,
                      std::function<void(SystemConfig &, std::uint64_t)>
                          apply) {
        overrides_.push_back({name, description, min_value, max_value,
                              std::move(apply)});
    };
    add("maxRetries", "speculative retries before fallback", 0,
        1000000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.maxRetries = static_cast<unsigned>(v);
        });
    add("numCores", "simulated cores (conflict masks cap at 64)", 1,
        64, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.numCores = static_cast<unsigned>(v);
        });
    add("altEntries", "Addresses-to-Lock Table entries", 1, 65536,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.clear.altEntries = static_cast<unsigned>(v);
        });
    add("ertEntries", "Explored Region Table entries", 1, 65536,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.clear.ertEntries = static_cast<unsigned>(v);
        });
    add("crtEntries", "Conflicting Reads Table entries", 1,
        1u << 20, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.clear.crtEntries = static_cast<unsigned>(v);
        });
    add("crtWays", "CRT associativity", 1, 4096,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.clear.crtWays = static_cast<unsigned>(v);
        });
    add("sqFullSaturation", "SQ-Full counter saturation value", 0,
        255, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.clear.sqFullSaturation = static_cast<unsigned>(v);
        });
    add("sqEntries", "store-queue entries", 1, 65536,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.core.sqEntries = static_cast<unsigned>(v);
        });
    add("robEntries", "reorder-buffer entries", 1, 1u << 20,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.core.robEntries = static_cast<unsigned>(v);
        });
    add("lqEntries", "load-queue entries", 1, 65536,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.core.lqEntries = static_cast<unsigned>(v);
        });
    add("retryBackoffBase", "linear retry backoff base cycles", 0,
        1000000000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.timing.retryBackoffBase = v;
        });
    add("lockRetryBackoff", "locked-line re-issue backoff cycles", 0,
        1000000000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.timing.lockRetryBackoff = v;
        });
    add("fallbackSpinInterval", "fallback-lock spin interval cycles",
        1, 1000000000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.timing.fallbackSpinInterval = v;
        });
    add("thinkTimeMean", "mean cycles between two regions", 0,
        1000000000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.timing.thinkTimeMean = v;
        });
    add("fault.seed", "fault-injection Rng seed", 0,
        ~std::uint64_t(0), [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.seed = v;
        });
    add("fault.jitter", "permille of events given schedule jitter", 0,
        1000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.eventJitterPermille = static_cast<unsigned>(v);
        });
    add("fault.jitter-max", "max event jitter, cycles", 0, 1000000,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.eventJitterMax = v;
        });
    add("fault.nack", "permille of free-line checks nacked", 0, 1000,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.nackPermille = static_cast<unsigned>(v);
        });
    add("fault.retry", "permille of free-line checks retried", 0,
        1000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.retryPermille = static_cast<unsigned>(v);
        });
    add("fault.retry-delay", "max extra lock-retry delay, cycles", 0,
        1000000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.retryDelayExtraMax = v;
        });
    add("fault.grant-defer", "permille of lock grants deferred", 0,
        1000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.grantDeferPermille = static_cast<unsigned>(v);
        });
    add("fault.grant-defer-max", "max grant deferral, cycles", 1,
        1000000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.grantDeferMax = v;
        });
    add("fault.evict", "permille of reads losing their sharer bit",
        0, 1000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.evictPermille = static_cast<unsigned>(v);
        });
    add("fault.forced-abort", "permille of accesses force-aborted",
        0, 1000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.forcedAbortPermille = static_cast<unsigned>(v);
        });
    add("fault.conflict-flip", "permille of verdicts flipped to nack",
        0, 1000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.conflictFlipPermille = static_cast<unsigned>(v);
        });
    add("fault.fallback-hold", "extra fallback-lock hold, cycles", 0,
        1000000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.fallbackHoldExtra = v;
        });
    add("fault.watchdog", "install the invariant checker (0/1)", 0, 1,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.watchdog = v != 0;
        });
    add("fault.horizon", "watchdog progress horizon, cycles", 1,
        ~std::uint64_t(0), [](SystemConfig &cfg, std::uint64_t v) {
            cfg.fault.horizon = v;
        });
    add("adapt.enabled", "adaptive per-region policy (0/1)", 0, 1,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.adapt.enabled = v != 0;
        });
    add("adapt.eligible",
        "action for ELIGIBLE regions (0=clear 1=fallback "
        "2=bounded-retry 3=conservative-lock 4=sle)",
        0, kAdaptActionCount - 1,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.adapt.eligible = static_cast<AdaptAction>(v);
        });
    add("adapt.capacity",
        "action for CAPACITY-DOOMED regions (same codes)", 0,
        kAdaptActionCount - 1,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.adapt.capacityDoomed = static_cast<AdaptAction>(v);
        });
    add("adapt.indirection",
        "action for UNBOUNDED-INDIRECTION regions (same codes)", 0,
        kAdaptActionCount - 1,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.adapt.unboundedIndirection =
                static_cast<AdaptAction>(v);
        });
    add("adapt.lock-order",
        "action for LOCK-ORDER-RISK regions (same codes)", 0,
        kAdaptActionCount - 1,
        [](SystemConfig &cfg, std::uint64_t v) {
            cfg.adapt.lockOrderRisk = static_cast<AdaptAction>(v);
        });
    add("adapt.retries",
        "speculative budget of bounded-retry regions (clamped to "
        "maxRetries)",
        0, 1000000, [](SystemConfig &cfg, std::uint64_t v) {
            cfg.adapt.boundedRetries = static_cast<unsigned>(v);
        });
}

void
ConfigRegistry::registerPreset(const std::string &name,
                               const std::string &description,
                               std::function<SystemConfig()> make)
{
    CLEARSIM_ASSERT(!name.empty() &&
                        name.find_first_of("+:=,") == std::string::npos,
                    "preset name must be non-empty and free of "
                    "spec separators");
    for (ConfigPreset &preset : presets_) {
        if (preset.name == name) {
            preset.description = description;
            preset.make = std::move(make);
            return;
        }
    }
    presets_.push_back({name, description, std::move(make)});
}

void
ConfigRegistry::registerModifier(
    const std::string &name, const std::string &description,
    std::function<void(SystemConfig &)> apply)
{
    CLEARSIM_ASSERT(!name.empty() &&
                        name.find_first_of("+:=,") == std::string::npos,
                    "modifier name must be non-empty and free of "
                    "spec separators");
    for (ConfigModifier &mod : modifiers_) {
        if (mod.name == name) {
            mod.description = description;
            mod.apply = std::move(apply);
            return;
        }
    }
    modifiers_.push_back({name, description, std::move(apply)});
}

std::vector<std::string>
ConfigRegistry::presetNames() const
{
    std::vector<std::string> names;
    names.reserve(presets_.size());
    for (const ConfigPreset &preset : presets_)
        names.push_back(preset.name);
    return names;
}

std::string
ConfigRegistry::catalogueJson() const
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value("clearsim-config-catalogue-v1");
    w.key("grammar");
    w.value("preset[+modifier...][:key=value...]");
    w.key("presets");
    w.beginArray();
    for (const ConfigPreset &preset : presets_) {
        w.beginObject();
        w.key("name");
        w.value(preset.name);
        w.key("description");
        w.value(preset.description);
        w.endObject();
    }
    w.endArray();
    w.key("modifiers");
    w.beginArray();
    for (const ConfigModifier &mod : modifiers_) {
        w.beginObject();
        w.key("name");
        w.value(mod.name);
        w.key("description");
        w.value(mod.description);
        w.endObject();
    }
    w.endArray();
    w.key("overrides");
    w.beginArray();
    for (const ConfigOverrideKey &key : overrides_) {
        w.beginObject();
        w.key("name");
        w.value(key.name);
        w.key("description");
        w.value(key.description);
        w.key("min");
        w.value(key.minValue);
        w.key("max");
        w.value(key.maxValue);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return out;
}

bool
ConfigRegistry::hasPreset(const std::string &name) const
{
    return findPreset(name) != nullptr;
}

const ConfigPreset *
ConfigRegistry::findPreset(const std::string &name) const
{
    for (const ConfigPreset &preset : presets_) {
        if (preset.name == name)
            return &preset;
    }
    return nullptr;
}

const ConfigModifier *
ConfigRegistry::findModifier(const std::string &name) const
{
    for (const ConfigModifier &mod : modifiers_) {
        if (mod.name == name)
            return &mod;
    }
    return nullptr;
}

const ConfigOverrideKey *
ConfigRegistry::findOverride(const std::string &name) const
{
    for (const ConfigOverrideKey &key : overrides_) {
        if (key.name == name)
            return &key;
    }
    return nullptr;
}

std::string
ConfigRegistry::presetListForErrors() const
{
    return joinNames(presetNames());
}

bool
ConfigRegistry::tryMake(const std::string &spec, SystemConfig &out,
                        std::string &error) const
{
    if (spec.empty()) {
        error = "empty configuration spec (registered presets: " +
                presetListForErrors() + ")";
        return false;
    }

    std::string::size_type pos = spec.find_first_of("+:");
    const std::string base = spec.substr(0, pos);
    const ConfigPreset *preset = findPreset(base);
    if (!preset) {
        error = "unknown configuration '" + base +
                "' (registered presets: " + presetListForErrors() +
                "; see --list-configs)";
        return false;
    }
    out = preset->make();

    // key -> the ':key=value' token that set it, for the
    // duplicate-override diagnostic.
    std::vector<std::pair<std::string, std::string>> seen_overrides;

    while (pos != std::string::npos) {
        const char sep = spec[pos];
        const std::string::size_type next =
            spec.find_first_of("+:", pos + 1);
        const std::string token =
            spec.substr(pos + 1, next == std::string::npos
                                     ? std::string::npos
                                     : next - pos - 1);
        pos = next;

        if (sep == '+') {
            const ConfigModifier *mod = findModifier(token);
            if (!mod) {
                std::vector<std::string> names;
                for (const ConfigModifier &m : modifiers_)
                    names.push_back(m.name);
                error = "spec '" + spec + "': unknown modifier '+" +
                        token + "' (known modifiers: " +
                        joinNames(names) + ")";
                return false;
            }
            mod->apply(out);
            continue;
        }

        const std::string::size_type eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = "spec '" + spec + "': override ':" + token +
                    "' is not of the form key=value";
            return false;
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        for (const auto &[prev_key, prev_token] : seen_overrides) {
            if (prev_key == key) {
                // Silent last-wins made textually different specs
                // execute identically while hashing to different
                // dedupe identities; duplicates are a hard error.
                error = "spec '" + spec + "': override key '" + key +
                        "' given twice (':" + prev_token +
                        "' and ':" + token + "'); overrides must be "
                        "unique within a spec";
                return false;
            }
        }
        seen_overrides.emplace_back(key, token);

        // pc-keyed adaptive override: ':adapt.pc0x<hex>=<action>'.
        // The key space is unbounded (one per region pc), so it is
        // parsed structurally instead of enumerated in the override
        // table. The certificate audit emits these specs.
        constexpr const char *kPcPrefix = "adapt.pc0x";
        if (key.rfind(kPcPrefix, 0) == 0) {
            const std::string hex = key.substr(std::strlen(kPcPrefix));
            char *end = nullptr;
            errno = 0;
            const unsigned long long pc =
                std::strtoull(hex.c_str(), &end, 16);
            if (hex.empty() || end == nullptr || *end != '\0' ||
                errno == ERANGE) {
                error = "spec '" + spec + "': override key '" + key +
                        "' has a malformed hex region pc";
                return false;
            }
            std::uint64_t action = 0;
            if (!parseValue(value, action) ||
                action >= kAdaptActionCount) {
                error = "spec '" + spec + "': " + key + "='" + value +
                        "' is not an action code in [0, " +
                        std::to_string(kAdaptActionCount - 1) + "]";
                return false;
            }
            out.adapt.pcOverrides[pc] =
                static_cast<AdaptAction>(action);
            continue;
        }

        const ConfigOverrideKey *override_key = findOverride(key);
        if (!override_key) {
            std::vector<std::string> names;
            for (const ConfigOverrideKey &k : overrides_)
                names.push_back(k.name);
            error = "spec '" + spec + "': unknown override key '" +
                    key + "' (known keys: " + joinNames(names) + ")";
            return false;
        }
        std::uint64_t parsed = 0;
        if (!parseValue(value, parsed) ||
            parsed < override_key->minValue ||
            parsed > override_key->maxValue) {
            error = "spec '" + spec + "': " + key + "='" + value +
                    "' is not an integer in [" +
                    std::to_string(override_key->minValue) + ", " +
                    std::to_string(override_key->maxValue) + "]";
            return false;
        }
        override_key->apply(out, parsed);
    }

    // The spec itself names the variant: plain presets keep their
    // letter, composed specs stay distinguishable in sweep keys,
    // CSVs and reports.
    out.name = spec;
    return true;
}

SystemConfig
ConfigRegistry::make(const std::string &spec) const
{
    SystemConfig cfg;
    std::string error;
    if (!tryMake(spec, cfg, error))
        fatal("%s", error.c_str());
    return cfg;
}

SystemConfig
makeConfigFromSpec(const std::string &spec)
{
    return ConfigRegistry::instance().make(spec);
}

SystemConfig
makeConfigByName(const std::string &name)
{
    return ConfigRegistry::instance().make(name);
}

std::string
specWithRetryLimit(const std::string &spec, unsigned retries)
{
    // Drop any existing ':maxRetries=...' token first: with
    // duplicate overrides a hard error, the engines that pin a
    // retry limit onto user specs must replace, not append.
    std::string out;
    std::string::size_type pos = spec.find_first_of("+:");
    out += spec.substr(0, pos);
    while (pos != std::string::npos) {
        const std::string::size_type next =
            spec.find_first_of("+:", pos + 1);
        const std::string token =
            spec.substr(pos, next == std::string::npos
                                 ? std::string::npos
                                 : next - pos);
        if (token.rfind(":maxRetries=", 0) != 0)
            out += token;
        pos = next;
    }
    out += ":maxRetries=" + std::to_string(retries);
    return out;
}

} // namespace clearsim
