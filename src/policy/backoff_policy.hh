/**
 * @file
 * BackoffPolicy: how long a core waits before contending again.
 *
 * Covers the three waits of the retry loop: the linear backoff
 * before a counted speculative retry, the re-issue delay after a
 * Retry response from a locked line or directory set, and the spin
 * interval on a taken fallback lock. RegionExecutor charges
 * whatever the policy returns, so alternative backoff shapes
 * (exponential, randomized) drop in without touching the executor.
 */

#ifndef CLEARSIM_POLICY_BACKOFF_POLICY_HH
#define CLEARSIM_POLICY_BACKOFF_POLICY_HH

#include <memory>

#include "common/types.hh"

namespace clearsim
{

struct SystemConfig;

/** Wait-time policy of the retry loop. */
class BackoffPolicy
{
  public:
    virtual ~BackoffPolicy() = default;

    /**
     * Cycles to wait before the next speculative attempt after
     * @p counted_retries counted aborts (0 on the first attempt).
     */
    virtual Cycle speculativeRetryDelay(unsigned counted_retries,
                                        CoreId core) const = 0;

    /** Backoff before re-issuing a request a lock Retry-answered. */
    virtual Cycle lockRetryDelay() const = 0;

    /** Interval between spins on a taken fallback lock. */
    virtual Cycle fallbackSpinDelay() const = 0;

    /** Short policy name for diagnostics. */
    virtual const char *name() const = 0;
};

/**
 * The paper's timing: linear speculative backoff with a per-core
 * stagger, fixed lock-retry and fallback-spin intervals.
 */
class LinearBackoffPolicy : public BackoffPolicy
{
  public:
    LinearBackoffPolicy(Cycle retry_base, Cycle lock_retry,
                        Cycle fallback_spin)
        : retryBase_(retry_base), lockRetry_(lock_retry),
          fallbackSpin_(fallback_spin)
    {
    }

    Cycle
    speculativeRetryDelay(unsigned counted_retries,
                          CoreId core) const override
    {
        if (counted_retries == 0 || retryBase_ == 0)
            return 0;
        // Linear backoff with a per-core stagger de-clusters
        // retries of the transactions that just collided.
        return retryBase_ * counted_retries + (core % 8) * 9;
    }

    Cycle lockRetryDelay() const override { return lockRetry_; }

    Cycle fallbackSpinDelay() const override { return fallbackSpin_; }

    const char *name() const override { return "linear"; }

  private:
    Cycle retryBase_;
    Cycle lockRetry_;
    Cycle fallbackSpin_;
};

/** Build the backoff policy a configuration calls for. */
std::unique_ptr<BackoffPolicy>
makeBackoffPolicy(const SystemConfig &cfg);

} // namespace clearsim

#endif // CLEARSIM_POLICY_BACKOFF_POLICY_HH
