/**
 * @file
 * RetryPolicy: which mode a failed atomic region re-executes in.
 *
 * Owns the paper's Figure 2 decision tree plus the counted-retry
 * bookkeeping (which aborts consume the retry budget, when the
 * budget forces the fallback path). The decision is computed from a
 * RetryDecisionInput snapshot so policies can be driven — and unit
 * tested — without a System, TxContext or memory hierarchy behind
 * them; RegionExecutor gathers the snapshot from the live machinery
 * and applies the verdict.
 */

#ifndef CLEARSIM_POLICY_RETRY_POLICY_HH
#define CLEARSIM_POLICY_RETRY_POLICY_HH

#include <cstdint>
#include <memory>

#include "htm/htm_types.hh"

namespace clearsim
{

struct SystemConfig;

/** How the next attempt of a failed AR should execute. */
enum class RetryMode : std::uint8_t
{
    SpeculativeRetry,
    SCl,
    NsCl,
    Fallback,
};

/**
 * Everything Figure 2 inspects when choosing the next mode after an
 * aborted speculative attempt, decoupled from the live structures.
 */
struct RetryDecisionInput
{
    /** Discovery was active during the aborted attempt. */
    bool discoveryRan = false;

    /** The footprint/SQ tracking structures overflowed. */
    bool structuresOverflowed = false;

    /** Discovery saw the whole region (complete footprint). */
    bool discoveryComplete = false;

    /** The ALT can lock the discovered footprint. */
    bool footprintLockable = false;

    /** ERT verdict for the region (true when no entry exists). */
    bool regionConvertible = true;

    /** The attempt dereferenced a speculatively-read value. */
    bool sawIndirection = false;
};

/** Verdict after an NS-CL / S-CL attempt aborted (Section 4.4.2). */
struct LockedAbortDecision
{
    RetryMode next = RetryMode::SpeculativeRetry;

    /** Mark the region non-convertible in the ERT. */
    bool disableDiscovery = false;
};

/** The re-execution policy of one configuration. */
class RetryPolicy
{
  public:
    explicit RetryPolicy(unsigned max_retries)
        : maxRetries_(max_retries)
    {
    }

    virtual ~RetryPolicy() = default;

    /** Counted speculative retries allowed before fallback. */
    unsigned maxRetries() const { return maxRetries_; }

    /** True once the counted-retry budget forces the fallback. */
    bool
    exhausted(unsigned counted_retries) const
    {
        return counted_retries >= maxRetries_;
    }

    /**
     * True if this abort consumes the retry budget. Fallback-lock
     * aborts do not (Section 7).
     */
    virtual bool
    countsRetry(AbortReason reason) const
    {
        return countsTowardRetryLimit(reason);
    }

    /** Figure 2: pick the mode of the next attempt. */
    virtual RetryMode
    decideRetryMode(const RetryDecisionInput &in) const = 0;

    /**
     * Pick the next mode after a cacheline-locked attempt aborted.
     * A memory conflict or nack on a non-locked read re-runs S-CL
     * with the line (now CRT-held) locked; anything else marks the
     * region non-discoverable and falls back to speculation.
     */
    virtual LockedAbortDecision
    decideAfterLockedAbort(AbortReason reason) const
    {
        LockedAbortDecision d;
        if (reason == AbortReason::MemoryConflict ||
            reason == AbortReason::Nacked) {
            d.next = RetryMode::SCl;
        } else {
            d.next = RetryMode::SpeculativeRetry;
            d.disableDiscovery = true;
        }
        return d;
    }

    /** Short policy name for diagnostics. */
    virtual const char *name() const = 0;

  private:
    unsigned maxRetries_;
};

/** Baseline HTM retry loop: always retry speculatively. */
class BaselineRetryPolicy : public RetryPolicy
{
  public:
    using RetryPolicy::RetryPolicy;

    RetryMode
    decideRetryMode(const RetryDecisionInput &) const override
    {
        return RetryMode::SpeculativeRetry;
    }

    const char *name() const override { return "baseline"; }
};

/** CLEAR: the full Figure 2 tree over the discovery outcome. */
class ClearRetryPolicy : public RetryPolicy
{
  public:
    using RetryPolicy::RetryPolicy;

    RetryMode
    decideRetryMode(const RetryDecisionInput &in) const override
    {
        // Figure 2, top: discovery must have run and captured the
        // complete footprint within the core structures.
        if (!in.discoveryRan)
            return RetryMode::SpeculativeRetry;
        if (in.structuresOverflowed || !in.discoveryComplete)
            return RetryMode::SpeculativeRetry;

        // Figure 2, middle: the hardware must be able to lock the
        // address set, and the ERT must not have vetoed the region.
        if (!in.footprintLockable)
            return RetryMode::SpeculativeRetry;
        if (!in.regionConvertible)
            return RetryMode::SpeculativeRetry;

        // Figure 2, bottom: indirections force the speculative
        // locked mode.
        return in.sawIndirection ? RetryMode::SCl : RetryMode::NsCl;
    }

    const char *name() const override { return "clear"; }
};

/** Build the retry policy a configuration calls for. */
std::unique_ptr<RetryPolicy>
makeRetryPolicy(const SystemConfig &cfg);

} // namespace clearsim

#endif // CLEARSIM_POLICY_RETRY_POLICY_HH
