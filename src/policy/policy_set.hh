/**
 * @file
 * PolicySet: the three execution policies of one configuration.
 *
 * A System owns one PolicySet, built once from its SystemConfig;
 * RegionExecutor and ConflictManager consult the policies instead
 * of branching on configuration enums. The policies are stateless
 * (all per-invocation bookkeeping stays in the executor), so one
 * set serves every core.
 */

#ifndef CLEARSIM_POLICY_POLICY_SET_HH
#define CLEARSIM_POLICY_POLICY_SET_HH

#include <memory>

#include "policy/backoff_policy.hh"
#include "policy/conflict_policy.hh"
#include "policy/retry_policy.hh"

namespace clearsim
{

struct SystemConfig;

/** The execution policies selected by one configuration. */
class PolicySet
{
  public:
    explicit PolicySet(const SystemConfig &cfg);

    PolicySet(const PolicySet &) = delete;
    PolicySet &operator=(const PolicySet &) = delete;

    const RetryPolicy &retry() const { return *retry_; }
    const ConflictResolutionPolicy &conflict() const
    {
        return *conflict_;
    }
    const BackoffPolicy &backoff() const { return *backoff_; }

  private:
    std::unique_ptr<RetryPolicy> retry_;
    std::unique_ptr<ConflictResolutionPolicy> conflict_;
    std::unique_ptr<BackoffPolicy> backoff_;
};

} // namespace clearsim

#endif // CLEARSIM_POLICY_POLICY_SET_HH
