/**
 * @file
 * ConfigRegistry: named configuration presets plus a spec-string
 * parser, replacing the four hardcoded make*Config() factories.
 *
 * A *preset* is a named, described SystemConfig factory ("B", "P",
 * "C", "W" are registered at startup; tests and tools can register
 * more). A *spec string* composes a preset with modifiers and
 * parameter overrides without recompiling:
 *
 *   "C"                      the C preset as-is
 *   "C+scl-all-reads"        C with a named boolean modifier
 *   "B:maxRetries=4"         B with a numeric field override
 *   "C+sle:altEntries=8"     both, in any order after the preset
 *
 * The CLI (--config), the harness sweeps (SweepOptions::configs /
 * CLEARSIM_CONFIGS) and the ablation benches all select variants
 * through specs, so every experiment axis is data, not code.
 */

#ifndef CLEARSIM_POLICY_CONFIG_REGISTRY_HH
#define CLEARSIM_POLICY_CONFIG_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"

namespace clearsim
{

/** One named, described SystemConfig factory. */
struct ConfigPreset
{
    std::string name;
    std::string description;
    std::function<SystemConfig()> make;
};

/** One named boolean tweak applicable via "+name". */
struct ConfigModifier
{
    std::string name;
    std::string description;
    std::function<void(SystemConfig &)> apply;
};

/** One numeric field override applicable via ":key=value". */
struct ConfigOverrideKey
{
    std::string name;
    std::string description;
    std::uint64_t minValue;
    std::uint64_t maxValue;
    std::function<void(SystemConfig &, std::uint64_t)> apply;
};

/** The process-wide preset/modifier/override registry. */
class ConfigRegistry
{
  public:
    /** The singleton, with the built-in entries registered. */
    static ConfigRegistry &instance();

    /**
     * Register (or replace) a preset. The registered name must not
     * contain the spec separators '+', ':' or '=' or a comma.
     */
    void registerPreset(const std::string &name,
                        const std::string &description,
                        std::function<SystemConfig()> make);

    /** Register (or replace) a "+name" modifier. */
    void registerModifier(const std::string &name,
                          const std::string &description,
                          std::function<void(SystemConfig &)> apply);

    const std::vector<ConfigPreset> &presets() const
    {
        return presets_;
    }

    const std::vector<ConfigModifier> &modifiers() const
    {
        return modifiers_;
    }

    const std::vector<ConfigOverrideKey> &overrideKeys() const
    {
        return overrides_;
    }

    /** Registered preset names, in registration order. */
    std::vector<std::string> presetNames() const;

    /**
     * Machine-readable catalogue of the whole spec grammar —
     * presets, "+name" modifiers (including the canned fault plans
     * and +watchdog) and ":key=value" override keys with their
     * ranges — as a deterministic single-line JSON document
     * ("clearsim-config-catalogue-v1"). Daemon clients use this to
     * discover what specs the server accepts without sharing code.
     */
    std::string catalogueJson() const;

    /** True if @p name is a registered preset (exact match). */
    bool hasPreset(const std::string &name) const;

    /**
     * Build a configuration from a spec string.
     * @retval false with @p error filled on any parse or lookup
     *         failure; @p out is then unspecified
     */
    bool tryMake(const std::string &spec, SystemConfig &out,
                 std::string &error) const;

    /** Build from a spec string; fatal() with the error on failure. */
    SystemConfig make(const std::string &spec) const;

  private:
    ConfigRegistry();

    const ConfigPreset *findPreset(const std::string &name) const;
    const ConfigModifier *findModifier(const std::string &name) const;
    const ConfigOverrideKey *
    findOverride(const std::string &name) const;

    /** "B, P, C, W" for error messages. */
    std::string presetListForErrors() const;

    std::vector<ConfigPreset> presets_;
    std::vector<ConfigModifier> modifiers_;
    std::vector<ConfigOverrideKey> overrides_;
};

/**
 * Build a configuration from a registry spec string; fatal() naming
 * the registered presets on failure. Shorthand for
 * ConfigRegistry::instance().make(spec).
 */
SystemConfig makeConfigFromSpec(const std::string &spec);

/**
 * @p spec with its retry limit pinned to @p retries: any existing
 * ":maxRetries=" token is removed before ":maxRetries=<retries>" is
 * appended. The sweep engine and the daemon compose point specs with
 * this instead of blind concatenation, which would trip the
 * duplicate-override hard error on specs that already carry a
 * maxRetries override.
 */
std::string specWithRetryLimit(const std::string &spec,
                               unsigned retries);

} // namespace clearsim

#endif // CLEARSIM_POLICY_CONFIG_REGISTRY_HH
