/**
 * @file
 * Per-region policy resolution for the adaptive preset "A".
 *
 * The static analyzer classifies every atomic region ahead of the
 * measured run (ELIGIBLE / CAPACITY-DOOMED / UNBOUNDED-INDIRECTION /
 * LOCK-ORDER-RISK). A RegionPolicyTable maps those verdicts, through
 * the AdaptConfig of the run, to the concrete action the
 * RegionExecutor takes per region: full CLEAR, straight-to-fallback,
 * a bounded speculative budget, a conservative lock plan, or
 * SLE-style in-core speculation.
 *
 * The table is immutable after construction and installed on the
 * System like the other optional sinks (Tracer, RegionRecorder):
 * a null pointer means "no adaptive routing", which is the exact
 * pre-"A" behaviour.
 *
 * The verdict enum is duplicated here (rather than including
 * analysis/analyzer.hh) because the policy library builds below the
 * analysis library; analysis/analyze.cc converts its Verdict into
 * RegionVerdict when exporting the machine-usable map.
 */

#ifndef CLEARSIM_POLICY_REGION_POLICY_HH
#define CLEARSIM_POLICY_REGION_POLICY_HH

#include <map>
#include <string>

#include "common/types.hh"
#include "policy/adapt_config.hh"

namespace clearsim
{

struct SystemConfig;

/** Static verdict of one region, as exported by the analyzer. */
enum class RegionVerdict : std::uint8_t
{
    Eligible = 0,
    CapacityDoomed = 1,
    UnboundedIndirection = 2,
    LockOrderRisk = 3,
};

/** Stable upper-case name matching the analyzer's report strings. */
constexpr const char *
regionVerdictName(RegionVerdict verdict)
{
    switch (verdict) {
    case RegionVerdict::Eligible:
        return "ELIGIBLE";
    case RegionVerdict::CapacityDoomed:
        return "CAPACITY-DOOMED";
    case RegionVerdict::UnboundedIndirection:
        return "UNBOUNDED-INDIRECTION";
    case RegionVerdict::LockOrderRisk:
        return "LOCK-ORDER-RISK";
    }
    return "?";
}

/** Ordered map of region pc -> static verdict (analyzer export). */
using RegionVerdictMap = std::map<RegionPc, RegionVerdict>;

/** Resolved decision for one region. */
struct RegionDecision
{
    RegionVerdict verdict = RegionVerdict::Eligible;
    AdaptAction action = AdaptAction::Clear;

    /**
     * Counted speculative retries this region may spend before the
     * fallback path; already clamped to the global maxRetries.
     */
    unsigned retryBudget = 0;

    /** CLEAR discovery allowed for this region. */
    bool allowDiscovery = true;

    /** Cacheline-locked modes (S-CL / NS-CL) allowed. */
    bool allowCacheLocked = true;

    /** Speculate in-core (SLE) instead of through the HTM. */
    bool inCoreSpeculation = false;
};

/**
 * Immutable verdict->decision table for one run. Built once from the
 * analyzer's verdict map and the run's AdaptConfig, then consulted
 * by the RegionExecutor at every region invocation.
 */
class RegionPolicyTable
{
  public:
    /** Resolve @p verdicts through @p cfg's adapt mapping. */
    static RegionPolicyTable fromVerdicts(
        const RegionVerdictMap &verdicts, const SystemConfig &cfg);

    /**
     * Decision for @p pc, or nullptr when the capture pass never saw
     * the region (the executor then behaves as without a table).
     */
    const RegionDecision *lookup(RegionPc pc) const
    {
        auto it = decisions_.find(pc);
        return it == decisions_.end() ? nullptr : &it->second;
    }

    /** All decisions, ordered by pc. */
    const std::map<RegionPc, RegionDecision> &decisions() const
    {
        return decisions_;
    }

    bool empty() const { return decisions_.empty(); }

    /**
     * Human-readable per-region decision report, one line per
     * region, ordered by pc (printed by `clearsim_cli --config A`).
     */
    std::string report() const;

  private:
    std::map<RegionPc, RegionDecision> decisions_;
};

/**
 * Resolve one verdict through @p cfg: picks the configured action
 * and derives budget/discovery/locking/scope flags, clamping the
 * bounded-retry budget to cfg.maxRetries.
 */
RegionDecision resolveRegionDecision(RegionVerdict verdict,
                                     const SystemConfig &cfg);

} // namespace clearsim

#endif // CLEARSIM_POLICY_REGION_POLICY_HH
