/**
 * @file
 * Configuration of the adaptive per-region policy (preset "A").
 *
 * The adaptive preset closes the loop between the static analyzer
 * and the execution policy: before the measured run, a capture pass
 * produces per-region verdicts, and this config maps each verdict to
 * the action the RegionExecutor takes for regions with that verdict.
 * Every mapping is overridable through the `:adapt.*` spec-grammar
 * keys registered in the ConfigRegistry.
 *
 * Header-only so common/config.hh can embed an AdaptConfig without a
 * link-time dependency on the policy library (the same arrangement
 * as fault/fault_config.hh).
 */

#ifndef CLEARSIM_POLICY_ADAPT_CONFIG_HH
#define CLEARSIM_POLICY_ADAPT_CONFIG_HH

#include <cstdint>
#include <map>

namespace clearsim
{

/**
 * What the executor does for regions carrying a given verdict. The
 * numeric codes are part of the spec grammar (`:adapt.capacity=1`)
 * and of the canonical config string, so they are stable interface.
 */
enum class AdaptAction : std::uint8_t
{
    /** Full CLEAR machinery: discovery, cacheline locking, ERT. */
    Clear = 0,

    /** Straight to the fallback lock; the region never speculates. */
    Fallback = 1,

    /**
     * Speculative retries up to the (smaller) adaptive budget, then
     * fallback; discovery stays off so no locked modes are entered.
     */
    BoundedRetry = 2,

    /**
     * Conservative lock plan: run CLEAR's discovery but never enter
     * a cacheline-locked mode — the region keeps retrying
     * speculatively within the global budget, then takes the
     * fallback lock, which orders it against every other region.
     */
    ConservativeLock = 3,

    /**
     * SLE-style in-core speculation: the region speculates bounded
     * by core resources (ROB/LQ/SQ) instead of the HTM, with
     * discovery off.
     */
    Sle = 4,
};

/** Number of valid AdaptAction codes (for spec-value validation). */
constexpr unsigned kAdaptActionCount = 5;

/** Stable lower-case name used in reports and canonical strings. */
constexpr const char *
adaptActionName(AdaptAction action)
{
    switch (action) {
    case AdaptAction::Clear:
        return "clear";
    case AdaptAction::Fallback:
        return "fallback";
    case AdaptAction::BoundedRetry:
        return "bounded-retry";
    case AdaptAction::ConservativeLock:
        return "conservative-lock";
    case AdaptAction::Sle:
        return "sle";
    }
    return "?";
}

/**
 * Verdict -> action mapping of the adaptive preset. Defaults encode
 * the paper's recommendation: CLEAR where it provably pays off,
 * immediate fallback where capacity dooms speculation, a bounded
 * speculative budget where indirection makes the footprint
 * unknowable, and conservative locking where the mechanical
 * lock-order proof failed.
 */
struct AdaptConfig
{
    /** Master switch; set by preset "A" (or `:adapt.enabled=1`). */
    bool enabled = false;

    /** Action for ELIGIBLE regions. */
    AdaptAction eligible = AdaptAction::Clear;

    /** Action for CAPACITY-DOOMED regions. */
    AdaptAction capacityDoomed = AdaptAction::Fallback;

    /** Action for UNBOUNDED-INDIRECTION regions. */
    AdaptAction unboundedIndirection = AdaptAction::BoundedRetry;

    /** Action for LOCK-ORDER-RISK regions. */
    AdaptAction lockOrderRisk = AdaptAction::ConservativeLock;

    /**
     * Speculative-retry budget for BoundedRetry regions. Clamped at
     * run time to the global maxRetries so the single-retry-bound
     * invariant keeps holding under preset "A".
     */
    unsigned boundedRetries = 1;

    /**
     * Per-region action overrides keyed by region pc, consulted
     * before the verdict-class mapping. This is the feedback edge of
     * the certificate audit: a detected mispredict suggests exactly
     * one `:adapt.pc0x<pc>=<action>` spec entry, which lands here.
     * An ordered map so the canonical config string stays
     * byte-deterministic.
     */
    std::map<std::uint64_t, AdaptAction> pcOverrides;
};

} // namespace clearsim

#endif // CLEARSIM_POLICY_ADAPT_CONFIG_HH
