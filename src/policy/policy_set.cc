#include "policy/policy_set.hh"

#include "common/config.hh"

namespace clearsim
{

std::unique_ptr<RetryPolicy>
makeRetryPolicy(const SystemConfig &cfg)
{
    if (cfg.clear.enabled)
        return std::make_unique<ClearRetryPolicy>(cfg.maxRetries);
    return std::make_unique<BaselineRetryPolicy>(cfg.maxRetries);
}

std::unique_ptr<ConflictResolutionPolicy>
makeConflictPolicy(const SystemConfig &cfg)
{
    if (cfg.htmPolicy == HtmPolicy::PowerTm)
        return std::make_unique<PowerTmPolicy>(cfg.clear.enabled);
    return std::make_unique<RequesterWinsPolicy>();
}

std::unique_ptr<BackoffPolicy>
makeBackoffPolicy(const SystemConfig &cfg)
{
    return std::make_unique<LinearBackoffPolicy>(
        cfg.timing.retryBackoffBase, cfg.timing.lockRetryBackoff,
        cfg.timing.fallbackSpinInterval);
}

PolicySet::PolicySet(const SystemConfig &cfg)
    : retry_(makeRetryPolicy(cfg)),
      conflict_(makeConflictPolicy(cfg)),
      backoff_(makeBackoffPolicy(cfg))
{
}

} // namespace clearsim
