/**
 * @file
 * ConflictResolutionPolicy: who survives a read/write-set conflict.
 *
 * The baseline HTM resolves conflicts requester-wins (Intel TSX);
 * PowerTM grants one retrying transaction system-wide priority, and
 * CLEAR over PowerTM adds the Section 5.2 nack rules between S-CL
 * and power-mode transactions. These rules used to live as
 * `cfg.htmPolicy == ...` branches inside ConflictManager::arbitrate
 * and RegionExecutor; this interface concentrates them so a new
 * resolution scheme is one subclass, not a branch audit.
 */

#ifndef CLEARSIM_POLICY_CONFLICT_POLICY_HH
#define CLEARSIM_POLICY_CONFLICT_POLICY_HH

#include <memory>

#include "htm/htm_types.hh"

namespace clearsim
{

struct SystemConfig;

/** The requester side of one arbitrated request. */
struct RequesterView
{
    RequesterClass cls = RequesterClass::Speculative;

    /** The requester holds the PowerTM token. */
    bool powerMode = false;
};

/** One conflicting holder, as the policy sees it. */
struct HolderView
{
    /** The holder runs in PowerTM power mode. */
    bool powerMode = false;

    /** The holder executes in S-CL mode. */
    bool sclMode = false;
};

/** Baseline conflict-resolution policy of a configuration. */
class ConflictResolutionPolicy
{
  public:
    virtual ~ConflictResolutionPolicy() = default;

    /**
     * True if retrying transactions compete for the PowerTM token:
     * the executor acquires it after a counted abort, and a holder
     * read-locks the fallback lock instead of subscribing to it.
     */
    virtual bool usesPowerToken() const = 0;

    /**
     * May this holder nack the requester, so the requester aborts
     * and the holder survives? Consulted once per conflicting
     * holder, only for requesters that can lose at all (plain
     * speculative and S-CL requests; NS-CL and non-speculative
     * requests always win). When false for every holder, the
     * requester wins and the holders are doomed.
     */
    virtual bool
    holderNacksRequester(const RequesterView &requester,
                         const HolderView &holder) const = 0;

    /** Short policy name for diagnostics. */
    virtual const char *name() const = 0;
};

/** Intel TSX-like: the requesting core always wins. */
class RequesterWinsPolicy : public ConflictResolutionPolicy
{
  public:
    bool usesPowerToken() const override { return false; }

    bool
    holderNacksRequester(const RequesterView &,
                         const HolderView &) const override
    {
        return false;
    }

    const char *name() const override { return "requester-wins"; }
};

/**
 * PowerTM priority: the single power-mode transaction wins against
 * non-power requesters. With CLEAR layered on top, S-CL and
 * power-mode transactions nack each other instead of aborting each
 * other (Section 5.2).
 */
class PowerTmPolicy : public ConflictResolutionPolicy
{
  public:
    /** @param clear_interop apply the Section 5.2 S-CL rules */
    explicit PowerTmPolicy(bool clear_interop)
        : clearInterop_(clear_interop)
    {
    }

    bool usesPowerToken() const override { return true; }

    bool
    holderNacksRequester(const RequesterView &requester,
                         const HolderView &holder) const override
    {
        if (holder.powerMode && !requester.powerMode)
            return true;
        if (clearInterop_) {
            const bool reqScl =
                requester.cls == RequesterClass::SclUnlocked ||
                requester.cls == RequesterClass::SclLocking;
            if ((holder.sclMode && requester.powerMode) ||
                (holder.powerMode && reqScl)) {
                return true;
            }
        }
        return false;
    }

    const char *name() const override { return "powertm"; }

  private:
    bool clearInterop_;
};

/** Build the conflict policy a configuration calls for. */
std::unique_ptr<ConflictResolutionPolicy>
makeConflictPolicy(const SystemConfig &cfg);

} // namespace clearsim

#endif // CLEARSIM_POLICY_CONFLICT_POLICY_HH
