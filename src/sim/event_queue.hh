/**
 * @file
 * The discrete-event kernel.
 *
 * A single global event queue orders all simulated activity. Events
 * at the same cycle execute in insertion order (FIFO tie-break via a
 * monotonically increasing sequence number), which makes every run
 * bit-exact reproducible for a given seed.
 *
 * Implementation: a calendar queue. Near-future events — the vast
 * majority: memory latencies, commit/abort penalties, short
 * backoffs — go into a ring of per-cycle FIFO buckets covering the
 * next kWindowCycles cycles, found again through a two-level bitmap
 * scan (O(window/64) worst case, O(1) typical). Far-future events
 * overflow into a small binary heap and migrate into the ring as
 * simulated time advances, before any same-cycle event can be
 * scheduled directly — so the pop order is exactly the (cycle,
 * sequence) order of the classic heap-of-everything, pinned by a
 * differential test against a std::priority_queue reference.
 * Event nodes are recycled through a SlotPool (no allocation per
 * event after warm-up) and callbacks live inline in the node
 * (InlineCallback) instead of on the std::function heap.
 */

#ifndef CLEARSIM_SIM_EVENT_QUEUE_HH
#define CLEARSIM_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/arena.hh"
#include "common/small_fn.hh"
#include "common/types.hh"

namespace clearsim
{

/** Calendar queue of timestamped callbacks driving the simulation. */
class EventQueue
{
  public:
    using Callback = InlineCallback<48>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time in cycles. */
    Cycle now() const { return now_; }

    /**
     * Stable pointer to the clock, for binding into a Tracer (the
     * mem-layer components stamp trace events through it without a
     * dependency on the event queue).
     */
    const Cycle *nowPtr() const { return &now_; }

    /**
     * Schedule cb to run at absolute cycle when (>= now). A
     * perturber jitter that would overflow simulated time
     * saturates at kNoCycle instead of wrapping into the past.
     */
    void schedule(Cycle when, Callback cb);

    /**
     * Schedule cb to run delay cycles from now. now + delay
     * saturates at kNoCycle instead of wrapping.
     */
    void scheduleAfter(Cycle delay, Callback cb);

    /**
     * Install a scheduling perturber (null to remove). When set,
     * every schedule() adds the returned jitter to the event's
     * cycle, bounded-delaying commutable events; used by the fault
     * layer. Costs one branch per schedule when absent.
     */
    void setPerturber(std::function<Cycle()> perturber)
    {
        perturber_ = std::move(perturber);
    }

    /** True if no events are pending. */
    bool empty() const { return size() == 0; }

    /** Cycle of the earliest pending event (kNoCycle when empty). */
    Cycle
    nextCycle() const
    {
        const Cycle ring = nextRingCycle();
        const Cycle heap = overflow_.empty() ? kNoCycle
                                             : overflow_[0].when;
        return ring < heap ? ring : heap;
    }

    /** Number of pending events. */
    std::size_t
    size() const
    {
        return ringCount_ + overflow_.size();
    }

    /**
     * Pop and execute the earliest event, advancing now().
     * @retval false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would
     * exceed limit. Returns the number of events executed.
     */
    std::uint64_t run(Cycle limit = kNoCycle);

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    /** Cycles covered by the bucket ring (power of two). */
    static constexpr std::size_t kWindowCycles = 1024;
    static constexpr std::size_t kWindowMask = kWindowCycles - 1;
    static constexpr std::size_t kBitmapWords = kWindowCycles / 64;

    /** One pending event; lives in the pool, linked per bucket. */
    struct Event
    {
        Event(Cycle when_, std::uint64_t seq_, Callback cb_)
            : when(when_), seq(seq_), cb(std::move(cb_))
        {
        }

        Cycle when;
        std::uint64_t seq;
        Event *next = nullptr;
        Callback cb;
    };

    /** Heap entry for events beyond the ring window. */
    struct OverflowRef
    {
        Cycle when;
        std::uint64_t seq;
        Event *event;
    };

    /** Min-heap order (std::push_heap builds a max-heap). */
    struct OverflowLater
    {
        bool
        operator()(const OverflowRef &a, const OverflowRef &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Append to the FIFO bucket of event->when (must be in window). */
    void pushRing(Event *event);

    /**
     * Migrate overflow events that entered the window [now_,
     * now_ + kWindowCycles) into their buckets. Heap pops come out
     * in (when, seq) order and a cycle's bucket is necessarily
     * still empty when its cycle enters the window, so bucket FIFO
     * order stays global (when, seq) order.
     */
    void drainOverflow();

    /** Earliest bucket cycle in the ring (kNoCycle when empty). */
    Cycle nextRingCycle() const;

    /** Destroy every pending event (queue teardown). */
    void clearPending();

    std::array<Event *, kWindowCycles> head_{};
    std::array<Event *, kWindowCycles> tail_{};
    /** Bit per bucket: bucket non-empty. */
    std::array<std::uint64_t, kBitmapWords> bits_{};
    std::size_t ringCount_ = 0;
    std::vector<OverflowRef> overflow_;
    SlotPool<Event> pool_;
    std::function<Cycle()> perturber_;
    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace clearsim

#endif // CLEARSIM_SIM_EVENT_QUEUE_HH
