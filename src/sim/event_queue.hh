/**
 * @file
 * The discrete-event kernel.
 *
 * A single global event queue orders all simulated activity. Events
 * at the same cycle execute in insertion order (FIFO tie-break via a
 * monotonically increasing sequence number), which makes every run
 * bit-exact reproducible for a given seed.
 */

#ifndef CLEARSIM_SIM_EVENT_QUEUE_HH
#define CLEARSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace clearsim
{

/** Min-heap of timestamped callbacks driving the simulation. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time in cycles. */
    Cycle now() const { return now_; }

    /**
     * Stable pointer to the clock, for binding into a Tracer (the
     * mem-layer components stamp trace events through it without a
     * dependency on the event queue).
     */
    const Cycle *nowPtr() const { return &now_; }

    /** Schedule cb to run at absolute cycle when (>= now). */
    void schedule(Cycle when, Callback cb);

    /** Schedule cb to run delay cycles from now. */
    void scheduleAfter(Cycle delay, Callback cb);

    /**
     * Install a scheduling perturber (null to remove). When set,
     * every schedule() adds the returned jitter to the event's
     * cycle, bounded-delaying commutable events; used by the fault
     * layer. Costs one branch per schedule when absent.
     */
    void setPerturber(std::function<Cycle()> perturber)
    {
        perturber_ = std::move(perturber);
    }

    /** True if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Cycle of the earliest pending event (kNoCycle when empty). */
    Cycle
    nextCycle() const
    {
        return heap_.empty() ? kNoCycle : heap_.top().when;
    }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /**
     * Pop and execute the earliest event, advancing now().
     * @retval false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would
     * exceed limit. Returns the number of events executed.
     */
    std::uint64_t run(Cycle limit = kNoCycle);

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::function<Cycle()> perturber_;
    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace clearsim

#endif // CLEARSIM_SIM_EVENT_QUEUE_HH
