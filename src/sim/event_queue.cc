#include "sim/event_queue.hh"

#include <utility>

#include "common/log.hh"

namespace clearsim
{

void
EventQueue::schedule(Cycle when, Callback cb)
{
    CLEARSIM_ASSERT(when >= now_, "cannot schedule an event in the past");
    if (perturber_)
        when += perturber_();
    heap_.push(Event{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Cycle delay, Callback cb)
{
    schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // priority_queue::top returns const&; moving the callback out
    // requires a copy here, which std::function makes cheap enough
    // relative to the work an event performs.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
}

std::uint64_t
EventQueue::run(Cycle limit)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= limit) {
        runOne();
        ++n;
    }
    return n;
}

} // namespace clearsim
