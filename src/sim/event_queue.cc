#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"

namespace clearsim
{

EventQueue::~EventQueue() { clearPending(); }

void
EventQueue::clearPending()
{
    for (std::size_t i = 0; i < kWindowCycles; ++i) {
        Event *event = head_[i];
        while (event != nullptr) {
            Event *next = event->next;
            pool_.release(event);
            event = next;
        }
        head_[i] = nullptr;
        tail_[i] = nullptr;
    }
    for (OverflowRef &ref : overflow_)
        pool_.release(ref.event);
    overflow_.clear();
    bits_.fill(0);
    ringCount_ = 0;
}

void
EventQueue::pushRing(Event *event)
{
    const std::size_t idx = event->when & kWindowMask;
    event->next = nullptr;
    if (tail_[idx] != nullptr)
        tail_[idx]->next = event;
    else
        head_[idx] = event;
    tail_[idx] = event;
    bits_[idx / 64] |= std::uint64_t(1) << (idx % 64);
    ++ringCount_;
}

void
EventQueue::schedule(Cycle when, Callback cb)
{
    CLEARSIM_ASSERT(when >= now_, "cannot schedule an event in the past");
    if (perturber_)
        when = saturatingAdd(when, perturber_());
    Event *event = pool_.acquire(when, nextSeq_++, std::move(cb));
    if (when - now_ < kWindowCycles) {
        pushRing(event);
    } else {
        overflow_.push_back(OverflowRef{when, event->seq, event});
        std::push_heap(overflow_.begin(), overflow_.end(),
                       OverflowLater{});
    }
}

void
EventQueue::scheduleAfter(Cycle delay, Callback cb)
{
    schedule(saturatingAdd(now_, delay), std::move(cb));
}

Cycle
EventQueue::nextRingCycle() const
{
    if (ringCount_ == 0)
        return kNoCycle;
    // Circular scan for the first non-empty bucket at or after
    // now_. Every ring event lives in [now_, now_ + kWindowCycles),
    // so the first set bit in circular order is the earliest cycle.
    const std::size_t start =
        static_cast<std::size_t>(now_ & kWindowMask);
    std::size_t word = start / 64;
    const std::size_t bit = start % 64;
    std::uint64_t bits = bits_[word] >> bit;
    if (bits != 0) {
        const std::size_t dist =
            static_cast<std::size_t>(__builtin_ctzll(bits));
        return now_ + dist;
    }
    for (std::size_t i = 1; i <= kBitmapWords; ++i) {
        const std::size_t w = (word + i) % kBitmapWords;
        if (bits_[w] == 0)
            continue;
        const std::size_t idx =
            w * 64 +
            static_cast<std::size_t>(__builtin_ctzll(bits_[w]));
        // On the wrapped revisit of the start word only bits below
        // `bit` remain unseen; they are necessarily a full window
        // lap away.
        if (i == kBitmapWords && idx >= start)
            break;
        return now_ + ((idx - start) & kWindowMask);
    }
    panic("ring count %zu but no bucket bit set", ringCount_);
}

void
EventQueue::drainOverflow()
{
    while (!overflow_.empty() &&
           overflow_[0].when - now_ < kWindowCycles) {
        std::pop_heap(overflow_.begin(), overflow_.end(),
                      OverflowLater{});
        pushRing(overflow_.back().event);
        overflow_.pop_back();
    }
}

bool
EventQueue::runOne()
{
    if (size() == 0)
        return false;
    const Cycle next = nextCycle();
    now_ = next;
    if (!overflow_.empty())
        drainOverflow();

    const std::size_t idx = static_cast<std::size_t>(now_ & kWindowMask);
    Event *event = head_[idx];
    CLEARSIM_ASSERT(event != nullptr && event->when == now_,
                    "calendar bucket out of step with nextCycle()");
    head_[idx] = event->next;
    if (head_[idx] == nullptr) {
        tail_[idx] = nullptr;
        bits_[idx / 64] &= ~(std::uint64_t(1) << (idx % 64));
    }
    --ringCount_;

    Callback cb = std::move(event->cb);
    pool_.release(event);
    ++executed_;
    cb();
    return true;
}

std::uint64_t
EventQueue::run(Cycle limit)
{
    std::uint64_t n = 0;
    while (size() != 0 && nextCycle() <= limit) {
        runOne();
        ++n;
    }
    return n;
}

} // namespace clearsim
