/**
 * @file
 * Task<T>: the coroutine type used for all simulated control flow.
 *
 * Simulated threads and atomic-region bodies are C++20 coroutines
 * returning Task<T> (SimTask = Task<void>). Awaiting a child task
 * transfers control symmetrically; suspending on a timing awaitable
 * parks the coroutine until the event queue resumes it. Exceptions
 * (notably TxAbort) propagate from child to parent across co_await
 * boundaries, which is how an abort unwinds an atomic-region body
 * back to its driver.
 */

#ifndef CLEARSIM_SIM_TASK_HH
#define CLEARSIM_SIM_TASK_HH

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "common/arena.hh"
#include "common/log.hh"
#include "sim/event_queue.hh"

namespace clearsim
{

template <typename T>
class Task;

namespace detail
{

/** State shared by value and void task promises. */
struct PromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
    bool topLevel = false;

    /**
     * Every simulated memory access creates and destroys one
     * coroutine frame; route them through the thread-local frame
     * pool instead of the general-purpose heap.
     */
    static void *
    operator new(std::size_t bytes)
    {
        return frameAlloc(bytes);
    }

    static void
    operator delete(void *frame, std::size_t bytes) noexcept
    {
        frameFree(frame, bytes);
    }

    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> self) noexcept
        {
            PromiseBase &p = self.promise();
            if (p.continuation)
                return p.continuation;
            if (p.topLevel && p.exception) {
                // A top-level simulated thread has no parent to
                // rethrow into; this is a simulator bug.
                panic("unhandled exception escaped a top-level Task");
            }
            return std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        exception = std::current_exception();
    }
};

} // namespace detail

/**
 * A lazily-started coroutine task returning T.
 *
 * Created suspended; runs when awaited by a parent, or when start()
 * is called on a top-level Task<void>. Move-only; the owner destroys
 * the coroutine frame.
 */
template <typename T = void>
class Task
{
  public:
    struct promise_type : detail::PromiseBase
    {
        std::optional<T> value;

        Task<T>
        get_return_object()
        {
            return Task<T>(
                std::coroutine_handle<promise_type>::from_promise(
                    *this));
        }

        template <typename U>
        void
        return_value(U &&v)
        {
            value.emplace(std::forward<U>(v));
        }
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> handle)
        : handle_(handle)
    {
    }

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True if the coroutine has run to completion. */
    bool done() const { return !handle_ || handle_.done(); }

    /** True if this task owns a live coroutine frame. */
    bool valid() const { return static_cast<bool>(handle_); }

    // --- awaitable interface (for `T v = co_await childTask`) ---

    bool await_ready() const { return done(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> caller)
    {
        handle_.promise().continuation = caller;
        return handle_;
    }

    T
    await_resume()
    {
        auto &p = handle_.promise();
        if (p.exception)
            std::rethrow_exception(p.exception);
        CLEARSIM_ASSERT(p.value.has_value(),
                        "task finished without a value");
        return std::move(p.value).value();
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

/** Specialization for tasks that produce no value. */
template <>
class Task<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Task<void>
        get_return_object()
        {
            return Task<void>(
                std::coroutine_handle<promise_type>::from_promise(
                    *this));
        }

        void return_void() {}
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> handle)
        : handle_(handle)
    {
    }

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True if the coroutine has run to completion. */
    bool done() const { return !handle_ || handle_.done(); }

    /** True if this task owns a live coroutine frame. */
    bool valid() const { return static_cast<bool>(handle_); }

    /**
     * Begin executing a top-level task (a simulated thread main).
     * The owner must keep this Task alive until done().
     */
    void
    start()
    {
        CLEARSIM_ASSERT(handle_ && !handle_.done(),
                        "start() on empty or finished task");
        handle_.promise().topLevel = true;
        handle_.resume();
    }

    // --- awaitable interface ---

    bool await_ready() const { return done(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> caller)
    {
        handle_.promise().continuation = caller;
        return handle_;
    }

    void
    await_resume()
    {
        if (handle_ && handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

/** The common case: a task used purely for simulated control flow. */
using SimTask = Task<void>;

/**
 * Awaitable that parks the current coroutine for a fixed number of
 * cycles on the given event queue.
 */
class DelayAwaiter
{
  public:
    DelayAwaiter(EventQueue &queue, Cycle delay)
        : queue_(queue), delay_(delay)
    {
    }

    bool await_ready() const { return delay_ == 0; }

    void
    await_suspend(std::coroutine_handle<> handle)
    {
        queue_.scheduleAfter(delay_, [handle] { handle.resume(); });
    }

    void await_resume() const {}

  private:
    EventQueue &queue_;
    Cycle delay_;
};

/** Convenience: `co_await delayFor(queue, n)`. */
inline DelayAwaiter
delayFor(EventQueue &queue, Cycle delay)
{
    return DelayAwaiter(queue, delay);
}

} // namespace clearsim

#endif // CLEARSIM_SIM_TASK_HH
