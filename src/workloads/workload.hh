/**
 * @file
 * The workload framework.
 *
 * A Workload builds shared data structures inside a System's
 * simulated memory and provides per-thread coroutines whose atomic
 * regions exercise them through the transactional body API. Because
 * the data structures live in simulated memory and genuinely
 * mutate, footprint sizes, indirections and mutability are emergent
 * properties measured by the simulator — exactly what Table 1 and
 * Figure 1 of the paper characterize.
 *
 * Every workload embeds conservation invariants (per-thread tally
 * words, sums, structure integrity) checked by verify(); the
 * property-test suite runs every workload under every configuration
 * and requires verify() to pass, which validates the atomicity of
 * all four execution modes end to end.
 */

#ifndef CLEARSIM_WORKLOADS_WORKLOAD_HH
#define CLEARSIM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/system.hh"
#include "sim/task.hh"

namespace clearsim
{

/** Scale and shape knobs common to all workloads. */
struct WorkloadParams
{
    /** Simulated threads (= cores used). */
    unsigned threads = 32;

    /** Atomic-region invocations per thread. */
    unsigned opsPerThread = 32;

    /** Seed for workload-level randomness. */
    std::uint64_t seed = 1;

    /**
     * Scale multiplier for data-structure sizes (1 = the "medium"
     * inputs used throughout the paper's evaluation).
     */
    unsigned scale = 1;
};

/** Base class of all benchmark workloads. */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &params) : params_(params)
    {
    }

    virtual ~Workload() = default;

    /** Workload name as used by the paper ("arrayswap", ...). */
    virtual const char *name() const = 0;

    /** Number of static atomic regions (Table 1, column 2). */
    virtual unsigned numRegions() const = 0;

    /** Build the shared data structures in sys's memory. */
    virtual void init(System &sys) = 0;

    /**
     * The main coroutine of one simulated thread: performs
     * opsPerThread atomic-region invocations with think time in
     * between.
     */
    virtual SimTask thread(System &sys, CoreId core) = 0;

    /**
     * Check workload invariants after the run.
     * @return human-readable violations; empty when consistent
     */
    virtual std::vector<std::string> verify(System &sys) const = 0;

    const WorkloadParams &params() const { return params_; }

  protected:
    /** Deterministic per-thread RNG. */
    Rng
    threadRng(CoreId core) const
    {
        return Rng(params_.seed * 0x9e3779b97f4a7c15ull +
                   0x517cc1b727220a95ull * (core + 1));
    }

    /** Random inter-region think time. */
    static Cycle
    thinkTime(System &sys, Rng &rng)
    {
        const Cycle mean = sys.config().timing.thinkTimeMean;
        // thinkTimeMean == 0 means "no think time": nextBelow(0)
        // has no valid result (and its modulus would divide by 0).
        if (mean == 0)
            return 0;
        return mean / 2 + rng.nextBelow(mean);
    }

    WorkloadParams params_;
};

/** All registered workload names, in the paper's Table 1 order. */
const std::vector<std::string> &workloadNames();

/** One-line description of a workload; empty for unknown names. */
std::string workloadDescription(const std::string &name);

/** Instantiate a workload by name; fatal() on unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

/**
 * Convenience driver: init the workload, start one thread per core,
 * and run the event queue to completion.
 * @return total simulated cycles
 */
Cycle runWorkloadThreads(System &sys, Workload &workload);

} // namespace clearsim

#endif // CLEARSIM_WORKLOADS_WORKLOAD_HH
