/**
 * @file
 * queue: a transactional linked FIFO queue (2 regions).
 *
 * Michael&Scott-style structure with a dummy head node. Enqueue
 * reads the tail pointer (one indirection over data other enqueues
 * modify) and links a pre-allocated node; dequeue chases
 * head->next. Enqueue is likely immutable, dequeue is mutable
 * (Table 1: queue has 1 likely-immutable + 1 mutable region).
 *
 * Invariant: sum(enqueued) - sum(dequeued) equals the sum of the
 * values still in the queue.
 */

#include <memory>

#include "workloads/workload.hh"

namespace clearsim
{

namespace
{

constexpr unsigned kValOff = 0;
constexpr unsigned kNextOff = 8;

SimTask
enqueueBody(TxContext &tx, Addr tail_ptr, Addr tally, Addr node,
            std::uint64_t value)
{
    TxValue tail = co_await tx.load(tail_ptr);
    const Addr tail_addr = tx.toAddr(tail);
    co_await tx.store(tail_addr + kNextOff, TxValue(node));
    co_await tx.store(tail_ptr, TxValue(node));
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + TxValue(value));
}

SimTask
dequeueBody(TxContext &tx, Addr head_ptr, Addr tally)
{
    TxValue head = co_await tx.load(head_ptr);
    const Addr head_addr = tx.toAddr(head);
    TxValue first = co_await tx.load(head_addr + kNextOff);
    if (!tx.branchOn(first != TxValue(0)))
        co_return; // empty
    const Addr first_addr = tx.toAddr(first);
    TxValue value = co_await tx.load(first_addr + kValOff);
    // The dequeued node becomes the new dummy.
    co_await tx.store(head_ptr, first);
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + value);
}

class QueueWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "queue"; }
    unsigned numRegions() const override { return 2; }

    void
    init(System &sys) override
    {
        BackingStore &store = sys.mem().store();
        headPtr_ = store.allocateLines(1);
        tailPtr_ = store.allocateLines(1);
        enqTallyBase_ = store.allocateLines(params_.threads);
        deqTallyBase_ = store.allocateLines(params_.threads);

        // Dummy node.
        const Addr dummy = store.allocateLines(1);
        store.write(dummy + kValOff, 0);
        store.write(dummy + kNextOff, 0);
        store.write(headPtr_, dummy);
        store.write(tailPtr_, dummy);

        // Seed a few elements so early dequeues find work.
        Rng rng(params_.seed);
        for (unsigned i = 0; i < 8 * params_.scale; ++i) {
            const Addr node = store.allocateLines(1);
            const std::uint64_t v = 1 + rng.nextBelow(1000);
            store.write(node + kValOff, v);
            store.write(node + kNextOff, 0);
            const Addr tail = store.read(tailPtr_);
            store.write(tail + kNextOff, node);
            store.write(tailPtr_, node);
            initialSum_ += v;
        }
    }

    SimTask
    thread(System &sys, CoreId core) override
    {
        Rng rng = threadRng(core);
        const Addr head = headPtr_;
        const Addr tail = tailPtr_;
        const Addr enq_tally = enqTallyBase_ + core * kLineBytes;
        const Addr deq_tally = deqTallyBase_ + core * kLineBytes;
        for (unsigned op = 0; op < params_.opsPerThread; ++op) {
            co_await delayFor(sys.queue(), thinkTime(sys, rng));
            if (rng.nextBool(0.5)) {
                const std::uint64_t v = 1 + rng.nextBelow(1000);
                const Addr node =
                    sys.mem().store().allocateLines(1);
                sys.mem().store().write(node + kValOff, v);
                sys.mem().store().write(node + kNextOff, 0);
                co_await sys.runRegion(
                    core, 0x4400,
                    [tail, enq_tally, node, v](TxContext &tx) {
                        return enqueueBody(tx, tail, enq_tally, node,
                                           v);
                    });
            } else {
                co_await sys.runRegion(
                    core, 0x4440, [head, deq_tally](TxContext &tx) {
                        return dequeueBody(tx, head, deq_tally);
                    });
            }
        }
    }

    std::vector<std::string>
    verify(System &sys) const override
    {
        const BackingStore &store =
            const_cast<System &>(sys).mem().store();
        std::uint64_t enq = initialSum_;
        std::uint64_t deq = 0;
        for (unsigned t = 0; t < params_.threads; ++t) {
            enq += store.read(enqTallyBase_ + t * kLineBytes);
            deq += store.read(deqTallyBase_ + t * kLineBytes);
        }
        std::uint64_t remaining = 0;
        Addr cur = store.read(store.read(headPtr_) + kNextOff);
        unsigned guard = 0;
        while (cur != 0 && guard++ < 1000000) {
            remaining += store.read(cur + kValOff);
            cur = store.read(cur + kNextOff);
        }
        std::vector<std::string> issues;
        if (enq - deq != remaining)
            issues.push_back("queue: value sum not conserved");
        return issues;
    }

  private:
    Addr headPtr_ = 0;
    Addr tailPtr_ = 0;
    Addr enqTallyBase_ = 0;
    Addr deqTallyBase_ = 0;
    std::uint64_t initialSum_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeQueue(const WorkloadParams &params)
{
    return std::make_unique<QueueWorkload>(params);
}

} // namespace clearsim
