/**
 * @file
 * bst: a transactional binary search tree (3 mutable regions).
 *
 * Nodes live one per cacheline; insert, remove and contains
 * traverse the tree through pointers loaded inside the region, so
 * addresses are indirections and the footprint changes whenever the
 * tree changes — the paper classifies all three regions as mutable.
 * While the tree is small the footprint often stays stable between
 * consecutive attempts, which is why bst can still commit in S-CL
 * mode (Section 7, Figure 12 discussion).
 *
 * Invariants: strict BST ordering, no duplicate keys, and the
 * transactional size counter equals the number of reachable nodes.
 */

#include <memory>
#include <vector>

#include "workloads/workload.hh"

namespace clearsim
{

namespace
{

constexpr unsigned kKeyOff = 0;
constexpr unsigned kLeftOff = 8;
constexpr unsigned kRightOff = 16;

SimTask
insertBody(TxContext &tx, Addr root_ptr, Addr size_addr,
           std::uint64_t key, Addr node)
{
    TxValue cur = co_await tx.load(root_ptr);
    if (!tx.branchOn(cur != TxValue(0))) {
        co_await tx.store(root_ptr, TxValue(node));
        TxValue size = co_await tx.load(size_addr);
        co_await tx.store(size_addr, size + TxValue(1));
        co_return;
    }
    for (unsigned depth = 0; depth < 64; ++depth) {
        const Addr cur_addr = tx.toAddr(cur);
        TxValue k = co_await tx.load(cur_addr + kKeyOff);
        if (tx.branchOn(k == TxValue(key)))
            co_return; // duplicate: no insertion
        const unsigned child_off =
            tx.branchOn(TxValue(key) < k) ? kLeftOff : kRightOff;
        TxValue child = co_await tx.load(cur_addr + child_off);
        if (!tx.branchOn(child != TxValue(0))) {
            co_await tx.store(cur_addr + child_off, TxValue(node));
            TxValue size = co_await tx.load(size_addr);
            co_await tx.store(size_addr, size + TxValue(1));
            co_return;
        }
        cur = child;
    }
}

SimTask
containsBody(TxContext &tx, Addr root_ptr, Addr found_tally,
             std::uint64_t key)
{
    TxValue cur = co_await tx.load(root_ptr);
    for (unsigned depth = 0; depth < 64; ++depth) {
        if (!tx.branchOn(cur != TxValue(0)))
            break;
        const Addr cur_addr = tx.toAddr(cur);
        TxValue k = co_await tx.load(cur_addr + kKeyOff);
        if (tx.branchOn(k == TxValue(key))) {
            TxValue t = co_await tx.load(found_tally);
            co_await tx.store(found_tally, t + TxValue(1));
            co_return;
        }
        cur = co_await tx.load(
            cur_addr +
            (tx.branchOn(TxValue(key) < k) ? kLeftOff : kRightOff));
    }
}

SimTask
removeBody(TxContext &tx, Addr root_ptr, Addr size_addr,
           std::uint64_t key)
{
    // Find the node and its parent link.
    Addr parent_link = root_ptr;
    TxValue cur = co_await tx.load(root_ptr);
    bool found = false;
    Addr cur_addr = 0;
    for (unsigned depth = 0; depth < 64; ++depth) {
        if (!tx.branchOn(cur != TxValue(0)))
            break;
        cur_addr = tx.toAddr(cur);
        TxValue k = co_await tx.load(cur_addr + kKeyOff);
        if (tx.branchOn(k == TxValue(key))) {
            found = true;
            break;
        }
        parent_link =
            cur_addr +
            (tx.branchOn(TxValue(key) < k) ? kLeftOff : kRightOff);
        cur = co_await tx.load(parent_link);
    }
    if (!found)
        co_return;

    TxValue left = co_await tx.load(cur_addr + kLeftOff);
    TxValue right = co_await tx.load(cur_addr + kRightOff);
    if (tx.branchOn(left != TxValue(0)) &&
        tx.branchOn(right != TxValue(0))) {
        // Two children: skip (bounded-effort remove).
        co_return;
    }
    TxValue child = tx.branchOn(left != TxValue(0)) ? left : right;
    co_await tx.store(parent_link, child);
    TxValue size = co_await tx.load(size_addr);
    co_await tx.store(size_addr, size - TxValue(1));
}

class BstWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "bst"; }
    unsigned numRegions() const override { return 3; }

    void
    init(System &sys) override
    {
        BackingStore &store = sys.mem().store();
        rootPtr_ = store.allocateLines(1);
        sizeAddr_ = store.allocateLines(1);
        foundTallyBase_ = store.allocateLines(params_.threads);

        keyRange_ = 192 * params_.scale;
        Rng rng(params_.seed);
        unsigned inserted = 0;
        for (unsigned i = 0; i < 64 * params_.scale; ++i) {
            const std::uint64_t key = 1 + rng.nextBelow(keyRange_);
            if (insertDirect(store, key))
                ++inserted;
        }
        store.write(sizeAddr_, inserted);
    }

    SimTask
    thread(System &sys, CoreId core) override
    {
        Rng rng = threadRng(core);
        const Addr root = rootPtr_;
        const Addr size = sizeAddr_;
        const Addr tally = foundTallyBase_ + core * kLineBytes;
        for (unsigned op = 0; op < params_.opsPerThread; ++op) {
            co_await delayFor(sys.queue(), thinkTime(sys, rng));
            const std::uint64_t key = 1 + rng.nextBelow(keyRange_);
            const double p = rng.nextDouble();
            if (p < 0.4) {
                const Addr node =
                    sys.mem().store().allocateLines(1);
                sys.mem().store().write(node + kKeyOff, key);
                sys.mem().store().write(node + kLeftOff, 0);
                sys.mem().store().write(node + kRightOff, 0);
                co_await sys.runRegion(
                    core, 0x4300, [root, size, key, node](
                                      TxContext &tx) {
                        return insertBody(tx, root, size, key, node);
                    });
            } else if (p < 0.7) {
                co_await sys.runRegion(
                    core, 0x4340, [root, size, key](TxContext &tx) {
                        return removeBody(tx, root, size, key);
                    });
            } else {
                co_await sys.runRegion(
                    core, 0x4380, [root, tally, key](TxContext &tx) {
                        return containsBody(tx, root, tally, key);
                    });
            }
        }
    }

    std::vector<std::string>
    verify(System &sys) const override
    {
        std::vector<std::string> issues;
        const BackingStore &store =
            const_cast<System &>(sys).mem().store();
        std::uint64_t count = 0;
        std::uint64_t last_key = 0;
        bool ordered = true;
        // Iterative in-order traversal.
        std::vector<Addr> stack;
        Addr cur = store.read(rootPtr_);
        while (cur != 0 || !stack.empty()) {
            while (cur != 0) {
                stack.push_back(cur);
                cur = store.read(cur + kLeftOff);
            }
            cur = stack.back();
            stack.pop_back();
            const std::uint64_t key = store.read(cur + kKeyOff);
            if (count > 0 && key <= last_key)
                ordered = false;
            last_key = key;
            ++count;
            cur = store.read(cur + kRightOff);
        }
        if (!ordered)
            issues.push_back("bst: in-order walk not strictly "
                             "increasing");
        if (count != store.read(sizeAddr_))
            issues.push_back("bst: size counter does not match "
                             "reachable node count");
        return issues;
    }

  private:
    bool
    insertDirect(BackingStore &store, std::uint64_t key)
    {
        Addr link = rootPtr_;
        for (;;) {
            const Addr cur = store.read(link);
            if (cur == 0) {
                const Addr node = store.allocateLines(1);
                store.write(node + kKeyOff, key);
                store.write(node + kLeftOff, 0);
                store.write(node + kRightOff, 0);
                store.write(link, node);
                return true;
            }
            const std::uint64_t k = store.read(cur + kKeyOff);
            if (k == key)
                return false;
            link = cur + (key < k ? kLeftOff : kRightOff);
        }
    }

    Addr rootPtr_ = 0;
    Addr sizeAddr_ = 0;
    Addr foundTallyBase_ = 0;
    std::uint64_t keyRange_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeBst(const WorkloadParams &params)
{
    return std::make_unique<BstWorkload>(params);
}

} // namespace clearsim
