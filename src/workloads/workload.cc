#include "workloads/workload.hh"

#include <map>

#include "common/log.hh"
#include "fault/invariant_checker.hh"

namespace clearsim
{

// Factory functions implemented by the individual workload files.
std::unique_ptr<Workload> makeArrayswap(const WorkloadParams &);
std::unique_ptr<Workload> makeBitcoin(const WorkloadParams &);
std::unique_ptr<Workload> makeBst(const WorkloadParams &);
std::unique_ptr<Workload> makeDeque(const WorkloadParams &);
std::unique_ptr<Workload> makeHashmap(const WorkloadParams &);
std::unique_ptr<Workload> makeMwobject(const WorkloadParams &);
std::unique_ptr<Workload> makeQueue(const WorkloadParams &);
std::unique_ptr<Workload> makeStack(const WorkloadParams &);
std::unique_ptr<Workload> makeSortedList(const WorkloadParams &);
std::unique_ptr<Workload> makeStamp(const std::string &,
                                    const WorkloadParams &);

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "arrayswap", "bitcoin",  "bst",        "deque",
        "hashmap",   "mwobject", "queue",      "stack",
        "sorted-list",
        "bayes",     "genome",   "intruder",   "kmeans-h",
        "kmeans-l",  "labyrinth", "ssca2",     "vacation-h",
        "vacation-l", "yada",
    };
    return names;
}

std::string
workloadDescription(const std::string &name)
{
    static const std::map<std::string, std::string> descriptions = {
        {"arrayswap", "swap two random slots of a shared array"},
        {"bitcoin", "per-miner balance updates, hot shared total"},
        {"bst", "unbalanced binary search tree insert/lookup mix"},
        {"deque", "double-ended queue, pushes/pops at both ends"},
        {"hashmap", "open-chaining hash map insert/lookup mix"},
        {"mwobject", "multi-word object read-modify-write"},
        {"queue", "FIFO queue, enqueue/dequeue contention"},
        {"stack", "LIFO stack, all threads on one hot top"},
        {"sorted-list", "sorted linked list with long traversals"},
        {"bayes", "STAMP: Bayesian network structure learning"},
        {"genome", "STAMP: gene sequencing segment matching"},
        {"intruder", "STAMP: network intrusion detection"},
        {"kmeans-h", "STAMP: k-means clustering, high contention"},
        {"kmeans-l", "STAMP: k-means clustering, low contention"},
        {"labyrinth", "STAMP: maze routing, large footprints"},
        {"ssca2", "STAMP: graph kernel, tiny transactions"},
        {"vacation-h", "STAMP: travel booking, high contention"},
        {"vacation-l", "STAMP: travel booking, low contention"},
        {"yada", "STAMP: Delaunay mesh refinement"},
    };
    const auto it = descriptions.find(name);
    return it == descriptions.end() ? std::string() : it->second;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "arrayswap")
        return makeArrayswap(params);
    if (name == "bitcoin")
        return makeBitcoin(params);
    if (name == "bst")
        return makeBst(params);
    if (name == "deque")
        return makeDeque(params);
    if (name == "hashmap")
        return makeHashmap(params);
    if (name == "mwobject")
        return makeMwobject(params);
    if (name == "queue")
        return makeQueue(params);
    if (name == "stack")
        return makeStack(params);
    if (name == "sorted-list")
        return makeSortedList(params);
    for (const std::string &stamp :
         {std::string("bayes"), std::string("genome"),
          std::string("intruder"), std::string("kmeans-h"),
          std::string("kmeans-l"), std::string("labyrinth"),
          std::string("ssca2"), std::string("vacation-h"),
          std::string("vacation-l"), std::string("yada")}) {
        if (name == stamp)
            return makeStamp(name, params);
    }
    fatal("unknown workload '%s'", name.c_str());
}

Cycle
runWorkloadThreads(System &sys, Workload &workload)
{
    workload.init(sys);

    const unsigned threads =
        std::min(workload.params().threads, sys.config().numCores);
    std::vector<SimTask> tasks;
    tasks.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        tasks.push_back(workload.thread(sys, static_cast<CoreId>(t)));
    for (auto &task : tasks)
        task.start();

    // A generous ceiling: any run hitting it is livelocked.
    const Cycle limit = static_cast<Cycle>(4) * 1000 * 1000 * 1000;
    const Cycle cycles = sys.runToCompletion(limit);

    unsigned unfinished = 0;
    for (auto &task : tasks) {
        if (!task.done())
            ++unfinished;
    }
    if (unfinished != 0) {
        // With a watchdog installed, report the deadlock as a
        // diagnosable invariant violation (with trace ring and
        // repro string) instead of asserting out.
        if (InvariantChecker *checker = sys.checker()) {
            checker->noteDeadlock(cycles, unfinished);
            checker->raise();
        }
        CLEARSIM_ASSERT(unfinished == 0,
                        "a workload thread never finished "
                        "(simulated deadlock)");
    }
    return cycles;
}

} // namespace clearsim
