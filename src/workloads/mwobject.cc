/**
 * @file
 * mwobject: one immutable atomic region.
 *
 * Performs 4 additions to 4 different values that fall into the
 * same cacheline (after Feldman et al.'s multi-word object). Every
 * thread updates the same line, producing extreme contention; the
 * footprint is a single fixed line, so CLEAR re-executes it in
 * NS-CL mode — the paper reports mwobject as the one application
 * running almost entirely in NS-CL.
 *
 * Invariant: each word counts the committed additions, so all four
 * words must equal the total number of invocations.
 */

#include <memory>

#include "workloads/workload.hh"

namespace clearsim
{

namespace
{

SimTask
addBody(TxContext &tx, Addr base)
{
    for (unsigned w = 0; w < 4; ++w) {
        const Addr addr = base + w * 8;
        TxValue v = co_await tx.load(addr);
        co_await tx.store(addr, v + TxValue(1));
    }
}

class MwobjectWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "mwobject"; }
    unsigned numRegions() const override { return 1; }

    void
    init(System &sys) override
    {
        base_ = sys.mem().store().allocateLines(1);
        for (unsigned w = 0; w < 4; ++w)
            sys.mem().store().write(base_ + w * 8, 0);
    }

    SimTask
    thread(System &sys, CoreId core) override
    {
        Rng rng = threadRng(core);
        for (unsigned op = 0; op < params_.opsPerThread; ++op) {
            co_await delayFor(sys.queue(), thinkTime(sys, rng));
            const Addr base = base_;
            co_await sys.runRegion(core, 0x4200,
                                   [base](TxContext &tx) {
                                       return addBody(tx, base);
                                   });
        }
    }

    std::vector<std::string>
    verify(System &sys) const override
    {
        const unsigned threads =
            std::min(params_.threads, sys.config().numCores);
        const std::uint64_t expected =
            static_cast<std::uint64_t>(threads) *
            params_.opsPerThread;
        std::vector<std::string> issues;
        for (unsigned w = 0; w < 4; ++w) {
            if (sys.mem().store().read(base_ + w * 8) != expected)
                issues.push_back(
                    "mwobject: counter word lost updates");
        }
        return issues;
    }

  private:
    Addr base_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeMwobject(const WorkloadParams &params)
{
    return std::make_unique<MwobjectWorkload>(params);
}

} // namespace clearsim
