/**
 * @file
 * deque: a bounded circular work-stealing-style deque (2 regions).
 *
 * A fixed ring buffer with top and bottom counters on separate
 * cachelines (after Chase-Lev). Push loads the bottom index and
 * uses it to address the slot (one indirection whose source other
 * pushes modify: likely immutable in the common low-contention
 * case); pop-from-top does the same at the other end.
 *
 * Invariant: sum(pushed) - sum(popped) equals the sum of values in
 * the live window [top, bottom).
 */

#include <memory>

#include "workloads/workload.hh"

namespace clearsim
{

namespace
{

SimTask
pushBody(TxContext &tx, Addr bottom_ptr, Addr top_ptr, Addr buf,
         std::uint64_t cap, Addr tally, std::uint64_t value)
{
    TxValue bottom = co_await tx.load(bottom_ptr);
    TxValue top = co_await tx.load(top_ptr);
    if (tx.branchOn((bottom - top) >= TxValue(cap)))
        co_return; // full
    const Addr slot =
        tx.toAddr(TxValue(buf) + (bottom % TxValue(cap)) * TxValue(8));
    co_await tx.store(slot, TxValue(value));
    co_await tx.store(bottom_ptr, bottom + TxValue(1));
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + TxValue(value));
}

SimTask
popBody(TxContext &tx, Addr bottom_ptr, Addr top_ptr, Addr buf,
        std::uint64_t cap, Addr tally)
{
    TxValue top = co_await tx.load(top_ptr);
    TxValue bottom = co_await tx.load(bottom_ptr);
    if (!tx.branchOn(top != bottom)) {
        co_return; // empty
    }
    const Addr slot =
        tx.toAddr(TxValue(buf) + (top % TxValue(cap)) * TxValue(8));
    TxValue value = co_await tx.load(slot);
    co_await tx.store(top_ptr, top + TxValue(1));
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + value);
}

class DequeWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "deque"; }
    unsigned numRegions() const override { return 2; }

    void
    init(System &sys) override
    {
        BackingStore &store = sys.mem().store();
        cap_ = 256 * params_.scale;
        bufBase_ = store.allocate(cap_ * 8, kLineBytes);
        topPtr_ = store.allocateLines(1);
        bottomPtr_ = store.allocateLines(1);
        pushTallyBase_ = store.allocateLines(params_.threads);
        popTallyBase_ = store.allocateLines(params_.threads);

        Rng rng(params_.seed);
        std::uint64_t bottom = 0;
        for (unsigned i = 0; i < 16; ++i) {
            const std::uint64_t v = 1 + rng.nextBelow(1000);
            store.write(bufBase_ + (bottom % cap_) * 8, v);
            ++bottom;
            initialSum_ += v;
        }
        store.write(topPtr_, 0);
        store.write(bottomPtr_, bottom);
    }

    SimTask
    thread(System &sys, CoreId core) override
    {
        Rng rng = threadRng(core);
        const Addr bot = bottomPtr_;
        const Addr top = topPtr_;
        const Addr buf = bufBase_;
        const std::uint64_t cap = cap_;
        const Addr push_tally = pushTallyBase_ + core * kLineBytes;
        const Addr pop_tally = popTallyBase_ + core * kLineBytes;
        for (unsigned op = 0; op < params_.opsPerThread; ++op) {
            co_await delayFor(sys.queue(), thinkTime(sys, rng));
            if (rng.nextBool(0.5)) {
                const std::uint64_t v = 1 + rng.nextBelow(1000);
                co_await sys.runRegion(
                    core, 0x4700,
                    [bot, top, buf, cap, push_tally,
                     v](TxContext &tx) {
                        return pushBody(tx, bot, top, buf, cap,
                                        push_tally, v);
                    });
            } else {
                co_await sys.runRegion(
                    core, 0x4740,
                    [bot, top, buf, cap, pop_tally](TxContext &tx) {
                        return popBody(tx, bot, top, buf, cap,
                                       pop_tally);
                    });
            }
        }
    }

    std::vector<std::string>
    verify(System &sys) const override
    {
        const BackingStore &store =
            const_cast<System &>(sys).mem().store();
        std::uint64_t pushed = initialSum_;
        std::uint64_t popped = 0;
        for (unsigned t = 0; t < params_.threads; ++t) {
            pushed += store.read(pushTallyBase_ + t * kLineBytes);
            popped += store.read(popTallyBase_ + t * kLineBytes);
        }
        const std::uint64_t top = store.read(topPtr_);
        const std::uint64_t bottom = store.read(bottomPtr_);
        std::uint64_t remaining = 0;
        for (std::uint64_t i = top; i < bottom; ++i)
            remaining += store.read(bufBase_ + (i % cap_) * 8);
        std::vector<std::string> issues;
        if (top > bottom)
            issues.push_back("deque: top passed bottom");
        if (pushed - popped != remaining)
            issues.push_back("deque: value sum not conserved");
        return issues;
    }

  private:
    Addr bufBase_ = 0;
    Addr topPtr_ = 0;
    Addr bottomPtr_ = 0;
    Addr pushTallyBase_ = 0;
    Addr popTallyBase_ = 0;
    std::uint64_t cap_ = 0;
    std::uint64_t initialSum_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeDeque(const WorkloadParams &params)
{
    return std::make_unique<DequeWorkload>(params);
}

} // namespace clearsim
