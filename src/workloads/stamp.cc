/**
 * @file
 * STAMP-like workloads: synthetic kernels reproducing the atomic-
 * region structure of the ten STAMP configurations the paper
 * evaluates (bayes, genome, intruder, kmeans-h/l, labyrinth, ssca2,
 * vacation-h/l, yada).
 *
 * We do not port the applications themselves; what determines
 * CLEAR's behavior is the *shape* of their atomic regions — how
 * many there are, their footprint sizes, whether addresses are
 * computed through indirections, whether the footprint mutates
 * across retries, and how contended the data is. Each application
 * is therefore described by a spec: a set of regions drawn from
 * four archetypes
 *
 *  - FixedUpdate: k pre-computed lines, read-modify-write each
 *    (immutable; kmeans' delta updates, ssca2's degree counters);
 *  - IndirectUpdate: k targets found through a static index table
 *    loaded inside the region (likely immutable; queue pops,
 *    reservation-table entry updates);
 *  - Chase: a linked-list walk with optional insertion (mutable;
 *    genome segment hashing, vacation tree updates);
 *  - Scatter: FixedUpdate with a footprint too large to lock or to
 *    fit the SQ during failed-mode discovery (labyrinth path
 *    claims, yada cavity re-triangulations) — these push the
 *    execution toward the fallback path exactly as the paper
 *    reports.
 *
 * Every region increments exactly one shared word per "unit of
 * work" and tallies the increments it committed into a per-thread
 * line inside the same region, so the global invariant
 *     sum(pool) + sum(list values) == sum(tallies)
 * holds iff every mode of execution was atomic.
 */

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/log.hh"
#include "workloads/workload.hh"

namespace clearsim
{

namespace
{

constexpr unsigned kValOff = 0;
constexpr unsigned kNextOff = 8;

/** Archetype of one synthetic atomic region. */
enum class RegionKind
{
    FixedUpdate,
    IndirectUpdate,
    Chase,
    Scatter,
};

/** One atomic region of a STAMP-like application. */
struct StampRegionSpec
{
    RegionKind kind;
    unsigned size;   ///< lines touched / maximum chase steps
    double weight;   ///< relative selection probability
    bool mutate = false; ///< Chase only: insert a node at the stop
};

/** Full shape description of one application. */
struct StampSpec
{
    std::vector<StampRegionSpec> regions;
    unsigned poolLines = 256;   ///< shared counter pool
    unsigned hotLines = 16;     ///< contended subset of the pool
    double hotFraction = 0.3;   ///< probability a pick is hot
    unsigned tableEntries = 64; ///< static indirection table
    unsigned lists = 4;         ///< mutable linked lists
    unsigned listLen = 8;       ///< initial nodes per list
    unsigned genCells = 1;      ///< scatter generation cells
    double opsFactor = 1.0;     ///< scales opsPerThread
};

StampSpec
specFor(const std::string &name)
{
    using K = RegionKind;
    StampSpec s;
    if (name == "bayes") {
        s.regions = {
            {K::IndirectUpdate, 2, 0.06}, {K::IndirectUpdate, 2, 0.06},
            {K::IndirectUpdate, 3, 0.06}, {K::IndirectUpdate, 3, 0.06},
            {K::IndirectUpdate, 4, 0.06}, {K::Chase, 12, 0.07, true},
            {K::Chase, 16, 0.07, true},   {K::Chase, 20, 0.07, true},
            {K::Chase, 24, 0.07, true},   {K::Chase, 28, 0.07, true},
            {K::Chase, 14, 0.07, true},   {K::Scatter, 40, 0.09},
            {K::Scatter, 56, 0.09},       {K::Scatter, 48, 0.10},
        };
        s.poolLines = 1024;
        s.hotLines = 16;
        s.hotFraction = 0.35;
        s.tableEntries = 128;
        s.lists = 6;
        s.listLen = 12;
        s.genCells = 4;
        s.opsFactor = 0.75;
    } else if (name == "genome") {
        s.regions = {
            {K::Chase, 8, 0.25, true},  {K::Chase, 12, 0.25, true},
            {K::Chase, 16, 0.20, true}, {K::Chase, 20, 0.15},
            {K::Chase, 10, 0.15},
        };
        s.poolLines = 512;
        s.hotLines = 8;
        s.hotFraction = 0.2;
        s.lists = 8;
        s.listLen = 10;
    } else if (name == "intruder") {
        s.regions = {
            {K::IndirectUpdate, 3, 0.45},
            {K::Chase, 10, 0.35, true},
            {K::IndirectUpdate, 2, 0.20},
        };
        s.poolLines = 256;
        s.hotLines = 4;
        s.hotFraction = 0.55;
        s.lists = 4;
        s.listLen = 8;
    } else if (name == "kmeans-h") {
        s.regions = {
            {K::FixedUpdate, 1, 0.2},
            {K::IndirectUpdate, 2, 0.4},
            {K::IndirectUpdate, 3, 0.4},
        };
        s.poolLines = 16;
        s.hotLines = 16;
        s.hotFraction = 0.95;
        s.tableEntries = 32;
    } else if (name == "kmeans-l") {
        s.regions = {
            {K::FixedUpdate, 1, 0.2},
            {K::IndirectUpdate, 2, 0.4},
            {K::IndirectUpdate, 3, 0.4},
        };
        s.poolLines = 128;
        s.hotLines = 32;
        s.hotFraction = 0.5;
        s.tableEntries = 64;
    } else if (name == "labyrinth") {
        s.regions = {
            {K::Scatter, 56, 0.40},
            {K::Scatter, 80, 0.35},
            {K::Scatter, 112, 0.25},
        };
        s.poolLines = 256;
        s.hotLines = 64;
        s.hotFraction = 0.7;
        s.opsFactor = 0.4;
    } else if (name == "ssca2") {
        s.regions = {
            {K::FixedUpdate, 1, 0.4},
            {K::FixedUpdate, 2, 0.3},
            {K::IndirectUpdate, 1, 0.3},
        };
        s.poolLines = 2048;
        s.hotLines = 64;
        s.hotFraction = 0.1;
        s.tableEntries = 256;
    } else if (name == "vacation-h") {
        s.regions = {
            {K::IndirectUpdate, 4, 0.3},
            {K::Chase, 14, 0.4, true},
            {K::Chase, 18, 0.3, true},
        };
        s.poolLines = 512;
        s.hotLines = 8;
        s.hotFraction = 0.45;
        s.lists = 8;
        s.listLen = 12;
    } else if (name == "vacation-l") {
        s.regions = {
            {K::IndirectUpdate, 4, 0.3},
            {K::Chase, 14, 0.4, true},
            {K::Chase, 18, 0.3, true},
        };
        s.poolLines = 512;
        s.hotLines = 8;
        s.hotFraction = 0.2;
        s.lists = 8;
        s.listLen = 12;
    } else if (name == "yada") {
        s.regions = {
            {K::FixedUpdate, 2, 0.15},  {K::Chase, 16, 0.20, true},
            {K::Scatter, 28, 0.20},     {K::Scatter, 44, 0.20},
            {K::Scatter, 64, 0.15},     {K::Chase, 24, 0.10, true},
        };
        s.poolLines = 384;
        s.hotLines = 32;
        s.hotFraction = 0.5;
        s.lists = 6;
        s.listLen = 10;
        s.genCells = 4;
        s.opsFactor = 0.5;
    } else {
        fatal("unknown STAMP workload '%s'", name.c_str());
    }
    return s;
}

/** Increment word 0 of k pre-computed pool lines. Immutable. */
SimTask
fixedUpdateBody(TxContext &tx, const std::vector<Addr> *targets,
                Addr tally)
{
    for (Addr target : *targets) {
        TxValue v = co_await tx.load(target);
        co_await tx.store(target, v + TxValue(1));
    }
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + TxValue(targets->size()));
}

/**
 * Scatter: a large update whose targets depend on a generation
 * value read inside the region, like a maze router re-planning its
 * path from the current grid state. Mutable: the footprint shifts
 * whenever a concurrent scatter commits, and its size exceeds both
 * the ALT and the SQ bound of failed-mode discovery.
 */
SimTask
scatterBody(TxContext &tx, const std::vector<std::uint64_t> *indices,
            Addr pool_base, std::uint64_t pool_lines, Addr gen_addr,
            Addr tally)
{
    TxValue gen = co_await tx.load(gen_addr);
    for (std::uint64_t idx : *indices) {
        const Addr target = tx.toAddr(
            TxValue(pool_base) +
            ((TxValue(idx) + gen) % TxValue(pool_lines)) *
                TxValue(kLineBytes));
        TxValue v = co_await tx.load(target);
        co_await tx.store(target, v + TxValue(1));
    }
    co_await tx.store(gen_addr, gen + TxValue(1));
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + TxValue(indices->size() + 1));
}

/**
 * Increment k pool words found through the static index table.
 * Likely immutable: the table entries are never written.
 */
SimTask
indirectUpdateBody(TxContext &tx, const std::vector<Addr> *slots,
                   Addr pool_base, Addr tally)
{
    for (Addr slot : *slots) {
        TxValue idx = co_await tx.load(slot);
        const Addr target =
            tx.toAddr(TxValue(pool_base) + idx * TxValue(kLineBytes));
        TxValue v = co_await tx.load(target);
        co_await tx.store(target, v + TxValue(1));
    }
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + TxValue(slots->size()));
}

/**
 * Walk a list up to max_steps nodes, increment the value of the
 * node where the walk stops, and optionally insert a fresh node
 * after it. Mutable: addresses chase next pointers.
 */
SimTask
chaseBody(TxContext &tx, Addr head, unsigned max_steps, Addr tally,
          Addr new_node)
{
    TxValue curr = co_await tx.load(head + kNextOff);
    Addr last_addr = 0;
    for (unsigned i = 0; i < max_steps; ++i) {
        if (!tx.branchOn(curr != TxValue(0)))
            break;
        last_addr = tx.toAddr(curr);
        curr = co_await tx.load(last_addr + kNextOff);
    }
    if (last_addr == 0)
        co_return; // empty list (cannot happen: lists only grow)
    TxValue v = co_await tx.load(last_addr + kValOff);
    co_await tx.store(last_addr + kValOff, v + TxValue(1));
    if (new_node != 0) {
        TxValue next = co_await tx.load(last_addr + kNextOff);
        co_await tx.store(new_node + kNextOff, next);
        co_await tx.store(last_addr + kNextOff, TxValue(new_node));
    }
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + TxValue(1));
}

class StampWorkload : public Workload
{
  public:
    StampWorkload(std::string name, const WorkloadParams &params)
        : Workload(params), name_(std::move(name)),
          spec_(specFor(name_))
    {
    }

    const char *name() const override { return name_.c_str(); }

    unsigned
    numRegions() const override
    {
        return static_cast<unsigned>(spec_.regions.size());
    }

    void
    init(System &sys) override
    {
        BackingStore &store = sys.mem().store();
        poolBase_ = store.allocateLines(spec_.poolLines);
        tallyBase_ = store.allocateLines(params_.threads);
        tableBase_ = store.allocateLines(spec_.tableEntries);
        genBase_ = store.allocateLines(spec_.genCells);

        Rng rng(params_.seed);
        for (unsigned e = 0; e < spec_.tableEntries; ++e) {
            store.write(tableBase_ + e * kLineBytes,
                        rng.nextBelow(spec_.poolLines));
        }

        listHeads_.clear();
        for (unsigned l = 0; l < spec_.lists; ++l) {
            const Addr head = store.allocateLines(1);
            store.write(head + kValOff, 0);
            store.write(head + kNextOff, 0);
            Addr prev = head;
            for (unsigned n = 0; n < spec_.listLen; ++n) {
                const Addr node = store.allocateLines(1);
                store.write(node + kValOff, 0);
                store.write(node + kNextOff, 0);
                store.write(prev + kNextOff, node);
                prev = node;
            }
            listHeads_.push_back(head);
        }

        scratch_.assign(params_.threads, {});

        totalWeight_ = 0;
        for (const StampRegionSpec &r : spec_.regions)
            totalWeight_ += r.weight;
    }

    SimTask
    thread(System &sys, CoreId core) override
    {
        Rng rng = threadRng(core);
        const Addr tally = tallyBase_ + core * kLineBytes;
        const unsigned ops = std::max<unsigned>(
            1, static_cast<unsigned>(params_.opsPerThread *
                                     spec_.opsFactor));
        for (unsigned op = 0; op < ops; ++op) {
            co_await delayFor(sys.queue(), thinkTime(sys, rng));
            const unsigned ridx = pickRegion(rng);
            const StampRegionSpec &r = spec_.regions[ridx];
            const RegionPc pc = 0x5000 + ridx * 0x40;

            switch (r.kind) {
              case RegionKind::FixedUpdate: {
                  // Per-core scratch keeps heap-owning objects out
                  // of coroutine frames and lambda captures.
                  std::vector<Addr> &targets = scratch_[core];
                  targets = pickPoolLines(rng, r.size);
                  const std::vector<Addr> *tp = &targets;
                  co_await sys.runRegion(
                      core, pc, [tp, tally](TxContext &tx) {
                          return fixedUpdateBody(tx, tp, tally);
                      });
                  break;
              }
              case RegionKind::Scatter: {
                  std::vector<Addr> &indices = scratch_[core];
                  indices.clear();
                  for (unsigned i = 0; i < r.size; ++i)
                      indices.push_back(
                          rng.nextBelow(spec_.poolLines));
                  const std::vector<std::uint64_t> *ip = &indices;
                  const Addr pool = poolBase_;
                  const std::uint64_t pool_lines = spec_.poolLines;
                  const Addr gen =
                      genBase_ +
                      (ridx % spec_.genCells) * kLineBytes;
                  co_await sys.runRegion(
                      core, pc,
                      [ip, pool, pool_lines, gen,
                       tally](TxContext &tx) {
                          return scatterBody(tx, ip, pool,
                                             pool_lines, gen, tally);
                      });
                  break;
              }
              case RegionKind::IndirectUpdate: {
                  // Table slots are hot-biased so that -h and -l
                  // variants differ in contention, as in vacation.
                  const unsigned hot_slots =
                      std::max(2u, spec_.tableEntries / 16);
                  std::vector<Addr> &slots = scratch_[core];
                  slots.clear();
                  for (unsigned i = 0; i < r.size; ++i) {
                      const unsigned e =
                          rng.nextDouble() < spec_.hotFraction
                              ? static_cast<unsigned>(
                                    rng.nextBelow(hot_slots))
                              : static_cast<unsigned>(rng.nextBelow(
                                    spec_.tableEntries));
                      slots.push_back(tableBase_ + e * kLineBytes);
                  }
                  const std::vector<Addr> *sp = &slots;
                  const Addr pool = poolBase_;
                  co_await sys.runRegion(
                      core, pc, [sp, pool, tally](TxContext &tx) {
                          return indirectUpdateBody(tx, sp, pool,
                                                    tally);
                      });
                  break;
              }
              case RegionKind::Chase: {
                  // List choice is hot-biased: under high
                  // contention most walks share one list.
                  const Addr head =
                      rng.nextDouble() < spec_.hotFraction
                          ? listHeads_[0]
                          : listHeads_[rng.nextBelow(
                                listHeads_.size())];
                  Addr node = 0;
                  if (r.mutate) {
                      node = sys.mem().store().allocateLines(1);
                      sys.mem().store().write(node + kValOff, 0);
                      sys.mem().store().write(node + kNextOff, 0);
                  }
                  const unsigned steps =
                      1 + static_cast<unsigned>(
                              rng.nextBelow(r.size));
                  co_await sys.runRegion(
                      core, pc,
                      [head, steps, tally, node](TxContext &tx) {
                          return chaseBody(tx, head, steps, tally,
                                           node);
                      });
                  break;
              }
            }
        }
    }

    std::vector<std::string>
    verify(System &sys) const override
    {
        const BackingStore &store =
            const_cast<System &>(sys).mem().store();
        std::uint64_t pool_sum = 0;
        for (unsigned g = 0; g < spec_.genCells; ++g)
            pool_sum += store.read(genBase_ + g * kLineBytes);
        for (unsigned l = 0; l < spec_.poolLines; ++l)
            pool_sum += store.read(poolBase_ + l * kLineBytes);
        std::uint64_t list_sum = 0;
        for (Addr head : listHeads_) {
            Addr cur = store.read(head + kNextOff);
            unsigned guard = 0;
            while (cur != 0 && guard++ < 1000000) {
                list_sum += store.read(cur + kValOff);
                cur = store.read(cur + kNextOff);
            }
        }
        std::uint64_t tallies = 0;
        for (unsigned t = 0; t < params_.threads; ++t)
            tallies += store.read(tallyBase_ + t * kLineBytes);

        std::vector<std::string> issues;
        if (pool_sum + list_sum != tallies) {
            issues.push_back(name_ +
                             ": increments not conserved (atomicity "
                             "violation)");
        }
        return issues;
    }

  private:
    unsigned
    pickRegion(Rng &rng) const
    {
        double x = rng.nextDouble() * totalWeight_;
        for (unsigned i = 0; i < spec_.regions.size(); ++i) {
            x -= spec_.regions[i].weight;
            if (x <= 0)
                return i;
        }
        return static_cast<unsigned>(spec_.regions.size() - 1);
    }

    std::vector<Addr>
    pickPoolLines(Rng &rng, unsigned count) const
    {
        std::unordered_set<std::uint64_t> seen;
        std::vector<Addr> lines;
        lines.reserve(count);
        while (lines.size() < count &&
               seen.size() < spec_.poolLines) {
            std::uint64_t idx;
            if (rng.nextDouble() < spec_.hotFraction)
                idx = rng.nextBelow(spec_.hotLines);
            else
                idx = rng.nextBelow(spec_.poolLines);
            if (seen.insert(idx).second)
                lines.push_back(poolBase_ + idx * kLineBytes);
        }
        return lines;
    }

    std::string name_;
    StampSpec spec_;
    Addr poolBase_ = 0;
    Addr tallyBase_ = 0;
    Addr tableBase_ = 0;
    Addr genBase_ = 0;
    std::vector<Addr> listHeads_;
    std::vector<std::vector<Addr>> scratch_;
    double totalWeight_ = 1.0;
};

} // namespace

std::unique_ptr<Workload>
makeStamp(const std::string &name, const WorkloadParams &params)
{
    return std::make_unique<StampWorkload>(name, params);
}

} // namespace clearsim
