/**
 * @file
 * arrayswap: two immutable atomic regions (Listing 1 of the paper).
 *
 * A shared array of 64-bit words; region 0 swaps two elements whose
 * addresses are computed before the region starts, region 1 rotates
 * three elements. Neither region contains an indirection, so both
 * are immutable and eligible for NS-CL re-execution.
 *
 * Invariant: swaps and rotations preserve the multiset of array
 * values, so the sum and xor of all elements never change.
 */

#include <memory>

#include "workloads/workload.hh"

namespace clearsim
{

namespace
{

SimTask
swapBody(TxContext &tx, Addr a, Addr b)
{
    TxValue va = co_await tx.load(a);
    TxValue vb = co_await tx.load(b);
    co_await tx.store(a, vb);
    co_await tx.store(b, va);
}

SimTask
rotateBody(TxContext &tx, Addr a, Addr b, Addr c)
{
    TxValue va = co_await tx.load(a);
    TxValue vb = co_await tx.load(b);
    TxValue vc = co_await tx.load(c);
    co_await tx.store(a, vc);
    co_await tx.store(b, va);
    co_await tx.store(c, vb);
}

class ArrayswapWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "arrayswap"; }
    unsigned numRegions() const override { return 2; }

    void
    init(System &sys) override
    {
        words_ = 512 * params_.scale;
        base_ = sys.mem().store().allocate(words_ * 8, kLineBytes);
        Rng rng(params_.seed);
        initialSum_ = 0;
        initialXor_ = 0;
        for (std::uint64_t i = 0; i < words_; ++i) {
            const std::uint64_t v = rng.next();
            sys.mem().store().write(base_ + i * 8, v);
            initialSum_ += v;
            initialXor_ ^= v;
        }
    }

    SimTask
    thread(System &sys, CoreId core) override
    {
        Rng rng = threadRng(core);
        for (unsigned op = 0; op < params_.opsPerThread; ++op) {
            co_await delayFor(sys.queue(), thinkTime(sys, rng));
            // Positions must be distinct or the operation is not a
            // permutation (and the multiset invariant would not
            // hold by construction).
            const std::uint64_t ia = rng.nextBelow(words_);
            const std::uint64_t ib =
                (ia + 1 + rng.nextBelow(words_ - 1)) % words_;
            const Addr a = elem(ia);
            const Addr b = elem(ib);
            if (rng.nextBool(0.7)) {
                co_await sys.runRegion(
                    core, 0x4000, [a, b](TxContext &tx) {
                        return swapBody(tx, a, b);
                    });
            } else {
                std::uint64_t ic =
                    (ia + 1 + rng.nextBelow(words_ - 2)) % words_;
                if (ic == ib)
                    ic = (ic + 1) % words_;
                const Addr c = elem(ic);
                co_await sys.runRegion(
                    core, 0x4040, [a, b, c](TxContext &tx) {
                        return rotateBody(tx, a, b, c);
                    });
            }
        }
    }

    std::vector<std::string>
    verify(System &sys) const override
    {
        std::uint64_t sum = 0;
        std::uint64_t x = 0;
        for (std::uint64_t i = 0; i < words_; ++i) {
            const std::uint64_t v =
                sys.mem().store().read(base_ + i * 8);
            sum += v;
            x ^= v;
        }
        std::vector<std::string> issues;
        if (sum != initialSum_)
            issues.push_back("arrayswap: element sum not conserved");
        if (x != initialXor_)
            issues.push_back("arrayswap: element xor not conserved");
        return issues;
    }

  private:
    Addr elem(std::uint64_t i) const { return base_ + i * 8; }

    Addr base_ = 0;
    std::uint64_t words_ = 0;
    std::uint64_t initialSum_ = 0;
    std::uint64_t initialXor_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeArrayswap(const WorkloadParams &params)
{
    return std::make_unique<ArrayswapWorkload>(params);
}

} // namespace clearsim
