/**
 * @file
 * sorted-list: a sorted singly-linked list (3 regions: 1 immutable,
 * 2 mutable — Table 1).
 *
 * Region 0 is the traversal of Listing 3: walk the list counting
 * elements matching a value (mutable: addresses come from chasing
 * next pointers). Region 1 inserts a unique key in sorted position
 * (mutable). Region 2 snapshots the fixed-address statistics block
 * (immutable: two constant addresses, no indirection).
 *
 * Invariants: strictly sorted unique keys between the sentinels,
 * and the transactional size counter matches the walk count.
 */

#include <limits>
#include <memory>

#include "workloads/workload.hh"

namespace clearsim
{

namespace
{

constexpr unsigned kKeyOff = 0;
constexpr unsigned kNextOff = 8;

SimTask
countBody(TxContext &tx, Addr head, Addr tally, std::uint64_t val)
{
    TxValue curr = co_await tx.load(head + kNextOff);
    std::uint64_t n = 0;
    for (unsigned i = 0; i < 128; ++i) {
        const Addr curr_addr = tx.toAddr(curr);
        TxValue key = co_await tx.load(curr_addr + kKeyOff);
        if (tx.branchOn(
                key == TxValue(std::numeric_limits<
                               std::uint64_t>::max()))) {
            break; // tail sentinel
        }
        if (tx.branchOn(key == TxValue(val)))
            ++n;
        curr = co_await tx.load(curr_addr + kNextOff);
    }
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + TxValue(n));
}

SimTask
insertBody(TxContext &tx, Addr head, Addr size_addr,
           std::uint64_t key, Addr node)
{
    Addr prev_link = head + kNextOff;
    TxValue curr = co_await tx.load(prev_link);
    for (unsigned i = 0; i < 128; ++i) {
        const Addr curr_addr = tx.toAddr(curr);
        TxValue k = co_await tx.load(curr_addr + kKeyOff);
        if (tx.branchOn(k == TxValue(key)))
            co_return; // unique keys only
        if (tx.branchOn(k > TxValue(key))) {
            co_await tx.store(node + kNextOff, curr);
            co_await tx.store(prev_link, TxValue(node));
            TxValue size = co_await tx.load(size_addr);
            co_await tx.store(size_addr, size + TxValue(1));
            co_return;
        }
        prev_link = curr_addr + kNextOff;
        curr = co_await tx.load(prev_link);
    }
}

SimTask
statsBody(TxContext &tx, Addr size_addr, Addr stats_addr)
{
    // Fixed addresses, no indirection: an immutable region.
    TxValue size = co_await tx.load(size_addr);
    TxValue reads = co_await tx.load(stats_addr);
    co_await tx.store(stats_addr, reads + TxValue(1));
    co_await tx.store(stats_addr + 8, size);
}

class SortedListWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "sorted-list"; }
    unsigned numRegions() const override { return 3; }

    void
    init(System &sys) override
    {
        BackingStore &store = sys.mem().store();
        keyRange_ = 48 * params_.scale;
        head_ = store.allocateLines(1);
        tail_ = store.allocateLines(1);
        sizeAddr_ = store.allocateLines(1);
        statsAddr_ = store.allocateLines(1);
        tallyBase_ = store.allocateLines(params_.threads);

        store.write(head_ + kKeyOff, 0);
        store.write(head_ + kNextOff, tail_);
        store.write(tail_ + kKeyOff,
                    std::numeric_limits<std::uint64_t>::max());
        store.write(tail_ + kNextOff, 0);

        Rng rng(params_.seed);
        unsigned inserted = 0;
        for (unsigned i = 0; i < 12 * params_.scale; ++i) {
            if (insertDirect(store, 1 + rng.nextBelow(keyRange_)))
                ++inserted;
        }
        store.write(sizeAddr_, inserted);
    }

    SimTask
    thread(System &sys, CoreId core) override
    {
        Rng rng = threadRng(core);
        const Addr head = head_;
        const Addr size = sizeAddr_;
        const Addr stats = statsAddr_;
        const Addr tally = tallyBase_ + core * kLineBytes;
        for (unsigned op = 0; op < params_.opsPerThread; ++op) {
            co_await delayFor(sys.queue(), thinkTime(sys, rng));
            const std::uint64_t key = 1 + rng.nextBelow(keyRange_);
            const double p = rng.nextDouble();
            if (p < 0.5) {
                co_await sys.runRegion(
                    core, 0x4800, [head, tally, key](TxContext &tx) {
                        return countBody(tx, head, tally, key);
                    });
            } else if (p < 0.8) {
                const Addr node =
                    sys.mem().store().allocateLines(1);
                sys.mem().store().write(node + kKeyOff, key);
                sys.mem().store().write(node + kNextOff, 0);
                co_await sys.runRegion(
                    core, 0x4840,
                    [head, size, key, node](TxContext &tx) {
                        return insertBody(tx, head, size, key, node);
                    });
            } else {
                co_await sys.runRegion(
                    core, 0x4880, [size, stats](TxContext &tx) {
                        return statsBody(tx, size, stats);
                    });
            }
        }
    }

    std::vector<std::string>
    verify(System &sys) const override
    {
        const BackingStore &store =
            const_cast<System &>(sys).mem().store();
        std::vector<std::string> issues;
        std::uint64_t last = 0;
        std::uint64_t count = 0;
        Addr cur = store.read(head_ + kNextOff);
        unsigned guard = 0;
        while (cur != tail_ && cur != 0 && guard++ < 100000) {
            const std::uint64_t key = store.read(cur + kKeyOff);
            if (key <= last)
                issues.push_back("sorted-list: keys not strictly "
                                 "increasing");
            last = key;
            ++count;
            cur = store.read(cur + kNextOff);
        }
        if (cur != tail_)
            issues.push_back("sorted-list: list does not reach the "
                             "tail sentinel");
        if (count != store.read(sizeAddr_))
            issues.push_back("sorted-list: size counter mismatch");
        return issues;
    }

  private:
    bool
    insertDirect(BackingStore &store, std::uint64_t key)
    {
        Addr prev_link = head_ + kNextOff;
        Addr cur = store.read(prev_link);
        while (cur != tail_) {
            const std::uint64_t k = store.read(cur + kKeyOff);
            if (k == key)
                return false;
            if (k > key)
                break;
            prev_link = cur + kNextOff;
            cur = store.read(prev_link);
        }
        const Addr node = store.allocateLines(1);
        store.write(node + kKeyOff, key);
        store.write(node + kNextOff, cur);
        store.write(prev_link, node);
        return true;
    }

    Addr head_ = 0;
    Addr tail_ = 0;
    Addr sizeAddr_ = 0;
    Addr statsAddr_ = 0;
    Addr tallyBase_ = 0;
    std::uint64_t keyRange_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeSortedList(const WorkloadParams &params)
{
    return std::make_unique<SortedListWorkload>(params);
}

} // namespace clearsim
