/**
 * @file
 * stack: a transactional Treiber-style linked stack (2 regions).
 *
 * Push reads the top pointer and links a pre-allocated node
 * (likely immutable: one indirection over the top pointer);
 * pop chases top->next (mutable). All threads hammer the single
 * top-pointer line, so contention is high.
 *
 * Invariant: sum(pushed) - sum(popped) equals the sum of values
 * still on the stack.
 */

#include <memory>

#include "workloads/workload.hh"

namespace clearsim
{

namespace
{

constexpr unsigned kValOff = 0;
constexpr unsigned kNextOff = 8;

SimTask
pushBody(TxContext &tx, Addr top_ptr, Addr tally, Addr node,
         std::uint64_t value)
{
    TxValue top = co_await tx.load(top_ptr);
    co_await tx.store(node + kNextOff, top);
    co_await tx.store(top_ptr, TxValue(node));
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + TxValue(value));
}

SimTask
popBody(TxContext &tx, Addr top_ptr, Addr tally)
{
    TxValue top = co_await tx.load(top_ptr);
    if (!tx.branchOn(top != TxValue(0)))
        co_return; // empty
    const Addr top_addr = tx.toAddr(top);
    TxValue value = co_await tx.load(top_addr + kValOff);
    TxValue next = co_await tx.load(top_addr + kNextOff);
    co_await tx.store(top_ptr, next);
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + value);
}

class StackWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "stack"; }
    unsigned numRegions() const override { return 2; }

    void
    init(System &sys) override
    {
        BackingStore &store = sys.mem().store();
        topPtr_ = store.allocateLines(1);
        pushTallyBase_ = store.allocateLines(params_.threads);
        popTallyBase_ = store.allocateLines(params_.threads);
        store.write(topPtr_, 0);

        Rng rng(params_.seed);
        for (unsigned i = 0; i < 8 * params_.scale; ++i) {
            const Addr node = store.allocateLines(1);
            const std::uint64_t v = 1 + rng.nextBelow(1000);
            store.write(node + kValOff, v);
            store.write(node + kNextOff, store.read(topPtr_));
            store.write(topPtr_, node);
            initialSum_ += v;
        }
    }

    SimTask
    thread(System &sys, CoreId core) override
    {
        Rng rng = threadRng(core);
        const Addr top = topPtr_;
        const Addr push_tally = pushTallyBase_ + core * kLineBytes;
        const Addr pop_tally = popTallyBase_ + core * kLineBytes;
        for (unsigned op = 0; op < params_.opsPerThread; ++op) {
            co_await delayFor(sys.queue(), thinkTime(sys, rng));
            if (rng.nextBool(0.5)) {
                const std::uint64_t v = 1 + rng.nextBelow(1000);
                const Addr node =
                    sys.mem().store().allocateLines(1);
                sys.mem().store().write(node + kValOff, v);
                sys.mem().store().write(node + kNextOff, 0);
                co_await sys.runRegion(
                    core, 0x4500,
                    [top, push_tally, node, v](TxContext &tx) {
                        return pushBody(tx, top, push_tally, node, v);
                    });
            } else {
                co_await sys.runRegion(
                    core, 0x4540, [top, pop_tally](TxContext &tx) {
                        return popBody(tx, top, pop_tally);
                    });
            }
        }
    }

    std::vector<std::string>
    verify(System &sys) const override
    {
        const BackingStore &store =
            const_cast<System &>(sys).mem().store();
        std::uint64_t pushed = initialSum_;
        std::uint64_t popped = 0;
        for (unsigned t = 0; t < params_.threads; ++t) {
            pushed += store.read(pushTallyBase_ + t * kLineBytes);
            popped += store.read(popTallyBase_ + t * kLineBytes);
        }
        std::uint64_t remaining = 0;
        Addr cur = store.read(topPtr_);
        unsigned guard = 0;
        while (cur != 0 && guard++ < 1000000) {
            remaining += store.read(cur + kValOff);
            cur = store.read(cur + kNextOff);
        }
        std::vector<std::string> issues;
        if (pushed - popped != remaining)
            issues.push_back("stack: value sum not conserved");
        return issues;
    }

  private:
    Addr topPtr_ = 0;
    Addr pushTallyBase_ = 0;
    Addr popTallyBase_ = 0;
    std::uint64_t initialSum_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeStack(const WorkloadParams &params)
{
    return std::make_unique<StackWorkload>(params);
}

} // namespace clearsim
