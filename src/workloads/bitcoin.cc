/**
 * @file
 * bitcoin: one likely-immutable atomic region (Listing 2).
 *
 * Emulates wallet-to-wallet transfers over a set of bitcoin
 * wallets. The wallet array's base pointer is loaded *inside* the
 * region, so the target addresses are computed through an
 * indirection — but the pointer itself is never modified by
 * concurrent regions, making the footprint likely immutable.
 * A fraction of transfers touches a small hot set of "exchange"
 * wallets, creating contention.
 *
 * Invariant: the total number of bitcoins is conserved.
 */

#include <memory>

#include "workloads/workload.hh"

namespace clearsim
{

namespace
{

SimTask
transferBody(TxContext &tx, Addr users_ptr, std::uint64_t from,
             std::uint64_t to, std::uint64_t amount)
{
    // The indirection of Listing 2: the wallet array base is read
    // inside the atomic region.
    TxValue base = co_await tx.load(users_ptr);
    const Addr from_addr = tx.toAddr(base + TxValue(from * kLineBytes));
    const Addr to_addr = tx.toAddr(base + TxValue(to * kLineBytes));

    TxValue from_bal = co_await tx.load(from_addr);
    TxValue to_bal = co_await tx.load(to_addr);
    co_await tx.store(from_addr, from_bal - TxValue(amount));
    co_await tx.store(to_addr, to_bal + TxValue(amount));
}

class BitcoinWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "bitcoin"; }
    unsigned numRegions() const override { return 1; }

    void
    init(System &sys) override
    {
        wallets_ = 128 * params_.scale;
        BackingStore &store = sys.mem().store();
        base_ = store.allocateLines(wallets_);
        usersPtr_ = store.allocateLines(1);
        store.write(usersPtr_, base_);
        initialTotal_ = 0;
        Rng rng(params_.seed);
        for (std::uint64_t w = 0; w < wallets_; ++w) {
            const std::uint64_t coins = 1000 + rng.nextBelow(9000);
            store.write(base_ + w * kLineBytes, coins);
            initialTotal_ += coins;
        }
    }

    SimTask
    thread(System &sys, CoreId core) override
    {
        Rng rng = threadRng(core);
        for (unsigned op = 0; op < params_.opsPerThread; ++op) {
            co_await delayFor(sys.queue(), thinkTime(sys, rng));
            // 30% of transfers involve one of 4 hot exchange
            // wallets, mirroring the skew of real transaction
            // graphs.
            std::uint64_t from = rng.nextBelow(wallets_);
            std::uint64_t to = rng.nextBelow(wallets_);
            if (rng.nextBool(0.3))
                to = rng.nextBelow(4);
            if (from == to)
                to = (to + 1) % wallets_;
            const std::uint64_t amount = 1 + rng.nextBelow(100);
            const Addr users_ptr = usersPtr_;
            co_await sys.runRegion(
                core, 0x4100,
                [users_ptr, from, to, amount](TxContext &tx) {
                    return transferBody(tx, users_ptr, from, to,
                                        amount);
                });
        }
    }

    std::vector<std::string>
    verify(System &sys) const override
    {
        std::uint64_t total = 0;
        for (std::uint64_t w = 0; w < wallets_; ++w)
            total += sys.mem().store().read(base_ + w * kLineBytes);
        std::vector<std::string> issues;
        if (total != initialTotal_)
            issues.push_back("bitcoin: total coins not conserved");
        return issues;
    }

  private:
    Addr base_ = 0;
    Addr usersPtr_ = 0;
    std::uint64_t wallets_ = 0;
    std::uint64_t initialTotal_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeBitcoin(const WorkloadParams &params)
{
    return std::make_unique<BitcoinWorkload>(params);
}

} // namespace clearsim
