/**
 * @file
 * hashmap: a transactional chained hash map (3 mutable regions).
 *
 * Bucket heads live one per cacheline; chains are traversed through
 * pointers loaded inside the region, so all three regions (insert,
 * remove, lookup) are mutable. A shared transactional size counter
 * adds a hot line, as in common hash-table implementations.
 *
 * Invariants: every node hashes to the bucket that holds it, and
 * the size counter equals the number of reachable nodes.
 */

#include <memory>

#include "workloads/workload.hh"

namespace clearsim
{

namespace
{

constexpr unsigned kKeyOff = 0;
constexpr unsigned kNextOff = 8;

SimTask
insertBody(TxContext &tx, Addr bucket, Addr size_addr,
           std::uint64_t key, Addr node)
{
    // Duplicate check walks the chain.
    TxValue cur = co_await tx.load(bucket);
    TxValue head = cur;
    for (unsigned i = 0; i < 64; ++i) {
        if (!tx.branchOn(cur != TxValue(0)))
            break;
        const Addr cur_addr = tx.toAddr(cur);
        TxValue k = co_await tx.load(cur_addr + kKeyOff);
        if (tx.branchOn(k == TxValue(key)))
            co_return; // already present
        cur = co_await tx.load(cur_addr + kNextOff);
    }
    co_await tx.store(node + kNextOff, head);
    co_await tx.store(bucket, TxValue(node));
    TxValue size = co_await tx.load(size_addr);
    co_await tx.store(size_addr, size + TxValue(1));
}

SimTask
removeBody(TxContext &tx, Addr bucket, Addr size_addr,
           std::uint64_t key)
{
    Addr prev_link = bucket;
    TxValue cur = co_await tx.load(bucket);
    for (unsigned i = 0; i < 64; ++i) {
        if (!tx.branchOn(cur != TxValue(0)))
            co_return; // not found
        const Addr cur_addr = tx.toAddr(cur);
        TxValue k = co_await tx.load(cur_addr + kKeyOff);
        TxValue next = co_await tx.load(cur_addr + kNextOff);
        if (tx.branchOn(k == TxValue(key))) {
            co_await tx.store(prev_link, next);
            TxValue size = co_await tx.load(size_addr);
            co_await tx.store(size_addr, size - TxValue(1));
            co_return;
        }
        prev_link = cur_addr + kNextOff;
        cur = next;
    }
}

SimTask
lookupBody(TxContext &tx, Addr bucket, Addr tally, std::uint64_t key)
{
    TxValue cur = co_await tx.load(bucket);
    for (unsigned i = 0; i < 64; ++i) {
        if (!tx.branchOn(cur != TxValue(0)))
            co_return;
        const Addr cur_addr = tx.toAddr(cur);
        TxValue k = co_await tx.load(cur_addr + kKeyOff);
        if (tx.branchOn(k == TxValue(key))) {
            TxValue t = co_await tx.load(tally);
            co_await tx.store(tally, t + TxValue(1));
            co_return;
        }
        cur = co_await tx.load(cur_addr + kNextOff);
    }
}

class HashmapWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "hashmap"; }
    unsigned numRegions() const override { return 3; }

    void
    init(System &sys) override
    {
        BackingStore &store = sys.mem().store();
        buckets_ = 32 * params_.scale;
        bucketBase_ = store.allocateLines(buckets_);
        sizeAddr_ = store.allocateLines(1);
        tallyBase_ = store.allocateLines(params_.threads);
        keyRange_ = buckets_ * 6;

        Rng rng(params_.seed);
        unsigned inserted = 0;
        for (unsigned i = 0; i < buckets_ * 2; ++i) {
            const std::uint64_t key = rng.nextBelow(keyRange_);
            if (insertDirect(store, key))
                ++inserted;
        }
        store.write(sizeAddr_, inserted);
    }

    SimTask
    thread(System &sys, CoreId core) override
    {
        Rng rng = threadRng(core);
        const Addr size = sizeAddr_;
        const Addr tally = tallyBase_ + core * kLineBytes;
        for (unsigned op = 0; op < params_.opsPerThread; ++op) {
            co_await delayFor(sys.queue(), thinkTime(sys, rng));
            const std::uint64_t key = rng.nextBelow(keyRange_);
            const Addr bucket = bucketAddr(key);
            const double p = rng.nextDouble();
            if (p < 0.35) {
                const Addr node =
                    sys.mem().store().allocateLines(1);
                sys.mem().store().write(node + kKeyOff, key);
                sys.mem().store().write(node + kNextOff, 0);
                co_await sys.runRegion(
                    core, 0x4600,
                    [bucket, size, key, node](TxContext &tx) {
                        return insertBody(tx, bucket, size, key,
                                          node);
                    });
            } else if (p < 0.65) {
                co_await sys.runRegion(
                    core, 0x4640, [bucket, size, key](TxContext &tx) {
                        return removeBody(tx, bucket, size, key);
                    });
            } else {
                co_await sys.runRegion(
                    core, 0x4680,
                    [bucket, tally, key](TxContext &tx) {
                        return lookupBody(tx, bucket, tally, key);
                    });
            }
        }
    }

    std::vector<std::string>
    verify(System &sys) const override
    {
        const BackingStore &store =
            const_cast<System &>(sys).mem().store();
        std::vector<std::string> issues;
        std::uint64_t count = 0;
        for (unsigned b = 0; b < buckets_; ++b) {
            Addr cur = store.read(bucketBase_ + b * kLineBytes);
            unsigned guard = 0;
            while (cur != 0 && guard++ < 100000) {
                const std::uint64_t key = store.read(cur + kKeyOff);
                if (key % buckets_ != b) {
                    issues.push_back(
                        "hashmap: node in the wrong bucket");
                }
                ++count;
                cur = store.read(cur + kNextOff);
            }
        }
        if (count != store.read(sizeAddr_))
            issues.push_back("hashmap: size counter does not match "
                             "reachable node count");
        return issues;
    }

  private:
    Addr
    bucketAddr(std::uint64_t key) const
    {
        return bucketBase_ + (key % buckets_) * kLineBytes;
    }

    bool
    insertDirect(BackingStore &store, std::uint64_t key)
    {
        const Addr bucket = bucketAddr(key);
        Addr cur = store.read(bucket);
        while (cur != 0) {
            if (store.read(cur + kKeyOff) == key)
                return false;
            cur = store.read(cur + kNextOff);
        }
        const Addr node = store.allocateLines(1);
        store.write(node + kKeyOff, key);
        store.write(node + kNextOff, store.read(bucket));
        store.write(bucket, node);
        return true;
    }

    Addr bucketBase_ = 0;
    Addr sizeAddr_ = 0;
    Addr tallyBase_ = 0;
    unsigned buckets_ = 0;
    std::uint64_t keyRange_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeHashmap(const WorkloadParams &params)
{
    return std::make_unique<HashmapWorkload>(params);
}

} // namespace clearsim
