/**
 * @file
 * Umbrella header: the complete public API of clearsim.
 *
 * Include this to get the simulated machine (System), the four
 * configuration presets of the paper's evaluation, the workload
 * registry, and the statistics types every figure is computed from.
 */

#ifndef CLEARSIM_CLEARSIM_HH
#define CLEARSIM_CLEARSIM_HH

#include "analysis/analyze.hh"
#include "analysis/analyzer.hh"
#include "analysis/cert_checker.hh"
#include "analysis/certificate.hh"
#include "analysis/region_ir.hh"
#include "analysis/report.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/alt.hh"
#include "core/crt.hh"
#include "core/ert.hh"
#include "core/region_executor.hh"
#include "core/system.hh"
#include "common/trace.hh"
#include "cpu/core_resources.hh"
#include "energy/energy_model.hh"
#include "harness/audit.hh"
#include "harness/runner.hh"
#include "harness/sweep_cache.hh"
#include "harness/sweep_engine.hh"
#include "metrics/run_result.hh"
#include "metrics/stats_report.hh"
#include "cpu/tx_value.hh"
#include "htm/conflict_manager.hh"
#include "htm/fallback_lock.hh"
#include "htm/footprint.hh"
#include "htm/htm_stats.hh"
#include "htm/htm_types.hh"
#include "htm/power_token.hh"
#include "htm/region_record.hh"
#include "htm/tx_context.hh"
#include "mem/backing_store.hh"
#include "mem/cache_model.hh"
#include "mem/directory.hh"
#include "mem/lock_manager.hh"
#include "mem/memory_system.hh"
#include "policy/backoff_policy.hh"
#include "policy/config_registry.hh"
#include "policy/conflict_policy.hh"
#include "policy/region_policy.hh"
#include "policy/policy_set.hh"
#include "policy/retry_policy.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"
#include "workloads/workload.hh"

#endif // CLEARSIM_CLEARSIM_HH
