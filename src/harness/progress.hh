/**
 * @file
 * Throttled sweep progress reporting, split out of the runner so
 * every consumer of the sweep engine — the figure benches, the CLI
 * sweep mode and the clearsimd scheduler — shares one definition of
 * "progress": points done, runs/s and an ETA, emitted at most once
 * a second, silent for the first second so tests and small sweeps
 * stay quiet.
 *
 * Besides the stderr status line (logStatus), an optional hook
 * receives the same (done, total) samples; clearsimd uses it to
 * stream progress frames to subscribed clients without the engine
 * knowing anything about the wire.
 */

#ifndef CLEARSIM_HARNESS_PROGRESS_HH
#define CLEARSIM_HARNESS_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>

namespace clearsim
{

/** Periodic (done, total) samples of a running sweep. */
using ProgressHook =
    std::function<void(std::size_t done, std::size_t total)>;

/**
 * Throttled stderr progress for long sweeps. markDone() is safe
 * from worker threads; maybeReport()/finish() must be called from
 * the coordinating thread only.
 */
class ProgressReporter
{
  public:
    ProgressReporter(std::size_t total_points,
                     std::size_t points_per_cell, unsigned jobs,
                     ProgressHook hook = nullptr);

    /** One point finished. Safe to call from worker threads. */
    void
    markDone()
    {
        done_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Points finished so far. */
    std::size_t
    done() const
    {
        return done_.load(std::memory_order_relaxed);
    }

    /** Print a progress line if a second passed. Coordinator only. */
    void maybeReport();

    /** Print the closing throughput line if progress was shown. */
    void finish();

  private:
    using Clock = std::chrono::steady_clock;

    static double secondsSince(Clock::time_point from,
                               Clock::time_point to);

    const std::size_t total_;
    const std::size_t pointsPerCell_;
    const unsigned jobs_;
    const Clock::time_point start_;
    Clock::time_point lastReport_;
    std::atomic<std::size_t> done_{0};
    bool reported_ = false;
    ProgressHook hook_;
};

} // namespace clearsim

#endif // CLEARSIM_HARNESS_PROGRESS_HH
