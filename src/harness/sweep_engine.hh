/**
 * @file
 * The sweep engine: grid execution as a reusable component.
 *
 * runSweep()/runCell() in runner.hh used to own the whole pipeline
 * — building the (workload, config, retry, seed) point grid,
 * fanning points out over the ThreadPool, reducing cells and
 * printing progress. clearsimd needs the same pipeline without the
 * CLI policy wrapped around it (it streams cells to clients,
 * cancels jobs mid-grid and dedupes against the cache), so the
 * pipeline lives here and both the CLI path and the scheduler are
 * thin clients of it:
 *
 *   SweepGrid     the validated, indexable point grid
 *   SweepObserver per-cell / progress / cancellation hooks
 *   runSweepGrid  execute the grid on a ThreadPool
 *
 * Determinism contract: for fixed SweepOptions the cell results —
 * and every serialized form derived from them — are byte-identical
 * for any job count, any observer, any skip set partition, and
 * whether the grid was driven by the CLI or by clearsimd. The
 * ctest -L determinism suite pins this end-to-end.
 */

#ifndef CLEARSIM_HARNESS_SWEEP_ENGINE_HH
#define CLEARSIM_HARNESS_SWEEP_ENGINE_HH

#include <cstddef>
#include <functional>
#include <map>
#include <set>

#include "harness/progress.hh"
#include "harness/runner.hh"

namespace clearsim
{

/**
 * Hooks into a running sweep. All members are optional; a
 * default-constructed observer reproduces the classic silent sweep.
 */
struct SweepObserver
{
    /**
     * Invoked on the coordinator thread as soon as all of a cell's
     * points have finished, in completion order.
     */
    std::function<void(const CellResult &)> onCell;

    /** Throttled (done, total) progress samples (~1/s). */
    ProgressHook onProgress;

    /**
     * Polled before every point runs. Returning true stops the
     * sweep: pending points are skipped, no further onCell fires,
     * and the outcome comes back with cancelled set. Cells already
     * reported stay valid (and checkpointed, if the caller
     * checkpoints).
     */
    std::function<bool()> cancelled;
};

/** What a (possibly cancelled) grid execution produced. */
struct SweepOutcome
{
    /** Completed cells only; cancelled cells are absent. */
    std::map<SweepKey, CellResult> cells;
    bool cancelled = false;
};

/**
 * The sweep flattened into an indexable job list: cells outermost,
 * then retry limits, seeds innermost — the same nesting the serial
 * loops always used, which is what keeps reductions byte-stable.
 */
class SweepGrid
{
  public:
    /**
     * Validate the options (shape, config specs, workload names —
     * fatal() on the first bad entry, before any simulation) and
     * build the cell list minus @p skip.
     */
    SweepGrid(const SweepOptions &opts,
              const std::set<SweepKey> &skip);

    const SweepOptions &options() const { return *opts_; }
    const std::vector<SweepKey> &cells() const { return cells_; }

    std::size_t
    pointsPerCell() const
    {
        return opts_->retryLimits.size() * opts_->seeds;
    }

    std::size_t
    totalPoints() const
    {
        return cells_.size() * pointsPerCell();
    }

  private:
    const SweepOptions *opts_;
    std::vector<SweepKey> cells_;
};

/**
 * Execute every point of the grid on opts.jobs worker threads
 * (inline when jobs resolves to 1) and reduce the cells. Results
 * are independent of the job count and of the observer.
 */
SweepOutcome runSweepGrid(const SweepGrid &grid,
                          const SweepObserver &observer);

/** Convenience: build the grid and run it. */
SweepOutcome runSweepGrid(const SweepOptions &opts,
                          const std::set<SweepKey> &skip,
                          const SweepObserver &observer);

} // namespace clearsim

#endif // CLEARSIM_HARNESS_SWEEP_ENGINE_HH
