/**
 * @file
 * Sweep-scale mispredict audit of the certifying analyzer.
 *
 * runAudit() fans a (config × workload × retry-limit) grid of audit
 * units over the harness ThreadPool. Each unit derives certificates
 * from one capture pass (under captureConfigFor(), i.e. adaptivity
 * and faults off), then replays `seeds` measured runs of the same
 * cell with a CertChecker tapping the trace stream, classifies
 * every region-instance into the same four verdict classes the
 * analyzer predicts, and collects every Mispredict the checker
 * latched. The reduction — a 4×4 predicted-vs-actual confusion
 * matrix with per-class precision/recall, the replayable mispredict
 * corpus, and the suggested pc-keyed `:adapt.pc0x…=` override specs
 * — is performed in fixed unit order, so the audit result (and the
 * `clearsim-audit-v1` JSON derived from it) is byte-identical for
 * every job count and on every execution path (CLI, daemon,
 * in-process).
 *
 * Rates are serialized as permille integers (integer division, no
 * floats), keeping the document byte-stable across platforms.
 *
 * Dynamic outcome classes mirror the verdict hierarchy: capacity
 * evidence (capacity/SQ-full aborts, a dynamic maximum beyond a
 * configured limit) dominates indirection evidence (changed or
 * indirect footprints), which dominates observed lock-order
 * violations; a region-instance with none of these ran ELIGIBLE.
 *
 * Environment knobs (shared names with the sweep; audit-specific
 * defaults): CLEARSIM_OPS, CLEARSIM_SEEDS (default 2),
 * CLEARSIM_RETRIES (default "1,4"), CLEARSIM_WORKLOADS (default all),
 * CLEARSIM_CONFIGS (default "C"), CLEARSIM_JOBS.
 */

#ifndef CLEARSIM_HARNESS_AUDIT_HH
#define CLEARSIM_HARNESS_AUDIT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cert_checker.hh"
#include "workloads/workload.hh"

namespace clearsim
{

/** Schema identifier of the audit JSON document. */
inline constexpr const char *kAuditJsonSchema = "clearsim-audit-v1";

/** Number of verdict classes in the confusion matrix. */
constexpr unsigned kNumVerdictClasses = 4;

/** Class index of a verdict (ELIGIBLE=0, CAPACITY-DOOMED=1,
 *  UNBOUNDED-INDIRECTION=2, LOCK-ORDER-RISK=3). */
unsigned verdictClassIndex(Verdict verdict);

/** Verdict of a class index (inverse of verdictClassIndex). */
Verdict verdictOfClass(unsigned index);

/** Options of one audit grid. */
struct AuditOptions
{
    /** ConfigRegistry spec strings. */
    std::vector<std::string> configs = {"C"};
    std::vector<std::string> workloads; ///< empty = all 19
    std::vector<unsigned> retryLimits = {1, 4};

    /** Audited runs per unit (seeds fan exactly like the sweep). */
    unsigned seeds = 2;

    WorkloadParams params;

    /** Worker threads; 0 = one per hardware thread. Never affects
     *  the result bytes, only wall-clock time. */
    unsigned jobs = 0;

    /** Apply the CLEARSIM_* environment overrides. */
    static AuditOptions fromEnv();
};

/** One corpus entry: a mispredict plus the unit that produced it. */
struct AuditMispredict
{
    /** Full config spec including the retry limit. */
    std::string config;
    std::string workload;
    unsigned retryLimit = 0;

    /** Seed of the audited run (already offset from the base). */
    std::uint64_t seed = 0;

    Mispredict record;
};

/** Precision/recall of one verdict class over region-instances. */
struct AuditClassStats
{
    std::uint64_t predicted = 0;
    std::uint64_t actual = 0;
    std::uint64_t truePositives = 0;

    /** 1000 * tp / predicted (integer division; 0 when empty). */
    unsigned precisionPermille = 0;

    /** 1000 * tp / actual (integer division; 0 when empty). */
    unsigned recallPermille = 0;
};

/** One audit unit (or seed run) that threw instead of finishing. */
struct AuditFailure
{
    std::string config;
    std::string workload;
    unsigned retryLimit = 0;
    std::string error;
};

/** A pc-keyed policy override the audit suggests. */
struct SuggestedOverride
{
    RegionPc pc = 0;
    unsigned action = 0;

    /** Ready-to-run spec ("C:adapt.pc0x2a=1"). */
    std::string spec;
};

/** The complete audit outcome. */
struct AuditResult
{
    /** The grid that was run (post-env resolution). */
    AuditOptions options;

    /** Audited runs that finished (excludes failures). */
    std::uint64_t runs = 0;

    /** (region, run) pairs classified into the matrix. */
    std::uint64_t regionInstances = 0;

    /** confusion[predicted][actual], class-index order. */
    std::array<std::array<std::uint64_t, kNumVerdictClasses>,
               kNumVerdictClasses>
        confusion{};

    /** Per-class stats, class-index order. */
    std::array<AuditClassStats, kNumVerdictClasses> classes{};

    /** Replayable mispredict corpus, in unit/seed/pc order. */
    std::vector<AuditMispredict> mispredicts;

    /** Deduplicated override suggestions, in (spec, pc) order. */
    std::vector<SuggestedOverride> suggestedOverrides;

    std::vector<AuditFailure> failures;
};

/**
 * Stable identity hash of an audit grid, FNV-1a over the option
 * fields with config specs canonicalized through the registry (so
 * semantically identical spellings hash alike). Excludes `jobs`:
 * the worker count never changes the result bytes. The daemon's
 * audit dedupe key is built on this.
 */
std::uint64_t auditOptionsHash(const AuditOptions &opts);

/** Run the audit grid (see the file comment). */
AuditResult runAudit(const AuditOptions &opts);

/**
 * Replay one corpus entry bit-exactly from its repro string: parse
 * the repro, rebuild the unit's certificates from a fresh capture at
 * @p base_seed, re-run with a CertChecker, and look for the same
 * (kind, pc, premise) record.
 * @param replayed the matching record from the replay, when found
 * @retval true when the replayed record equals the corpus entry's
 *         (observed, bound, cycle included)
 */
bool replayMispredict(const AuditMispredict &entry,
                      std::uint64_t base_seed, Mispredict &replayed,
                      std::string &error);

/** Serialize as the clearsim-audit-v1 document (trailing \n). */
std::string auditJsonString(const AuditResult &result);

/**
 * Write auditJsonString() to @p path, creating parent directories
 * as needed.
 * @retval false with @p error describing the failure.
 */
bool writeAuditJson(const std::string &path,
                    const AuditResult &result, std::string &error);

/** Human-readable precision/recall table + mispredict list. */
std::string auditReport(const AuditResult &result);

} // namespace clearsim

#endif // CLEARSIM_HARNESS_AUDIT_HH
