/**
 * @file
 * Deterministic sharding of a sweep grid.
 *
 * The fabric coordinator partitions a sweep's cells into shards and
 * leases whole shards to worker processes. Correctness of the
 * byte-identity invariant (docs/SERVICE.md, "Sweep fabric") rests
 * on one property: the partition is a *pure function* of the sweep
 * options hash and the shard count. Both sides of the wire —
 * coordinator and worker — recompute the same plan independently
 * from the same options, so a lease only ever needs to name a shard
 * *index*; the cells it covers are never serialized, and a worker
 * can prove it is executing exactly what the coordinator meant.
 *
 * The assignment deliberately excludes everything that may differ
 * between processes (job counts, worker identity, wall-clock time):
 * cells are taken in SweepGrid order (workload-major, the order the
 * serial sweep always used) and dealt round-robin with a rotation
 * derived from sweepOptionsHash(), so the same grid always shards
 * the same way while different sweeps spread their first cells
 * across different shards.
 */

#ifndef CLEARSIM_HARNESS_SHARD_HH
#define CLEARSIM_HARNESS_SHARD_HH

#include <cstdint>
#include <vector>

#include "harness/runner.hh"

namespace clearsim
{

/** A sweep grid partitioned into leasable shards. */
struct ShardPlan
{
    /** sweepOptionsHash() of the options the plan was built from. */
    std::uint64_t optionsHash = 0;

    /** Number of shards (1 <= shardCount <= total cells). */
    unsigned shardCount = 0;

    /** Shard index -> the cells it covers; every shard non-empty. */
    std::vector<std::vector<SweepKey>> shards;

    /** All cells across all shards. */
    std::size_t totalCells() const;
};

/**
 * Partition the grid of @p opts into @p requested shards.
 * @p requested is clamped to the cell count (a shard is never
 * empty) and 0 means one shard per cell (maximum stealable
 * granularity). fatal()s on invalid options, exactly like
 * SweepGrid — plans are built from validated requests.
 *
 * Pure: depends only on the options' result-affecting fields (the
 * same set sweepOptionsHash() covers — opts.jobs is ignored) and on
 * @p requested. Two processes computing planShards() for the same
 * sweep always agree, byte for byte.
 */
ShardPlan planShards(const SweepOptions &opts, unsigned requested);

} // namespace clearsim

#endif // CLEARSIM_HARNESS_SHARD_HH
