#include "harness/sweep_engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "fault/fault_repro.hh"
#include "policy/config_registry.hh"

namespace clearsim
{

namespace
{

/**
 * The quantities of one sweep point (one runOnce) that the cell
 * reduction needs. Workers write each point into its own
 * pre-allocated slot, so no synchronization is needed on the
 * results and the reduction order is fixed regardless of which
 * thread finished when.
 */
struct PointResult
{
    double cycles = 0.0;
    double energy = 0.0;
    double discoveryShare = 0.0;
    HtmStats htm;

    /** The point threw; error/repro identify and replay it. */
    bool failed = false;
    std::string error;
    std::string repro;
};

void
validateSweepShape(const SweepOptions &opts)
{
    if (opts.seeds == 0)
        fatal("sweep needs at least one seed per point "
              "(CLEARSIM_SEEDS >= 1)");
    if (opts.retryLimits.empty())
        fatal("sweep needs at least one retry limit "
              "(CLEARSIM_RETRIES)");
}

/**
 * Resolve every config spec and workload name before the first
 * point runs: a typo fails immediately instead of fatal()ing
 * mid-sweep after minutes of simulation.
 */
void
validateSelections(const std::vector<std::string> &configs,
                   const std::vector<std::string> &workloads)
{
    if (configs.empty())
        fatal("sweep needs at least one configuration "
              "(CLEARSIM_CONFIGS)");
    if (workloads.empty())
        fatal("sweep needs at least one workload "
              "(CLEARSIM_WORKLOADS)");

    const ConfigRegistry &registry = ConfigRegistry::instance();
    for (const std::string &spec : configs) {
        SystemConfig cfg;
        std::string error;
        if (!registry.tryMake(spec, cfg, error))
            fatal("sweep configuration: %s", error.c_str());
    }
    const std::vector<std::string> &known = workloadNames();
    for (const std::string &workload : workloads) {
        if (std::find(known.begin(), known.end(), workload) ==
            known.end()) {
            fatal("sweep workload: unknown workload '%s' "
                  "(known: run with --list-workloads or see "
                  "workloadNames())",
                  workload.c_str());
        }
    }
}

PointResult
runPoint(const SweepGrid &grid, std::size_t index)
{
    const SweepOptions &opts = grid.options();
    const std::size_t per_cell = grid.pointsPerCell();
    const SweepKey &cell = grid.cells()[index / per_cell];
    const std::size_t within = index % per_cell;
    const unsigned retries = opts.retryLimits[within / opts.seeds];
    const std::size_t seed_index = within % opts.seeds;

    SystemConfig cfg = makeConfigByName(cell.second);
    cfg.maxRetries = retries;
    // Name the config after the full spec including the point's
    // retry limit, so the repro string replays this exact point.
    cfg.name = specWithRetryLimit(cell.second, retries);
    WorkloadParams params = opts.params;
    params.seed = opts.params.seed + 1000003ull * seed_index;

    PointResult point;
    RunResult run;
    try {
        run = runOnce(cfg, cell.first, params);
    } catch (const std::exception &err) {
        // One crashing or invariant-violating point must not take
        // the sweep down: record what failed and how to replay it,
        // and let every other point finish.
        ReproSpec spec;
        spec.workload = cell.first;
        spec.config = cfg.name;
        spec.threads = params.threads;
        spec.ops = params.opsPerThread;
        spec.scale = params.scale;
        spec.seed = params.seed;
        point.failed = true;
        point.error = err.what();
        point.repro = makeReproString(spec);
        return point;
    }
    point.cycles = static_cast<double>(run.cycles);
    point.energy = run.energy.total();
    point.discoveryShare = run.discoveryOverheadShare(cfg.numCores);
    point.htm = run.htm;
    return point;
}

unsigned
resolveJobs(unsigned requested)
{
    return requested != 0 ? requested : ThreadPool::defaultThreads();
}

/**
 * Reduce one cell's points: per retry limit, trimmed means over the
 * seeds; keep the limit with the lowest mean cycle count (first
 * wins ties, like the original serial sweep).
 */
CellResult
reduceCell(const SweepGrid &grid, std::size_t cell_index,
           const std::vector<PointResult> &points)
{
    const SweepOptions &opts = grid.options();
    const std::size_t base = cell_index * grid.pointsPerCell();

    CellResult best;
    best.workload = grid.cells()[cell_index].first;
    best.config = grid.cells()[cell_index].second;
    bool have_best = false;

    // Any failed point poisons the cell: report the first failure
    // in slot order (deterministic regardless of which thread hit
    // it first) instead of aggregating garbage.
    for (std::size_t p = 0; p < grid.pointsPerCell(); ++p) {
        const PointResult &point = points[base + p];
        if (!point.failed)
            continue;
        best.failed = true;
        best.error = point.error;
        best.repro = point.repro;
        return best;
    }

    for (std::size_t r = 0; r < opts.retryLimits.size(); ++r) {
        std::vector<double> cycles;
        std::vector<double> energies;
        std::vector<double> shares;
        HtmStats merged;
        for (unsigned s = 0; s < opts.seeds; ++s) {
            const PointResult &point =
                points[base + r * opts.seeds + s];
            cycles.push_back(point.cycles);
            energies.push_back(point.energy);
            shares.push_back(point.discoveryShare);
            merged.merge(point.htm);
        }
        const double mean_cycles =
            trimmedMean(cycles, opts.trimEachSide);
        if (!have_best || mean_cycles < best.cycles) {
            have_best = true;
            best.bestRetryLimit = opts.retryLimits[r];
            best.cycles = mean_cycles;
            best.energy = trimmedMean(energies, opts.trimEachSide);
            best.htm = merged;
            best.discoveryShare =
                trimmedMean(shares, opts.trimEachSide);
            best.numCores = makeConfigByName(best.config).numCores;
        }
    }
    return best;
}

} // namespace

SweepGrid::SweepGrid(const SweepOptions &opts,
                     const std::set<SweepKey> &skip)
    : opts_(&opts)
{
    validateSweepShape(opts);
    validateSelections(opts.configs, opts.workloads);
    for (const std::string &workload : opts.workloads)
        for (const std::string &config : opts.configs) {
            const SweepKey key{workload, config};
            if (skip.find(key) == skip.end())
                cells_.push_back(key);
        }
}

SweepOutcome
runSweepGrid(const SweepGrid &grid, const SweepObserver &observer)
{
    SweepOutcome outcome;
    if (grid.cells().empty())
        return outcome;

    const unsigned jobs = resolveJobs(grid.options().jobs);
    const std::size_t total = grid.totalPoints();
    const std::size_t per_cell = grid.pointsPerCell();
    std::vector<PointResult> points(total);
    ProgressReporter progress(total, per_cell, jobs,
                              observer.onProgress);

    // A cancelled sweep stops cheaply: every not-yet-run point sees
    // the flag and returns without simulating. Points poll a local
    // atomic, not the observer callback, so worker threads never
    // race on caller state.
    std::atomic<bool> cancel{false};
    auto poll_cancel = [&] {
        if (observer.cancelled && !cancel.load() &&
            observer.cancelled()) {
            cancel.store(true);
        }
        return cancel.load();
    };

    std::vector<std::atomic<std::size_t>> cellDone(
        grid.cells().size());
    std::vector<bool> reported(grid.cells().size(), false);
    // Coordinator-side scan for cells whose last point just landed.
    // The acquire load pairs with the workers' release increments,
    // so every point slot of a complete cell is visible before the
    // reduction runs.
    auto drainCompleted = [&] {
        if (cancel.load())
            return;
        for (std::size_t c = 0; c < grid.cells().size(); ++c) {
            if (!reported[c] &&
                cellDone[c].load(std::memory_order_acquire) ==
                    per_cell) {
                reported[c] = true;
                CellResult cell = reduceCell(grid, c, points);
                if (observer.onCell)
                    observer.onCell(cell);
                outcome.cells[grid.cells()[c]] = std::move(cell);
            }
        }
    };

    if (jobs <= 1) {
        for (std::size_t i = 0; i < total; ++i) {
            if (poll_cancel())
                break;
            points[i] = runPoint(grid, i);
            cellDone[i / per_cell].fetch_add(
                1, std::memory_order_release);
            progress.markDone();
            progress.maybeReport();
            drainCompleted();
        }
    } else {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < total; ++i) {
            pool.submit([&grid, &points, &progress, &cellDone,
                         &cancel, per_cell, i] {
                if (cancel.load(std::memory_order_relaxed))
                    return;
                points[i] = runPoint(grid, i);
                cellDone[i / per_cell].fetch_add(
                    1, std::memory_order_release);
                progress.markDone();
            });
        }
        while (!pool.waitFor(std::chrono::milliseconds(250))) {
            poll_cancel();
            progress.maybeReport();
            drainCompleted();
        }
        poll_cancel();
        drainCompleted();
    }
    progress.finish();
    outcome.cancelled = cancel.load();
    return outcome;
}

SweepOutcome
runSweepGrid(const SweepOptions &opts,
             const std::set<SweepKey> &skip,
             const SweepObserver &observer)
{
    const SweepGrid grid(opts, skip);
    return runSweepGrid(grid, observer);
}

} // namespace clearsim
