#include "harness/progress.hh"

#include "common/log.hh"

namespace clearsim
{

ProgressReporter::ProgressReporter(std::size_t total_points,
                                   std::size_t points_per_cell,
                                   unsigned jobs, ProgressHook hook)
    : total_(total_points), pointsPerCell_(points_per_cell),
      jobs_(jobs), start_(Clock::now()), lastReport_(start_),
      hook_(std::move(hook))
{
}

double
ProgressReporter::secondsSince(Clock::time_point from,
                               Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

void
ProgressReporter::maybeReport()
{
    const Clock::time_point now = Clock::now();
    if (now - lastReport_ < std::chrono::seconds(1))
        return;
    lastReport_ = now;
    reported_ = true;

    const std::size_t done = done_.load(std::memory_order_relaxed);
    const double elapsed = secondsSince(start_, now);
    const double rate =
        elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
    const double eta =
        rate > 0.0 ? static_cast<double>(total_ - done) / rate : 0.0;
    logStatus("[clearsim] sweep: %zu/%zu runs "
              "(%zu/%zu cells), %.1f runs/s, eta %.0fs",
              done, total_, done / pointsPerCell_,
              total_ / pointsPerCell_, rate, eta);
    if (hook_)
        hook_(done, total_);
}

void
ProgressReporter::finish()
{
    if (!reported_)
        return;
    const double elapsed = secondsSince(start_, Clock::now());
    logStatus("[clearsim] sweep done: %zu runs in %.1fs "
              "(%.1f runs/s on %u jobs)",
              total_, elapsed,
              elapsed > 0.0 ? static_cast<double>(total_) / elapsed
                            : 0.0,
              jobs_);
    if (hook_)
        hook_(done_.load(std::memory_order_relaxed), total_);
}

} // namespace clearsim
