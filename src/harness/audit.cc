#include "harness/audit.hh"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "analysis/analyze.hh"
#include "analysis/certificate.hh"
#include "common/env.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/thread_pool.hh"
#include "core/system.hh"
#include "fault/fault_repro.hh"
#include "harness/runner.hh"
#include "policy/config_registry.hh"

namespace clearsim
{

unsigned
verdictClassIndex(Verdict verdict)
{
    return static_cast<unsigned>(verdict);
}

Verdict
verdictOfClass(unsigned index)
{
    return static_cast<Verdict>(index);
}

namespace
{

std::vector<std::string>
splitCsv(const char *value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** One (config, workload, retry-limit) cell of the audit grid. */
struct AuditUnit
{
    std::string config;
    std::string workload;
    unsigned retryLimit = 0;
};

/** Everything one unit contributes to the reduction. */
struct UnitOutcome
{
    std::uint64_t runs = 0;
    std::uint64_t regionInstances = 0;
    std::array<std::array<std::uint64_t, kNumVerdictClasses>,
               kNumVerdictClasses>
        confusion{};
    std::vector<AuditMispredict> mispredicts;
    std::vector<AuditFailure> failures;
};

/**
 * Dynamic outcome class of one region-instance, mirroring the
 * verdict hierarchy: capacity > indirection > lock-order >
 * eligible. Conflict aborts and retry counts do not reclassify —
 * an ELIGIBLE region is expected to conflict and recover within
 * the single-retry bound.
 */
unsigned
dynamicClassOf(const RegionCertificate &cert,
               const RegionProfile &profile,
               const RegionOutcome *outcome,
               const AnalysisLimits &limits)
{
    const Premise &window = cert.premise(PremiseId::CapWindow);
    const bool window_exceeded =
        window.bound > 0 &&
        (profile.maxAttemptUops > limits.robEntries ||
         profile.maxAttemptLoads > limits.lqEntries ||
         profile.maxAttemptStores > limits.sqEntries);
    // Footprint limits (conversion table, ALT) only bind in the
    // cache-locked modes; a region whose every attempt committed
    // speculatively never exercised them, so a large footprint
    // alone is not dynamic capacity evidence (this is what makes a
    // false-DOOMED observable at all).
    const bool cache_locked =
        outcome != nullptr &&
        (outcome->sClCommits > 0 || outcome->nsClCommits > 0);
    if (profile.capacityAborts > 0 || profile.sqFullAborts > 0 ||
        window_exceeded ||
        (cache_locked &&
         (profile.maxFootprintLines > limits.footprintCapacity ||
          profile.maxFootprintLines > limits.altEntries))) {
        return verdictClassIndex(Verdict::CapacityDoomed);
    }
    if (profile.footprintChanged || profile.sawIndirection)
        return verdictClassIndex(Verdict::UnboundedIndirection);
    if (outcome != nullptr && outcome->lockOrderViolations > 0)
        return verdictClassIndex(Verdict::LockOrderRisk);
    return verdictClassIndex(Verdict::Eligible);
}

UnitOutcome
runUnit(const AuditOptions &opts, const AuditUnit &unit)
{
    UnitOutcome out;

    SystemConfig cfg;
    CertificateSet certs;
    try {
        cfg = makeConfigByName(unit.config);
        cfg.maxRetries = unit.retryLimit;
        cfg.name = specWithRetryLimit(unit.config, unit.retryLimit);

        // One capture pass per unit derives the certificates every
        // seed of the unit is audited against.
        const AnalyzeOutcome capture = analyzeWithConfig(
            captureConfigFor(cfg), unit.workload, opts.params);
        certs = buildCertificates(capture.analysis, cfg);
    } catch (const std::exception &err) {
        out.failures.push_back({unit.config, unit.workload,
                                unit.retryLimit, err.what()});
        return out;
    }

    for (unsigned s = 0; s < opts.seeds; ++s) {
        WorkloadParams params = opts.params;
        // Same seed derivation as the sweep engine, so an audit
        // point and a sweep point with equal indices replay the
        // same simulation.
        params.seed = opts.params.seed + 1000003ull * s;

        CertChecker checker(certs, cfg);
        ReproSpec repro;
        repro.workload = unit.workload;
        repro.config = cfg.name;
        repro.threads = params.threads;
        repro.ops = params.opsPerThread;
        repro.scale = params.scale;
        repro.seed = params.seed;
        checker.setRepro(makeReproString(repro));

        RunResult run;
        try {
            run = runOnce(cfg, unit.workload, params, true,
                          [&checker](System &sys) {
                              sys.setTraceTap(
                                  [&checker](const TraceEvent &e) {
                                      checker.onTrace(e);
                                  });
                          });
        } catch (const std::exception &err) {
            out.failures.push_back({cfg.name, unit.workload,
                                    unit.retryLimit, err.what()});
            continue;
        }
        checker.finalize(run.htm, run.cycles);

        ++out.runs;
        for (const RegionCertificate &cert : certs.regions) {
            const auto prof = run.htm.regions.find(cert.pc);
            if (prof == run.htm.regions.end())
                continue;
            const auto outcomeIt = checker.outcomes().find(cert.pc);
            const RegionOutcome *outcome =
                outcomeIt == checker.outcomes().end()
                    ? nullptr
                    : &outcomeIt->second;
            const unsigned predicted =
                verdictClassIndex(cert.verdict);
            const unsigned actual = dynamicClassOf(
                cert, prof->second, outcome, certs.limits);
            ++out.confusion[predicted][actual];
            ++out.regionInstances;
        }

        for (const Mispredict &record : checker.mispredicts()) {
            AuditMispredict entry;
            entry.config = cfg.name;
            entry.workload = unit.workload;
            entry.retryLimit = unit.retryLimit;
            entry.seed = params.seed;
            entry.record = record;
            out.mispredicts.push_back(std::move(entry));
        }
    }
    return out;
}

} // namespace

AuditOptions
AuditOptions::fromEnv()
{
    AuditOptions opts;
    opts.params.opsPerThread = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_OPS", 16, 1, 100000000));
    opts.seeds = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_SEEDS", opts.seeds, 1, 100000));
    if (const char *v = std::getenv("CLEARSIM_RETRIES")) {
        opts.retryLimits.clear();
        for (const std::string &r : splitCsv(v))
            opts.retryLimits.push_back(
                static_cast<unsigned>(parseUnsignedOrDie(
                    r.c_str(), "CLEARSIM_RETRIES", 0, 1000000)));
        if (opts.retryLimits.empty())
            fatal("CLEARSIM_RETRIES: no retry limits in '%s'", v);
    }
    if (const char *v = std::getenv("CLEARSIM_WORKLOADS"))
        opts.workloads = splitCsv(v);
    if (opts.workloads.empty())
        opts.workloads = workloadNames();
    if (const char *v = std::getenv("CLEARSIM_CONFIGS")) {
        opts.configs = splitCsv(v);
        if (opts.configs.empty())
            fatal("CLEARSIM_CONFIGS: no configuration specs in "
                  "'%s'",
                  v);
    }
    opts.jobs = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_JOBS", 0, 1, 1024));
    return opts;
}

std::uint64_t
auditOptionsHash(const AuditOptions &opts)
{
    // FNV-1a over the option fields, the sweepOptionsHash idiom.
    // Deliberately excludes opts.jobs: the worker-thread count
    // never changes results.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    auto mixStr = [&](const std::string &s) {
        for (char c : s)
            mix(static_cast<unsigned char>(c));
        mix(0x7f);
    };
    mix(opts.params.opsPerThread);
    mix(opts.params.threads);
    mix(opts.params.scale);
    mix(opts.params.seed);
    mix(opts.seeds);
    for (unsigned r : opts.retryLimits)
        mix(r);
    for (const std::string &w : opts.workloads)
        mixStr(w);
    for (const std::string &c : opts.configs) {
        // Hash the canonical string of the resolved config, so
        // spec spellings that resolve identically dedupe to one
        // audit. An unparseable spec falls back to its raw text;
        // validation rejects it before any simulation anyway.
        SystemConfig cfg;
        std::string error;
        mixStr(ConfigRegistry::instance().tryMake(c, cfg, error)
                   ? canonicalConfigString(cfg)
                   : c);
    }
    return h;
}

AuditResult
runAudit(const AuditOptions &opts)
{
    // Validate the whole grid before the first simulation, exactly
    // like the sweep: fatal() names the bad entry.
    const ConfigRegistry &registry = ConfigRegistry::instance();
    for (const std::string &spec : opts.configs) {
        SystemConfig cfg;
        std::string error;
        if (!registry.tryMake(spec, cfg, error))
            fatal("audit configuration: %s", error.c_str());
    }
    const std::vector<std::string> &known = workloadNames();
    for (const std::string &workload : opts.workloads) {
        if (std::find(known.begin(), known.end(), workload) ==
            known.end()) {
            fatal("audit workload: unknown workload '%s'",
                  workload.c_str());
        }
    }
    if (opts.retryLimits.empty())
        fatal("audit: no retry limits");
    if (opts.seeds == 0)
        fatal("audit: seeds must be >= 1");

    std::vector<AuditUnit> units;
    for (const std::string &config : opts.configs)
        for (const std::string &workload : opts.workloads)
            for (const unsigned retry : opts.retryLimits)
                units.push_back({config, workload, retry});

    // Fan units out; each writes its own slot, and the reduction
    // below walks the slots in unit order, so the result does not
    // depend on the job count.
    std::vector<UnitOutcome> slots(units.size());
    const unsigned jobs =
        opts.jobs != 0 ? opts.jobs : ThreadPool::defaultThreads();
    if (jobs <= 1 || units.size() <= 1) {
        for (std::size_t i = 0; i < units.size(); ++i)
            slots[i] = runUnit(opts, units[i]);
    } else {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < units.size(); ++i) {
            pool.submit([&opts, &units, &slots, i] {
                slots[i] = runUnit(opts, units[i]);
            });
        }
        pool.wait();
    }

    AuditResult result;
    result.options = opts;
    for (const UnitOutcome &slot : slots) {
        result.runs += slot.runs;
        result.regionInstances += slot.regionInstances;
        for (unsigned p = 0; p < kNumVerdictClasses; ++p)
            for (unsigned a = 0; a < kNumVerdictClasses; ++a)
                result.confusion[p][a] += slot.confusion[p][a];
        result.mispredicts.insert(result.mispredicts.end(),
                                  slot.mispredicts.begin(),
                                  slot.mispredicts.end());
        result.failures.insert(result.failures.end(),
                               slot.failures.begin(),
                               slot.failures.end());
    }

    for (unsigned c = 0; c < kNumVerdictClasses; ++c) {
        AuditClassStats &stats = result.classes[c];
        for (unsigned a = 0; a < kNumVerdictClasses; ++a)
            stats.predicted += result.confusion[c][a];
        for (unsigned p = 0; p < kNumVerdictClasses; ++p)
            stats.actual += result.confusion[p][c];
        stats.truePositives = result.confusion[c][c];
        stats.precisionPermille =
            stats.predicted == 0
                ? 0
                : static_cast<unsigned>(stats.truePositives * 1000 /
                                        stats.predicted);
        stats.recallPermille =
            stats.actual == 0
                ? 0
                : static_cast<unsigned>(stats.truePositives * 1000 /
                                        stats.actual);
    }

    // Suggested pc-keyed overrides: a false-ELIGIBLE region should
    // stop speculating (Fallback=1); a false-DOOMED region should
    // get the full machinery back (Clear=0). Safety wins when both
    // kinds implicate one (config, pc): keep the larger action.
    std::map<std::pair<std::string, std::uint64_t>, unsigned>
        suggestions;
    for (const AuditMispredict &entry : result.mispredicts) {
        unsigned action;
        if (entry.record.kind == MispredictKind::FalseEligible)
            action = 1;
        else if (entry.record.kind == MispredictKind::FalseDoomed)
            action = 0;
        else
            continue;
        // Key on the base spec (without the retry-limit token) so
        // one suggestion covers every retry limit of the config.
        std::string base = entry.config;
        const std::string token =
            ":maxRetries=" + std::to_string(entry.retryLimit);
        const auto at = base.find(token);
        if (at != std::string::npos)
            base.erase(at, token.size());
        const auto key = std::make_pair(base, std::uint64_t(
                                                  entry.record.pc));
        const auto it = suggestions.find(key);
        if (it == suggestions.end() || it->second < action)
            suggestions[key] = action;
    }
    for (const auto &[key, action] : suggestions) {
        SuggestedOverride suggestion;
        suggestion.pc = key.second;
        suggestion.action = action;
        char token[48];
        std::snprintf(token, sizeof token, ":adapt.pc0x%" PRIx64
                      "=%u",
                      key.second, action);
        suggestion.spec = key.first + token;
        result.suggestedOverrides.push_back(std::move(suggestion));
    }
    return result;
}

bool
replayMispredict(const AuditMispredict &entry,
                 std::uint64_t base_seed, Mispredict &replayed,
                 std::string &error)
{
    ReproSpec spec;
    if (!parseReproString(entry.record.repro, spec, &error))
        return false;

    SystemConfig cfg;
    if (!ConfigRegistry::instance().tryMake(spec.config, cfg, error))
        return false;

    WorkloadParams params;
    params.threads = spec.threads;
    params.opsPerThread = spec.ops;
    params.scale = spec.scale;
    params.seed = base_seed;

    try {
        const AnalyzeOutcome capture = analyzeWithConfig(
            captureConfigFor(cfg), spec.workload, params);
        const CertificateSet certs =
            buildCertificates(capture.analysis, cfg);

        params.seed = spec.seed;
        CertChecker checker(certs, cfg);
        checker.setRepro(entry.record.repro);
        RunResult run =
            runOnce(cfg, spec.workload, params, true,
                    [&checker](System &sys) {
                        sys.setTraceTap(
                            [&checker](const TraceEvent &e) {
                                checker.onTrace(e);
                            });
                    });
        checker.finalize(run.htm, run.cycles);

        for (const Mispredict &record : checker.mispredicts()) {
            if (record.kind == entry.record.kind &&
                record.pc == entry.record.pc &&
                record.premise == entry.record.premise) {
                replayed = record;
                return record.observed == entry.record.observed &&
                       record.bound == entry.record.bound &&
                       record.cycle == entry.record.cycle;
            }
        }
    } catch (const std::exception &err) {
        error = err.what();
        return false;
    }
    error = "mispredict did not reproduce: no record with kind=" +
            std::string(mispredictKindName(entry.record.kind)) +
            " pc=" + std::to_string(entry.record.pc);
    return false;
}

std::string
auditJsonString(const AuditResult &result)
{
    std::string out;
    JsonWriter json(out);
    json.beginObject();
    json.key("schema");
    json.value(kAuditJsonSchema);

    json.key("grid");
    json.beginObject();
    json.key("configs");
    json.beginArray();
    for (const std::string &config : result.options.configs)
        json.value(config);
    json.endArray();
    json.key("workloads");
    json.beginArray();
    for (const std::string &workload : result.options.workloads)
        json.value(workload);
    json.endArray();
    json.key("retry_limits");
    json.beginArray();
    for (const unsigned retry : result.options.retryLimits)
        json.value(retry);
    json.endArray();
    json.key("seeds");
    json.value(result.options.seeds);
    json.key("threads");
    json.value(result.options.params.threads);
    json.key("ops");
    json.value(result.options.params.opsPerThread);
    json.key("scale");
    json.value(result.options.params.scale);
    json.key("base_seed");
    json.value(result.options.params.seed);
    json.endObject();

    json.key("runs");
    json.value(result.runs);
    json.key("region_instances");
    json.value(result.regionInstances);

    json.key("classes");
    json.beginArray();
    for (unsigned c = 0; c < kNumVerdictClasses; ++c) {
        const AuditClassStats &stats = result.classes[c];
        json.beginObject();
        json.key("verdict");
        json.value(verdictName(verdictOfClass(c)));
        json.key("predicted");
        json.value(stats.predicted);
        json.key("actual");
        json.value(stats.actual);
        json.key("true_positives");
        json.value(stats.truePositives);
        json.key("precision_permille");
        json.value(stats.precisionPermille);
        json.key("recall_permille");
        json.value(stats.recallPermille);
        json.endObject();
    }
    json.endArray();

    json.key("confusion");
    json.beginArray();
    for (unsigned p = 0; p < kNumVerdictClasses; ++p) {
        json.beginArray();
        for (unsigned a = 0; a < kNumVerdictClasses; ++a)
            json.value(result.confusion[p][a]);
        json.endArray();
    }
    json.endArray();

    json.key("mispredicts");
    json.beginArray();
    for (const AuditMispredict &entry : result.mispredicts) {
        json.beginObject();
        json.key("kind");
        json.value(mispredictKindName(entry.record.kind));
        json.key("config");
        json.value(entry.config);
        json.key("workload");
        json.value(entry.workload);
        json.key("retry_limit");
        json.value(entry.retryLimit);
        json.key("seed");
        json.value(entry.seed);
        json.key("pc");
        json.value(static_cast<std::uint64_t>(entry.record.pc));
        json.key("verdict");
        json.value(verdictName(entry.record.verdict));
        json.key("premise");
        json.value(premiseName(entry.record.premise));
        json.key("premise_code");
        json.value(static_cast<unsigned>(entry.record.premise));
        json.key("observed");
        json.value(entry.record.observed);
        json.key("bound");
        json.value(entry.record.bound);
        json.key("cycle");
        json.value(static_cast<std::uint64_t>(entry.record.cycle));
        json.key("repro");
        json.value(entry.record.repro);
        json.endObject();
    }
    json.endArray();

    json.key("suggested_overrides");
    json.beginArray();
    for (const SuggestedOverride &suggestion :
         result.suggestedOverrides) {
        json.beginObject();
        json.key("pc");
        json.value(static_cast<std::uint64_t>(suggestion.pc));
        json.key("action");
        json.value(suggestion.action);
        json.key("spec");
        json.value(suggestion.spec);
        json.endObject();
    }
    json.endArray();

    json.key("failures");
    json.beginArray();
    for (const AuditFailure &failure : result.failures) {
        json.beginObject();
        json.key("config");
        json.value(failure.config);
        json.key("workload");
        json.value(failure.workload);
        json.key("retry_limit");
        json.value(failure.retryLimit);
        json.key("error");
        json.value(failure.error);
        json.endObject();
    }
    json.endArray();

    json.endObject();
    out.push_back('\n');
    return out;
}

bool
writeAuditJson(const std::string &path, const AuditResult &result,
               std::string &error)
{
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
        if (ec) {
            error = "cannot create " +
                    target.parent_path().string() + ": " +
                    ec.message();
            return false;
        }
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        error = "cannot open " + path + ": " + std::strerror(errno);
        return false;
    }
    os << auditJsonString(result);
    os.flush();
    if (!os) {
        error = "write to " + path + " failed";
        return false;
    }
    return true;
}

std::string
auditReport(const AuditResult &result)
{
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof buf,
                  "clearsim audit: %" PRIu64 " runs, %" PRIu64
                  " region-instances, %zu mispredicts, %zu "
                  "failures\n",
                  result.runs, result.regionInstances,
                  result.mispredicts.size(),
                  result.failures.size());
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "%-22s %10s %10s %10s %10s %10s\n", "verdict",
                  "predicted", "actual", "tp", "precision",
                  "recall");
    out += buf;
    for (unsigned c = 0; c < kNumVerdictClasses; ++c) {
        const AuditClassStats &stats = result.classes[c];
        std::snprintf(buf, sizeof buf,
                      "%-22s %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                      "     %u.%03u     %u.%03u\n",
                      verdictName(verdictOfClass(c)),
                      stats.predicted, stats.actual,
                      stats.truePositives,
                      stats.precisionPermille / 1000,
                      stats.precisionPermille % 1000,
                      stats.recallPermille / 1000,
                      stats.recallPermille % 1000);
        out += buf;
    }
    if (!result.mispredicts.empty()) {
        out += "mispredicts:\n";
        for (const AuditMispredict &entry : result.mispredicts) {
            std::snprintf(
                buf, sizeof buf,
                "  %s pc=0x%" PRIx64 " premise=%s observed=%" PRIu64
                " bound=%" PRIu64 " %s/%s retry=%u seed=%" PRIu64
                "\n",
                mispredictKindName(entry.record.kind),
                static_cast<std::uint64_t>(entry.record.pc),
                premiseName(entry.record.premise),
                entry.record.observed, entry.record.bound,
                entry.workload.c_str(), entry.config.c_str(),
                entry.retryLimit, entry.seed);
            out += buf;
        }
    }
    if (!result.suggestedOverrides.empty()) {
        out += "suggested overrides:\n";
        for (const SuggestedOverride &suggestion :
             result.suggestedOverrides) {
            out += "  ";
            out += suggestion.spec;
            out += '\n';
        }
    }
    for (const AuditFailure &failure : result.failures) {
        std::snprintf(buf, sizeof buf,
                      "FAILED %s/%s retry=%u: %s\n",
                      failure.workload.c_str(),
                      failure.config.c_str(), failure.retryLimit,
                      failure.error.c_str());
        out += buf;
    }
    return out;
}

} // namespace clearsim
