/**
 * @file
 * The experiment harness.
 *
 * Implements the paper's methodology (Section 6): every
 * (configuration, workload) cell is run for a sweep of retry limits
 * (the paper uses 1..10 and picks the best-performing one per
 * application), each point with several seeds aggregated by trimmed
 * mean. The bench binaries for Figures 8-13 are thin wrappers over
 * runSweep().
 *
 * Every (workload, config, retry limit, seed) point is an
 * independent deterministic simulation, so runSweep() fans the
 * points out over a pool of CLEARSIM_JOBS OS threads and reduces
 * the per-point results in a fixed order. Sweep results — and the
 * sweep-cache CSV derived from them — are byte-identical for every
 * job count; CLEARSIM_JOBS only changes wall-clock time.
 *
 * Environment knobs let the full paper-scale sweep be requested
 * without recompiling (malformed values are rejected with fatal()):
 *   CLEARSIM_OPS      ops per thread          (default 16, >= 1)
 *   CLEARSIM_SEEDS    seeds per point         (default 3, >= 1)
 *   CLEARSIM_RETRIES  comma list of limits    (default "1,2,4,8")
 *   CLEARSIM_TRIM     samples trimmed per side (default 0;
 *                     the paper uses 10 seeds / trim 3)
 *   CLEARSIM_WORKLOADS comma list             (default all 19)
 *   CLEARSIM_CONFIGS  comma list of config registry specs
 *                     (default "B,P,C,W,A"; e.g. "C,C+scl-all-reads")
 *   CLEARSIM_JOBS     worker threads          (default
 *                     hardware_concurrency(); 1 = serial)
 *
 * Config specs and workload names are validated up front — the
 * sweep fatal()s before the first simulation, naming the bad entry
 * and the registered alternatives.
 *
 * Grid execution itself (point indexing, ThreadPool fan-out, cell
 * reduction, progress, cancellation) lives in sweep_engine.hh;
 * runSweep()/runCell() are thin wrappers over runSweepGrid(), and
 * the clearsimd scheduler drives the same engine directly.
 */

#ifndef CLEARSIM_HARNESS_RUNNER_HH
#define CLEARSIM_HARNESS_RUNNER_HH

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/config.hh"
#include "metrics/run_result.hh"
#include "policy/region_policy.hh"
#include "workloads/workload.hh"

namespace clearsim
{

class System;

/**
 * The configuration a capture (analysis / certificate) pass runs
 * under: the measured config with the adaptive routing off (no
 * table exists yet) and the fault plan zeroed — faults would
 * perturb the capture, and the non-perturbation proof covers the
 * fault-free system. All execution-relevant fields are shared with
 * the measured run, so capture and run resolve region behaviour
 * identically. The certificate audit derives its certificates under
 * exactly this config.
 */
SystemConfig captureConfigFor(const SystemConfig &cfg);

/**
 * Build the adaptive (preset "A") per-region decision table for a
 * run of @p workload_name under @p cfg: one analysis capture pass
 * under cfg-with-adaptivity-and-faults-off produces the verdicts,
 * which cfg.adapt maps to decisions. Deterministic in (cfg,
 * workload, params). runOnce() calls this itself when
 * cfg.adapt.enabled; direct System users (trace frontends, tests)
 * call it to install the table by hand.
 */
RegionPolicyTable buildRegionPolicy(const SystemConfig &cfg,
                                    const std::string &workload_name,
                                    const WorkloadParams &params);

/**
 * One fully-specified simulation run. Throws std::runtime_error
 * when workload verification finds a damaged data structure, and
 * propagates InvariantViolationError from watchdog-enabled runs —
 * sweep callers catch per point (the cell is marked failed, the
 * sweep continues); direct callers let it reach their top-level
 * handler.
 *
 * @param configure optional hook invoked on the freshly built
 *        System before any workload thread starts — observability
 *        attachments only (trace taps, sinks); it must not perturb
 *        execution. The certificate audit installs its CertChecker
 *        tap through this seam.
 */
RunResult runOnce(const SystemConfig &cfg,
                  const std::string &workload_name,
                  const WorkloadParams &params,
                  bool check_invariants = true,
                  const std::function<void(System &)> &configure =
                      nullptr);

/** Options of a sweep over (configs x workloads). */
struct SweepOptions
{
    /** ConfigRegistry spec strings ("B", "C+scl-all-reads", ...). */
    std::vector<std::string> configs = {"B", "P", "C", "W", "A"};
    std::vector<std::string> workloads; ///< empty = all 19
    std::vector<unsigned> retryLimits = {1, 2, 4, 8};
    unsigned seeds = 3;
    unsigned trimEachSide = 0;
    WorkloadParams params;

    /**
     * Worker threads running sweep points; 0 = one per hardware
     * thread. Never affects results, only wall-clock time.
     */
    unsigned jobs = 0;

    /** Apply the CLEARSIM_* environment overrides. */
    static SweepOptions fromEnv();
};

/** Aggregated result of one (config, workload) cell. */
struct CellResult
{
    std::string workload;
    std::string config;
    unsigned bestRetryLimit = 0;
    double cycles = 0.0;      ///< trimmed-mean cycles at best limit
    double energy = 0.0;      ///< trimmed-mean total energy
    HtmStats htm;             ///< merged over the seeds of the best
    double discoveryShare = 0.0;
    unsigned numCores = 0;

    /**
     * True when any point of the cell threw (invariant violation,
     * verification failure): the numeric fields are meaningless,
     * error carries the first failing point's message, and repro
     * carries the repro string replaying that point bit-exactly.
     */
    bool failed = false;
    std::string error;
    std::string repro;
};

/**
 * Run one cell: sweep the retry limits, each with opts.seeds seeds,
 * and keep the limit with the best trimmed-mean execution time.
 * Points run on opts.jobs threads like runSweep().
 */
CellResult runCell(const std::string &config_name,
                   const std::string &workload_name,
                   const SweepOptions &opts);

/** Key: (workload, config). */
using SweepKey = std::pair<std::string, std::string>;

/**
 * Run the full sweep on opts.jobs worker threads, printing
 * progress (points done, runs/s, ETA) to stderr while it takes
 * longer than a second. Results are independent of the job count.
 */
std::map<SweepKey, CellResult> runSweep(const SweepOptions &opts);

/**
 * runSweep with crash-tolerant plumbing: cells in @p skip are not
 * run at all (they were loaded from a checkpoint), and @p on_cell —
 * when non-null — is invoked on the coordinator thread as soon as
 * each cell's points have all finished, in completion order. A
 * point that throws does not tear the sweep down: its cell comes
 * back with failed set and every other cell still runs.
 */
std::map<SweepKey, CellResult>
runSweep(const SweepOptions &opts, const std::set<SweepKey> &skip,
         const std::function<void(const CellResult &)> &on_cell);

// ---------------------------------------------------------------
// Table-printing helpers shared by the bench binaries.
// ---------------------------------------------------------------

/** Print a row of right-aligned cells after a left label. */
void printRow(const std::string &label,
              const std::vector<std::string> &cells, int cell_width);

/** Geomean label used in figures ("geomean" column of Fig. 8). */
extern const char *const kGeomeanLabel;

} // namespace clearsim

#endif // CLEARSIM_HARNESS_RUNNER_HH
