#include "harness/runner.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "analysis/analyze.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "core/system.hh"
#include "fault/fault_repro.hh"
#include "fault/invariant_checker.hh"
#include "harness/sweep_engine.hh"
#include "policy/config_registry.hh"
#include "policy/region_policy.hh"

namespace clearsim
{

const char *const kGeomeanLabel = "geomean";

SystemConfig
captureConfigFor(const SystemConfig &cfg)
{
    SystemConfig capture = cfg;
    capture.adapt.enabled = false;
    capture.fault = FaultConfig{};
    return capture;
}

RegionPolicyTable
buildRegionPolicy(const SystemConfig &cfg,
                  const std::string &workload_name,
                  const WorkloadParams &params)
{
    const AnalyzeOutcome capture = analyzeWithConfig(
        captureConfigFor(cfg), workload_name, params);
    return RegionPolicyTable::fromVerdicts(
        verdictMap(capture.analysis), cfg);
}

RunResult
runOnce(const SystemConfig &cfg, const std::string &workload_name,
        const WorkloadParams &params, bool check_invariants,
        const std::function<void(System &)> &configure)
{
    // Adaptive preset "A": one capture pass resolves the per-region
    // verdicts, which the config's adapt mapping turns into the
    // decision table the executor consults. Both passes are
    // deterministic in (config, workload, params), so an adaptive
    // run stays byte-reproducible on every execution path (direct,
    // sweep worker, daemon, DLQ replay).
    RegionPolicyTable region_policy;
    if (cfg.adapt.enabled)
        region_policy = buildRegionPolicy(cfg, workload_name, params);

    System sys(cfg, params.seed);
    if (cfg.adapt.enabled)
        sys.setRegionPolicy(&region_policy);
    auto workload = makeWorkload(workload_name, params);

    if (InvariantChecker *checker = sys.checker()) {
        // Any violation report names the exact (spec, params) pair
        // that replays this run bit-for-bit.
        ReproSpec spec;
        spec.workload = workload_name;
        spec.config = cfg.name;
        spec.threads = params.threads;
        spec.ops = params.opsPerThread;
        spec.scale = params.scale;
        spec.seed = params.seed;
        checker->setRepro(makeReproString(spec));
    }

    if (configure)
        configure(sys);

    RunResult result;
    result.workload = workload_name;
    result.config = cfg.name;
    result.seed = params.seed;
    result.maxRetries = cfg.maxRetries;
    result.numCores = cfg.numCores;
    result.cycles = runWorkloadThreads(sys, *workload);

    if (check_invariants) {
        // Thrown, not fatal(): one damaged sweep point must not
        // tear down the whole run (the sweep marks the cell failed
        // and carries on; direct callers report and exit nonzero).
        for (const std::string &issue : workload->verify(sys)) {
            throw std::runtime_error(workload_name + " [" +
                                     cfg.name + "]: " + issue);
        }
    }

    if (cfg.adapt.enabled)
        result.decisionReport = region_policy.report();
    result.htm = sys.stats();
    result.mem = sys.mem().stats();
    result.lockHoldCycles = sys.mem().locks().holdCycles();
    result.energy = computeEnergy(EnergyParams{}, result.cycles,
                                  cfg.numCores, result.htm,
                                  result.mem);
    return result;
}

namespace
{

std::vector<std::string>
splitCsv(const char *value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

} // namespace

SweepOptions
SweepOptions::fromEnv()
{
    SweepOptions opts;
    opts.params.opsPerThread = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_OPS", 16, 1, 100000000));
    opts.seeds = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_SEEDS", opts.seeds, 1, 100000));
    opts.trimEachSide = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_TRIM", opts.trimEachSide, 0,
                      100000));
    if (const char *v = std::getenv("CLEARSIM_RETRIES")) {
        opts.retryLimits.clear();
        for (const std::string &r : splitCsv(v))
            opts.retryLimits.push_back(
                static_cast<unsigned>(parseUnsignedOrDie(
                    r.c_str(), "CLEARSIM_RETRIES", 0, 1000000)));
        if (opts.retryLimits.empty())
            fatal("CLEARSIM_RETRIES: no retry limits in '%s'", v);
    }
    if (const char *v = std::getenv("CLEARSIM_WORKLOADS"))
        opts.workloads = splitCsv(v);
    if (opts.workloads.empty())
        opts.workloads = workloadNames();
    if (const char *v = std::getenv("CLEARSIM_CONFIGS")) {
        opts.configs = splitCsv(v);
        if (opts.configs.empty())
            fatal("CLEARSIM_CONFIGS: no configuration specs in "
                  "'%s'",
                  v);
    }
    opts.jobs = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_JOBS", 0, 1, 1024));
    return opts;
}

CellResult
runCell(const std::string &config_name,
        const std::string &workload_name, const SweepOptions &opts)
{
    SweepOptions cell_opts = opts;
    cell_opts.configs = {config_name};
    cell_opts.workloads = {workload_name};
    const SweepOutcome outcome =
        runSweepGrid(cell_opts, {}, SweepObserver{});
    return outcome.cells.at({workload_name, config_name});
}

std::map<SweepKey, CellResult>
runSweep(const SweepOptions &opts)
{
    return runSweep(opts, {}, nullptr);
}

std::map<SweepKey, CellResult>
runSweep(const SweepOptions &opts, const std::set<SweepKey> &skip,
         const std::function<void(const CellResult &)> &on_cell)
{
    SweepObserver observer;
    observer.onCell = on_cell;
    return runSweepGrid(opts, skip, observer).cells;
}

void
printRow(const std::string &label,
         const std::vector<std::string> &cells, int cell_width)
{
    std::printf("%-12s", label.c_str());
    for (const std::string &cell : cells)
        std::printf(" %*s", cell_width, cell.c_str());
    std::printf("\n");
}

} // namespace clearsim
