#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/env.hh"
#include "common/log.hh"
#include "common/thread_pool.hh"
#include "core/system.hh"
#include "fault/fault_repro.hh"
#include "fault/invariant_checker.hh"
#include "policy/config_registry.hh"

namespace clearsim
{

const char *const kGeomeanLabel = "geomean";

RunResult
runOnce(const SystemConfig &cfg, const std::string &workload_name,
        const WorkloadParams &params, bool check_invariants)
{
    System sys(cfg, params.seed);
    auto workload = makeWorkload(workload_name, params);

    if (InvariantChecker *checker = sys.checker()) {
        // Any violation report names the exact (spec, params) pair
        // that replays this run bit-for-bit.
        ReproSpec spec;
        spec.workload = workload_name;
        spec.config = cfg.name;
        spec.threads = params.threads;
        spec.ops = params.opsPerThread;
        spec.scale = params.scale;
        spec.seed = params.seed;
        checker->setRepro(makeReproString(spec));
    }

    RunResult result;
    result.workload = workload_name;
    result.config = cfg.name;
    result.seed = params.seed;
    result.maxRetries = cfg.maxRetries;
    result.numCores = cfg.numCores;
    result.cycles = runWorkloadThreads(sys, *workload);

    if (check_invariants) {
        // Thrown, not fatal(): one damaged sweep point must not
        // tear down the whole run (the sweep marks the cell failed
        // and carries on; direct callers report and exit nonzero).
        for (const std::string &issue : workload->verify(sys)) {
            throw std::runtime_error(workload_name + " [" +
                                     cfg.name + "]: " + issue);
        }
    }

    result.htm = sys.stats();
    result.mem = sys.mem().stats();
    result.lockHoldCycles = sys.mem().locks().holdCycles();
    result.energy = computeEnergy(EnergyParams{}, result.cycles,
                                  cfg.numCores, result.htm,
                                  result.mem);
    return result;
}

namespace
{

std::vector<std::string>
splitCsv(const char *value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

/**
 * The quantities of one sweep point (one runOnce) that the cell
 * reduction needs. Workers write each point into its own
 * pre-allocated slot, so no synchronization is needed on the
 * results and the reduction order is fixed regardless of which
 * thread finished when.
 */
struct PointResult
{
    double cycles = 0.0;
    double energy = 0.0;
    double discoveryShare = 0.0;
    HtmStats htm;

    /** The point threw; error/repro identify and replay it. */
    bool failed = false;
    std::string error;
    std::string repro;
};

/**
 * A sweep flattened into an indexable job list. Point index
 * i = (cell * retryLimits.size() + retry) * seeds + seed, i.e.
 * cells outermost, seeds innermost — the same nesting the serial
 * loops always used.
 */
struct SweepPlan
{
    const SweepOptions *opts = nullptr;
    std::vector<SweepKey> cells; ///< (workload, config)

    std::size_t
    pointsPerCell() const
    {
        return opts->retryLimits.size() * opts->seeds;
    }

    std::size_t
    totalPoints() const
    {
        return cells.size() * pointsPerCell();
    }
};

void
validateSweepShape(const SweepOptions &opts)
{
    if (opts.seeds == 0)
        fatal("sweep needs at least one seed per point "
              "(CLEARSIM_SEEDS >= 1)");
    if (opts.retryLimits.empty())
        fatal("sweep needs at least one retry limit "
              "(CLEARSIM_RETRIES)");
}

/**
 * Resolve every config spec and workload name before the first
 * point runs: a typo fails immediately instead of fatal()ing
 * mid-sweep after minutes of simulation.
 */
void
validateSelections(const std::vector<std::string> &configs,
                   const std::vector<std::string> &workloads)
{
    if (configs.empty())
        fatal("sweep needs at least one configuration "
              "(CLEARSIM_CONFIGS)");
    if (workloads.empty())
        fatal("sweep needs at least one workload "
              "(CLEARSIM_WORKLOADS)");

    const ConfigRegistry &registry = ConfigRegistry::instance();
    for (const std::string &spec : configs) {
        SystemConfig cfg;
        std::string error;
        if (!registry.tryMake(spec, cfg, error))
            fatal("sweep configuration: %s", error.c_str());
    }
    const std::vector<std::string> &known = workloadNames();
    for (const std::string &workload : workloads) {
        if (std::find(known.begin(), known.end(), workload) ==
            known.end()) {
            fatal("sweep workload: unknown workload '%s' "
                  "(known: run with --list-workloads or see "
                  "workloadNames())",
                  workload.c_str());
        }
    }
}

PointResult
runPoint(const SweepPlan &plan, std::size_t index)
{
    const SweepOptions &opts = *plan.opts;
    const std::size_t per_cell = plan.pointsPerCell();
    const SweepKey &cell = plan.cells[index / per_cell];
    const std::size_t within = index % per_cell;
    const unsigned retries = opts.retryLimits[within / opts.seeds];
    const std::size_t seed_index = within % opts.seeds;

    SystemConfig cfg = makeConfigByName(cell.second);
    cfg.maxRetries = retries;
    // Name the config after the full spec including the point's
    // retry limit, so the repro string replays this exact point.
    cfg.name = cell.second + ":maxRetries=" + std::to_string(retries);
    WorkloadParams params = opts.params;
    params.seed = opts.params.seed + 1000003ull * seed_index;

    PointResult point;
    RunResult run;
    try {
        run = runOnce(cfg, cell.first, params);
    } catch (const std::exception &err) {
        // One crashing or invariant-violating point must not take
        // the sweep down: record what failed and how to replay it,
        // and let every other point finish.
        ReproSpec spec;
        spec.workload = cell.first;
        spec.config = cfg.name;
        spec.threads = params.threads;
        spec.ops = params.opsPerThread;
        spec.scale = params.scale;
        spec.seed = params.seed;
        point.failed = true;
        point.error = err.what();
        point.repro = makeReproString(spec);
        return point;
    }
    point.cycles = static_cast<double>(run.cycles);
    point.energy = run.energy.total();
    point.discoveryShare = run.discoveryOverheadShare(cfg.numCores);
    point.htm = run.htm;
    return point;
}

/**
 * Throttled stderr progress for long sweeps: nothing for the first
 * second (keeps tests and small runs quiet), then points done,
 * runs/s and an ETA roughly once a second.
 */
class ProgressReporter
{
  public:
    ProgressReporter(std::size_t total_points,
                     std::size_t points_per_cell, unsigned jobs)
        : total_(total_points), pointsPerCell_(points_per_cell),
          jobs_(jobs), start_(Clock::now()), lastReport_(start_)
    {
    }

    /** One point finished. Safe to call from worker threads. */
    void
    markDone()
    {
        done_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Print a progress line if a second passed. Coordinator only. */
    void
    maybeReport()
    {
        const Clock::time_point now = Clock::now();
        if (now - lastReport_ < std::chrono::seconds(1))
            return;
        lastReport_ = now;
        reported_ = true;

        const std::size_t done =
            done_.load(std::memory_order_relaxed);
        const double elapsed = secondsSince(start_, now);
        const double rate =
            elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
        const double eta =
            rate > 0.0
                ? static_cast<double>(total_ - done) / rate
                : 0.0;
        logStatus("[clearsim] sweep: %zu/%zu runs "
                  "(%zu/%zu cells), %.1f runs/s, eta %.0fs",
                  done, total_, done / pointsPerCell_,
                  total_ / pointsPerCell_, rate, eta);
    }

    /** Print the closing throughput line if progress was shown. */
    void
    finish()
    {
        if (!reported_)
            return;
        const double elapsed = secondsSince(start_, Clock::now());
        logStatus("[clearsim] sweep done: %zu runs in %.1fs "
                  "(%.1f runs/s on %u jobs)",
                  total_, elapsed,
                  elapsed > 0.0
                      ? static_cast<double>(total_) / elapsed
                      : 0.0,
                  jobs_);
    }

  private:
    using Clock = std::chrono::steady_clock;

    static double
    secondsSince(Clock::time_point from, Clock::time_point to)
    {
        return std::chrono::duration<double>(to - from).count();
    }

    const std::size_t total_;
    const std::size_t pointsPerCell_;
    const unsigned jobs_;
    const Clock::time_point start_;
    Clock::time_point lastReport_;
    std::atomic<std::size_t> done_{0};
    bool reported_ = false;
};

unsigned
resolveJobs(unsigned requested)
{
    return requested != 0 ? requested : ThreadPool::defaultThreads();
}

/**
 * Execute every point of the plan on @p jobs threads (inline when
 * jobs == 1), filling the caller-owned @p points slot by slot.
 * Slot-indexed results make the output independent of scheduling.
 * When @p cell_done is non-null, it runs on the coordinator thread
 * once for each cell, as soon as all of that cell's points have
 * finished — the hook behind per-cell sweep checkpointing.
 */
void
runAllPoints(const SweepPlan &plan, unsigned jobs,
             std::vector<PointResult> &points,
             const std::function<void(std::size_t)> &cell_done)
{
    const std::size_t total = plan.totalPoints();
    const std::size_t per_cell = plan.pointsPerCell();
    ProgressReporter progress(total, per_cell, jobs);

    std::vector<std::atomic<std::size_t>> cellDone(
        plan.cells.size());
    std::vector<bool> reported(plan.cells.size(), false);
    // Coordinator-side scan for cells whose last point just landed.
    // The acquire load pairs with the workers' release increments,
    // so every point slot of a complete cell is visible before
    // cell_done reduces it.
    auto drainCompleted = [&] {
        if (!cell_done)
            return;
        for (std::size_t c = 0; c < plan.cells.size(); ++c) {
            if (!reported[c] &&
                cellDone[c].load(std::memory_order_acquire) ==
                    per_cell) {
                reported[c] = true;
                cell_done(c);
            }
        }
    };

    if (jobs <= 1) {
        for (std::size_t i = 0; i < total; ++i) {
            points[i] = runPoint(plan, i);
            cellDone[i / per_cell].fetch_add(
                1, std::memory_order_release);
            progress.markDone();
            progress.maybeReport();
            drainCompleted();
        }
    } else {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < total; ++i) {
            pool.submit([&plan, &points, &progress, &cellDone,
                         per_cell, i] {
                points[i] = runPoint(plan, i);
                cellDone[i / per_cell].fetch_add(
                    1, std::memory_order_release);
                progress.markDone();
            });
        }
        while (!pool.waitFor(std::chrono::milliseconds(250))) {
            progress.maybeReport();
            drainCompleted();
        }
        drainCompleted();
    }
    progress.finish();
}

/**
 * Reduce one cell's points: per retry limit, trimmed means over the
 * seeds; keep the limit with the lowest mean cycle count (first
 * wins ties, like the original serial sweep).
 */
CellResult
reduceCell(const SweepPlan &plan, std::size_t cell_index,
           const std::vector<PointResult> &points)
{
    const SweepOptions &opts = *plan.opts;
    const std::size_t base = cell_index * plan.pointsPerCell();

    CellResult best;
    best.workload = plan.cells[cell_index].first;
    best.config = plan.cells[cell_index].second;
    bool have_best = false;

    // Any failed point poisons the cell: report the first failure
    // in slot order (deterministic regardless of which thread hit
    // it first) instead of aggregating garbage.
    for (std::size_t p = 0; p < plan.pointsPerCell(); ++p) {
        const PointResult &point = points[base + p];
        if (!point.failed)
            continue;
        best.failed = true;
        best.error = point.error;
        best.repro = point.repro;
        return best;
    }

    for (std::size_t r = 0; r < opts.retryLimits.size(); ++r) {
        std::vector<double> cycles;
        std::vector<double> energies;
        std::vector<double> shares;
        HtmStats merged;
        for (unsigned s = 0; s < opts.seeds; ++s) {
            const PointResult &point =
                points[base + r * opts.seeds + s];
            cycles.push_back(point.cycles);
            energies.push_back(point.energy);
            shares.push_back(point.discoveryShare);
            merged.merge(point.htm);
        }
        const double mean_cycles =
            trimmedMean(cycles, opts.trimEachSide);
        if (!have_best || mean_cycles < best.cycles) {
            have_best = true;
            best.bestRetryLimit = opts.retryLimits[r];
            best.cycles = mean_cycles;
            best.energy = trimmedMean(energies, opts.trimEachSide);
            best.htm = merged;
            best.discoveryShare =
                trimmedMean(shares, opts.trimEachSide);
            best.numCores =
                makeConfigByName(best.config).numCores;
        }
    }
    return best;
}

} // namespace

SweepOptions
SweepOptions::fromEnv()
{
    SweepOptions opts;
    opts.params.opsPerThread = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_OPS", 16, 1, 100000000));
    opts.seeds = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_SEEDS", opts.seeds, 1, 100000));
    opts.trimEachSide = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_TRIM", opts.trimEachSide, 0,
                      100000));
    if (const char *v = std::getenv("CLEARSIM_RETRIES")) {
        opts.retryLimits.clear();
        for (const std::string &r : splitCsv(v))
            opts.retryLimits.push_back(
                static_cast<unsigned>(parseUnsignedOrDie(
                    r.c_str(), "CLEARSIM_RETRIES", 0, 1000000)));
        if (opts.retryLimits.empty())
            fatal("CLEARSIM_RETRIES: no retry limits in '%s'", v);
    }
    if (const char *v = std::getenv("CLEARSIM_WORKLOADS"))
        opts.workloads = splitCsv(v);
    if (opts.workloads.empty())
        opts.workloads = workloadNames();
    if (const char *v = std::getenv("CLEARSIM_CONFIGS")) {
        opts.configs = splitCsv(v);
        if (opts.configs.empty())
            fatal("CLEARSIM_CONFIGS: no configuration specs in "
                  "'%s'",
                  v);
    }
    opts.jobs = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_JOBS", 0, 1, 1024));
    return opts;
}

CellResult
runCell(const std::string &config_name,
        const std::string &workload_name, const SweepOptions &opts)
{
    validateSweepShape(opts);
    validateSelections({config_name}, {workload_name});
    SweepPlan plan;
    plan.opts = &opts;
    plan.cells.push_back({workload_name, config_name});
    std::vector<PointResult> points(plan.totalPoints());
    runAllPoints(plan, resolveJobs(opts.jobs), points, nullptr);
    return reduceCell(plan, 0, points);
}

std::map<SweepKey, CellResult>
runSweep(const SweepOptions &opts)
{
    return runSweep(opts, {}, nullptr);
}

std::map<SweepKey, CellResult>
runSweep(const SweepOptions &opts, const std::set<SweepKey> &skip,
         const std::function<void(const CellResult &)> &on_cell)
{
    validateSweepShape(opts);
    validateSelections(opts.configs, opts.workloads);
    SweepPlan plan;
    plan.opts = &opts;
    for (const std::string &workload : opts.workloads)
        for (const std::string &config : opts.configs) {
            const SweepKey key{workload, config};
            if (skip.find(key) == skip.end())
                plan.cells.push_back(key);
        }

    std::map<SweepKey, CellResult> results;
    if (plan.cells.empty())
        return results;

    std::vector<PointResult> points(plan.totalPoints());
    runAllPoints(plan, resolveJobs(opts.jobs), points,
                 [&](std::size_t c) {
                     CellResult cell = reduceCell(plan, c, points);
                     if (on_cell)
                         on_cell(cell);
                     results[plan.cells[c]] = std::move(cell);
                 });
    return results;
}

void
printRow(const std::string &label,
         const std::vector<std::string> &cells, int cell_width)
{
    std::printf("%-12s", label.c_str());
    for (const std::string &cell : cells)
        std::printf(" %*s", cell_width, cell.c_str());
    std::printf("\n");
}

} // namespace clearsim
