#include "harness/runner.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"
#include "core/system.hh"

namespace clearsim
{

const char *const kGeomeanLabel = "geomean";

RunResult
runOnce(const SystemConfig &cfg, const std::string &workload_name,
        const WorkloadParams &params, bool check_invariants)
{
    System sys(cfg, params.seed);
    auto workload = makeWorkload(workload_name, params);

    RunResult result;
    result.workload = workload_name;
    result.config = cfg.name;
    result.seed = params.seed;
    result.maxRetries = cfg.maxRetries;
    result.cycles = runWorkloadThreads(sys, *workload);

    if (check_invariants) {
        for (const std::string &issue : workload->verify(sys))
            fatal("%s [%s]: %s", workload_name.c_str(),
                  cfg.name.c_str(), issue.c_str());
    }

    result.htm = sys.stats();
    result.mem = sys.mem().stats();
    result.energy = computeEnergy(EnergyParams{}, result.cycles,
                                  cfg.numCores, result.htm,
                                  result.mem);
    return result;
}

namespace
{

std::vector<std::string>
splitCsv(const char *value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

} // namespace

SweepOptions
SweepOptions::fromEnv()
{
    SweepOptions opts;
    opts.params.opsPerThread = 16;
    if (const char *v = std::getenv("CLEARSIM_OPS"))
        opts.params.opsPerThread =
            static_cast<unsigned>(std::atoi(v));
    if (const char *v = std::getenv("CLEARSIM_SEEDS"))
        opts.seeds = static_cast<unsigned>(std::atoi(v));
    if (const char *v = std::getenv("CLEARSIM_TRIM"))
        opts.trimEachSide = static_cast<unsigned>(std::atoi(v));
    if (const char *v = std::getenv("CLEARSIM_RETRIES")) {
        opts.retryLimits.clear();
        for (const std::string &r : splitCsv(v))
            opts.retryLimits.push_back(
                static_cast<unsigned>(std::atoi(r.c_str())));
    }
    if (const char *v = std::getenv("CLEARSIM_WORKLOADS"))
        opts.workloads = splitCsv(v);
    if (opts.workloads.empty())
        opts.workloads = workloadNames();
    return opts;
}

CellResult
runCell(const std::string &config_name,
        const std::string &workload_name, const SweepOptions &opts)
{
    CellResult best;
    best.workload = workload_name;
    best.config = config_name;
    bool have_best = false;

    for (unsigned retries : opts.retryLimits) {
        SystemConfig cfg = makeConfigByName(config_name);
        cfg.maxRetries = retries;

        std::vector<double> cycles;
        std::vector<double> energies;
        std::vector<double> shares;
        HtmStats merged;
        for (unsigned s = 0; s < opts.seeds; ++s) {
            WorkloadParams params = opts.params;
            params.seed = opts.params.seed + 1000003ull * s;
            const RunResult run =
                runOnce(cfg, workload_name, params);
            cycles.push_back(static_cast<double>(run.cycles));
            energies.push_back(run.energy.total());
            shares.push_back(
                run.discoveryOverheadShare(cfg.numCores));
            merged.merge(run.htm);
        }
        const double mean_cycles =
            trimmedMean(cycles, opts.trimEachSide);
        if (!have_best || mean_cycles < best.cycles) {
            have_best = true;
            best.bestRetryLimit = retries;
            best.cycles = mean_cycles;
            best.energy = trimmedMean(energies, opts.trimEachSide);
            best.htm = merged;
            best.discoveryShare =
                trimmedMean(shares, opts.trimEachSide);
            best.numCores = cfg.numCores;
        }
    }
    return best;
}

std::map<SweepKey, CellResult>
runSweep(const SweepOptions &opts)
{
    std::map<SweepKey, CellResult> results;
    for (const std::string &workload : opts.workloads) {
        for (const std::string &config : opts.configs) {
            results[{workload, config}] =
                runCell(config, workload, opts);
        }
    }
    return results;
}

void
printRow(const std::string &label,
         const std::vector<std::string> &cells, int cell_width)
{
    std::printf("%-12s", label.c_str());
    for (const std::string &cell : cells)
        std::printf(" %*s", cell_width, cell.c_str());
    std::printf("\n");
}

} // namespace clearsim
