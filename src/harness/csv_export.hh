/**
 * @file
 * Optional CSV export for the figure benches.
 *
 * When CLEARSIM_CSV_DIR is set, each figure bench also writes its
 * series as `<dir>/<figure>.csv` for plotting, in addition to the
 * human-readable table on stdout.
 */

#ifndef CLEARSIM_HARNESS_CSV_EXPORT_HH
#define CLEARSIM_HARNESS_CSV_EXPORT_HH

#include <string>
#include <vector>

namespace clearsim
{

/** One exported table: a header row plus data rows. */
struct CsvTable
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Quote a cell per RFC 4180: returned verbatim unless it contains a
 * comma, double quote, CR or LF, in which case it is wrapped in
 * double quotes with embedded quotes doubled.
 */
std::string csvQuote(const std::string &cell);

/**
 * Write the table to `$CLEARSIM_CSV_DIR/<name>.csv` if the
 * environment variable is set. The directory tree is created if
 * missing; cells are quoted per RFC 4180 (csvQuote()).
 *
 * Failing to create the directory or write the file is fatal():
 * the user asked for the export, so silently dropping it would
 * waste the whole run.
 * @retval true if a file was written, false if the env var is unset
 */
bool maybeExportCsv(const std::string &name, const CsvTable &table);

} // namespace clearsim

#endif // CLEARSIM_HARNESS_CSV_EXPORT_HH
