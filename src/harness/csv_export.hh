/**
 * @file
 * Optional CSV export for the figure benches.
 *
 * When CLEARSIM_CSV_DIR is set, each figure bench also writes its
 * series as `<dir>/<figure>.csv` for plotting, in addition to the
 * human-readable table on stdout.
 */

#ifndef CLEARSIM_HARNESS_CSV_EXPORT_HH
#define CLEARSIM_HARNESS_CSV_EXPORT_HH

#include <string>
#include <vector>

namespace clearsim
{

/** One exported table: a header row plus data rows. */
struct CsvTable
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Write the table to `$CLEARSIM_CSV_DIR/<name>.csv` if the
 * environment variable is set.
 * @retval true if a file was written
 */
bool maybeExportCsv(const std::string &name, const CsvTable &table);

} // namespace clearsim

#endif // CLEARSIM_HARNESS_CSV_EXPORT_HH
