/**
 * @file
 * On-disk cache of sweep results.
 *
 * Figures 8-13 all derive from the same (config x workload) sweep.
 * Running that sweep once per bench binary would waste minutes, so
 * the first binary to need it writes a CSV cache keyed by a hash of
 * the sweep options, and the rest reuse it. Delete the cache file
 * (default ./clearsim_sweep_cache.csv, override with
 * CLEARSIM_CACHE) or change any CLEARSIM_* knob to force a re-run.
 * (CLEARSIM_JOBS is excluded from the hash: the job count never
 * changes results, so caches are shared across it.)
 *
 * Floats are written with max_digits10 so a cache round-trip is
 * bit-exact, and loading validates every row — a stale hash, a
 * wrong column count or any unparsable field discards the whole
 * file and the sweep re-runs, rather than serving corrupt cells.
 */

#ifndef CLEARSIM_HARNESS_SWEEP_CACHE_HH
#define CLEARSIM_HARNESS_SWEEP_CACHE_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "harness/runner.hh"

namespace clearsim
{

/** The per-cell quantities figures 8-13 need, in serializable form. */
struct CellSummary
{
    std::string workload;
    std::string config;
    unsigned bestRetryLimit = 0;
    double cycles = 0.0;
    double energy = 0.0;
    double discoveryShare = 0.0;
    std::uint64_t commits = 0;
    std::array<std::uint64_t, kNumExecModes> commitsByMode{};
    std::uint64_t aborts = 0;
    std::array<std::uint64_t, kNumAbortCategories> abortsByCategory{};
    /** Non-fallback commits with 0 / exactly 1 counted retries. */
    std::uint64_t commitsRetry0 = 0;
    std::uint64_t commitsRetry1 = 0;
    /** Total non-fallback / fallback commits (retry histograms). */
    std::uint64_t commitsNonFallback = 0;
    std::uint64_t commitsFallback = 0;

    /** Condense a CellResult. */
    static CellSummary fromCell(const CellResult &cell);
};

/** Map keyed like runSweep's result. */
using SweepSummary = std::map<SweepKey, CellSummary>;

/** Stable hash of everything that affects sweep results. */
std::uint64_t sweepOptionsHash(const SweepOptions &opts);

/** Cache path (CLEARSIM_CACHE or the default). */
std::string sweepCachePath();

/**
 * Load the cached sweep if its options hash matches.
 * @retval false when absent or stale
 */
bool loadSweepCache(const std::string &path, std::uint64_t hash,
                    SweepSummary &out);

/**
 * Write the cache atomically (temp file + rename): a crash mid-save
 * never leaves a torn file under @p path.
 */
void saveSweepCache(const std::string &path, std::uint64_t hash,
                    const SweepSummary &summary);

/** Checkpoint path of an in-progress sweep ("<cache>.ckpt"). */
std::string sweepCheckpointPath(const std::string &cache_path);

/**
 * The one-stop entry for the figure benches: load the cached sweep
 * for these options, or run it and cache it.
 *
 * Crash tolerance: completed cells are checkpointed (atomically)
 * to sweepCheckpointPath() as the sweep runs, and a rerun of the
 * same options resumes from the checkpoint instead of starting
 * over — the final CSV is byte-identical either way. Failing cells
 * (a point threw: invariant violation, damaged data structure) do
 * not stop the remaining cells; after the sweep they are reported
 * with their repro strings and the process exits nonzero, leaving
 * the checkpoint in place.
 */
SweepSummary sweepWithCache(const SweepOptions &opts);

} // namespace clearsim

#endif // CLEARSIM_HARNESS_SWEEP_CACHE_HH
