/**
 * @file
 * On-disk cache of sweep results.
 *
 * Figures 8-13 all derive from the same (config x workload) sweep.
 * Running that sweep once per bench binary would waste minutes, so
 * the first binary to need it writes a CSV cache keyed by a hash of
 * the sweep options, and the rest reuse it. Delete the cache file
 * (default ./clearsim_sweep_cache.csv, override with
 * CLEARSIM_CACHE) or change any CLEARSIM_* knob to force a re-run.
 * (CLEARSIM_JOBS is excluded from the hash: the job count never
 * changes results, so caches are shared across it.)
 *
 * Floats are written with max_digits10 so a cache round-trip is
 * bit-exact, and loading validates every row — a stale hash, a
 * wrong column count or any unparsable field discards the whole
 * file and the sweep re-runs, rather than serving corrupt cells.
 */

#ifndef CLEARSIM_HARNESS_SWEEP_CACHE_HH
#define CLEARSIM_HARNESS_SWEEP_CACHE_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "harness/runner.hh"

namespace clearsim
{

/** The per-cell quantities figures 8-13 need, in serializable form. */
struct CellSummary
{
    std::string workload;
    std::string config;
    unsigned bestRetryLimit = 0;
    double cycles = 0.0;
    double energy = 0.0;
    double discoveryShare = 0.0;
    std::uint64_t commits = 0;
    std::array<std::uint64_t, kNumExecModes> commitsByMode{};
    std::uint64_t aborts = 0;
    std::array<std::uint64_t, kNumAbortCategories> abortsByCategory{};
    /** Non-fallback commits with 0 / exactly 1 counted retries. */
    std::uint64_t commitsRetry0 = 0;
    std::uint64_t commitsRetry1 = 0;
    /** Total non-fallback / fallback commits (retry histograms). */
    std::uint64_t commitsNonFallback = 0;
    std::uint64_t commitsFallback = 0;

    /** Condense a CellResult. */
    static CellSummary fromCell(const CellResult &cell);
};

/** Map keyed like runSweep's result. */
using SweepSummary = std::map<SweepKey, CellSummary>;

/** Stable hash of everything that affects sweep results. */
std::uint64_t sweepOptionsHash(const SweepOptions &opts);

/** Cache path (CLEARSIM_CACHE or the default). */
std::string sweepCachePath();

/**
 * The canonical byte serialization of a sweep: the exact bytes
 * saveSweepCache() writes (header with the options hash, one CSV
 * row per cell in key order, max_digits10 doubles). This is the
 * payload clearsimd streams to clients and what clearsim_cli
 * --sweep writes, so "byte-identical over the wire" reduces to
 * string equality on this function's output.
 */
std::string serializeSweepCache(std::uint64_t hash,
                                const SweepSummary &summary);

/**
 * One cell as its cache-CSV row (no trailing newline): the unit
 * clearsimd streams to subscribers as each cell completes. The
 * final payload is exactly the header line plus these rows, so a
 * client can assemble the streamed rows and check them against the
 * terminal result.
 */
std::string serializeSweepCacheRow(const CellSummary &summary);

/**
 * Parse serializeSweepCache() bytes. The exact inverse used by
 * loadSweepCache() and by clients validating streamed results.
 * @retval false when the header, hash or any row is malformed
 */
bool parseSweepCache(const std::string &text, std::uint64_t hash,
                     SweepSummary &out);

/**
 * Parse one serializeSweepCacheRow() line back into a CellSummary —
 * the exact row-level inverse, shared with the fabric coordinator,
 * which merges rows workers computed in other processes and must
 * reject a malformed row rather than merge garbage.
 * @retval false when the column count or any field is malformed
 */
bool parseSweepCacheRow(const std::string &line, CellSummary &out);

/**
 * Load the cached sweep if its options hash matches.
 * @retval false when absent or stale
 */
bool loadSweepCache(const std::string &path, std::uint64_t hash,
                    SweepSummary &out);

/**
 * Write the cache atomically (temp file + rename): a crash mid-save
 * never leaves a torn file under @p path.
 */
void saveSweepCache(const std::string &path, std::uint64_t hash,
                    const SweepSummary &summary);

/** Checkpoint path of an in-progress sweep ("<cache>.ckpt"). */
std::string sweepCheckpointPath(const std::string &cache_path);

/**
 * Read-through view of one on-disk sweep cache: the lookup side of
 * the cache, separated from "run the sweep" so clearsimd's dedupe
 * layer can answer "is this exact sweep already on disk?" without
 * owning any execution machinery.
 */
class SweepCacheStore
{
  public:
    /** @p path empty selects sweepCachePath(). */
    explicit SweepCacheStore(std::string path = "");

    const std::string &path() const { return path_; }

    /** Cached result of exactly these options, if present. */
    bool lookup(const SweepOptions &opts, SweepSummary &out) const;

    /** Store a completed sweep (atomic write-temp-then-rename). */
    void store(const SweepOptions &opts,
               const SweepSummary &summary) const;

    /** Completed cells checkpointed by an interrupted run. */
    bool loadCheckpoint(const SweepOptions &opts,
                        SweepSummary &out) const;

    /** Checkpoint the cells completed so far (atomically). */
    void saveCheckpoint(const SweepOptions &opts,
                        const SweepSummary &done) const;

    /**
     * Delete the checkpoint (and any stale write-temp). Called on
     * clean completion so a finished sweep directory holds only the
     * final CSV.
     */
    void removeCheckpoint() const;

  private:
    std::string path_;
};

/**
 * The one-stop entry for the figure benches: load the cached sweep
 * for these options, or run it and cache it.
 *
 * Crash tolerance: completed cells are checkpointed (atomically)
 * to sweepCheckpointPath() as the sweep runs, and a rerun of the
 * same options resumes from the checkpoint instead of starting
 * over — the final CSV is byte-identical either way. Failing cells
 * (a point threw: invariant violation, damaged data structure) do
 * not stop the remaining cells; after the sweep they are reported
 * with their repro strings and the process exits nonzero, leaving
 * the checkpoint in place.
 */
SweepSummary sweepWithCache(const SweepOptions &opts);

} // namespace clearsim

#endif // CLEARSIM_HARNESS_SWEEP_CACHE_HH
