#include "harness/csv_export.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/log.hh"

namespace clearsim
{

bool
maybeExportCsv(const std::string &name, const CsvTable &table)
{
    const char *dir = std::getenv("CLEARSIM_CSV_DIR");
    if (!dir || !*dir)
        return false;

    const std::string path = std::string(dir) + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out) {
        logMessage(LogLevel::Warn, "cannot write CSV to %s",
                   path.c_str());
        return false;
    }

    auto writeRow = [&out](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << row[i];
        }
        out << '\n';
    };
    writeRow(table.header);
    for (const auto &row : table.rows)
        writeRow(row);

    out.flush();
    if (!out.good()) {
        logMessage(LogLevel::Warn, "short write to CSV %s",
                   path.c_str());
        return false;
    }

    std::fprintf(stderr, "[clearsim] wrote %s\n", path.c_str());
    return true;
}

} // namespace clearsim
