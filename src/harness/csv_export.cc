#include "harness/csv_export.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/log.hh"

namespace clearsim
{

std::string
csvQuote(const std::string &cell)
{
    if (cell.find_first_of(",\"\r\n") == std::string::npos)
        return cell;
    std::string quoted;
    quoted.reserve(cell.size() + 2);
    quoted.push_back('"');
    for (char c : cell) {
        if (c == '"')
            quoted.push_back('"');
        quoted.push_back(c);
    }
    quoted.push_back('"');
    return quoted;
}

bool
maybeExportCsv(const std::string &name, const CsvTable &table)
{
    const char *dir = std::getenv("CLEARSIM_CSV_DIR");
    if (!dir || !*dir)
        return false;

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        fatal("CLEARSIM_CSV_DIR: cannot create %s: %s", dir,
              ec.message().c_str());
    }

    const std::string path = std::string(dir) + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out)
        fatal("cannot write CSV to %s", path.c_str());

    auto writeRow = [&out](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << csvQuote(row[i]);
        }
        out << '\n';
    };
    writeRow(table.header);
    for (const auto &row : table.rows)
        writeRow(row);

    out.flush();
    if (!out.good())
        fatal("short write to CSV %s", path.c_str());

    logStatus("[clearsim] wrote %s", path.c_str());
    return true;
}

} // namespace clearsim
