#include "harness/sweep_cache.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace clearsim
{

CellSummary
CellSummary::fromCell(const CellResult &cell)
{
    CellSummary s;
    s.workload = cell.workload;
    s.config = cell.config;
    s.bestRetryLimit = cell.bestRetryLimit;
    s.cycles = cell.cycles;
    s.energy = cell.energy;
    s.discoveryShare = cell.discoveryShare;
    s.commits = cell.htm.commits;
    s.commitsByMode = cell.htm.commitsByMode;
    s.aborts = cell.htm.aborts;
    s.abortsByCategory = cell.htm.abortsByCategory;
    s.commitsRetry0 = cell.htm.commitsByRetries.count(0);
    s.commitsRetry1 = cell.htm.commitsByRetries.count(1);
    s.commitsNonFallback = cell.htm.commitsByRetries.total();
    s.commitsFallback = cell.htm.fallbackCommitRetries.total();
    return s;
}

std::uint64_t
sweepOptionsHash(const SweepOptions &opts)
{
    // FNV-1a over the option fields.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    auto mixStr = [&](const std::string &s) {
        for (char c : s)
            mix(static_cast<unsigned char>(c));
        mix(0x7f);
    };
    mix(opts.params.opsPerThread);
    mix(opts.params.threads);
    mix(opts.params.scale);
    mix(opts.params.seed);
    mix(opts.seeds);
    mix(opts.trimEachSide);
    for (unsigned r : opts.retryLimits)
        mix(r);
    for (const std::string &w : opts.workloads)
        mixStr(w);
    for (const std::string &c : opts.configs)
        mixStr(c);
    return h;
}

std::string
sweepCachePath()
{
    if (const char *v = std::getenv("CLEARSIM_CACHE"))
        return v;
    return "clearsim_sweep_cache.csv";
}

bool
loadSweepCache(const std::string &path, std::uint64_t hash,
               SweepSummary &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string header;
    if (!std::getline(in, header))
        return false;
    std::uint64_t file_hash = 0;
    if (std::sscanf(header.c_str(), "# clearsim-sweep-cache %llx",
                    reinterpret_cast<unsigned long long *>(
                        &file_hash)) != 1 ||
        file_hash != hash) {
        return false;
    }

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::stringstream ss(line);
        CellSummary s;
        std::string field;
        auto next = [&]() -> std::string {
            std::getline(ss, field, ',');
            return field;
        };
        s.workload = next();
        s.config = next();
        s.bestRetryLimit =
            static_cast<unsigned>(std::atoi(next().c_str()));
        s.cycles = std::atof(next().c_str());
        s.energy = std::atof(next().c_str());
        s.discoveryShare = std::atof(next().c_str());
        s.commits = std::strtoull(next().c_str(), nullptr, 10);
        for (auto &m : s.commitsByMode)
            m = std::strtoull(next().c_str(), nullptr, 10);
        s.aborts = std::strtoull(next().c_str(), nullptr, 10);
        for (auto &a : s.abortsByCategory)
            a = std::strtoull(next().c_str(), nullptr, 10);
        s.commitsRetry0 = std::strtoull(next().c_str(), nullptr, 10);
        s.commitsRetry1 = std::strtoull(next().c_str(), nullptr, 10);
        s.commitsNonFallback =
            std::strtoull(next().c_str(), nullptr, 10);
        s.commitsFallback =
            std::strtoull(next().c_str(), nullptr, 10);
        out[{s.workload, s.config}] = s;
    }
    return !out.empty();
}

void
saveSweepCache(const std::string &path, std::uint64_t hash,
               const SweepSummary &summary)
{
    std::ofstream out(path);
    if (!out) {
        logMessage(LogLevel::Warn,
                   "could not write sweep cache to %s", path.c_str());
        return;
    }
    out << "# clearsim-sweep-cache " << std::hex << hash << std::dec
        << "\n";
    for (const auto &[key, s] : summary) {
        out << s.workload << ',' << s.config << ','
            << s.bestRetryLimit << ',' << s.cycles << ',' << s.energy
            << ',' << s.discoveryShare << ',' << s.commits;
        for (auto m : s.commitsByMode)
            out << ',' << m;
        out << ',' << s.aborts;
        for (auto a : s.abortsByCategory)
            out << ',' << a;
        out << ',' << s.commitsRetry0 << ',' << s.commitsRetry1
            << ',' << s.commitsNonFallback << ','
            << s.commitsFallback << "\n";
    }
}

SweepSummary
sweepWithCache(const SweepOptions &opts)
{
    const std::uint64_t hash = sweepOptionsHash(opts);
    const std::string path = sweepCachePath();
    SweepSummary summary;
    if (loadSweepCache(path, hash, summary)) {
        std::fprintf(stderr,
                     "[clearsim] reusing sweep cache %s (%zu cells)\n",
                     path.c_str(), summary.size());
        return summary;
    }
    std::fprintf(stderr,
                 "[clearsim] running sweep: %zu workloads x %zu "
                 "configs x %zu retry limits x %u seeds...\n",
                 opts.workloads.size(), opts.configs.size(),
                 opts.retryLimits.size(), opts.seeds);
    const auto cells = runSweep(opts);
    for (const auto &[key, cell] : cells)
        summary[key] = CellSummary::fromCell(cell);
    saveSweepCache(path, hash, summary);
    return summary;
}

} // namespace clearsim
