#include "harness/sweep_cache.hh"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/log.hh"
#include "policy/config_registry.hh"

namespace clearsim
{

namespace
{

/**
 * The bytes a config spec contributes to the sweep identity: the
 * canonical string of the *resolved* configuration, so textually
 * different but semantically identical specs ("C+watchdog" vs
 * "C:fault.watchdog=1", reordered modifiers) hash to the same sweep.
 * An unparseable spec falls back to its raw text — validation
 * fatal()s before any simulation runs anyway.
 */
std::string
canonicalSpecBytes(const std::string &spec)
{
    SystemConfig cfg;
    std::string error;
    if (!ConfigRegistry::instance().tryMake(spec, cfg, error))
        return spec;
    return canonicalConfigString(cfg);
}

} // namespace

CellSummary
CellSummary::fromCell(const CellResult &cell)
{
    CellSummary s;
    s.workload = cell.workload;
    s.config = cell.config;
    s.bestRetryLimit = cell.bestRetryLimit;
    s.cycles = cell.cycles;
    s.energy = cell.energy;
    s.discoveryShare = cell.discoveryShare;
    s.commits = cell.htm.commits;
    s.commitsByMode = cell.htm.commitsByMode;
    s.aborts = cell.htm.aborts;
    s.abortsByCategory = cell.htm.abortsByCategory;
    s.commitsRetry0 = cell.htm.commitsByRetries.count(0);
    s.commitsRetry1 = cell.htm.commitsByRetries.count(1);
    s.commitsNonFallback = cell.htm.commitsByRetries.total();
    s.commitsFallback = cell.htm.fallbackCommitRetries.total();
    return s;
}

std::uint64_t
sweepOptionsHash(const SweepOptions &opts)
{
    // FNV-1a over the option fields. Deliberately excludes
    // opts.jobs: the worker-thread count never changes results.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    auto mixStr = [&](const std::string &s) {
        for (char c : s)
            mix(static_cast<unsigned char>(c));
        mix(0x7f);
    };
    mix(opts.params.opsPerThread);
    mix(opts.params.threads);
    mix(opts.params.scale);
    mix(opts.params.seed);
    mix(opts.seeds);
    mix(opts.trimEachSide);
    for (unsigned r : opts.retryLimits)
        mix(r);
    for (const std::string &w : opts.workloads)
        mixStr(w);
    for (const std::string &c : opts.configs)
        mixStr(canonicalSpecBytes(c));
    return h;
}

std::string
sweepCachePath()
{
    if (const char *v = std::getenv("CLEARSIM_CACHE"))
        return v;
    return "clearsim_sweep_cache.csv";
}

namespace
{

constexpr char kCacheHeaderPrefix[] = "# clearsim-sweep-cache ";

/** Data columns of one cache row (see saveSweepCache). */
constexpr std::size_t kCacheColumns =
    7 + kNumExecModes + 1 + kNumAbortCategories + 4;

std::vector<std::string>
splitFields(const std::string &line)
{
    std::vector<std::string> fields;
    std::string::size_type start = 0;
    for (;;) {
        const std::string::size_type comma = line.find(',', start);
        if (comma == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

bool
parseU64Field(const std::string &field, std::uint64_t &out)
{
    const char *begin = field.data();
    const char *end = begin + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out, 10);
    return ec == std::errc() && ptr == end;
}

bool
parseUnsignedField(const std::string &field, unsigned &out)
{
    std::uint64_t wide = 0;
    if (!parseU64Field(field, wide) ||
        wide > std::numeric_limits<unsigned>::max()) {
        return false;
    }
    out = static_cast<unsigned>(wide);
    return true;
}

bool
parseDoubleField(const std::string &field, double &out)
{
    if (field.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (errno == ERANGE || end != field.c_str() + field.size())
        return false;
    out = value;
    return true;
}

/** Parse one data row; false on any malformed field. */
bool
parseCacheRow(const std::vector<std::string> &fields,
              CellSummary &s)
{
    std::size_t i = 0;
    s.workload = fields[i++];
    s.config = fields[i++];
    if (s.workload.empty() || s.config.empty())
        return false;
    bool ok = parseUnsignedField(fields[i++], s.bestRetryLimit);
    ok = ok && parseDoubleField(fields[i++], s.cycles);
    ok = ok && parseDoubleField(fields[i++], s.energy);
    ok = ok && parseDoubleField(fields[i++], s.discoveryShare);
    ok = ok && parseU64Field(fields[i++], s.commits);
    for (auto &m : s.commitsByMode)
        ok = ok && parseU64Field(fields[i++], m);
    ok = ok && parseU64Field(fields[i++], s.aborts);
    for (auto &a : s.abortsByCategory)
        ok = ok && parseU64Field(fields[i++], a);
    ok = ok && parseU64Field(fields[i++], s.commitsRetry0);
    ok = ok && parseU64Field(fields[i++], s.commitsRetry1);
    ok = ok && parseU64Field(fields[i++], s.commitsNonFallback);
    ok = ok && parseU64Field(fields[i++], s.commitsFallback);
    return ok;
}

} // namespace

bool
parseSweepCacheRow(const std::string &line, CellSummary &out)
{
    const std::vector<std::string> fields = splitFields(line);
    return fields.size() == kCacheColumns &&
           parseCacheRow(fields, out);
}

std::string
serializeSweepCacheRow(const CellSummary &s)
{
    std::ostringstream out;
    // max_digits10 so cycles/energy round-trip bit-exactly: a
    // reloaded cache must be indistinguishable from a fresh sweep.
    out << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    out << s.workload << ',' << s.config << ','
        << s.bestRetryLimit << ',' << s.cycles << ','
        << s.energy << ',' << s.discoveryShare << ','
        << s.commits;
    for (auto m : s.commitsByMode)
        out << ',' << m;
    out << ',' << s.aborts;
    for (auto a : s.abortsByCategory)
        out << ',' << a;
    out << ',' << s.commitsRetry0 << ',' << s.commitsRetry1
        << ',' << s.commitsNonFallback << ',' << s.commitsFallback;
    return out.str();
}

std::string
serializeSweepCache(std::uint64_t hash, const SweepSummary &summary)
{
    std::ostringstream out;
    out << kCacheHeaderPrefix << std::hex << hash << std::dec
        << "\n";
    for (const auto &[key, s] : summary)
        out << serializeSweepCacheRow(s) << "\n";
    return out.str();
}

bool
parseSweepCache(const std::string &text, std::uint64_t hash,
                SweepSummary &out)
{
    out.clear();
    std::istringstream in(text);
    std::string header;
    if (!std::getline(in, header))
        return false;
    if (header.rfind(kCacheHeaderPrefix, 0) != 0)
        return false;
    unsigned long long file_hash = 0;
    const char *hash_begin =
        header.data() + sizeof(kCacheHeaderPrefix) - 1;
    const char *hash_end = header.data() + header.size();
    const auto [ptr, ec] =
        std::from_chars(hash_begin, hash_end, file_hash, 16);
    if (ec != std::errc() || ptr != hash_end || file_hash != hash)
        return false;

    std::string line;
    std::size_t line_number = 1;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#')
            continue;
        const std::vector<std::string> fields = splitFields(line);
        CellSummary s;
        if (fields.size() != kCacheColumns ||
            !parseCacheRow(fields, s)) {
            // A corrupt row means the file cannot be trusted at
            // all; discard everything so the caller re-runs the
            // sweep instead of serving zero-filled cells.
            logMessage(LogLevel::Warn,
                       "sweep cache: malformed line %zu; "
                       "ignoring cache",
                       line_number);
            out.clear();
            return false;
        }
        out[{s.workload, s.config}] = s;
    }
    return !out.empty();
}

bool
loadSweepCache(const std::string &path, std::uint64_t hash,
               SweepSummary &out)
{
    out.clear();
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parseSweepCache(buffer.str(), hash, out);
}

void
saveSweepCache(const std::string &path, std::uint64_t hash,
               const SweepSummary &summary)
{
    // Write-temp-then-rename: a crash (or SIGKILL) mid-write can
    // never leave a half-written file under the real name — readers
    // see either the previous complete cache or the new one.
    const std::string tmp = path + ".tmp";
    const std::string bytes = serializeSweepCache(hash, summary);
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out) {
            logMessage(LogLevel::Warn,
                       "could not write sweep cache to %s",
                       tmp.c_str());
            return;
        }
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out.good()) {
            logMessage(LogLevel::Warn,
                       "short write to sweep cache %s", tmp.c_str());
            out.close();
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        logMessage(LogLevel::Warn,
                   "could not move sweep cache %s into place",
                   tmp.c_str());
        std::remove(tmp.c_str());
    }
}

std::string
sweepCheckpointPath(const std::string &cache_path)
{
    return cache_path + ".ckpt";
}

SweepCacheStore::SweepCacheStore(std::string path)
    : path_(path.empty() ? sweepCachePath() : std::move(path))
{
}

bool
SweepCacheStore::lookup(const SweepOptions &opts,
                        SweepSummary &out) const
{
    if (!loadSweepCache(path_, sweepOptionsHash(opts), out))
        return false;
    // Canonical hashing lets semantically identical sweeps with
    // different spec texts share a hash, while cache rows stay
    // keyed by the text that produced them. Only serve the cache
    // when every requested cell is present under its requested key;
    // otherwise miss, and the sweep re-runs under its own spelling.
    for (const std::string &workload : opts.workloads) {
        for (const std::string &config : opts.configs) {
            if (!out.count({workload, config})) {
                out.clear();
                return false;
            }
        }
    }
    return true;
}

void
SweepCacheStore::store(const SweepOptions &opts,
                       const SweepSummary &summary) const
{
    saveSweepCache(path_, sweepOptionsHash(opts), summary);
}

bool
SweepCacheStore::loadCheckpoint(const SweepOptions &opts,
                                SweepSummary &out) const
{
    return loadSweepCache(sweepCheckpointPath(path_),
                          sweepOptionsHash(opts), out);
}

void
SweepCacheStore::saveCheckpoint(const SweepOptions &opts,
                                const SweepSummary &done) const
{
    saveSweepCache(sweepCheckpointPath(path_),
                   sweepOptionsHash(opts), done);
}

void
SweepCacheStore::removeCheckpoint() const
{
    const std::string ckpt = sweepCheckpointPath(path_);
    std::remove(ckpt.c_str());
    // A crash between write-temp and rename can leave the temp
    // behind too; a finished sweep directory holds only the CSV.
    std::remove((ckpt + ".tmp").c_str());
    std::remove((path_ + ".tmp").c_str());
}

SweepSummary
sweepWithCache(const SweepOptions &opts)
{
    const SweepCacheStore store;
    SweepSummary summary;
    if (store.lookup(opts, summary)) {
        logStatus("[clearsim] reusing sweep cache %s (%zu cells)",
                  store.path().c_str(), summary.size());
        // A checkpoint that survived past its final cache (a kill
        // in the narrow window between the cache rename and the
        // checkpoint unlink) is dead weight: clean it up so a
        // completed sweep never leaves a stale .ckpt behind.
        store.removeCheckpoint();
        return summary;
    }

    // A checkpoint (same format, same hash discipline) holds every
    // cell completed by a previous run of this exact sweep that was
    // killed before finishing. Those cells are not re-run.
    const std::string ckpt = sweepCheckpointPath(store.path());
    SweepSummary done;
    std::set<SweepKey> skip;
    if (store.loadCheckpoint(opts, done)) {
        for (const auto &[key, s] : done)
            skip.insert(key);
        logStatus("[clearsim] resuming sweep from checkpoint %s "
                  "(%zu cells already done)",
                  ckpt.c_str(), done.size());
    }

    logStatus("[clearsim] running sweep: %zu workloads x %zu "
              "configs x %zu retry limits x %u seeds...",
              opts.workloads.size(), opts.configs.size(),
              opts.retryLimits.size(), opts.seeds);
    std::vector<CellResult> failures;
    runSweep(opts, skip, [&](const CellResult &cell) {
        if (cell.failed) {
            failures.push_back(cell);
            return;
        }
        done[{cell.workload, cell.config}] =
            CellSummary::fromCell(cell);
        // Checkpoint after every completed cell, atomically: a
        // kill at any instant loses at most the in-flight cells.
        store.saveCheckpoint(opts, done);
    });

    if (!failures.empty()) {
        for (const CellResult &cell : failures) {
            logMessage(LogLevel::Warn,
                       "sweep cell FAILED: %s [%s]\n  error: %s\n"
                       "  repro: %s",
                       cell.workload.c_str(), cell.config.c_str(),
                       cell.error.c_str(), cell.repro.c_str());
        }
        fatal("%zu sweep cell(s) failed (completed cells are "
              "checkpointed in %s; re-run to resume)",
              failures.size(), ckpt.c_str());
    }

    // Only a fully successful sweep becomes the real cache; the
    // checkpoint has served its purpose.
    store.store(opts, done);
    store.removeCheckpoint();
    return done;
}

} // namespace clearsim
