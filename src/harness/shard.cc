#include "harness/shard.hh"

#include <algorithm>

#include "harness/sweep_cache.hh"
#include "harness/sweep_engine.hh"

namespace clearsim
{

std::size_t
ShardPlan::totalCells() const
{
    std::size_t total = 0;
    for (const std::vector<SweepKey> &shard : shards)
        total += shard.size();
    return total;
}

ShardPlan
planShards(const SweepOptions &opts, unsigned requested)
{
    const SweepGrid grid(opts, {});
    const std::vector<SweepKey> &cells = grid.cells();

    ShardPlan plan;
    plan.optionsHash = sweepOptionsHash(opts);
    const std::size_t wanted =
        requested == 0 ? cells.size()
                       : std::min<std::size_t>(requested,
                                               cells.size());
    plan.shardCount = static_cast<unsigned>(std::max<std::size_t>(
        1, wanted));
    plan.shards.resize(plan.shardCount);

    // Round-robin deal with a hash-derived rotation: cell i lands
    // in shard (i + hash) % count. Adjacent cells (same workload,
    // different configs) spread across shards, so a slow workload
    // does not serialize behind one worker.
    for (std::size_t i = 0; i < cells.size(); ++i)
        plan.shards[(i + plan.optionsHash) % plan.shardCount]
            .push_back(cells[i]);
    return plan;
}

} // namespace clearsim
