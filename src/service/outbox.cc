#include "service/outbox.hh"

#include "service/wire.hh"

namespace clearsim
{

Outbox::Outbox(int fd, std::size_t byteLimit)
    : fd_(fd), byteLimit_(byteLimit),
      writer_([this] { writerLoop(); })
{
}

Outbox::~Outbox()
{
    close();
}

bool
Outbox::push(const std::string &payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || dead_)
        return false;
    if (queuedBytes_ + payload.size() > byteLimit_) {
        // The client stopped reading; cut it loose instead of
        // buffering forever. The writer notices dead_ and stops.
        dead_ = true;
        wake_.notify_all();
        return false;
    }
    queuedBytes_ += payload.size();
    queue_.push_back(payload);
    wake_.notify_one();
    return true;
}

void
Outbox::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return;
        closed_ = true;
        wake_.notify_all();
    }
    if (writer_.joinable())
        writer_.join();
}

bool
Outbox::dead() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dead_;
}

void
Outbox::writerLoop()
{
    for (;;) {
        std::string frame;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return dead_ || !queue_.empty() || closed_;
            });
            if (dead_)
                return;
            if (queue_.empty()) {
                // closed_ and drained: flushing is done.
                return;
            }
            frame = std::move(queue_.front());
            queue_.pop_front();
            queuedBytes_ -= frame.size();
        }
        std::string error;
        if (!writeWireFrame(fd_, frame, error)) {
            std::lock_guard<std::mutex> lock(mutex_);
            dead_ = true;
            return;
        }
    }
}

} // namespace clearsim
