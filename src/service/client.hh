/**
 * @file
 * Client-side connection to a clearsimd daemon.
 *
 * Wraps connect + handshake + framed request/response over the
 * AF_UNIX socket so the clearsim_client tool and the service tests
 * share one implementation (and one set of protocol bytes).
 *
 * The API is deliberately synchronous: send() writes one frame,
 * receive() blocks for the next server frame. Streaming consumers
 * loop on receive() until a terminal message ("result", "failed",
 * "cancelled", "job-aborted" or "error") arrives —
 * waitForOutcome() packages that loop.
 */

#ifndef CLEARSIM_SERVICE_CLIENT_HH
#define CLEARSIM_SERVICE_CLIENT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "service/wire.hh"

namespace clearsim
{

class ClientConnection
{
  public:
    ClientConnection() = default;

    /** Disconnects. */
    ~ClientConnection();

    ClientConnection(const ClientConnection &) = delete;
    ClientConnection &operator=(const ClientConnection &) = delete;

    /**
     * Connect to @p socket_path and run the version handshake.
     * @retval false with @p error set (no connection, no common
     *         version, protocol violation)
     */
    bool connect(const std::string &socket_path, std::string &error);

    /**
     * connect() with up to @p attempts tries, sleeping between
     * them with jittered exponential backoff (capped well under a
     * second, so a daemon that appears late is found quickly and a
     * thundering herd of workers does not reconnect in lockstep).
     * Retries cover a missing socket and a refused or dropped
     * connection alike; a handshake *rejection* (version mismatch)
     * still retries — the daemon may be mid-restart with an old
     * binary's socket lingering. @p attempts <= 1 means a single
     * try, identical to connect(). A non-null @p stop abandons the
     * retry loop between attempts (error "stopped"), so a worker
     * told to shut down mid-backoff exits promptly instead of
     * sleeping out its whole attempt budget.
     */
    bool connectWithRetry(const std::string &socket_path,
                          unsigned attempts, std::string &error,
                          const std::atomic<bool> *stop = nullptr);

    bool connected() const { return fd_ >= 0; }

    /** Negotiated wire version (0 before a successful connect). */
    unsigned version() const { return version_; }

    /** Send one serialized message payload as a frame. */
    bool send(const std::string &payload, std::string &error);

    /**
     * Block for the next server message.
     * @retval false on close or protocol violation (@p error set;
     *         empty on a clean close)
     */
    bool receive(WireMessage &out, std::string &error);

    /**
     * Drain messages until a terminal one arrives, forwarding each
     * intermediate message ("ack", "progress", "cell") to
     * @p on_event when non-null. The terminal message is returned
     * in @p out.
     * @retval false on close/violation before a terminal message
     */
    bool waitForOutcome(
        WireMessage &out, std::string &error,
        const std::function<void(const WireMessage &)> &on_event =
            nullptr);

    void disconnect();

  private:
    int fd_ = -1;
    unsigned version_ = 0;
};

} // namespace clearsim

#endif // CLEARSIM_SERVICE_CLIENT_HH
