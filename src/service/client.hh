/**
 * @file
 * Client-side connection to a clearsimd daemon.
 *
 * Wraps connect + handshake + framed request/response over the
 * AF_UNIX socket so the clearsim_client tool and the service tests
 * share one implementation (and one set of protocol bytes).
 *
 * The API is deliberately synchronous: send() writes one frame,
 * receive() blocks for the next server frame. Streaming consumers
 * loop on receive() until a terminal message ("result", "failed",
 * "cancelled" or "error") arrives — waitForOutcome() packages that
 * loop.
 */

#ifndef CLEARSIM_SERVICE_CLIENT_HH
#define CLEARSIM_SERVICE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "service/wire.hh"

namespace clearsim
{

class ClientConnection
{
  public:
    ClientConnection() = default;

    /** Disconnects. */
    ~ClientConnection();

    ClientConnection(const ClientConnection &) = delete;
    ClientConnection &operator=(const ClientConnection &) = delete;

    /**
     * Connect to @p socket_path and run the version handshake.
     * @retval false with @p error set (no connection, no common
     *         version, protocol violation)
     */
    bool connect(const std::string &socket_path, std::string &error);

    bool connected() const { return fd_ >= 0; }

    /** Send one serialized message payload as a frame. */
    bool send(const std::string &payload, std::string &error);

    /**
     * Block for the next server message.
     * @retval false on close or protocol violation (@p error set;
     *         empty on a clean close)
     */
    bool receive(WireMessage &out, std::string &error);

    /**
     * Drain messages until a terminal one arrives, forwarding each
     * intermediate message ("ack", "progress", "cell") to
     * @p on_event when non-null. The terminal message is returned
     * in @p out.
     * @retval false on close/violation before a terminal message
     */
    bool waitForOutcome(
        WireMessage &out, std::string &error,
        const std::function<void(const WireMessage &)> &on_event =
            nullptr);

    void disconnect();

  private:
    int fd_ = -1;
};

} // namespace clearsim

#endif // CLEARSIM_SERVICE_CLIENT_HH
