/**
 * @file
 * Persistent dead-letter queue for failed sweep points.
 *
 * When a point of a daemon-run sweep throws (invariant violation,
 * watchdog livelock verdict, damaged data structure), the cell is
 * reported failed and the job finishes — but the failure itself
 * must not evaporate with the job. Each failed cell is appended
 * here with the exact repro string that replays the failing point
 * bit-for-bit, so an operator can come back hours later, list the
 * queue and replay every entry without the original request.
 *
 * Format: one JSON object per line (JSONL) —
 *   {"id":...,"workload":...,"config":...,"error":...,"repro":...}
 * Appends rewrite the file atomically (temp + rename), the same
 * crash-safety discipline as the sweep cache: a kill mid-append
 * never leaves a torn queue. A malformed line poisons nothing: it
 * is skipped with a warning on load.
 *
 * replay() re-executes an entry from its repro string alone and
 * reports whether the failure reproduced with the same error — the
 * payload of the client's dlq-replay request.
 */

#ifndef CLEARSIM_SERVICE_DEAD_LETTER_HH
#define CLEARSIM_SERVICE_DEAD_LETTER_HH

#include <string>
#include <vector>

namespace clearsim
{

/** One dead-lettered point. */
struct DeadLetter
{
    /** Canonical id of the job the point belonged to. */
    std::string jobId;
    std::string workload;
    std::string config;
    /** The exception message of the original failure. */
    std::string error;
    /** Repro string replaying the failing point bit-exactly. */
    std::string repro;
};

/** Outcome of replaying one entry. */
struct ReplayOutcome
{
    /** The replay failed again (any error): the entry is live. */
    bool reproduced = false;
    /** The replay's error matches the recorded one exactly. */
    bool sameError = false;
    /** What the replay produced ("" when it succeeded). */
    std::string error;
};

class DeadLetterQueue
{
  public:
    /** Bind to @p path; the file need not exist yet. */
    explicit DeadLetterQueue(std::string path);

    const std::string &path() const { return path_; }

    /** Entries currently on disk (malformed lines skipped). */
    std::vector<DeadLetter> load() const;

    /** Append one entry (atomic rewrite). */
    void append(const DeadLetter &entry) const;

    /** Drop every entry (atomic; the file becomes empty). */
    void clear() const;

    /** Serialize @p entries as the clearsim-dlq-v1 JSON document. */
    static std::string listJson(const std::vector<DeadLetter> &entries);

    /**
     * Re-run @p entry from its repro string. Deterministic: the
     * same entry always yields the same outcome.
     */
    static ReplayOutcome replay(const DeadLetter &entry);

    /** Serialize replay results as clearsim-dlq-replay-v1. */
    static std::string
    replayJson(const std::vector<DeadLetter> &entries,
               const std::vector<ReplayOutcome> &outcomes);

  private:
    std::string path_;
};

} // namespace clearsim

#endif // CLEARSIM_SERVICE_DEAD_LETTER_HH
