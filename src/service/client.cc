#include "service/client.hh"

#include <chrono>
#include <csignal>
#include <cstring>
#include <random>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace clearsim
{

ClientConnection::~ClientConnection()
{
    disconnect();
}

bool
ClientConnection::connect(const std::string &socket_path,
                          std::string &error)
{
    std::signal(SIGPIPE, SIG_IGN);
    disconnect();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path) {
        error = "socket path too long";
        return false;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = std::string("socket(): ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        error = "connect(" + socket_path +
                "): " + std::strerror(errno);
        disconnect();
        return false;
    }

    if (!send(wireHello(), error))
        return false;
    WireMessage reply;
    if (!receive(reply, error)) {
        if (error.empty())
            error = "server closed during handshake";
        return false;
    }
    if (reply.type == "error") {
        error = "server rejected handshake: " +
                reply.text("message");
        disconnect();
        return false;
    }
    if (reply.type != "hello-ok") {
        error = "unexpected handshake reply '" + reply.type + "'";
        disconnect();
        return false;
    }
    const std::string version = reply.text("version");
    if (version == kWireSchemaV2) {
        version_ = 2;
    } else if (version == kWireSchema) {
        version_ = 1;
    } else {
        error = "server negotiated unknown version '" + version +
                "'";
        disconnect();
        return false;
    }
    return true;
}

bool
ClientConnection::connectWithRetry(const std::string &socket_path,
                                   unsigned attempts,
                                   std::string &error,
                                   const std::atomic<bool> *stop)
{
    // Seed per process, not per call: every retry of every
    // connection in this process walks its own jitter sequence.
    static std::mt19937 rng([] {
        std::random_device rd;
        return rd() ^ (static_cast<unsigned>(::getpid()) << 16);
    }());

    if (attempts == 0)
        attempts = 1;
    std::uint64_t backoff_ms = 25;
    for (unsigned attempt = 1;; ++attempt) {
        if (connect(socket_path, error))
            return true;
        if (attempt >= attempts)
            return false;
        if (stop != nullptr && stop->load()) {
            error = "stopped";
            return false;
        }
        // Full jitter: sleep a uniform slice of the current window
        // so N workers retrying together spread out immediately.
        std::uniform_int_distribution<std::uint64_t> jitter(
            backoff_ms / 2, backoff_ms);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(jitter(rng)));
        backoff_ms = std::min<std::uint64_t>(backoff_ms * 2, 800);
        if (stop != nullptr && stop->load()) {
            error = "stopped";
            return false;
        }
    }
}

bool
ClientConnection::send(const std::string &payload,
                       std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    if (!writeWireFrame(fd_, payload, error)) {
        disconnect();
        return false;
    }
    return true;
}

bool
ClientConnection::receive(WireMessage &out, std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    std::string payload;
    if (!readWireFrame(fd_, payload, error)) {
        disconnect();
        return false;
    }
    if (!parseWireMessage(payload, out, error)) {
        disconnect();
        return false;
    }
    return true;
}

bool
ClientConnection::waitForOutcome(
    WireMessage &out, std::string &error,
    const std::function<void(const WireMessage &)> &on_event)
{
    for (;;) {
        if (!receive(out, error))
            return false;
        if (out.type == "result" || out.type == "failed" ||
            out.type == "cancelled" || out.type == "error" ||
            out.type == "job-aborted")
            return true;
        if (on_event)
            on_event(out);
    }
}

void
ClientConnection::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    version_ = 0;
}

} // namespace clearsim
