#include "service/daemon.hh"

#include <algorithm>
#include <csignal>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"

namespace clearsim
{

namespace
{

/** Message types a client may send after the handshake. */
bool
isClientRequest(const std::string &type)
{
    return type == "run" || type == "sweep" || type == "analyze" ||
           type == "audit" || type == "status" ||
           type == "cancel" || type == "catalogue" ||
           type == "dlq-list" || type == "dlq-replay" ||
           type == "dlq-clear" || type == "fabric-sweep" ||
           type == "fabric-status" || type == "lease" ||
           type == "lease-renew" || type == "shard-result" ||
           type == "worker-bye";
}

/**
 * A write to a vanished peer must come back as an error from
 * write(), not a process-killing SIGPIPE.
 */
void
ignoreSigpipeOnce()
{
    static const bool done = [] {
        std::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)done;
}

int
bindUnixSocket(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
        fatal("clearsimd: socket path '%s' is too long",
              path.c_str());
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("clearsimd: socket(): %s", std::strerror(errno));
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0)
        fatal("clearsimd: bind(%s): %s", path.c_str(),
              std::strerror(errno));
    if (::listen(fd, 16) != 0)
        fatal("clearsimd: listen(%s): %s", path.c_str(),
              std::strerror(errno));
    return fd;
}

} // namespace

Daemon::Daemon(const Options &options) : options_(options)
{
    ignoreSigpipeOnce();
    listenFd_ = bindUnixSocket(options_.socketPath);
    scheduler_ = std::make_unique<Scheduler>(
        options_.scheduler,
        [this](std::uint64_t connection,
               const std::string &payload) {
            return sendFrame(connection, payload);
        });
    schedulerThread_ = std::thread([this] { scheduler_->run(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

Daemon::~Daemon()
{
    stop();
}

void
Daemon::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // The listener was closed by stop().
            return;
        }
        if (stopping_.load()) {
            ::close(fd);
            return;
        }
        auto connection = std::make_shared<Connection>();
        connection->fd = fd;
        connection->outbox = std::make_unique<Outbox>(fd);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            connection->id = nextConnectionId_++;
            connections_[connection->id] = connection;
        }
        connection->reader = std::thread(
            [this, connection] { readerLoop(connection); });
    }
}

void
Daemon::readerLoop(std::shared_ptr<Connection> connection)
{
    Mailbox &mailbox = scheduler_->mailbox();
    std::string payload, error;
    bool hello_done = false;

    while (readWireFrame(connection->fd, payload, error)) {
        WireMessage message;
        if (!parseWireMessage(payload, message, error)) {
            connection->outbox->push(wireError("", error));
            error.clear();
            break;
        }
        if (!hello_done) {
            if (message.type != "hello") {
                connection->outbox->push(
                    wireError("", "expected 'hello' before any "
                                  "other message"));
                break;
            }
            // Pick the highest version both sides speak; an old
            // client offering only v1 still gets served, it just
            // cannot reach the fabric types.
            unsigned negotiated = 0;
            for (const std::string &version :
                 message.textList("versions")) {
                if (version == kWireSchema)
                    negotiated = std::max(negotiated, 1u);
                else if (version == kWireSchemaV2)
                    negotiated = std::max(negotiated, 2u);
            }
            if (negotiated == 0) {
                connection->outbox->push(wireError(
                    "", std::string("no common protocol version "
                                    "(server speaks ") +
                            kWireSchema + " and " + kWireSchemaV2 +
                            ")"));
                break;
            }
            connection->version = negotiated;
            connection->outbox->push(
                wireHelloOk(wireSchemaName(negotiated)));
            hello_done = true;
            continue;
        }
        if (message.version > connection->version) {
            connection->outbox->push(wireError(
                message.text("tag"),
                std::string("message uses ") +
                    wireSchemaName(message.version) +
                    " but this connection negotiated " +
                    wireSchemaName(connection->version)));
            break;
        }
        if (!isClientRequest(message.type)) {
            connection->outbox->push(
                wireError(message.text("tag"),
                          "message type '" + message.type +
                              "' is not a client request"));
            break;
        }
        Mail mail;
        mail.kind = MailKind::Request;
        mail.connection = connection->id;
        mail.message = std::move(message);
        if (!mailbox.pushClient(std::move(mail)))
            break;
    }
    // A framing violation (truncated/zero/oversized frame) is
    // reported before the connection drops; a clean EOF is not.
    if (!error.empty())
        connection->outbox->push(wireError("", error));

    // Unsubscribe, flush what the scheduler already sent, then
    // tear the connection down. The thread handle is parked for
    // stop() to join — a thread cannot join itself.
    Mail gone;
    gone.kind = MailKind::Disconnect;
    gone.connection = connection->id;
    mailbox.pushInternal(std::move(gone));
    connection->outbox->close();
    ::shutdown(connection->fd, SHUT_RDWR);
    ::close(connection->fd);
    connection->fd = -1;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        zombies_.push_back(std::move(connection->reader));
        connections_.erase(connection->id);
    }
    stopped_.notify_all();
}

bool
Daemon::sendFrame(std::uint64_t connection,
                  const std::string &payload)
{
    std::shared_ptr<Connection> target;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = connections_.find(connection);
        if (it == connections_.end())
            return false;
        target = it->second;
    }
    if (target->outbox->push(payload))
        return true;
    if (target->outbox->dead() && target->fd >= 0) {
        // Slow consumer or vanished peer: unblock its reader so
        // the connection reaps itself.
        ::shutdown(target->fd, SHUT_RDWR);
    }
    return false;
}

void
Daemon::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    stopped_.wait(lock, [this] { return stopping_.load(); });
}

void
Daemon::stop()
{
    if (stopping_.exchange(true))
        return;

    // Stop accepting: closing the listener pops acceptLoop out of
    // accept().
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    if (acceptThread_.joinable())
        acceptThread_.join();

    // Stop the scheduler FIRST: its shutdown epilogue owes every
    // subscriber of an unfinished job a terminal "job-aborted"
    // frame, and those frames land in the per-connection outboxes.
    scheduler_->stop();
    if (schedulerThread_.joinable())
        schedulerThread_.join();

    // Now kick every live connection — read side only. The reader
    // pops out of read() with EOF and runs its normal teardown,
    // which flushes the outbox (job-aborted included) while the
    // write side of the socket is still open. A SHUT_RDWR here
    // would race the flush and truncate the goodbye mid-stream.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[id, connection] : connections_)
            if (connection->fd >= 0)
                ::shutdown(connection->fd, SHUT_RD);
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopped_.wait(lock, [this] { return connections_.empty(); });
        for (std::thread &zombie : zombies_)
            if (zombie.joinable())
                zombie.join();
        zombies_.clear();
    }

    ::unlink(options_.socketPath.c_str());
    stopped_.notify_all();
}

} // namespace clearsim
