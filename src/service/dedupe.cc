#include "service/dedupe.hh"

#include <cinttypes>
#include <cstdio>

#include "fault/fault_repro.hh"

namespace clearsim
{

namespace
{

/** The shared run/analyze canonical form, built on repro strings. */
std::string
pointJobId(const char *kind, const std::string &config,
           const std::string &workload, unsigned retries,
           const WorkloadParams &params)
{
    ReproSpec spec;
    spec.workload = workload;
    // Exactly how the sweep engine names a point's config: the
    // retry limit is one more override, so "C" at retries=4 and
    // "C:maxRetries=4" are the same job.
    spec.config = config + ":maxRetries=" + std::to_string(retries);
    spec.threads = params.threads;
    spec.ops = params.opsPerThread;
    spec.scale = params.scale;
    spec.seed = params.seed;
    return std::string(kind) + ":" + makeReproString(spec);
}

} // namespace

std::string
runJobId(const std::string &config, const std::string &workload,
         unsigned retries, const WorkloadParams &params)
{
    return pointJobId("run", config, workload, retries, params);
}

std::string
analyzeJobId(const std::string &config, const std::string &workload,
             unsigned retries, const WorkloadParams &params)
{
    return pointJobId("analyze", config, workload, retries, params);
}

std::string
sweepJobId(const SweepOptions &opts)
{
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016" PRIx64,
                  sweepOptionsHash(opts));
    return std::string("sweep{") + hex + "}";
}

const char *
dedupeStateName(DedupeSource source)
{
    switch (source) {
    case DedupeSource::None:
        return "queued";
    case DedupeSource::InFlight:
        return "dedup-inflight";
    case DedupeSource::Completed:
        return "dedup-cached";
    case DedupeSource::DiskCache:
        return "dedup-disk";
    }
    return "queued";
}

DedupeIndex::DedupeIndex(SweepCacheStore store)
    : store_(std::move(store))
{
}

void
DedupeIndex::markInFlight(const std::string &id)
{
    inFlight_[id] = true;
}

void
DedupeIndex::markCompleted(const std::string &id,
                           const std::string &format,
                           const std::string &payload)
{
    inFlight_.erase(id);
    completed_[id] = {format, payload};
}

void
DedupeIndex::forget(const std::string &id)
{
    inFlight_.erase(id);
    completed_.erase(id);
}

DedupeSource
DedupeIndex::classify(const std::string &id,
                      const SweepOptions *sweep_opts,
                      std::string &format,
                      std::string &payload) const
{
    if (inFlight_.count(id))
        return DedupeSource::InFlight;
    const auto done = completed_.find(id);
    if (done != completed_.end()) {
        format = done->second.format;
        payload = done->second.payload;
        return DedupeSource::Completed;
    }
    if (sweep_opts) {
        SweepSummary summary;
        if (store_.lookup(*sweep_opts, summary)) {
            format = "sweep-cache-csv";
            payload = serializeSweepCache(sweepOptionsHash(*sweep_opts),
                                          summary);
            return DedupeSource::DiskCache;
        }
    }
    return DedupeSource::None;
}

} // namespace clearsim
