#include "service/dedupe.hh"

#include <cinttypes>
#include <cstdio>

#include "fault/fault_repro.hh"
#include "policy/config_registry.hh"

namespace clearsim
{

namespace
{

/** FNV-1a, the same function sweepOptionsHash builds on. */
std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Canonical identity of a point's configuration: the hash of the
 * *resolved* config, not the spec text. "C+watchdog" and
 * "C:fault.watchdog=1" — or any modifier reordering — resolve to
 * the same SystemConfig, so they dedupe to one execution. An
 * unparseable spec falls back to its raw text (the scheduler
 * rejects such jobs before they are ever enqueued, so the fallback
 * only keeps id construction total).
 */
std::string
canonicalConfigId(const std::string &spec)
{
    SystemConfig cfg;
    std::string error;
    if (!ConfigRegistry::instance().tryMake(spec, cfg, error))
        return spec;
    char hex[24];
    std::snprintf(hex, sizeof hex, "cfg-%016" PRIx64,
                  fnv1a(canonicalConfigString(cfg)));
    return hex;
}

/** The shared run/analyze canonical form, built on repro strings. */
std::string
pointJobId(const char *kind, const std::string &config,
           const std::string &workload, unsigned retries,
           const WorkloadParams &params)
{
    ReproSpec spec;
    spec.workload = workload;
    // The retry limit is folded in exactly as the sweep engine
    // names its points ("C" at retries=4 == "C:maxRetries=4"), then
    // the composed spec is canonicalized through the registry.
    spec.config =
        canonicalConfigId(specWithRetryLimit(config, retries));
    spec.threads = params.threads;
    spec.ops = params.opsPerThread;
    spec.scale = params.scale;
    spec.seed = params.seed;
    return std::string(kind) + ":" + makeReproString(spec);
}

} // namespace

std::string
runJobId(const std::string &config, const std::string &workload,
         unsigned retries, const WorkloadParams &params)
{
    return pointJobId("run", config, workload, retries, params);
}

std::string
analyzeJobId(const std::string &config, const std::string &workload,
             unsigned retries, const WorkloadParams &params)
{
    return pointJobId("analyze", config, workload, retries, params);
}

std::string
sweepJobId(const SweepOptions &opts)
{
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016" PRIx64,
                  sweepOptionsHash(opts));
    return std::string("sweep{") + hex + "}";
}

std::string
auditJobId(const AuditOptions &opts)
{
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016" PRIx64,
                  auditOptionsHash(opts));
    return std::string("audit{") + hex + "}";
}

const char *
dedupeStateName(DedupeSource source)
{
    switch (source) {
    case DedupeSource::None:
        return "queued";
    case DedupeSource::InFlight:
        return "dedup-inflight";
    case DedupeSource::Completed:
        return "dedup-cached";
    case DedupeSource::DiskCache:
        return "dedup-disk";
    }
    return "queued";
}

DedupeIndex::DedupeIndex(SweepCacheStore store)
    : store_(std::move(store))
{
}

void
DedupeIndex::markInFlight(const std::string &id)
{
    inFlight_[id] = true;
}

void
DedupeIndex::markCompleted(const std::string &id,
                           const std::string &format,
                           const std::string &payload)
{
    inFlight_.erase(id);
    completed_[id] = {format, payload};
}

void
DedupeIndex::forget(const std::string &id)
{
    inFlight_.erase(id);
    completed_.erase(id);
}

DedupeSource
DedupeIndex::classify(const std::string &id,
                      const SweepOptions *sweep_opts,
                      std::string &format,
                      std::string &payload) const
{
    if (inFlight_.count(id))
        return DedupeSource::InFlight;
    const auto done = completed_.find(id);
    if (done != completed_.end()) {
        format = done->second.format;
        payload = done->second.payload;
        return DedupeSource::Completed;
    }
    if (sweep_opts) {
        SweepSummary summary;
        if (store_.lookup(*sweep_opts, summary)) {
            format = "sweep-cache-csv";
            payload = serializeSweepCache(sweepOptionsHash(*sweep_opts),
                                          summary);
            return DedupeSource::DiskCache;
        }
    }
    return DedupeSource::None;
}

} // namespace clearsim
