#include "service/wire.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace clearsim
{

namespace
{

/** Read exactly @p len bytes; false on EOF/error with errno kept. */
bool
readAll(int fd, void *buf, std::size_t len, std::size_t &got)
{
    char *out = static_cast<char *>(buf);
    got = 0;
    while (got < len) {
        const ssize_t n = ::read(fd, out + got, len - got);
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeAll(int fd, const void *buf, std::size_t len)
{
    const char *in = static_cast<const char *>(buf);
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::write(fd, in + done, len - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Allowed fields per message type. The protocol fails closed: a
 * field not listed here is a hard error even if the rest of the
 * message is perfectly valid — additions require a version bump,
 * never silent tolerance. minVersion is the protocol version that
 * introduced the type: sending it under an older schema string is
 * rejected like an unknown type would be.
 */
struct MessageSchema
{
    const char *type;
    unsigned minVersion;
    std::vector<const char *> fields;
};

const std::vector<MessageSchema> &
messageSchemas()
{
    static const std::vector<MessageSchema> schemas = {
        // Client -> server.
        {"hello", 1, {"versions"}},
        {"run",
         1,
         {"tag", "config", "workload", "retries", "threads", "ops",
          "scale", "seed"}},
        {"sweep",
         1,
         {"tag", "configs", "workloads", "retries", "seeds", "trim",
          "ops", "threads", "scale", "jobs"}},
        {"analyze",
         1,
         {"tag", "config", "workload", "retries", "threads", "ops",
          "scale", "seed"}},
        {"audit",
         1,
         {"tag", "configs", "workloads", "retries", "seeds", "ops",
          "threads", "scale", "seed", "jobs"}},
        {"status", 1, {"tag", "id"}},
        {"cancel", 1, {"tag", "id"}},
        {"catalogue", 1, {"tag"}},
        {"dlq-list", 1, {"tag"}},
        {"dlq-replay", 1, {"tag"}},
        {"dlq-clear", 1, {"tag"}},
        // Server -> client.
        {"hello-ok", 1, {"version"}},
        {"ack", 1, {"tag", "id", "state"}},
        {"progress", 1, {"id", "done", "total"}},
        {"cell", 1, {"id", "row"}},
        {"result", 1, {"id", "format", "payload"}},
        {"failed", 1, {"id", "error", "repro"}},
        {"cancelled", 1, {"id"}},
        {"error", 1, {"tag", "message"}},
        // v1 retrofit: the terminal frame a shutting-down daemon
        // owes subscribers of unfinished jobs.
        {"job-aborted", 1, {"id", "message"}},
        // v2: the sweep fabric. Client -> coordinator.
        {"fabric-sweep",
         2,
         {"tag", "configs", "workloads", "retries", "seeds", "trim",
          "ops", "threads", "scale", "jobs", "shards"}},
        {"fabric-status", 2, {"tag"}},
        // Worker -> coordinator.
        {"lease", 2, {"tag", "worker"}},
        {"lease-renew", 2, {"tag", "worker", "id", "shard"}},
        {"shard-result",
         2,
         {"tag", "worker", "id", "shard", "rows", "fail-workloads",
          "fail-configs", "fail-errors", "fail-repros"}},
        {"worker-bye", 2, {"tag", "worker"}},
        // Coordinator -> worker.
        {"lease-grant",
         2,
         {"id", "shard", "shards", "ttl", "configs", "workloads",
          "retries", "seeds", "trim", "ops", "threads", "scale",
          "seed", "jobs", "skip-workloads", "skip-configs"}},
        {"lease-idle", 2, {"retry-ms"}},
    };
    return schemas;
}

} // namespace

bool
readWireFrame(int fd, std::string &payload, std::string &error)
{
    error.clear();
    unsigned char header[4];
    std::size_t got = 0;
    if (!readAll(fd, header, sizeof header, got)) {
        // EOF on a frame boundary is a clean close, not an error.
        if (got != 0)
            error = "truncated frame header";
        return false;
    }
    const std::uint32_t len = (std::uint32_t(header[0]) << 24) |
                              (std::uint32_t(header[1]) << 16) |
                              (std::uint32_t(header[2]) << 8) |
                              std::uint32_t(header[3]);
    if (len == 0) {
        error = "zero-length frame";
        return false;
    }
    if (len > kWireMaxFrame) {
        error = "frame of " + std::to_string(len) +
                " bytes exceeds the " +
                std::to_string(kWireMaxFrame) + "-byte limit";
        return false;
    }
    payload.resize(len);
    if (!readAll(fd, payload.data(), len, got)) {
        error = "truncated frame payload (" + std::to_string(got) +
                " of " + std::to_string(len) + " bytes)";
        return false;
    }
    return true;
}

bool
writeWireFrame(int fd, const std::string &payload, std::string &error)
{
    error.clear();
    if (payload.empty() || payload.size() > kWireMaxFrame) {
        error = "refusing to send a frame of " +
                std::to_string(payload.size()) + " bytes";
        return false;
    }
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    const unsigned char header[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    if (!writeAll(fd, header, sizeof header) ||
        !writeAll(fd, payload.data(), payload.size())) {
        error = std::string("write failed: ") + std::strerror(errno);
        return false;
    }
    return true;
}

std::string
WireMessage::text(const char *key) const
{
    const JsonValue *v = body.find(key);
    return v && v->type == JsonValue::Type::String ? v->text
                                                   : std::string();
}

std::uint64_t
WireMessage::number(const char *key, std::uint64_t fallback) const
{
    const JsonValue *v = body.find(key);
    return v && v->isNumber() ? v->asUint() : fallback;
}

std::vector<std::string>
WireMessage::textList(const char *key) const
{
    std::vector<std::string> out;
    const JsonValue *v = body.find(key);
    if (v && v->type == JsonValue::Type::Array) {
        for (const JsonValue &item : v->items)
            if (item.type == JsonValue::Type::String)
                out.push_back(item.text);
    }
    return out;
}

std::vector<std::uint64_t>
WireMessage::numberList(const char *key) const
{
    std::vector<std::uint64_t> out;
    const JsonValue *v = body.find(key);
    if (v && v->type == JsonValue::Type::Array) {
        for (const JsonValue &item : v->items)
            if (item.isNumber())
                out.push_back(item.asUint());
    }
    return out;
}

const char *
wireSchemaName(unsigned version)
{
    return version >= 2 ? kWireSchemaV2 : kWireSchema;
}

bool
parseWireMessage(const std::string &payload, WireMessage &out,
                 std::string &error)
{
    if (!parseJson(payload, out.body, error)) {
        error = "malformed frame: " + error;
        return false;
    }
    if (out.body.type != JsonValue::Type::Object) {
        error = "frame is not a JSON object";
        return false;
    }
    const JsonValue *schema = out.body.find("schema");
    if (!schema || schema->type != JsonValue::Type::String) {
        error = "frame has no schema field";
        return false;
    }
    if (schema->text == kWireSchema) {
        out.version = 1;
    } else if (schema->text == kWireSchemaV2) {
        out.version = 2;
    } else {
        error = "unsupported schema '" + schema->text +
                "' (this server speaks " + kWireSchema + " and " +
                kWireSchemaV2 + ")";
        return false;
    }
    const JsonValue *type = out.body.find("type");
    if (!type || type->type != JsonValue::Type::String) {
        error = "frame has no type field";
        return false;
    }
    const MessageSchema *match = nullptr;
    for (const MessageSchema &candidate : messageSchemas()) {
        if (type->text == candidate.type) {
            match = &candidate;
            break;
        }
    }
    if (!match) {
        error = "unknown message type '" + type->text + "'";
        return false;
    }
    if (out.version < match->minVersion) {
        error = "message type '" + type->text + "' requires " +
                wireSchemaName(match->minVersion);
        return false;
    }
    for (const auto &[key, value] : out.body.members) {
        if (key == "schema" || key == "type")
            continue;
        bool allowed = false;
        for (const char *field : match->fields) {
            if (key == field) {
                allowed = true;
                break;
            }
        }
        if (!allowed) {
            error = "message '" + type->text +
                    "' has unknown field '" + key + "'";
            return false;
        }
    }
    out.type = type->text;
    return true;
}

JsonWriter
beginWireMessage(std::string &out, const char *type,
                 unsigned version)
{
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value(wireSchemaName(version));
    w.key("type");
    w.value(type);
    return w;
}

namespace
{

/** Start a v1 message: {"schema":...,"type":... (object open). */
JsonWriter
beginMessage(std::string &out, const char *type)
{
    return beginWireMessage(out, type, 1);
}

} // namespace

std::string
wireHello()
{
    std::string out;
    JsonWriter w = beginMessage(out, "hello");
    w.key("versions");
    w.beginArray();
    w.value(kWireSchema);
    w.value(kWireSchemaV2);
    w.endArray();
    w.endObject();
    return out;
}

std::string
wireHelloOk(const std::string &version)
{
    std::string out;
    JsonWriter w = beginMessage(out, "hello-ok");
    w.key("version");
    w.value(version);
    w.endObject();
    return out;
}

std::string
wireAck(const std::string &tag, const std::string &id,
        const std::string &state)
{
    std::string out;
    JsonWriter w = beginMessage(out, "ack");
    if (!tag.empty()) {
        w.key("tag");
        w.value(tag);
    }
    w.key("id");
    w.value(id);
    w.key("state");
    w.value(state);
    w.endObject();
    return out;
}

std::string
wireProgress(const std::string &id, std::uint64_t done,
             std::uint64_t total)
{
    std::string out;
    JsonWriter w = beginMessage(out, "progress");
    w.key("id");
    w.value(id);
    w.key("done");
    w.value(done);
    w.key("total");
    w.value(total);
    w.endObject();
    return out;
}

std::string
wireCell(const std::string &id, const std::string &row)
{
    std::string out;
    JsonWriter w = beginMessage(out, "cell");
    w.key("id");
    w.value(id);
    w.key("row");
    w.value(row);
    w.endObject();
    return out;
}

std::string
wireResult(const std::string &id, const std::string &format,
           const std::string &payload)
{
    std::string out;
    JsonWriter w = beginMessage(out, "result");
    w.key("id");
    w.value(id);
    w.key("format");
    w.value(format);
    w.key("payload");
    w.value(payload);
    w.endObject();
    return out;
}

std::string
wireFailed(const std::string &id, const std::string &error,
           const std::string &repro)
{
    std::string out;
    JsonWriter w = beginMessage(out, "failed");
    w.key("id");
    w.value(id);
    w.key("error");
    w.value(error);
    if (!repro.empty()) {
        w.key("repro");
        w.value(repro);
    }
    w.endObject();
    return out;
}

std::string
wireCancelled(const std::string &id)
{
    std::string out;
    JsonWriter w = beginMessage(out, "cancelled");
    w.key("id");
    w.value(id);
    w.endObject();
    return out;
}

std::string
wireError(const std::string &tag, const std::string &message)
{
    std::string out;
    JsonWriter w = beginMessage(out, "error");
    if (!tag.empty()) {
        w.key("tag");
        w.value(tag);
    }
    w.key("message");
    w.value(message);
    w.endObject();
    return out;
}

std::string
wireJobAborted(const std::string &id, const std::string &message)
{
    std::string out;
    JsonWriter w = beginMessage(out, "job-aborted");
    w.key("id");
    w.value(id);
    w.key("message");
    w.value(message);
    w.endObject();
    return out;
}

std::string
wireLease(const std::string &tag, const std::string &worker)
{
    std::string out;
    JsonWriter w = beginWireMessage(out, "lease", 2);
    if (!tag.empty()) {
        w.key("tag");
        w.value(tag);
    }
    w.key("worker");
    w.value(worker);
    w.endObject();
    return out;
}

std::string
wireLeaseIdle(std::uint64_t retry_ms)
{
    std::string out;
    JsonWriter w = beginWireMessage(out, "lease-idle", 2);
    w.key("retry-ms");
    w.value(retry_ms);
    w.endObject();
    return out;
}

std::string
wireLeaseRenew(const std::string &worker, const std::string &id,
               std::uint64_t shard)
{
    std::string out;
    JsonWriter w = beginWireMessage(out, "lease-renew", 2);
    w.key("worker");
    w.value(worker);
    w.key("id");
    w.value(id);
    w.key("shard");
    w.value(shard);
    w.endObject();
    return out;
}

std::string
wireWorkerBye(const std::string &tag, const std::string &worker)
{
    std::string out;
    JsonWriter w = beginWireMessage(out, "worker-bye", 2);
    if (!tag.empty()) {
        w.key("tag");
        w.value(tag);
    }
    w.key("worker");
    w.value(worker);
    w.endObject();
    return out;
}

} // namespace clearsim
