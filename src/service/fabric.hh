/**
 * @file
 * The fabric coordinator's core: FabricRun, a single-threaded lease
 * state machine over one sweep's shard plan.
 *
 * The scheduler thread owns a FabricRun per active fabric sweep and
 * drives it with explicit timestamps — there is no clock in here,
 * which is what makes every failure mode unit-testable with a
 * synthetic clock (tests/service/fabric_test.cc). Each shard moves
 * through
 *
 *     Unclaimed ──acquire──► Leased ──acceptResult──► Completed
 *         ▲                    │
 *         └──lease expired─────┘        attempts > budget
 *             (attempts++)        ──────────────────► DeadLettered
 *
 * and the run is terminal when every shard is Completed or
 * DeadLettered. The invariants the fabric's byte-identity contract
 * rests on:
 *
 *  - *First result wins.* A shard's cells are merged exactly once;
 *    a duplicate shard-result (late worker presumed dead, or a
 *    worker racing its own expired lease) is discarded idempotently
 *    (Stale). Cell bytes are pure functions of the cell identity,
 *    so which worker's copy lands first is unobservable anyway —
 *    but "merged once" keeps the checkpoint discipline simple.
 *  - *Work-stealing by expiry.* A lease that misses its renewal
 *    deadline returns the shard to Unclaimed, charging an attempt;
 *    any live worker's next acquire() steals it. A worker that
 *    disconnects without a worker-bye is penalized the same way.
 *  - *Bounded retries.* A shard whose attempts exceed the budget is
 *    DeadLettered: its unfinished cells get synthesized repro
 *    strings (first retry limit, base seed — the first point a
 *    worker would have executed) and land in the PR-7 dead-letter
 *    queue rather than looping forever.
 *  - *Checkpoint resume.* A run constructed over a non-empty
 *    checkpoint marks fully-covered shards Completed without a
 *    lease (shardsResumed), and grants of partially-covered shards
 *    carry the already-done cells as a skip list — a restarted
 *    coordinator never re-executes a completed cell.
 */

#ifndef CLEARSIM_SERVICE_FABRIC_HH
#define CLEARSIM_SERVICE_FABRIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/shard.hh"
#include "harness/sweep_cache.hh"
#include "service/dead_letter.hh"
#include "service/wire.hh"

namespace clearsim
{

/** Coordinator-side fabric tuning (clearsimd flags). */
struct FabricOptions
{
    /** Lease time-to-live; a worker renews at ttl/3. */
    std::uint64_t leaseTtlMs = 5000;

    /** Max attempts per shard before it is dead-lettered. */
    unsigned shardRetryBudget = 3;

    /** Retry hint sent with lease-idle. */
    std::uint64_t idleRetryMs = 200;

    /** Default shard count (0 = one shard per cell). */
    unsigned shards = 0;
};

/**
 * Fabric counters, aggregated across runs by the scheduler and
 * exported through fabric-status in the StatsRegistry JSON shape.
 * leasesExpired is the stale-lease metric: every deadline-based
 * reassignment increments it.
 */
struct FabricCounters
{
    std::uint64_t leasesGranted = 0;
    std::uint64_t leasesRenewed = 0;
    std::uint64_t leasesExpired = 0;
    std::uint64_t leasesReleased = 0;
    std::uint64_t resultsAccepted = 0;
    std::uint64_t resultsDuplicate = 0;
    std::uint64_t resultsRejected = 0;
    std::uint64_t shardsCompleted = 0;
    std::uint64_t shardsDeadLettered = 0;
    std::uint64_t shardsResumed = 0;
    std::uint64_t cellsExecuted = 0;
    std::uint64_t cellsResumed = 0;
    std::uint64_t cellsFailed = 0;
    std::uint64_t jobsCompleted = 0;
    std::uint64_t jobsFailed = 0;
};

class FabricRun
{
  public:
    /**
     * Plan the shards of @p opts and fold in @p checkpoint (cells a
     * previous coordinator already completed). @p shardsRequested
     * as in planShards(). Counters accumulate into @p counters —
     * owned by the scheduler so they survive the run.
     */
    FabricRun(std::string job_id, const SweepOptions &opts,
              unsigned shards_requested, const FabricOptions &fabric,
              const SweepSummary &checkpoint,
              FabricCounters &counters);

    /** Per-shard lifecycle state. */
    enum class ShardState
    {
        Unclaimed,
        Leased,
        Completed,
        DeadLettered,
    };

    /** What acquire() handed a worker. */
    struct Grant
    {
        unsigned shard = 0;

        /** Cells of the shard already done (checkpoint resume). */
        std::vector<SweepKey> skip;
    };

    /**
     * Lease the next unclaimed shard to @p worker until
     * @p now + leaseTtlMs.
     * @retval false when nothing is unclaimed right now
     */
    bool acquire(std::uint64_t worker, std::uint64_t now,
                 Grant &out);

    /**
     * Heartbeat: push @p worker's lease on @p shard out to
     * @p now + leaseTtlMs.
     * @retval false when the lease was lost (expired and possibly
     *         re-leased) — the worker should abandon the shard
     */
    bool renew(std::uint64_t worker, unsigned shard,
               std::uint64_t now);

    enum class Accept
    {
        /** Merged; newRows holds the rows that were new. */
        Accepted,
        /** Shard already completed: duplicate, discarded. */
        Stale,
        /** Malformed or incomplete: shard back to Unclaimed. */
        Rejected,
    };

    /**
     * A worker returned shard @p shard: @p rows are
     * serializeSweepCacheRow() lines for its completed cells,
     * @p failures the DLQ-ready records of its failed cells. The
     * first complete result for a shard wins regardless of whether
     * the reporting worker still holds the lease — the work is
     * done; discarding it to punish a slow worker would only burn
     * budget.
     */
    Accept acceptResult(std::uint64_t worker, unsigned shard,
                        const std::vector<std::string> &rows,
                        std::vector<DeadLetter> failures,
                        std::vector<std::string> &new_rows);

    /**
     * @p worker is gone. Its leases return to Unclaimed; when
     * @p penalize (crash/disconnect, not a clean worker-bye) each
     * released shard is charged an attempt, so a shard that
     * reliably kills workers marches toward the dead-letter queue.
     */
    void releaseWorker(std::uint64_t worker, bool penalize);

    /**
     * Expire every lease whose deadline passed @p now. Returns the
     * number expired (the scheduler logs and re-checks doneness).
     */
    unsigned tick(std::uint64_t now);

    /** Every shard Completed or DeadLettered. */
    bool done() const;

    /** Any cell failed or any shard was dead-lettered. */
    bool failed() const
    {
        return !failures_.empty() || deadLettered_ != 0;
    }

    const std::string &jobId() const { return jobId_; }
    const SweepOptions &options() const { return options_; }
    const ShardPlan &plan() const { return plan_; }

    /** Cells merged so far (checkpoint + accepted results). */
    const SweepSummary &cells() const { return cells_; }

    /** Failed cells reported by workers, in arrival order. */
    const std::vector<DeadLetter> &failures() const
    {
        return failures_;
    }

    /**
     * DLQ records synthesized for cells of dead-lettered shards
     * that never produced a result: repro of the shard's first
     * point (first retry limit, base seed).
     */
    std::vector<DeadLetter> deadLetterRecords() const;

    std::size_t doneCells() const { return cells_.size(); }
    std::size_t totalCells() const { return plan_.totalCells(); }

    /** Live shard-state tallies for fabric-status. */
    struct Gauges
    {
        std::uint64_t total = 0;
        std::uint64_t unclaimed = 0;
        std::uint64_t leased = 0;
        std::uint64_t completed = 0;
        std::uint64_t deadLettered = 0;
    };
    Gauges gauges() const;

    /** Shards currently leased to @p worker. */
    unsigned shardsHeldBy(std::uint64_t worker) const;

  private:
    struct Slot
    {
        ShardState state = ShardState::Unclaimed;
        std::uint64_t worker = 0;
        std::uint64_t deadline = 0;
        unsigned attempts = 0;
    };

    void completeShard(unsigned shard);

    std::string jobId_;
    SweepOptions options_;
    FabricOptions fabric_;
    ShardPlan plan_;
    std::vector<Slot> slots_;
    SweepSummary cells_;
    std::vector<DeadLetter> failures_;
    unsigned deadLettered_ = 0;
    FabricCounters &counters_;
};

/**
 * The lease-grant frame for @p grant of @p run: the full sweep
 * options (enough for the worker to rebuild the identical
 * ShardPlan) plus the skip list of already-done cells.
 */
std::string buildLeaseGrant(const FabricRun &run,
                            const FabricRun::Grant &grant,
                            std::uint64_t ttl_ms);

/** Worker-side view of a parsed lease-grant. */
struct LeaseGrant
{
    std::string jobId;
    unsigned shard = 0;
    unsigned shardCount = 0;
    std::uint64_t ttlMs = 0;
    SweepOptions options;
    std::vector<SweepKey> skip;
};

/**
 * Parse a lease-grant frame back into options + shard identity.
 * @retval false with @p error set on any missing/malformed field
 */
bool parseLeaseGrant(const WireMessage &msg, LeaseGrant &out,
                     std::string &error);

/**
 * The shard-result frame: rows for completed cells, parallel
 * arrays for failed ones.
 */
std::string buildShardResult(const std::string &worker,
                             const std::string &job_id,
                             unsigned shard,
                             const std::vector<std::string> &rows,
                             const std::vector<DeadLetter> &failures);

} // namespace clearsim

#endif // CLEARSIM_SERVICE_FABRIC_HH
