/**
 * @file
 * Per-connection outbox: decouples result production from client
 * consumption.
 *
 * The scheduler streams cells, progress and results to every
 * subscriber of a job; a slow client must not stall that loop (or,
 * transitively, the executor). Each connection therefore owns an
 * Outbox: push() appends a serialized frame and returns
 * immediately, a dedicated writer thread drains the queue onto the
 * socket in order.
 *
 * The queue is bounded by bytes. A client that stops reading while
 * results pile up past the limit is declared dead: the outbox
 * drops the connection (closes the socket) rather than buffering
 * without bound — the client can reconnect and re-request; dedupe
 * makes that cheap.
 */

#ifndef CLEARSIM_SERVICE_OUTBOX_HH
#define CLEARSIM_SERVICE_OUTBOX_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

namespace clearsim
{

class Outbox
{
  public:
    /** Default byte bound: two max-size frames plus headroom. */
    static constexpr std::size_t kDefaultLimit = 24u << 20;

    /**
     * Start the writer thread for @p fd. The outbox never owns the
     * descriptor's lifetime; close() must be called before the fd
     * is closed by the connection.
     */
    explicit Outbox(int fd, std::size_t byteLimit = kDefaultLimit);

    /** Joins the writer (close() first). */
    ~Outbox();

    Outbox(const Outbox &) = delete;
    Outbox &operator=(const Outbox &) = delete;

    /**
     * Enqueue one frame payload for delivery. Never blocks.
     * @retval false when the outbox is closed, the peer is gone or
     *         the byte bound was exceeded (connection is dead)
     */
    bool push(const std::string &payload);

    /**
     * Stop accepting frames, flush what is queued (unless the peer
     * already vanished) and join the writer thread.
     */
    void close();

    /** True when the peer vanished or the byte bound tripped. */
    bool dead() const;

  private:
    void writerLoop();

    const int fd_;
    const std::size_t byteLimit_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::string> queue_;
    std::size_t queuedBytes_ = 0;
    bool closed_ = false;
    bool dead_ = false;
    std::thread writer_;
};

} // namespace clearsim

#endif // CLEARSIM_SERVICE_OUTBOX_HH
