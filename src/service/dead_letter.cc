#include "service/dead_letter.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/log.hh"
#include "fault/fault_repro.hh"
#include "harness/runner.hh"
#include "policy/config_registry.hh"

namespace clearsim
{

namespace
{

std::string
entryLine(const DeadLetter &entry)
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("id");
    w.value(entry.jobId);
    w.key("workload");
    w.value(entry.workload);
    w.key("config");
    w.value(entry.config);
    w.key("error");
    w.value(entry.error);
    w.key("repro");
    w.value(entry.repro);
    w.endObject();
    return out;
}

void
writeAtomically(const std::string &path, const std::string &bytes)
{
    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp,
                          std::ios::binary | std::ios::trunc);
        out << bytes;
        if (!out)
            fatal("dead-letter queue: cannot write %s",
                  temp.c_str());
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0)
        fatal("dead-letter queue: cannot rename %s to %s",
              temp.c_str(), path.c_str());
}

} // namespace

DeadLetterQueue::DeadLetterQueue(std::string path)
    : path_(std::move(path))
{
}

std::vector<DeadLetter>
DeadLetterQueue::load() const
{
    std::vector<DeadLetter> entries;
    std::ifstream in(path_);
    if (!in)
        return entries;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        JsonValue doc;
        std::string error;
        if (!parseJson(line, doc, error) ||
            doc.type != JsonValue::Type::Object) {
            logMessage(LogLevel::Warn,
                       "dead-letter queue: skipping malformed "
                       "line %zu",
                       line_no);
            continue;
        }
        auto text = [&doc](const char *key) {
            const JsonValue *v = doc.find(key);
            return v && v->type == JsonValue::Type::String
                       ? v->text
                       : std::string();
        };
        DeadLetter entry;
        entry.jobId = text("id");
        entry.workload = text("workload");
        entry.config = text("config");
        entry.error = text("error");
        entry.repro = text("repro");
        entries.push_back(std::move(entry));
    }
    return entries;
}

void
DeadLetterQueue::append(const DeadLetter &entry) const
{
    std::string bytes;
    for (const DeadLetter &existing : load())
        bytes += entryLine(existing) + "\n";
    bytes += entryLine(entry) + "\n";
    writeAtomically(path_, bytes);
}

void
DeadLetterQueue::clear() const
{
    writeAtomically(path_, "");
}

std::string
DeadLetterQueue::listJson(const std::vector<DeadLetter> &entries)
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value("clearsim-dlq-v1");
    w.key("entries");
    w.beginArray();
    for (const DeadLetter &entry : entries) {
        w.beginObject();
        w.key("id");
        w.value(entry.jobId);
        w.key("workload");
        w.value(entry.workload);
        w.key("config");
        w.value(entry.config);
        w.key("error");
        w.value(entry.error);
        w.key("repro");
        w.value(entry.repro);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return out;
}

ReplayOutcome
DeadLetterQueue::replay(const DeadLetter &entry)
{
    ReplayOutcome outcome;
    ReproSpec spec;
    std::string error;
    if (!parseReproString(entry.repro, spec, &error)) {
        outcome.reproduced = false;
        outcome.error = "unreplayable entry: " + error;
        return outcome;
    }
    SystemConfig cfg;
    if (!ConfigRegistry::instance().tryMake(spec.config, cfg,
                                            error)) {
        outcome.reproduced = false;
        outcome.error = "unreplayable entry: " + error;
        return outcome;
    }
    WorkloadParams params;
    params.threads = spec.threads;
    params.opsPerThread = spec.ops;
    params.scale = spec.scale;
    params.seed = spec.seed;
    try {
        runOnce(cfg, spec.workload, params);
    } catch (const std::exception &ex) {
        outcome.reproduced = true;
        outcome.error = ex.what();
        outcome.sameError = outcome.error == entry.error;
        return outcome;
    }
    return outcome;
}

std::string
DeadLetterQueue::replayJson(const std::vector<DeadLetter> &entries,
                            const std::vector<ReplayOutcome> &outcomes)
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value("clearsim-dlq-replay-v1");
    w.key("replays");
    w.beginArray();
    for (std::size_t i = 0;
         i < entries.size() && i < outcomes.size(); ++i) {
        w.beginObject();
        w.key("repro");
        w.value(entries[i].repro);
        w.key("reproduced");
        w.value(outcomes[i].reproduced);
        w.key("sameError");
        w.value(outcomes[i].sameError);
        w.key("error");
        w.value(outcomes[i].error);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return out;
}

} // namespace clearsim
