/**
 * @file
 * FabricWorker: the executing half of the sweep fabric.
 *
 * A worker is a loop over one AF_UNIX connection to a clearsimd
 * coordinator:
 *
 *   lease ──► lease-grant ──► run the shard ──► shard-result
 *     ▲            │                                  │
 *     │        lease-idle (sleep retry-ms)            │
 *     └────────────┴──────────────────────────────────┘
 *
 * While a shard runs, a heartbeat thread renews the lease every
 * ttl/3 so a healthy-but-slow worker is never mistaken for a dead
 * one. The shard's cells execute through the same runSweepGrid()
 * the in-process sweep uses — the worker rebuilds the coordinator's
 * exact ShardPlan from the grant (planShards() is a pure function
 * of the options) and skips every cell outside its shard plus the
 * grant's checkpoint skip list, so cell bytes are identical to a
 * single-process run by construction.
 *
 * Failure behaviour: a lost connection aborts the in-flight shard
 * (the observer's cancelled hook trips) and the worker reconnects
 * with jittered exponential backoff and starts leasing again; the
 * coordinator reassigns whatever it was holding. Partial shards are
 * never reported — the coordinator would reject them anyway.
 */

#ifndef CLEARSIM_SERVICE_WORKER_HH
#define CLEARSIM_SERVICE_WORKER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "service/client.hh"

namespace clearsim
{

struct FabricWorkerOptions
{
    /** Coordinator socket path. */
    std::string socketPath = "clearsimd.sock";

    /** Worker name reported to the coordinator (diagnostics). */
    std::string name = "worker";

    /** Threads per shard sweep (0 = grant's value, then HW). */
    unsigned jobs = 0;

    /** connectWithRetry() attempts per (re)connect. */
    unsigned connectAttempts = 40;

    /**
     * Exit cleanly after this many consecutive lease-idle replies
     * (0 = poll forever until stopped). Lets scripted workers
     * terminate once the fabric drains instead of needing a kill.
     */
    unsigned maxIdlePolls = 0;
};

class FabricWorker
{
  public:
    explicit FabricWorker(FabricWorkerOptions options);

    /** What this worker has done so far (tests and exit logs). */
    struct Totals
    {
        std::uint64_t shardsCompleted = 0;
        std::uint64_t shardsStale = 0;
        std::uint64_t shardsRejected = 0;
        std::uint64_t cellsExecuted = 0;
        std::uint64_t cellsFailed = 0;
        std::uint64_t reconnects = 0;
    };

    /**
     * Lease/execute/report until @p stop becomes true (checked
     * between protocol steps and between sweep points) or the idle
     * budget runs out. Blocking.
     * @returns 0 on clean exit (worker-bye sent), 1 when the
     *          coordinator could not be (re)reached
     */
    int run(const std::atomic<bool> &stop);

    const Totals &totals() const { return totals_; }

  private:
    bool ensureConnected(std::string &error,
                         const std::atomic<bool> &stop);
    bool executeGrant(const struct LeaseGrant &grant,
                      const std::atomic<bool> &stop);

    /** Serialized frame send (heartbeat thread vs main loop). */
    bool sendLocked(const std::string &payload, std::string &error);

    FabricWorkerOptions options_;
    ClientConnection connection_;
    std::mutex sendMutex_;
    Totals totals_;
};

} // namespace clearsim

#endif // CLEARSIM_SERVICE_WORKER_HH
