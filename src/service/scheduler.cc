#include "service/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <set>
#include <thread>

#include "analysis/analyze.hh"
#include "analysis/report.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "fault/fault_repro.hh"
#include "harness/audit.hh"
#include "harness/sweep_engine.hh"
#include "metrics/json_export.hh"
#include "policy/config_registry.hh"

namespace clearsim
{

namespace
{

/**
 * Validate an optional unsigned field: absent keeps the preset
 * default in @p value; present must be numeric and within
 * [min, max]. Wrong types are errors, not silently defaulted — the
 * protocol fails closed.
 */
bool
fieldU64(const WireMessage &msg, const char *key,
         std::uint64_t min_value, std::uint64_t max_value,
         std::uint64_t &value, std::string &error)
{
    const JsonValue *v = msg.body.find(key);
    if (!v)
        return true;
    if (!v->isNumber() || v->type == JsonValue::Type::Double ||
        v->type == JsonValue::Type::Int) {
        error = std::string("field '") + key +
                "' must be a non-negative integer";
        return false;
    }
    const std::uint64_t parsed = v->asUint();
    if (parsed < min_value || parsed > max_value) {
        error = std::string("field '") + key + "' must be in [" +
                std::to_string(min_value) + ", " +
                std::to_string(max_value) + "]";
        return false;
    }
    value = parsed;
    return true;
}

/** Like fieldU64 for an array of unsigned values. */
bool
fieldU64List(const WireMessage &msg, const char *key,
             std::uint64_t min_value, std::uint64_t max_value,
             std::vector<unsigned> &values, std::string &error)
{
    const JsonValue *v = msg.body.find(key);
    if (!v)
        return true;
    if (v->type != JsonValue::Type::Array || v->items.empty()) {
        error = std::string("field '") + key +
                "' must be a non-empty array of integers";
        return false;
    }
    std::vector<unsigned> parsed;
    for (const JsonValue &item : v->items) {
        if (!item.isNumber() ||
            item.type == JsonValue::Type::Double ||
            item.type == JsonValue::Type::Int ||
            item.asUint() < min_value ||
            item.asUint() > max_value) {
            error = std::string("field '") + key +
                    "' entries must be integers in [" +
                    std::to_string(min_value) + ", " +
                    std::to_string(max_value) + "]";
            return false;
        }
        parsed.push_back(static_cast<unsigned>(item.asUint()));
    }
    values = std::move(parsed);
    return true;
}

bool
validConfigSpec(const std::string &spec, std::string &error)
{
    SystemConfig cfg;
    return ConfigRegistry::instance().tryMake(spec, cfg, error);
}

bool
validWorkload(const std::string &name, std::string &error)
{
    const std::vector<std::string> &known = workloadNames();
    if (std::find(known.begin(), known.end(), name) != known.end())
        return true;
    error = "unknown workload '" + name + "'";
    return false;
}

} // namespace

/** One queued/running/terminal unit of daemon work. */
struct Scheduler::Job
{
    enum class Kind
    {
        Run,
        Sweep,
        Analyze,
        Audit,
        FabricSweep,
    };

    enum class State
    {
        Queued,
        Running,
        Done,
        Failed,
        Cancelled,
    };

    static const char *
    stateName(State state)
    {
        switch (state) {
        case State::Queued:
            return "queued";
        case State::Running:
            return "running";
        case State::Done:
            return "done";
        case State::Failed:
            return "failed";
        case State::Cancelled:
            return "cancelled";
        }
        return "queued";
    }

    std::string id;
    Kind kind = Kind::Run;
    State state = State::Queued;

    /** Run/analyze: the validated base spec and parameters. */
    std::string config;
    std::string workload;
    unsigned retries = 4;
    WorkloadParams params;

    /** Sweep: the full validated options. */
    SweepOptions sweep;

    /** FabricSweep: requested shard count (0 = coordinator's). */
    unsigned fabricShards = 0;

    /** Audit: the full validated options. */
    AuditOptions audit;

    /** Set by the scheduler on cancel; polled by the executor. */
    std::atomic<bool> cancel{false};

    /** Connections streaming this job. */
    std::vector<std::uint64_t> subscribers;

    std::uint64_t done = 0;
    std::uint64_t total = 0;
};

/**
 * The executor: runs one job at a time off a FIFO queue and
 * reports through the mailbox's internal lane. A job internally
 * parallelizes over the sweep engine's ThreadPool, so job-level
 * concurrency is deliberately 1.
 */
class Scheduler::Executor
{
  public:
    Executor(Mailbox &mailbox, std::string cache_path,
             unsigned jobs)
        : mailbox_(mailbox), cachePath_(std::move(cache_path)),
          jobs_(jobs), thread_([this] { loop(); })
    {
    }

    ~Executor() { stop(); }

    void
    enqueue(std::shared_ptr<Job> job)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(std::move(job));
        }
        wake_.notify_one();
    }

    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_)
                return;
            stopping_ = true;
            // Unblock the running job: its observer polls the
            // cancel flag of the job it was handed.
            for (const std::shared_ptr<Job> &job : queue_)
                job->cancel.store(true, std::memory_order_relaxed);
            if (current_)
                current_->cancel.store(true,
                                       std::memory_order_relaxed);
        }
        wake_.notify_all();
        if (thread_.joinable())
            thread_.join();
    }

  private:
    void
    loop()
    {
        for (;;) {
            std::shared_ptr<Job> job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
                if (stopping_)
                    return;
                job = queue_.front();
                queue_.pop_front();
                current_ = job;
            }
            execute(*job);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                current_.reset();
            }
        }
    }

    void
    execute(Job &job)
    {
        if (job.cancel.load(std::memory_order_relaxed)) {
            finish(job, "cancelled");
            return;
        }
        switch (job.kind) {
        case Job::Kind::Run:
            executeRun(job);
            break;
        case Job::Kind::Analyze:
            executeAnalyze(job);
            break;
        case Job::Kind::Sweep:
            executeSweep(job);
            break;
        case Job::Kind::Audit:
            executeAudit(job);
            break;
        case Job::Kind::FabricSweep:
            // Fabric jobs never enter the executor; the scheduler
            // coordinates their shards itself.
            finish(job, "cancelled");
            break;
        }
    }

    /** The canonical spec a run job's point executes under. */
    static std::string
    pointSpec(const Job &job)
    {
        return specWithRetryLimit(job.config, job.retries);
    }

    static std::string
    pointRepro(const Job &job)
    {
        ReproSpec spec;
        spec.workload = job.workload;
        spec.config = pointSpec(job);
        spec.threads = job.params.threads;
        spec.ops = job.params.opsPerThread;
        spec.scale = job.params.scale;
        spec.seed = job.params.seed;
        return makeReproString(spec);
    }

    void
    executeRun(Job &job)
    {
        progress(job, 0, 1);
        SystemConfig cfg = makeConfigFromSpec(pointSpec(job));
        try {
            const RunResult result =
                runOnce(cfg, job.workload, job.params);
            progress(job, 1, 1);
            finish(job, "done", "run-json",
                   statsJsonString({result}));
        } catch (const std::exception &ex) {
            fail(job, ex.what(),
                 {{job.id, job.workload, pointSpec(job), ex.what(),
                   pointRepro(job)}});
        }
    }

    void
    executeAnalyze(Job &job)
    {
        progress(job, 0, 1);
        // Capture under exactly the config executeRun would build
        // for this job — the same spec resolution, no thread-count
        // capping — so a daemon analyze is always the capture pass
        // of the matching daemon run.
        const SystemConfig cfg = makeConfigFromSpec(pointSpec(job));
        try {
            AnalyzeOutcome outcome =
                analyzeWithConfig(cfg, job.workload, job.params);
            progress(job, 1, 1);
            finish(job, "done", "analysis-json",
                   analysisJsonString({outcome.analysis}));
        } catch (const std::exception &ex) {
            fail(job, ex.what(),
                 {{job.id, job.workload, pointSpec(job), ex.what(),
                   pointRepro(job)}});
        }
    }

    void
    executeAudit(Job &job)
    {
        progress(job, 0, 1);
        AuditOptions opts = job.audit;
        if (opts.jobs == 0)
            opts.jobs = jobs_;
        try {
            const AuditResult result = runAudit(opts);
            if (!result.failures.empty()) {
                // Mirror the sweep: every failed unit leaves a
                // persistent trace before the job is retryable
                // again.
                std::vector<DeadLetter> failures;
                for (const AuditFailure &failure :
                     result.failures) {
                    ReproSpec repro;
                    repro.workload = failure.workload;
                    repro.config = specWithRetryLimit(
                        failure.config, failure.retryLimit);
                    repro.threads = opts.params.threads;
                    repro.ops = opts.params.opsPerThread;
                    repro.scale = opts.params.scale;
                    repro.seed = opts.params.seed;
                    failures.push_back({job.id, failure.workload,
                                        repro.config, failure.error,
                                        makeReproString(repro)});
                }
                fail(job, failures.front().error,
                     std::move(failures));
                return;
            }
            progress(job, 1, 1);
            finish(job, "done", "audit-json",
                   auditJsonString(result));
        } catch (const std::exception &ex) {
            fail(job, ex.what(), {});
        }
    }

    void
    executeSweep(Job &job)
    {
        SweepOptions opts = job.sweep;
        if (opts.jobs == 0)
            opts.jobs = jobs_;
        SweepCacheStore store(cachePath_);

        // Resume from a checkpoint an interrupted daemon left, the
        // same discipline as sweepWithCache(): completed cells are
        // not recomputed, and the final bytes are identical either
        // way.
        SweepSummary cells;
        std::set<SweepKey> skip;
        if (store.loadCheckpoint(opts, cells)) {
            for (const auto &[key, cell] : cells)
                skip.insert(key);
        }

        std::vector<DeadLetter> failures;
        SweepObserver observer;
        observer.onCell = [&](const CellResult &cell) {
            if (cell.failed) {
                failures.push_back({job.id, cell.workload,
                                    cell.config, cell.error,
                                    cell.repro});
                return;
            }
            const CellSummary summary = CellSummary::fromCell(cell);
            cells[{cell.workload, cell.config}] = summary;
            store.saveCheckpoint(opts, cells);
            Mail mail;
            mail.kind = MailKind::CellDone;
            mail.jobId = job.id;
            mail.payload = serializeSweepCacheRow(summary);
            mailbox_.pushInternal(std::move(mail));
        };
        observer.onProgress = [&](std::size_t done,
                                  std::size_t total) {
            progress(job, done, total);
        };
        observer.cancelled = [&] {
            return job.cancel.load(std::memory_order_relaxed);
        };

        const SweepOutcome outcome =
            runSweepGrid(opts, skip, observer);

        if (outcome.cancelled) {
            // The checkpoint stays: a re-request resumes.
            finish(job, "cancelled");
            return;
        }
        if (!failures.empty()) {
            // Keep the checkpoint of the good cells and hand every
            // failed point to the dead-letter queue.
            fail(job, failures.front().error, failures);
            return;
        }
        store.store(opts, cells);
        store.removeCheckpoint();
        finish(job, "done", "sweep-cache-csv",
               serializeSweepCache(sweepOptionsHash(opts), cells));
    }

    void
    progress(Job &job, std::uint64_t done, std::uint64_t total)
    {
        Mail mail;
        mail.kind = MailKind::Progress;
        mail.jobId = job.id;
        mail.done = done;
        mail.total = total;
        mailbox_.pushInternal(std::move(mail));
    }

    void
    finish(Job &job, const std::string &state,
           const std::string &format = "",
           const std::string &payload = "")
    {
        Mail mail;
        mail.kind = MailKind::JobDone;
        mail.jobId = job.id;
        mail.state = state;
        mail.format = format;
        mail.payload = payload;
        mailbox_.pushInternal(std::move(mail));
    }

    void
    fail(Job &job, const std::string &error,
         std::vector<DeadLetter> failures)
    {
        Mail mail;
        mail.kind = MailKind::JobDone;
        mail.jobId = job.id;
        mail.state = "failed";
        mail.error = error;
        mail.failures = std::move(failures);
        mailbox_.pushInternal(std::move(mail));
    }

    Mailbox &mailbox_;
    const std::string cachePath_;
    const unsigned jobs_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::shared_ptr<Job>> queue_;
    std::shared_ptr<Job> current_;
    bool stopping_ = false;
    std::thread thread_;
};

Scheduler::Scheduler(const Options &options, SendFrameFn send)
    : options_(options), send_(std::move(send)),
      dedupe_(SweepCacheStore(options.cachePath)),
      dlq_(options.dlqPath),
      executor_(std::make_unique<Executor>(
          mailbox_, options.cachePath, options.jobs)),
      epoch_(std::chrono::steady_clock::now())
{
}

Scheduler::~Scheduler()
{
    stop();
}

std::uint64_t
Scheduler::nowMs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
Scheduler::run()
{
    // With a fabric run active the loop doubles as the lease-expiry
    // clock, so it polls instead of parking indefinitely; a short
    // timeout while fabric work is in flight, a long one otherwise.
    Mail mail;
    for (;;) {
        const bool got = mailbox_.popFor(mail, fabric_ ? 50 : 500);
        if (!got) {
            if (mailbox_.closed())
                break;
            fabricTick();
            continue;
        }
        switch (mail.kind) {
        case MailKind::Request:
            handleRequest(mail);
            break;
        case MailKind::Disconnect:
            handleDisconnect(mail.connection);
            break;
        case MailKind::CellDone:
            handleCellDone(mail);
            break;
        case MailKind::Progress:
            handleProgress(mail);
            break;
        case MailKind::JobDone:
            handleJobDone(mail);
            break;
        }
        fabricTick();
    }

    // Shutdown epilogue: every subscriber of a job that will now
    // never finish gets a terminal "job-aborted" rather than a
    // silently dropped stream. The daemon flushes outboxes after
    // this thread exits, so these frames reach the wire before the
    // sockets close.
    for (auto &[id, job] : jobs_) {
        if (job->state == Job::State::Queued ||
            job->state == Job::State::Running) {
            broadcast(*job,
                      wireJobAborted(id, "daemon shutting down"));
            job->subscribers.clear();
        }
    }
}

void
Scheduler::stop()
{
    mailbox_.close();
    executor_->stop();
}

void
Scheduler::sendTo(std::uint64_t connection, const std::string &frame)
{
    send_(connection, frame);
}

void
Scheduler::broadcast(const Job &job, const std::string &frame)
{
    for (std::uint64_t connection : job.subscribers)
        send_(connection, frame);
}

void
Scheduler::handleRequest(const Mail &mail)
{
    const std::string &type = mail.message.type;
    if (type == "run")
        handleRunOrAnalyze(mail, false);
    else if (type == "analyze")
        handleRunOrAnalyze(mail, true);
    else if (type == "sweep")
        handleSweep(mail, false);
    else if (type == "fabric-sweep")
        handleSweep(mail, true);
    else if (type == "fabric-status")
        handleFabricStatus(mail);
    else if (type == "lease")
        handleLease(mail);
    else if (type == "lease-renew")
        handleLeaseRenew(mail);
    else if (type == "shard-result")
        handleShardResult(mail);
    else if (type == "worker-bye")
        handleWorkerBye(mail);
    else if (type == "audit")
        handleAudit(mail);
    else if (type == "status")
        handleStatus(mail);
    else if (type == "cancel")
        handleCancel(mail);
    else if (type == "catalogue")
        handleCatalogue(mail);
    else if (type == "dlq-list" || type == "dlq-replay" ||
             type == "dlq-clear")
        handleDlq(mail);
    else
        sendTo(mail.connection,
               wireError(mail.message.text("tag"),
                         "unexpected message type '" + type + "'"));
}

void
Scheduler::handleRunOrAnalyze(const Mail &mail, bool analyze)
{
    const WireMessage &msg = mail.message;
    const std::string tag = msg.text("tag");
    std::string error;

    const std::string workload = msg.text("workload");
    if (workload.empty() || !validWorkload(workload, error)) {
        sendTo(mail.connection,
               wireError(tag, error.empty()
                                  ? "field 'workload' is required"
                                  : error));
        return;
    }
    std::string config = msg.text("config");
    if (config.empty())
        config = "C";

    auto job = std::make_shared<Job>();
    job->kind = analyze ? Job::Kind::Analyze : Job::Kind::Run;
    job->config = config;
    job->workload = workload;

    std::uint64_t retries = 4, threads = job->params.threads,
                  ops = job->params.opsPerThread, scale = 1,
                  seed = job->params.seed;
    if (!fieldU64(msg, "retries", 0, 1000000, retries, error) ||
        !fieldU64(msg, "threads", 1, 4096, threads, error) ||
        !fieldU64(msg, "ops", 1, 100000000, ops, error) ||
        !fieldU64(msg, "scale", 1, 1000000, scale, error) ||
        !fieldU64(msg, "seed", 0, ~std::uint64_t(0), seed, error)) {
        sendTo(mail.connection, wireError(tag, error));
        return;
    }
    job->retries = static_cast<unsigned>(retries);
    job->params.threads = static_cast<unsigned>(threads);
    job->params.opsPerThread = static_cast<unsigned>(ops);
    job->params.scale = static_cast<unsigned>(scale);
    job->params.seed = seed;

    // Validate the canonical spec (base spec + folded retry limit)
    // in one shot; this is also what the executor will build.
    const std::string canonical =
        specWithRetryLimit(config, job->retries);
    if (!validConfigSpec(canonical, error)) {
        sendTo(mail.connection, wireError(tag, error));
        return;
    }

    job->id = analyze ? analyzeJobId(config, workload, job->retries,
                                     job->params)
                      : runJobId(config, workload, job->retries,
                                 job->params);
    admit(mail, std::move(job));
}

void
Scheduler::handleSweep(const Mail &mail, bool fabric)
{
    const WireMessage &msg = mail.message;
    const std::string tag = msg.text("tag");
    std::string error;

    SweepOptions opts;
    if (msg.body.find("configs"))
        opts.configs = msg.textList("configs");
    if (msg.body.find("workloads"))
        opts.workloads = msg.textList("workloads");
    if (opts.configs.empty()) {
        sendTo(mail.connection,
               wireError(tag, "field 'configs' must be a non-empty "
                              "array of spec strings"));
        return;
    }
    for (const std::string &spec : opts.configs) {
        if (!validConfigSpec(spec, error)) {
            sendTo(mail.connection, wireError(tag, error));
            return;
        }
    }
    for (const std::string &workload : opts.workloads) {
        if (!validWorkload(workload, error)) {
            sendTo(mail.connection, wireError(tag, error));
            return;
        }
    }

    std::uint64_t seeds = opts.seeds, trim = opts.trimEachSide,
                  ops = opts.params.opsPerThread,
                  threads = opts.params.threads, scale = 1,
                  jobs = 0, shards = 0;
    if (!fieldU64List(msg, "retries", 0, 1000000, opts.retryLimits,
                      error) ||
        !fieldU64(msg, "seeds", 1, 1000, seeds, error) ||
        !fieldU64(msg, "trim", 0, 499, trim, error) ||
        !fieldU64(msg, "ops", 1, 100000000, ops, error) ||
        !fieldU64(msg, "threads", 1, 4096, threads, error) ||
        !fieldU64(msg, "scale", 1, 1000000, scale, error) ||
        !fieldU64(msg, "jobs", 0, 4096, jobs, error) ||
        !fieldU64(msg, "shards", 0, 1000000, shards, error)) {
        sendTo(mail.connection, wireError(tag, error));
        return;
    }
    opts.seeds = static_cast<unsigned>(seeds);
    opts.trimEachSide = static_cast<unsigned>(trim);
    opts.params.opsPerThread = static_cast<unsigned>(ops);
    opts.params.threads = static_cast<unsigned>(threads);
    opts.params.scale = static_cast<unsigned>(scale);
    opts.jobs = static_cast<unsigned>(jobs);

    if (opts.seeds <= 2 * opts.trimEachSide) {
        sendTo(mail.connection,
               wireError(tag, "trim would discard every seed "
                              "(need seeds > 2*trim)"));
        return;
    }

    auto job = std::make_shared<Job>();
    job->kind = fabric ? Job::Kind::FabricSweep : Job::Kind::Sweep;
    job->sweep = opts;
    job->fabricShards = static_cast<unsigned>(shards);
    // A fabric sweep and a plain sweep of the same options are the
    // *same job*: one id, one dedupe slot, one cache line — a
    // fabric result answers a later plain request and vice versa.
    job->id = sweepJobId(opts);
    admit(mail, std::move(job));
}

void
Scheduler::handleAudit(const Mail &mail)
{
    const WireMessage &msg = mail.message;
    const std::string tag = msg.text("tag");
    std::string error;

    AuditOptions opts;
    if (msg.body.find("configs"))
        opts.configs = msg.textList("configs");
    if (msg.body.find("workloads"))
        opts.workloads = msg.textList("workloads");
    if (opts.configs.empty()) {
        sendTo(mail.connection,
               wireError(tag, "field 'configs' must be a non-empty "
                              "array of spec strings"));
        return;
    }
    // An absent workload list means the full registry, resolved
    // here so the job id names the actual grid.
    if (opts.workloads.empty())
        opts.workloads = workloadNames();
    for (const std::string &spec : opts.configs) {
        if (!validConfigSpec(spec, error)) {
            sendTo(mail.connection, wireError(tag, error));
            return;
        }
    }
    for (const std::string &workload : opts.workloads) {
        if (!validWorkload(workload, error)) {
            sendTo(mail.connection, wireError(tag, error));
            return;
        }
    }

    std::uint64_t seeds = opts.seeds,
                  ops = opts.params.opsPerThread,
                  threads = opts.params.threads, scale = 1,
                  seed = opts.params.seed, jobs = 0;
    if (!fieldU64List(msg, "retries", 0, 1000000, opts.retryLimits,
                      error) ||
        !fieldU64(msg, "seeds", 1, 100000, seeds, error) ||
        !fieldU64(msg, "ops", 1, 100000000, ops, error) ||
        !fieldU64(msg, "threads", 1, 4096, threads, error) ||
        !fieldU64(msg, "scale", 1, 1000000, scale, error) ||
        !fieldU64(msg, "seed", 0, ~std::uint64_t(0), seed, error) ||
        !fieldU64(msg, "jobs", 0, 4096, jobs, error)) {
        sendTo(mail.connection, wireError(tag, error));
        return;
    }
    opts.seeds = static_cast<unsigned>(seeds);
    opts.params.opsPerThread = static_cast<unsigned>(ops);
    opts.params.threads = static_cast<unsigned>(threads);
    opts.params.scale = static_cast<unsigned>(scale);
    opts.params.seed = seed;
    opts.jobs = static_cast<unsigned>(jobs);

    auto job = std::make_shared<Job>();
    job->kind = Job::Kind::Audit;
    job->audit = opts;
    job->id = auditJobId(opts);
    admit(mail, std::move(job));
}

void
Scheduler::admit(const Mail &mail, std::shared_ptr<Job> job)
{
    const std::string tag = mail.message.text("tag");
    const SweepOptions *sweep_opts =
        job->kind == Job::Kind::Sweep ? &job->sweep : nullptr;
    std::string format, payload;
    const DedupeSource source =
        dedupe_.classify(job->id, sweep_opts, format, payload);
    switch (source) {
    case DedupeSource::None: {
        job->subscribers.push_back(mail.connection);
        dedupe_.markInFlight(job->id);
        jobs_[job->id] = job;
        sendTo(mail.connection,
               wireAck(tag, job->id, dedupeStateName(source)));
        if (job->kind == Job::Kind::FabricSweep)
            startFabricJob(std::move(job));
        else
            executor_->enqueue(std::move(job));
        break;
    }
    case DedupeSource::InFlight: {
        const auto it = jobs_.find(job->id);
        if (it != jobs_.end()) {
            std::vector<std::uint64_t> &subs =
                it->second->subscribers;
            if (std::find(subs.begin(), subs.end(),
                          mail.connection) == subs.end())
                subs.push_back(mail.connection);
        }
        sendTo(mail.connection,
               wireAck(tag, job->id, dedupeStateName(source)));
        break;
    }
    case DedupeSource::Completed:
    case DedupeSource::DiskCache: {
        sendTo(mail.connection,
               wireAck(tag, job->id, dedupeStateName(source)));
        sendTo(mail.connection,
               wireResult(job->id, format, payload));
        break;
    }
    }
}

void
Scheduler::handleStatus(const Mail &mail)
{
    const std::string id = mail.message.text("id");
    if (!id.empty() && !jobs_.count(id)) {
        sendTo(mail.connection,
               wireError(mail.message.text("tag"),
                         "no such job '" + id + "'"));
        return;
    }
    sendTo(mail.connection,
           wireResult("status", "status-json", statusJson(id)));
}

std::string
Scheduler::statusJson(const std::string &id) const
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value("clearsim-status-v1");
    w.key("jobs");
    w.beginArray();
    for (const auto &[job_id, job] : jobs_) {
        if (!id.empty() && job_id != id)
            continue;
        w.beginObject();
        w.key("id");
        w.value(job_id);
        w.key("state");
        w.value(Job::stateName(job->state));
        w.key("done");
        w.value(job->done);
        w.key("total");
        w.value(job->total);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return out;
}

void
Scheduler::handleCancel(const Mail &mail)
{
    const std::string tag = mail.message.text("tag");
    const std::string id = mail.message.text("id");
    const auto it = jobs_.find(id);
    if (it == jobs_.end() ||
        (it->second->state != Job::State::Queued &&
         it->second->state != Job::State::Running)) {
        sendTo(mail.connection,
               wireError(tag, "no such in-flight job '" + id + "'"));
        return;
    }
    Job &job = *it->second;
    if (job.kind == Job::Kind::FabricSweep) {
        // Fabric jobs are coordinated here, not by the executor:
        // cancel immediately. The checkpoint of completed shards
        // stays, so a re-request resumes. Workers still computing
        // the cancelled run's shards get "shard-stale" acks.
        sendTo(mail.connection, wireAck(tag, id, "cancelling"));
        if (fabric_ && fabric_->jobId() == id)
            fabric_.reset();
        fabricQueue_.erase(
            std::remove(fabricQueue_.begin(), fabricQueue_.end(),
                        it->second),
            fabricQueue_.end());
        job.state = Job::State::Cancelled;
        dedupe_.forget(id);
        broadcast(job, wireCancelled(id));
        job.subscribers.clear();
        if (!fabric_ && !fabricQueue_.empty()) {
            std::shared_ptr<Job> next = fabricQueue_.front();
            fabricQueue_.pop_front();
            activateFabric(std::move(next));
        }
        return;
    }
    job.cancel.store(true, std::memory_order_relaxed);
    sendTo(mail.connection, wireAck(tag, id, "cancelling"));
}

void
Scheduler::handleCatalogue(const Mail &mail)
{
    std::string workloads;
    {
        JsonWriter w(workloads);
        w.beginArray();
        for (const std::string &name : workloadNames()) {
            w.beginObject();
            w.key("name");
            w.value(name);
            w.key("description");
            w.value(workloadDescription(name));
            w.endObject();
        }
        w.endArray();
    }
    // Splice the registry's own document in as a sub-object; both
    // parts are deterministic, so the whole payload is too.
    const std::string payload =
        "{\"schema\":\"clearsim-catalogue-v1\",\"configs\":" +
        ConfigRegistry::instance().catalogueJson() +
        ",\"workloads\":" + workloads + "}";
    sendTo(mail.connection,
           wireResult("catalogue", "catalogue-json", payload));
}

void
Scheduler::handleDlq(const Mail &mail)
{
    const std::string &type = mail.message.type;
    if (type == "dlq-clear") {
        dlq_.clear();
        sendTo(mail.connection,
               wireResult("dlq", "dlq-json",
                          DeadLetterQueue::listJson({})));
        return;
    }
    const std::vector<DeadLetter> entries = dlq_.load();
    if (type == "dlq-list") {
        sendTo(mail.connection,
               wireResult("dlq", "dlq-json",
                          DeadLetterQueue::listJson(entries)));
        return;
    }
    // dlq-replay: re-execute every entry from its repro string.
    // Synchronous by design — replays are single points.
    std::vector<ReplayOutcome> outcomes;
    outcomes.reserve(entries.size());
    for (const DeadLetter &entry : entries)
        outcomes.push_back(DeadLetterQueue::replay(entry));
    sendTo(mail.connection,
           wireResult("dlq-replay", "dlq-replay-json",
                      DeadLetterQueue::replayJson(entries,
                                                  outcomes)));
}

void
Scheduler::handleDisconnect(std::uint64_t connection)
{
    for (auto &[id, job] : jobs_) {
        std::vector<std::uint64_t> &subs = job->subscribers;
        subs.erase(std::remove(subs.begin(), subs.end(), connection),
                   subs.end());
    }
    // A fabric worker that vanishes without worker-bye crashed (or
    // was killed): release its leases with an attempt charged, so
    // its shards are stolen by live workers and a shard that keeps
    // killing workers marches into the dead-letter queue.
    if (workers_.erase(connection) != 0 && fabric_) {
        fabric_->releaseWorker(connection, /*penalize=*/true);
        if (fabric_->done())
            finishFabric();
    }
}

void
Scheduler::startFabricJob(std::shared_ptr<Job> job)
{
    if (fabric_) {
        fabricQueue_.push_back(std::move(job));
        return;
    }
    activateFabric(std::move(job));
}

void
Scheduler::activateFabric(std::shared_ptr<Job> job)
{
    SweepCacheStore store(options_.cachePath);
    SweepSummary checkpoint;
    store.loadCheckpoint(job->sweep, checkpoint);
    fabric_ = std::make_unique<FabricRun>(
        job->id, job->sweep, job->fabricShards, options_.fabric,
        checkpoint, fabricCounters_);
    job->state = Job::State::Running;
    job->done = fabric_->doneCells();
    job->total = fabric_->totalCells();
    broadcast(*job, wireProgress(job->id, job->done, job->total));
    // A checkpoint can already cover the whole grid (the previous
    // coordinator died between its last cell and the final cache
    // rename): terminal with zero leases granted.
    if (fabric_->done())
        finishFabric();
}

void
Scheduler::fabricTick()
{
    if (!fabric_)
        return;
    if (fabric_->tick(nowMs()) != 0 && fabric_->done())
        finishFabric();
}

void
Scheduler::finishFabric()
{
    const auto it = jobs_.find(fabric_->jobId());
    std::shared_ptr<Job> job =
        it != jobs_.end() ? it->second : nullptr;
    SweepCacheStore store(options_.cachePath);

    if (!fabric_->failed()) {
        // The merged cells serialize to exactly the bytes a
        // single-process sweep of these options produces — the
        // byte-identity invariant, lifted to processes.
        const std::string payload = serializeSweepCache(
            fabric_->plan().optionsHash, fabric_->cells());
        store.store(fabric_->options(), fabric_->cells());
        store.removeCheckpoint();
        ++fabricCounters_.jobsCompleted;
        if (job) {
            job->state = Job::State::Done;
            job->done = fabric_->doneCells();
            dedupe_.markCompleted(job->id, "sweep-cache-csv",
                                  payload);
            broadcast(*job, wireResult(job->id, "sweep-cache-csv",
                                       payload));
            job->subscribers.clear();
        }
    } else {
        // Keep the checkpoint — the completed cells survive for a
        // resume — and leave a persistent trace of every failure:
        // worker-reported cells with their exact repro strings,
        // dead-lettered shards with synthesized first-point repros.
        std::vector<DeadLetter> letters = fabric_->failures();
        for (DeadLetter &record : fabric_->deadLetterRecords())
            letters.push_back(std::move(record));
        for (const DeadLetter &letter : letters)
            dlq_.append(letter);
        ++fabricCounters_.jobsFailed;
        if (job) {
            job->state = Job::State::Failed;
            dedupe_.forget(job->id);
            broadcast(*job,
                      wireFailed(job->id,
                                 letters.empty()
                                     ? std::string(
                                           "fabric sweep failed")
                                     : letters.front().error,
                                 letters.empty()
                                     ? std::string()
                                     : letters.front().repro));
            job->subscribers.clear();
        }
    }

    fabric_.reset();
    if (!fabricQueue_.empty()) {
        std::shared_ptr<Job> next = fabricQueue_.front();
        fabricQueue_.pop_front();
        activateFabric(std::move(next));
    }
}

void
Scheduler::handleLease(const Mail &mail)
{
    const WireMessage &msg = mail.message;
    Worker &worker = workers_[mail.connection];
    if (!msg.text("worker").empty())
        worker.name = msg.text("worker");
    worker.lastSeenMs = nowMs();

    if (!fabric_) {
        sendTo(mail.connection,
               wireLeaseIdle(options_.fabric.idleRetryMs));
        return;
    }
    FabricRun::Grant grant;
    if (!fabric_->acquire(mail.connection, nowMs(), grant)) {
        sendTo(mail.connection,
               wireLeaseIdle(options_.fabric.idleRetryMs));
        return;
    }
    sendTo(mail.connection,
           buildLeaseGrant(*fabric_, grant,
                           options_.fabric.leaseTtlMs));
}

void
Scheduler::handleLeaseRenew(const Mail &mail)
{
    const WireMessage &msg = mail.message;
    const std::string tag = msg.text("tag");
    const std::string id = msg.text("id");
    workers_[mail.connection].lastSeenMs = nowMs();
    const bool renewed =
        fabric_ && fabric_->jobId() == id &&
        fabric_->renew(mail.connection,
                       static_cast<unsigned>(msg.number("shard")),
                       nowMs());
    sendTo(mail.connection,
           wireAck(tag, id, renewed ? "renewed" : "lease-lost"));
}

void
Scheduler::handleShardResult(const Mail &mail)
{
    const WireMessage &msg = mail.message;
    const std::string tag = msg.text("tag");
    const std::string id = msg.text("id");
    const unsigned shard =
        static_cast<unsigned>(msg.number("shard"));
    workers_[mail.connection].lastSeenMs = nowMs();

    if (!fabric_ || fabric_->jobId() != id) {
        // A result for a run that already finished (or was
        // cancelled): the late-duplicate case, discarded
        // idempotently.
        ++fabricCounters_.resultsDuplicate;
        sendTo(mail.connection, wireAck(tag, id, "shard-stale"));
        return;
    }

    const std::vector<std::string> rows = msg.textList("rows");
    const std::vector<std::string> fail_workloads =
        msg.textList("fail-workloads");
    const std::vector<std::string> fail_configs =
        msg.textList("fail-configs");
    const std::vector<std::string> fail_errors =
        msg.textList("fail-errors");
    const std::vector<std::string> fail_repros =
        msg.textList("fail-repros");
    if (fail_configs.size() != fail_workloads.size() ||
        fail_errors.size() != fail_workloads.size() ||
        fail_repros.size() != fail_workloads.size()) {
        sendTo(mail.connection,
               wireError(tag, "shard-result failure lists "
                              "disagree in length"));
        return;
    }
    std::vector<DeadLetter> failures;
    failures.reserve(fail_workloads.size());
    for (std::size_t i = 0; i < fail_workloads.size(); ++i)
        failures.push_back({id, fail_workloads[i], fail_configs[i],
                            fail_errors[i], fail_repros[i]});

    std::vector<std::string> new_rows;
    switch (fabric_->acceptResult(mail.connection, shard, rows,
                                  std::move(failures), new_rows)) {
    case FabricRun::Accept::Accepted: {
        sendTo(mail.connection, wireAck(tag, id, "shard-done"));
        // The same per-completion checkpoint discipline as the
        // in-process sweep: a coordinator killed at any instant
        // loses at most the in-flight shards.
        SweepCacheStore store(options_.cachePath);
        store.saveCheckpoint(fabric_->options(), fabric_->cells());
        const auto it = jobs_.find(id);
        if (it != jobs_.end()) {
            Job &job = *it->second;
            job.done = fabric_->doneCells();
            job.total = fabric_->totalCells();
            for (const std::string &row : new_rows)
                broadcast(job, wireCell(id, row));
            broadcast(job,
                      wireProgress(id, job.done, job.total));
        }
        if (fabric_->done())
            finishFabric();
        break;
    }
    case FabricRun::Accept::Stale:
        sendTo(mail.connection, wireAck(tag, id, "shard-stale"));
        break;
    case FabricRun::Accept::Rejected:
        sendTo(mail.connection,
               wireAck(tag, id, "shard-rejected"));
        if (fabric_->done())
            finishFabric();
        break;
    }
}

void
Scheduler::handleWorkerBye(const Mail &mail)
{
    const std::string tag = mail.message.text("tag");
    if (fabric_) {
        // A clean deregistration is not a crash: leases return
        // unclaimed with no attempt charged.
        fabric_->releaseWorker(mail.connection,
                               /*penalize=*/false);
    }
    workers_.erase(mail.connection);
    sendTo(mail.connection, wireAck(tag, "", "bye"));
}

void
Scheduler::handleFabricStatus(const Mail &mail)
{
    sendTo(mail.connection,
           wireResult("fabric-status", "fabric-status-json",
                      fabricStatusJson()));
}

std::string
Scheduler::fabricStatusJson() const
{
    // The fabric's health as a StatsRegistry, exported in the same
    // clearsim-stats-v1 body shape as every other registry this
    // codebase serializes — no bespoke schema to scrape.
    const FabricRun::Gauges gauges =
        fabric_ ? fabric_->gauges() : FabricRun::Gauges();
    StatsRegistry reg;
    reg.addCounter("fabric.workers.active",
                   "fabric workers currently registered",
                   workers_.size());
    reg.addCounter("fabric.shards.total",
                   "shards of the active fabric run", gauges.total);
    reg.addCounter("fabric.shards.unclaimed",
                   "shards awaiting a lease", gauges.unclaimed);
    reg.addCounter("fabric.shards.leased",
                   "shards currently leased", gauges.leased);
    reg.addCounter("fabric.shards.completed",
                   "shards completed across all runs",
                   fabricCounters_.shardsCompleted);
    reg.addCounter("fabric.shards.deadlettered",
                   "shards dead-lettered across all runs",
                   fabricCounters_.shardsDeadLettered);
    reg.addCounter("fabric.shards.resumed",
                   "shards satisfied from a checkpoint",
                   fabricCounters_.shardsResumed);
    reg.addCounter("fabric.leases.granted",
                   "leases granted", fabricCounters_.leasesGranted);
    reg.addCounter("fabric.leases.renewed",
                   "lease renewals (heartbeats)",
                   fabricCounters_.leasesRenewed);
    reg.addCounter("fabric.leases.expired",
                   "stale leases reaped by deadline",
                   fabricCounters_.leasesExpired);
    reg.addCounter("fabric.leases.released",
                   "leases released by disconnect or bye",
                   fabricCounters_.leasesReleased);
    reg.addCounter("fabric.results.accepted",
                   "shard results merged",
                   fabricCounters_.resultsAccepted);
    reg.addCounter("fabric.results.duplicate",
                   "late duplicate shard results discarded",
                   fabricCounters_.resultsDuplicate);
    reg.addCounter("fabric.results.rejected",
                   "malformed or incomplete shard results",
                   fabricCounters_.resultsRejected);
    reg.addCounter("fabric.cells.executed",
                   "cells computed by fabric workers",
                   fabricCounters_.cellsExecuted);
    reg.addCounter("fabric.cells.resumed",
                   "cells served from a checkpoint",
                   fabricCounters_.cellsResumed);
    reg.addCounter("fabric.cells.failed",
                   "cells that failed on a worker",
                   fabricCounters_.cellsFailed);
    reg.addCounter("fabric.jobs.completed",
                   "fabric sweeps completed",
                   fabricCounters_.jobsCompleted);
    reg.addCounter("fabric.jobs.failed", "fabric sweeps failed",
                   fabricCounters_.jobsFailed);

    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value("clearsim-fabric-status-v1");
    w.key("active");
    w.value(fabric_ ? fabric_->jobId() : std::string());
    w.key("done");
    w.value(fabric_ ? std::uint64_t(fabric_->doneCells())
                    : std::uint64_t(0));
    w.key("total");
    w.value(fabric_ ? std::uint64_t(fabric_->totalCells())
                    : std::uint64_t(0));
    w.key("workers");
    w.beginArray();
    for (const auto &[connection, worker] : workers_) {
        w.beginObject();
        w.key("name");
        w.value(worker.name);
        w.key("connection");
        w.value(connection);
        w.key("shards");
        w.value(fabric_ ? fabric_->shardsHeldBy(connection) : 0u);
        w.endObject();
    }
    w.endArray();
    writeStatsRegistryJson(w, reg);
    w.endObject();
    return out;
}

void
Scheduler::handleCellDone(const Mail &mail)
{
    const auto it = jobs_.find(mail.jobId);
    if (it == jobs_.end())
        return;
    broadcast(*it->second, wireCell(mail.jobId, mail.payload));
}

void
Scheduler::handleProgress(const Mail &mail)
{
    const auto it = jobs_.find(mail.jobId);
    if (it == jobs_.end())
        return;
    Job &job = *it->second;
    if (job.state == Job::State::Queued)
        job.state = Job::State::Running;
    job.done = mail.done;
    job.total = mail.total;
    broadcast(job, wireProgress(mail.jobId, mail.done, mail.total));
}

void
Scheduler::handleJobDone(const Mail &mail)
{
    const auto it = jobs_.find(mail.jobId);
    if (it == jobs_.end())
        return;
    Job &job = *it->second;
    if (mail.state == "done") {
        job.state = Job::State::Done;
        dedupe_.markCompleted(job.id, mail.format, mail.payload);
        broadcast(job,
                  wireResult(job.id, mail.format, mail.payload));
    } else if (mail.state == "cancelled") {
        job.state = Job::State::Cancelled;
        dedupe_.forget(job.id);
        broadcast(job, wireCancelled(job.id));
    } else {
        job.state = Job::State::Failed;
        // A failed spec must be retryable, so it leaves the dedupe
        // index — but its points leave a persistent trace first.
        dedupe_.forget(job.id);
        for (const DeadLetter &failure : mail.failures)
            dlq_.append(failure);
        broadcast(job,
                  wireFailed(job.id, mail.error,
                             mail.failures.empty()
                                 ? std::string()
                                 : mail.failures.front().repro));
    }
    job.subscribers.clear();
}

} // namespace clearsim
