#include "service/worker.hh"

#include <chrono>
#include <condition_variable>
#include <set>
#include <thread>

#include "common/log.hh"
#include "harness/shard.hh"
#include "harness/sweep_cache.hh"
#include "harness/sweep_engine.hh"
#include "service/fabric.hh"

namespace clearsim
{

FabricWorker::FabricWorker(FabricWorkerOptions options)
    : options_(std::move(options))
{
}

bool
FabricWorker::ensureConnected(std::string &error,
                              const std::atomic<bool> &stop)
{
    if (connection_.connected())
        return true;
    if (!connection_.connectWithRetry(options_.socketPath,
                                      options_.connectAttempts,
                                      error, &stop))
        return false;
    if (connection_.version() < 2) {
        error = "coordinator only speaks " +
                std::string(wireSchemaName(connection_.version())) +
                "; the fabric needs " + kWireSchemaV2;
        connection_.disconnect();
        return false;
    }
    return true;
}

bool
FabricWorker::sendLocked(const std::string &payload,
                         std::string &error)
{
    std::lock_guard<std::mutex> lock(sendMutex_);
    return connection_.send(payload, error);
}

int
FabricWorker::run(const std::atomic<bool> &stop)
{
    unsigned idle_polls = 0;
    unsigned consecutive_failures = 0;
    std::string error;

    while (!stop.load()) {
        if (!ensureConnected(error, stop)) {
            logMessage(LogLevel::Warn, "%s: %s", options_.name.c_str(), error.c_str());
            return 1;
        }
        if (!sendLocked(wireLease("", options_.name), error)) {
            ++totals_.reconnects;
            continue;
        }
        WireMessage reply;
        if (!connection_.receive(reply, error)) {
            if (stop.load())
                break;
            connection_.disconnect();
            ++totals_.reconnects;
            if (++consecutive_failures >= 5) {
                logMessage(LogLevel::Warn,
                       "%s: giving up after repeated protocol "
                     "failures (%s)",
                     options_.name.c_str(), error.c_str());
                return 1;
            }
            continue;
        }
        consecutive_failures = 0;

        if (reply.type == "lease-idle") {
            ++idle_polls;
            if (options_.maxIdlePolls != 0 &&
                idle_polls >= options_.maxIdlePolls)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                reply.number("retry-ms", 200)));
            continue;
        }
        if (reply.type != "lease-grant") {
            logMessage(LogLevel::Warn, "%s: unexpected reply '%s' to lease request",
                 options_.name.c_str(), reply.type.c_str());
            connection_.disconnect();
            ++totals_.reconnects;
            if (++consecutive_failures >= 5)
                return 1;
            continue;
        }
        idle_polls = 0;
        LeaseGrant grant;
        if (!parseLeaseGrant(reply, grant, error)) {
            logMessage(LogLevel::Warn, "%s: bad lease-grant: %s", options_.name.c_str(),
                 error.c_str());
            connection_.disconnect();
            ++totals_.reconnects;
            continue;
        }
        executeGrant(grant, stop);
    }

    // Clean exit: deregister so the coordinator releases any lease
    // without charging an attempt (this is a shutdown, not a crash).
    if (connection_.connected()) {
        if (sendLocked(wireWorkerBye("", options_.name), error)) {
            WireMessage reply;
            std::string ignored;
            connection_.receive(reply, ignored);
        }
        connection_.disconnect();
    }
    return 0;
}

bool
FabricWorker::executeGrant(const LeaseGrant &grant,
                           const std::atomic<bool> &stop)
{
    SweepOptions opts = grant.options;
    if (options_.jobs != 0)
        opts.jobs = options_.jobs;

    // Rebuild the coordinator's plan: planShards() is pure in the
    // options, so both sides agree on every shard's membership.
    const ShardPlan plan = planShards(opts, grant.shardCount);
    if (plan.shardCount != grant.shardCount ||
        grant.shard >= plan.shardCount) {
        logMessage(LogLevel::Warn, "%s: lease-grant shard %u/%u disagrees with the local "
             "plan (%u shards) — dropping the lease",
             options_.name.c_str(), grant.shard, grant.shardCount,
             plan.shardCount);
        return false;
    }

    std::set<SweepKey> skip;
    for (unsigned s = 0; s < plan.shardCount; ++s)
        if (s != grant.shard)
            skip.insert(plan.shards[s].begin(),
                        plan.shards[s].end());
    skip.insert(grant.skip.begin(), grant.skip.end());

    // Heartbeat at ttl/3: three missed beats before the coordinator
    // may steal the shard.
    std::mutex hb_mutex;
    std::condition_variable hb_wake;
    bool hb_stop = false;
    std::atomic<bool> connection_lost{false};
    const std::uint64_t interval =
        std::max<std::uint64_t>(1, grant.ttlMs / 3);
    std::thread heartbeat([&] {
        std::unique_lock<std::mutex> lock(hb_mutex);
        for (;;) {
            if (hb_wake.wait_for(
                    lock, std::chrono::milliseconds(interval),
                    [&] { return hb_stop; }))
                return;
            std::string hb_error;
            if (!sendLocked(wireLeaseRenew(options_.name,
                                           grant.jobId, grant.shard),
                            hb_error)) {
                connection_lost.store(true);
                return;
            }
        }
    });

    SweepObserver observer;
    observer.cancelled = [&stop, &connection_lost] {
        return stop.load() || connection_lost.load();
    };
    const SweepOutcome outcome = runSweepGrid(opts, skip, observer);

    {
        std::lock_guard<std::mutex> lock(hb_mutex);
        hb_stop = true;
    }
    hb_wake.notify_all();
    heartbeat.join();

    // A partial shard is never reported — the coordinator rejects
    // incomplete results, so just let the lease lapse (or the
    // disconnect release it) and the shard be re-leased whole.
    if (outcome.cancelled || connection_lost.load() || stop.load())
        return false;

    std::vector<std::string> rows;
    std::vector<DeadLetter> failures;
    for (const auto &[key, cell] : outcome.cells) {
        if (cell.failed) {
            failures.push_back({grant.jobId, cell.workload,
                                cell.config, cell.error,
                                cell.repro});
            ++totals_.cellsFailed;
        } else {
            rows.push_back(
                serializeSweepCacheRow(CellSummary::fromCell(cell)));
            ++totals_.cellsExecuted;
        }
    }

    std::string error;
    if (!sendLocked(buildShardResult(options_.name, grant.jobId,
                                     grant.shard, rows, failures),
                    error))
        return false;

    // The verdict may be preceded by acks of heartbeats still in
    // flight when the sweep finished; skip those.
    WireMessage reply;
    while (connection_.receive(reply, error)) {
        if (reply.type != "ack")
            continue;
        const std::string state = reply.text("state");
        if (state == "renewed" || state == "lease-lost")
            continue;
        if (state == "shard-done") {
            ++totals_.shardsCompleted;
            return true;
        }
        if (state == "shard-stale") {
            ++totals_.shardsStale;
            return true;
        }
        if (state == "shard-rejected") {
            ++totals_.shardsRejected;
            logMessage(LogLevel::Warn, "%s: shard %u rejected by the coordinator",
                 options_.name.c_str(), grant.shard);
            return false;
        }
    }
    return false;
}

} // namespace clearsim
