#include "service/fabric.hh"

#include <algorithm>
#include <set>

#include "fault/fault_repro.hh"
#include "policy/config_registry.hh"

namespace clearsim
{

FabricRun::FabricRun(std::string job_id, const SweepOptions &opts,
                     unsigned shards_requested,
                     const FabricOptions &fabric,
                     const SweepSummary &checkpoint,
                     FabricCounters &counters)
    : jobId_(std::move(job_id)), options_(opts), fabric_(fabric),
      plan_(planShards(opts, shards_requested != 0
                                 ? shards_requested
                                 : fabric.shards)),
      counters_(counters)
{
    slots_.resize(plan_.shardCount);

    // Fold the checkpoint in: cells a previous coordinator already
    // completed are never re-leased. Only cells the plan actually
    // covers count — the checkpoint is keyed by the same options
    // hash, so anything else would be corruption.
    std::set<SweepKey> planned;
    for (const std::vector<SweepKey> &shard : plan_.shards)
        planned.insert(shard.begin(), shard.end());
    for (const auto &[key, cell] : checkpoint) {
        if (planned.count(key)) {
            cells_[key] = cell;
            ++counters_.cellsResumed;
        }
    }
    for (unsigned shard = 0; shard < plan_.shardCount; ++shard) {
        const std::vector<SweepKey> &members = plan_.shards[shard];
        const bool covered = std::all_of(
            members.begin(), members.end(),
            [this](const SweepKey &key) { return cells_.count(key); });
        if (covered && !members.empty()) {
            slots_[shard].state = ShardState::Completed;
            ++counters_.shardsResumed;
        }
    }
}

bool
FabricRun::acquire(std::uint64_t worker, std::uint64_t now,
                   Grant &out)
{
    for (unsigned shard = 0; shard < plan_.shardCount; ++shard) {
        Slot &slot = slots_[shard];
        if (slot.state != ShardState::Unclaimed)
            continue;
        slot.state = ShardState::Leased;
        slot.worker = worker;
        slot.deadline = now + fabric_.leaseTtlMs;
        ++counters_.leasesGranted;
        out.shard = shard;
        out.skip.clear();
        for (const SweepKey &key : plan_.shards[shard])
            if (cells_.count(key))
                out.skip.push_back(key);
        return true;
    }
    return false;
}

bool
FabricRun::renew(std::uint64_t worker, unsigned shard,
                 std::uint64_t now)
{
    if (shard >= slots_.size())
        return false;
    Slot &slot = slots_[shard];
    if (slot.state != ShardState::Leased || slot.worker != worker)
        return false;
    slot.deadline = now + fabric_.leaseTtlMs;
    ++counters_.leasesRenewed;
    return true;
}

void
FabricRun::completeShard(unsigned shard)
{
    Slot &slot = slots_[shard];
    slot.state = ShardState::Completed;
    slot.worker = 0;
    slot.deadline = 0;
    ++counters_.shardsCompleted;
}

/** Charge one failed attempt; dead-letter past the budget. */
static void
chargeAttempt(FabricRun::ShardState &state, unsigned &attempts,
              unsigned budget, unsigned &dead_lettered,
              FabricCounters &counters)
{
    ++attempts;
    if (attempts >= budget) {
        state = FabricRun::ShardState::DeadLettered;
        ++dead_lettered;
        ++counters.shardsDeadLettered;
    } else {
        state = FabricRun::ShardState::Unclaimed;
    }
}

FabricRun::Accept
FabricRun::acceptResult(std::uint64_t worker, unsigned shard,
                        const std::vector<std::string> &rows,
                        std::vector<DeadLetter> failures,
                        std::vector<std::string> &new_rows)
{
    new_rows.clear();
    (void)worker;
    if (shard >= slots_.size())
        return Accept::Rejected;
    Slot &slot = slots_[shard];
    if (slot.state == ShardState::Completed ||
        slot.state == ShardState::DeadLettered) {
        // A late result from a presumed-dead worker. The cells are
        // pure functions of their identity, so the duplicate holds
        // no new information — discard idempotently.
        ++counters_.resultsDuplicate;
        return Accept::Stale;
    }

    // Validate before mutating anything: every row parses, every
    // reported cell belongs to this shard, and together with the
    // checkpointed cells and the reported failures the shard is
    // fully accounted for. A shard merge is atomic — a half-valid
    // result is rejected whole.
    std::set<SweepKey> members(plan_.shards[shard].begin(),
                               plan_.shards[shard].end());
    std::vector<CellSummary> parsed;
    parsed.reserve(rows.size());
    std::set<SweepKey> reported;
    bool valid = true;
    for (const std::string &row : rows) {
        CellSummary cell;
        if (!parseSweepCacheRow(row, cell) ||
            !members.count({cell.workload, cell.config})) {
            valid = false;
            break;
        }
        reported.insert({cell.workload, cell.config});
        parsed.push_back(std::move(cell));
    }
    for (const DeadLetter &failure : failures) {
        if (!members.count({failure.workload, failure.config})) {
            valid = false;
            break;
        }
        reported.insert({failure.workload, failure.config});
    }
    if (valid) {
        for (const SweepKey &key : members)
            if (!cells_.count(key) && !reported.count(key))
                valid = false;
    }
    if (!valid) {
        ++counters_.resultsRejected;
        chargeAttempt(slot.state, slot.attempts,
                      fabric_.shardRetryBudget, deadLettered_,
                      counters_);
        return Accept::Rejected;
    }

    for (CellSummary &cell : parsed) {
        const SweepKey key{cell.workload, cell.config};
        if (cells_.count(key))
            continue;
        new_rows.push_back(serializeSweepCacheRow(cell));
        cells_[key] = std::move(cell);
        ++counters_.cellsExecuted;
    }
    for (DeadLetter &failure : failures) {
        failure.jobId = jobId_;
        failures_.push_back(std::move(failure));
        ++counters_.cellsFailed;
    }
    ++counters_.resultsAccepted;
    completeShard(shard);
    return Accept::Accepted;
}

void
FabricRun::releaseWorker(std::uint64_t worker, bool penalize)
{
    for (Slot &slot : slots_) {
        if (slot.state != ShardState::Leased ||
            slot.worker != worker)
            continue;
        ++counters_.leasesReleased;
        if (penalize) {
            chargeAttempt(slot.state, slot.attempts,
                          fabric_.shardRetryBudget, deadLettered_,
                          counters_);
        } else {
            slot.state = ShardState::Unclaimed;
        }
        slot.worker = 0;
        slot.deadline = 0;
    }
}

unsigned
FabricRun::tick(std::uint64_t now)
{
    unsigned expired = 0;
    for (Slot &slot : slots_) {
        if (slot.state != ShardState::Leased || slot.deadline > now)
            continue;
        ++expired;
        ++counters_.leasesExpired;
        chargeAttempt(slot.state, slot.attempts,
                      fabric_.shardRetryBudget, deadLettered_,
                      counters_);
        slot.worker = 0;
        slot.deadline = 0;
    }
    return expired;
}

bool
FabricRun::done() const
{
    return std::all_of(slots_.begin(), slots_.end(),
                       [](const Slot &slot) {
                           return slot.state ==
                                      ShardState::Completed ||
                                  slot.state ==
                                      ShardState::DeadLettered;
                       });
}

std::vector<DeadLetter>
FabricRun::deadLetterRecords() const
{
    std::set<SweepKey> failed;
    for (const DeadLetter &failure : failures_)
        failed.insert({failure.workload, failure.config});

    std::vector<DeadLetter> records;
    for (unsigned shard = 0; shard < plan_.shardCount; ++shard) {
        if (slots_[shard].state != ShardState::DeadLettered)
            continue;
        for (const SweepKey &key : plan_.shards[shard]) {
            if (cells_.count(key) || failed.count(key))
                continue;
            // The shard never produced a result for this cell, so
            // there is no worker-reported repro; synthesize the
            // shard's first point — the one every attempt executed
            // first, and the likeliest culprit for a livelock or
            // crash that ate the worker.
            ReproSpec spec;
            spec.workload = key.first;
            spec.config = specWithRetryLimit(
                key.second, options_.retryLimits.empty()
                                ? 0
                                : options_.retryLimits.front());
            spec.threads = options_.params.threads;
            spec.ops = options_.params.opsPerThread;
            spec.scale = options_.params.scale;
            spec.seed = options_.params.seed;
            records.push_back(
                {jobId_, key.first, key.second,
                 "shard " + std::to_string(shard) +
                     " dead-lettered after " +
                     std::to_string(slots_[shard].attempts) +
                     " failed attempts (lease expired or worker "
                     "crashed)",
                 makeReproString(spec)});
        }
    }
    return records;
}

FabricRun::Gauges
FabricRun::gauges() const
{
    Gauges g;
    g.total = slots_.size();
    for (const Slot &slot : slots_) {
        switch (slot.state) {
        case ShardState::Unclaimed:
            ++g.unclaimed;
            break;
        case ShardState::Leased:
            ++g.leased;
            break;
        case ShardState::Completed:
            ++g.completed;
            break;
        case ShardState::DeadLettered:
            ++g.deadLettered;
            break;
        }
    }
    return g;
}

unsigned
FabricRun::shardsHeldBy(std::uint64_t worker) const
{
    unsigned held = 0;
    for (const Slot &slot : slots_)
        if (slot.state == ShardState::Leased &&
            slot.worker == worker)
            ++held;
    return held;
}

std::string
buildLeaseGrant(const FabricRun &run, const FabricRun::Grant &grant,
                std::uint64_t ttl_ms)
{
    const SweepOptions &opts = run.options();
    std::string out;
    JsonWriter w = beginWireMessage(out, "lease-grant", 2);
    w.key("id");
    w.value(run.jobId());
    w.key("shard");
    w.value(grant.shard);
    w.key("shards");
    w.value(run.plan().shardCount);
    w.key("ttl");
    w.value(ttl_ms);
    w.key("configs");
    w.beginArray();
    for (const std::string &spec : opts.configs)
        w.value(spec);
    w.endArray();
    w.key("workloads");
    w.beginArray();
    for (const std::string &workload : opts.workloads)
        w.value(workload);
    w.endArray();
    w.key("retries");
    w.beginArray();
    for (unsigned retries : opts.retryLimits)
        w.value(retries);
    w.endArray();
    w.key("seeds");
    w.value(opts.seeds);
    w.key("trim");
    w.value(opts.trimEachSide);
    w.key("ops");
    w.value(opts.params.opsPerThread);
    w.key("threads");
    w.value(opts.params.threads);
    w.key("scale");
    w.value(opts.params.scale);
    w.key("seed");
    w.value(opts.params.seed);
    w.key("jobs");
    w.value(opts.jobs);
    w.key("skip-workloads");
    w.beginArray();
    for (const SweepKey &key : grant.skip)
        w.value(key.first);
    w.endArray();
    w.key("skip-configs");
    w.beginArray();
    for (const SweepKey &key : grant.skip)
        w.value(key.second);
    w.endArray();
    w.endObject();
    return out;
}

bool
parseLeaseGrant(const WireMessage &msg, LeaseGrant &out,
                std::string &error)
{
    out = LeaseGrant();
    out.jobId = msg.text("id");
    if (out.jobId.empty()) {
        error = "lease-grant without a job id";
        return false;
    }
    out.shard = static_cast<unsigned>(msg.number("shard"));
    out.shardCount = static_cast<unsigned>(msg.number("shards"));
    if (out.shardCount == 0 || out.shard >= out.shardCount) {
        error = "lease-grant names shard " +
                std::to_string(out.shard) + " of " +
                std::to_string(out.shardCount);
        return false;
    }
    out.ttlMs = msg.number("ttl", 5000);

    out.options.configs = msg.textList("configs");
    out.options.workloads = msg.textList("workloads");
    if (out.options.configs.empty()) {
        error = "lease-grant without configs";
        return false;
    }
    out.options.retryLimits.clear();
    for (std::uint64_t retries : msg.numberList("retries"))
        out.options.retryLimits.push_back(
            static_cast<unsigned>(retries));
    if (out.options.retryLimits.empty()) {
        error = "lease-grant without retry limits";
        return false;
    }
    out.options.seeds =
        static_cast<unsigned>(msg.number("seeds", 1));
    out.options.trimEachSide =
        static_cast<unsigned>(msg.number("trim", 0));
    out.options.params.opsPerThread = static_cast<unsigned>(
        msg.number("ops", out.options.params.opsPerThread));
    out.options.params.threads = static_cast<unsigned>(
        msg.number("threads", out.options.params.threads));
    out.options.params.scale = static_cast<unsigned>(
        msg.number("scale", out.options.params.scale));
    out.options.params.seed =
        msg.number("seed", out.options.params.seed);
    out.options.jobs = static_cast<unsigned>(msg.number("jobs"));

    const std::vector<std::string> skip_workloads =
        msg.textList("skip-workloads");
    const std::vector<std::string> skip_configs =
        msg.textList("skip-configs");
    if (skip_workloads.size() != skip_configs.size()) {
        error = "lease-grant skip lists disagree in length";
        return false;
    }
    for (std::size_t i = 0; i < skip_workloads.size(); ++i)
        out.skip.push_back({skip_workloads[i], skip_configs[i]});
    return true;
}

std::string
buildShardResult(const std::string &worker,
                 const std::string &job_id, unsigned shard,
                 const std::vector<std::string> &rows,
                 const std::vector<DeadLetter> &failures)
{
    std::string out;
    JsonWriter w = beginWireMessage(out, "shard-result", 2);
    w.key("worker");
    w.value(worker);
    w.key("id");
    w.value(job_id);
    w.key("shard");
    w.value(shard);
    w.key("rows");
    w.beginArray();
    for (const std::string &row : rows)
        w.value(row);
    w.endArray();
    w.key("fail-workloads");
    w.beginArray();
    for (const DeadLetter &failure : failures)
        w.value(failure.workload);
    w.endArray();
    w.key("fail-configs");
    w.beginArray();
    for (const DeadLetter &failure : failures)
        w.value(failure.config);
    w.endArray();
    w.key("fail-errors");
    w.beginArray();
    for (const DeadLetter &failure : failures)
        w.value(failure.error);
    w.endArray();
    w.key("fail-repros");
    w.beginArray();
    for (const DeadLetter &failure : failures)
        w.value(failure.repro);
    w.endArray();
    w.endObject();
    return out;
}

} // namespace clearsim
