/**
 * @file
 * The clearsimd scheduler: one thread that owns all daemon state.
 *
 * Every request, connection event and executor notification arrives
 * through the Mailbox and is handled here, single-threaded — the
 * job table, the dedupe index and the dead-letter queue have
 * exactly one writer, so the service layer needs no locking beyond
 * the queues themselves.
 *
 * Execution is delegated to one executor thread that runs jobs in
 * FIFO order (each job internally fans its points out over the
 * sweep engine's ThreadPool, so one job already saturates the
 * machine; running two would just thrash). The executor reports
 * back through the mailbox's internal lane: cells as they finish,
 * throttled progress, and one terminal JobDone.
 *
 * Request lifecycle (docs/SERVICE.md has the full catalogue):
 *
 *   request -> validate -> canonical job id -> dedupe classify
 *     None          queue the job, ack "queued"
 *     InFlight      subscribe, ack "dedup-inflight"
 *     Completed     ack "dedup-cached" + result immediately
 *     DiskCache     ack "dedup-disk"  + result immediately
 *
 * Failed points never evaporate: each one is appended to the
 * dead-letter queue with its repro string before the subscribers
 * hear "failed".
 */

#ifndef CLEARSIM_SERVICE_SCHEDULER_HH
#define CLEARSIM_SERVICE_SCHEDULER_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "service/dead_letter.hh"
#include "service/dedupe.hh"
#include "service/fabric.hh"
#include "service/mailbox.hh"

namespace clearsim
{

/**
 * Deliver one serialized frame to a connection. Must never block
 * (the daemon backs it with an Outbox); returning false means the
 * connection is gone and the scheduler may drop its subscriptions.
 */
using SendFrameFn =
    std::function<bool(std::uint64_t connection,
                       const std::string &payload)>;

class Scheduler
{
  public:
    struct Options
    {
        /** Dead-letter queue file. */
        std::string dlqPath = "clearsimd_dlq.jsonl";

        /** Sweep cache path ("" = sweepCachePath()). */
        std::string cachePath;

        /** Worker threads per job (0 = hardware concurrency). */
        unsigned jobs = 0;

        /** Sweep-fabric coordinator tuning. */
        FabricOptions fabric;
    };

    Scheduler(const Options &options, SendFrameFn send);

    /** stop() if still running. */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** The intake queue; readers push validated requests here. */
    Mailbox &mailbox() { return mailbox_; }

    /**
     * Process mail until stop(). Blocking — the daemon runs this
     * on a dedicated thread; tests may run it inline.
     */
    void run();

    /**
     * Close the mailbox, cancel the running job and join the
     * executor. Idempotent; callable from any thread.
     */
    void stop();

  private:
    struct Job;
    class Executor;

    void handleRequest(const Mail &mail);
    void handleDisconnect(std::uint64_t connection);
    void handleCellDone(const Mail &mail);
    void handleProgress(const Mail &mail);
    void handleJobDone(const Mail &mail);

    void handleRunOrAnalyze(const Mail &mail, bool analyze);
    void handleSweep(const Mail &mail, bool fabric);
    void handleAudit(const Mail &mail);
    void handleStatus(const Mail &mail);
    void handleCancel(const Mail &mail);
    void handleCatalogue(const Mail &mail);
    void handleDlq(const Mail &mail);

    // The fabric coordinator (docs/SERVICE.md, "Sweep fabric").
    void handleFabricStatus(const Mail &mail);
    void handleLease(const Mail &mail);
    void handleLeaseRenew(const Mail &mail);
    void handleShardResult(const Mail &mail);
    void handleWorkerBye(const Mail &mail);

    /** Start @p job now, or queue it behind the active run. */
    void startFabricJob(std::shared_ptr<Job> job);
    void activateFabric(std::shared_ptr<Job> job);

    /** Expire overdue leases; finish the run when terminal. */
    void fabricTick();

    /** The active run reached a terminal state. */
    void finishFabric();

    /** Milliseconds since the scheduler started (monotonic). */
    std::uint64_t nowMs() const;

    std::string fabricStatusJson() const;

    /** Admit a deduped request, queueing a new job if needed. */
    void admit(const Mail &mail, std::shared_ptr<Job> job);

    void sendTo(std::uint64_t connection, const std::string &frame);
    void broadcast(const Job &job, const std::string &frame);

    std::string statusJson(const std::string &id) const;

    Options options_;
    SendFrameFn send_;
    Mailbox mailbox_;
    DedupeIndex dedupe_;
    DeadLetterQueue dlq_;
    std::unique_ptr<Executor> executor_;

    /** Jobs by canonical id; terminal jobs stay for status. */
    std::map<std::string, std::shared_ptr<Job>> jobs_;

    /** A registered fabric worker connection. */
    struct Worker
    {
        std::string name;
        std::uint64_t lastSeenMs = 0;
    };

    /** Fabric workers by connection id. */
    std::map<std::uint64_t, Worker> workers_;

    /** The active fabric run (at most one; others queue). */
    std::unique_ptr<FabricRun> fabric_;

    /** Fabric jobs waiting for the active run to finish. */
    std::deque<std::shared_ptr<Job>> fabricQueue_;

    /** Fabric counters, aggregated across runs. */
    FabricCounters fabricCounters_;

    /** Monotonic epoch for lease deadlines. */
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace clearsim

#endif // CLEARSIM_SERVICE_SCHEDULER_HH
