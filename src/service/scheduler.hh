/**
 * @file
 * The clearsimd scheduler: one thread that owns all daemon state.
 *
 * Every request, connection event and executor notification arrives
 * through the Mailbox and is handled here, single-threaded — the
 * job table, the dedupe index and the dead-letter queue have
 * exactly one writer, so the service layer needs no locking beyond
 * the queues themselves.
 *
 * Execution is delegated to one executor thread that runs jobs in
 * FIFO order (each job internally fans its points out over the
 * sweep engine's ThreadPool, so one job already saturates the
 * machine; running two would just thrash). The executor reports
 * back through the mailbox's internal lane: cells as they finish,
 * throttled progress, and one terminal JobDone.
 *
 * Request lifecycle (docs/SERVICE.md has the full catalogue):
 *
 *   request -> validate -> canonical job id -> dedupe classify
 *     None          queue the job, ack "queued"
 *     InFlight      subscribe, ack "dedup-inflight"
 *     Completed     ack "dedup-cached" + result immediately
 *     DiskCache     ack "dedup-disk"  + result immediately
 *
 * Failed points never evaporate: each one is appended to the
 * dead-letter queue with its repro string before the subscribers
 * hear "failed".
 */

#ifndef CLEARSIM_SERVICE_SCHEDULER_HH
#define CLEARSIM_SERVICE_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "service/dead_letter.hh"
#include "service/dedupe.hh"
#include "service/mailbox.hh"

namespace clearsim
{

/**
 * Deliver one serialized frame to a connection. Must never block
 * (the daemon backs it with an Outbox); returning false means the
 * connection is gone and the scheduler may drop its subscriptions.
 */
using SendFrameFn =
    std::function<bool(std::uint64_t connection,
                       const std::string &payload)>;

class Scheduler
{
  public:
    struct Options
    {
        /** Dead-letter queue file. */
        std::string dlqPath = "clearsimd_dlq.jsonl";

        /** Sweep cache path ("" = sweepCachePath()). */
        std::string cachePath;

        /** Worker threads per job (0 = hardware concurrency). */
        unsigned jobs = 0;
    };

    Scheduler(const Options &options, SendFrameFn send);

    /** stop() if still running. */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** The intake queue; readers push validated requests here. */
    Mailbox &mailbox() { return mailbox_; }

    /**
     * Process mail until stop(). Blocking — the daemon runs this
     * on a dedicated thread; tests may run it inline.
     */
    void run();

    /**
     * Close the mailbox, cancel the running job and join the
     * executor. Idempotent; callable from any thread.
     */
    void stop();

  private:
    struct Job;
    class Executor;

    void handleRequest(const Mail &mail);
    void handleDisconnect(std::uint64_t connection);
    void handleCellDone(const Mail &mail);
    void handleProgress(const Mail &mail);
    void handleJobDone(const Mail &mail);

    void handleRunOrAnalyze(const Mail &mail, bool analyze);
    void handleSweep(const Mail &mail);
    void handleAudit(const Mail &mail);
    void handleStatus(const Mail &mail);
    void handleCancel(const Mail &mail);
    void handleCatalogue(const Mail &mail);
    void handleDlq(const Mail &mail);

    /** Admit a deduped request, queueing a new job if needed. */
    void admit(const Mail &mail, std::shared_ptr<Job> job);

    void sendTo(std::uint64_t connection, const std::string &frame);
    void broadcast(const Job &job, const std::string &frame);

    std::string statusJson(const std::string &id) const;

    Options options_;
    SendFrameFn send_;
    Mailbox mailbox_;
    DedupeIndex dedupe_;
    DeadLetterQueue dlq_;
    std::unique_ptr<Executor> executor_;

    /** Jobs by canonical id; terminal jobs stay for status. */
    std::map<std::string, std::shared_ptr<Job>> jobs_;
};

} // namespace clearsim

#endif // CLEARSIM_SERVICE_SCHEDULER_HH
