/**
 * @file
 * The clearsimd wire protocol: clearsimd-wire-v1 and -v2.
 *
 * Every frame on the socket is a 4-byte big-endian payload length
 * followed by exactly that many bytes of JSON — one object per
 * frame, no delimiters, no sniffing. The protocol is strict and
 * versioned:
 *
 *  - the first client frame must be a "hello" listing the versions
 *    the client speaks; the server answers "hello-ok" naming the
 *    highest one both sides share, or closes after an "error".
 *    Nothing else is accepted before the handshake.
 *  - every message carries "schema":"clearsim-wire..." and a
 *    "type"; unknown schemas, unknown types and unknown *fields*
 *    are rejected outright (fail closed — an old server never
 *    silently ignores what a newer client meant). A message type
 *    introduced by v2 must carry the v2 schema string; sending it
 *    under the v1 schema is a protocol violation.
 *  - frames above kWireMaxFrame (or of length zero) are protocol
 *    errors and the connection is dropped; the JSON parser behind
 *    parseWireMessage() is itself hardened against truncated and
 *    adversarial bytes (tests/common/json_fuzz_test.cc).
 *
 * v2 adds the sweep-fabric vocabulary (docs/SERVICE.md, "Sweep
 * fabric"): workers lease shards of a sweep grid from the
 * coordinator ("lease"/"lease-grant"/"lease-idle"), renew their
 * leases as a heartbeat ("lease-renew"), return finished shards
 * ("shard-result") and deregister ("worker-bye"); clients start a
 * fabric sweep ("fabric-sweep") and observe it ("fabric-status").
 * The one type v2 retrofits into v1 is "job-aborted": the terminal
 * frame a shutting-down daemon owes every subscriber of an
 * unfinished job, so a shutdown is a clean typed error rather than
 * a truncated read.
 *
 * The framing helpers below work on plain file descriptors so the
 * daemon, the client tool and the in-process tests all share one
 * implementation. docs/SERVICE.md is the message catalogue.
 */

#ifndef CLEARSIM_SERVICE_WIRE_HH
#define CLEARSIM_SERVICE_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"

namespace clearsim
{

/** The baseline protocol version every build speaks. */
inline constexpr const char *kWireSchema = "clearsimd-wire-v1";

/** The fabric protocol version (superset of v1). */
inline constexpr const char *kWireSchemaV2 = "clearsimd-wire-v2";

/** Highest protocol version this build speaks. */
inline constexpr unsigned kWireMaxVersion = 2;

/** The schema string of protocol version @p version (1 or 2). */
const char *wireSchemaName(unsigned version);

/** Hard ceiling on one frame's payload (8 MiB). */
inline constexpr std::uint32_t kWireMaxFrame = 8u << 20;

/**
 * Read one length-prefixed frame from @p fd into @p payload.
 * Blocks until a full frame arrives.
 * @retval false on EOF before any byte (clean close), with
 *         @p error empty; or on any protocol violation (short
 *         header/payload, zero or oversized length, read error),
 *         with @p error describing it.
 */
bool readWireFrame(int fd, std::string &payload, std::string &error);

/**
 * Write @p payload as one length-prefixed frame to @p fd.
 * @retval false on any write error (peer gone) with @p error set.
 */
bool writeWireFrame(int fd, const std::string &payload,
                    std::string &error);

/** A validated protocol message: its type plus the parsed body. */
struct WireMessage
{
    std::string type;

    /** Protocol version the frame's schema string named (1 or 2). */
    unsigned version = 1;

    JsonValue body;

    /** String member by key ("" when absent or not a string). */
    std::string text(const char *key) const;

    /** Unsigned member by key (@p fallback when absent). */
    std::uint64_t number(const char *key,
                        std::uint64_t fallback = 0) const;

    /** String-array member by key (empty when absent). */
    std::vector<std::string> textList(const char *key) const;

    /** Unsigned-array member by key (empty when absent). */
    std::vector<std::uint64_t> numberList(const char *key) const;
};

/**
 * Parse and validate one frame's payload: well-formed JSON object,
 * "schema" naming a version this build speaks, a known "type"
 * available at that version, and no field that is not in that
 * type's allowed set.
 * @retval false with @p error naming the offending field/type
 */
bool parseWireMessage(const std::string &payload, WireMessage &out,
                      std::string &error);

// ---------------------------------------------------------------
// Message builders. Each returns the serialized JSON payload of
// one frame; key order is fixed, so identical arguments always
// produce identical bytes.
// ---------------------------------------------------------------

/**
 * Start a message by hand: writes {"schema":...,"type":... and
 * leaves the object open for the caller's fields. The escape hatch
 * for messages too option-heavy for a fixed-arity builder
 * (lease-grant, shard-result); the caller owns endObject().
 */
JsonWriter beginWireMessage(std::string &out, const char *type,
                            unsigned version = 1);

/** Client: open the handshake offering every version we speak. */
std::string wireHello();

/** Server: handshake accepted, @p version chosen. */
std::string wireHelloOk(const std::string &version);

/**
 * Server: request acknowledged. @p state is "queued",
 * "dedup-inflight", "dedup-cached" or "dedup-disk"; @p tag echoes
 * the client's optional request tag.
 */
std::string wireAck(const std::string &tag, const std::string &id,
                    const std::string &state);

/** Server: throttled job progress. */
std::string wireProgress(const std::string &id, std::uint64_t done,
                         std::uint64_t total);

/** Server: one finished sweep cell, streamed as a cache-CSV row. */
std::string wireCell(const std::string &id, const std::string &row);

/** Server: terminal success; @p format names the payload schema. */
std::string wireResult(const std::string &id,
                       const std::string &format,
                       const std::string &payload);

/** Server: terminal failure, with a repro string when one exists. */
std::string wireFailed(const std::string &id,
                       const std::string &error,
                       const std::string &repro);

/** Server: job cancelled before completion. */
std::string wireCancelled(const std::string &id);

/** Server: request-level error (@p tag echoes the request's). */
std::string wireError(const std::string &tag,
                      const std::string &message);

/**
 * Server: the daemon is shutting down and this unfinished job will
 * not complete. Terminal for every subscriber, like "failed", but
 * with no repro — nothing went wrong with the job itself. Valid
 * under v1 so even pre-fabric clients get a typed goodbye.
 */
std::string wireJobAborted(const std::string &id,
                           const std::string &message);

// --------------------------- v2: the sweep fabric ----------------

/** Worker: ask the coordinator for a shard lease. */
std::string wireLease(const std::string &tag,
                      const std::string &worker);

/** Coordinator: nothing to lease right now; retry in @p ms. */
std::string wireLeaseIdle(std::uint64_t retry_ms);

/** Worker: heartbeat extending the lease on @p shard. */
std::string wireLeaseRenew(const std::string &worker,
                           const std::string &id,
                           std::uint64_t shard);

/** Worker: deregister cleanly (shutdown, not a crash). */
std::string wireWorkerBye(const std::string &tag,
                          const std::string &worker);

} // namespace clearsim

#endif // CLEARSIM_SERVICE_WIRE_HH
