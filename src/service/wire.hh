/**
 * @file
 * The clearsimd wire protocol: clearsimd-wire-v1.
 *
 * Every frame on the socket is a 4-byte big-endian payload length
 * followed by exactly that many bytes of JSON — one object per
 * frame, no delimiters, no sniffing. The protocol is strict and
 * versioned:
 *
 *  - the first client frame must be a "hello" listing the versions
 *    the client speaks; the server answers "hello-ok" naming the
 *    one it picked (today: only clearsimd-wire-v1) or closes after
 *    an "error". Nothing else is accepted before the handshake.
 *  - every message carries "schema":"clearsim-wire..." and a
 *    "type"; unknown schemas, unknown types and unknown *fields*
 *    are rejected outright (fail closed — an old server never
 *    silently ignores what a newer client meant).
 *  - frames above kWireMaxFrame (or of length zero) are protocol
 *    errors and the connection is dropped; the JSON parser behind
 *    parseWireMessage() is itself hardened against truncated and
 *    adversarial bytes (tests/common/json_fuzz_test.cc).
 *
 * The framing helpers below work on plain file descriptors so the
 * daemon, the client tool and the in-process tests all share one
 * implementation. docs/SERVICE.md is the message catalogue.
 */

#ifndef CLEARSIM_SERVICE_WIRE_HH
#define CLEARSIM_SERVICE_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"

namespace clearsim
{

/** The one protocol version this build speaks. */
inline constexpr const char *kWireSchema = "clearsimd-wire-v1";

/** Hard ceiling on one frame's payload (8 MiB). */
inline constexpr std::uint32_t kWireMaxFrame = 8u << 20;

/**
 * Read one length-prefixed frame from @p fd into @p payload.
 * Blocks until a full frame arrives.
 * @retval false on EOF before any byte (clean close), with
 *         @p error empty; or on any protocol violation (short
 *         header/payload, zero or oversized length, read error),
 *         with @p error describing it.
 */
bool readWireFrame(int fd, std::string &payload, std::string &error);

/**
 * Write @p payload as one length-prefixed frame to @p fd.
 * @retval false on any write error (peer gone) with @p error set.
 */
bool writeWireFrame(int fd, const std::string &payload,
                    std::string &error);

/** A validated protocol message: its type plus the parsed body. */
struct WireMessage
{
    std::string type;
    JsonValue body;

    /** String member by key ("" when absent or not a string). */
    std::string text(const char *key) const;

    /** Unsigned member by key (@p fallback when absent). */
    std::uint64_t number(const char *key,
                        std::uint64_t fallback = 0) const;

    /** String-array member by key (empty when absent). */
    std::vector<std::string> textList(const char *key) const;
};

/**
 * Parse and validate one frame's payload: well-formed JSON object,
 * "schema" equal to kWireSchema, a known "type", and no field that
 * is not in that type's allowed set.
 * @retval false with @p error naming the offending field/type
 */
bool parseWireMessage(const std::string &payload, WireMessage &out,
                      std::string &error);

// ---------------------------------------------------------------
// Message builders. Each returns the serialized JSON payload of
// one frame; key order is fixed, so identical arguments always
// produce identical bytes.
// ---------------------------------------------------------------

/** Client: open the handshake offering kWireSchema. */
std::string wireHello();

/** Server: handshake accepted, @p version chosen. */
std::string wireHelloOk(const std::string &version);

/**
 * Server: request acknowledged. @p state is "queued",
 * "dedup-inflight", "dedup-cached" or "dedup-disk"; @p tag echoes
 * the client's optional request tag.
 */
std::string wireAck(const std::string &tag, const std::string &id,
                    const std::string &state);

/** Server: throttled job progress. */
std::string wireProgress(const std::string &id, std::uint64_t done,
                         std::uint64_t total);

/** Server: one finished sweep cell, streamed as a cache-CSV row. */
std::string wireCell(const std::string &id, const std::string &row);

/** Server: terminal success; @p format names the payload schema. */
std::string wireResult(const std::string &id,
                       const std::string &format,
                       const std::string &payload);

/** Server: terminal failure, with a repro string when one exists. */
std::string wireFailed(const std::string &id,
                       const std::string &error,
                       const std::string &repro);

/** Server: job cancelled before completion. */
std::string wireCancelled(const std::string &id);

/** Server: request-level error (@p tag echoes the request's). */
std::string wireError(const std::string &tag,
                      const std::string &message);

} // namespace clearsim

#endif // CLEARSIM_SERVICE_WIRE_HH
