/**
 * @file
 * The clearsimd daemon: the socket layer tying the service stack
 * together.
 *
 *   AF_UNIX listener
 *     accept loop (serve() thread)
 *       per-connection reader thread  -> handshake, then Mailbox
 *       per-connection Outbox         <- scheduler streams frames
 *     Scheduler thread (jobs, dedupe, DLQ)
 *       Executor thread (one job at a time, engine ThreadPool)
 *
 * The handshake is handled right in the reader: the first frame
 * must be a "hello" offering a version this build speaks, anything
 * else gets an "error" frame and the connection closes. After
 * "hello-ok", every valid frame becomes mailbox work; a single
 * malformed frame (bad JSON, unknown type, unknown field, bad
 * framing) is a protocol violation that ends the connection —
 * misbehaving clients are cut off, not accommodated.
 *
 * Daemon runs in-process by design: tests construct one on a
 * temporary socket path and connect through ClientConnection,
 * which is exactly what tools/clearsimd.cpp does behind a main().
 */

#ifndef CLEARSIM_SERVICE_DAEMON_HH
#define CLEARSIM_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/outbox.hh"
#include "service/scheduler.hh"

namespace clearsim
{

class Daemon
{
  public:
    struct Options
    {
        /** AF_UNIX socket path (unlinked and rebound on start). */
        std::string socketPath = "clearsimd.sock";

        Scheduler::Options scheduler;

        /** Mailbox capacity (client-request backpressure bound). */
        std::size_t mailboxCapacity = 64;
    };

    /**
     * Bind the socket and start the scheduler, accept and reader
     * threads. fatal()s when the socket cannot be bound.
     */
    explicit Daemon(const Options &options);

    /** stop() if still running. */
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** The bound socket path (what clients connect to). */
    const std::string &socketPath() const
    {
        return options_.socketPath;
    }

    /** Block until stop() is called from another thread. */
    void wait();

    /**
     * Shut down: stop accepting, close every connection, stop the
     * scheduler. Idempotent.
     */
    void stop();

  private:
    struct Connection
    {
        std::uint64_t id = 0;
        int fd = -1;
        /** Negotiated wire version (1 until hello-ok is sent). */
        unsigned version = 1;
        std::unique_ptr<Outbox> outbox;
        std::thread reader;
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> connection);
    bool sendFrame(std::uint64_t connection,
                   const std::string &payload);
    void dropConnection(std::uint64_t id);

    Options options_;
    int listenFd_ = -1;
    std::unique_ptr<Scheduler> scheduler_;
    std::thread schedulerThread_;
    std::thread acceptThread_;

    std::mutex mutex_;
    std::condition_variable stopped_;
    std::map<std::uint64_t, std::shared_ptr<Connection>>
        connections_;

    /**
     * Thread handles of readers that tore their own connection
     * down (a thread cannot join itself); stop() reaps them.
     */
    std::vector<std::thread> zombies_;
    std::uint64_t nextConnectionId_ = 1;
    std::atomic<bool> stopping_{false};
};

} // namespace clearsim

#endif // CLEARSIM_SERVICE_DAEMON_HH
