/**
 * @file
 * Canonical job identity and request deduplication.
 *
 * Two clients asking for the same experiment must cost one
 * execution. That requires "the same" to be a canonical string, not
 * an accident of field order or spelling:
 *
 *  - a *run* or *analyze* job is identified by its repro-style
 *    canonical string: the validated ConfigRegistry spec (with the
 *    retry limit folded in as ":maxRetries=N", exactly like the
 *    sweep engine names its points) plus the workload parameters in
 *    fixed order;
 *  - a *sweep* job is identified by sweepOptionsHash() over its
 *    SweepOptions — the same hash that keys the on-disk cache, so
 *    "already requested", "already computed this session" and
 *    "already on disk from last week" are all one lookup space.
 *
 * DedupeIndex answers where a matching result can come from:
 * nowhere (run it), an in-flight job (subscribe), a finished job
 * held in memory (reply now), or the on-disk sweep cache (reply
 * now, read-through via SweepCacheStore).
 */

#ifndef CLEARSIM_SERVICE_DEDUPE_HH
#define CLEARSIM_SERVICE_DEDUPE_HH

#include <map>
#include <string>

#include "harness/audit.hh"
#include "harness/runner.hh"
#include "harness/sweep_cache.hh"

namespace clearsim
{

/**
 * Canonical id of a single-run job. @p config must already be
 * validated; the result folds the retry limit into the spec and
 * lists the workload parameters in fixed order.
 */
std::string runJobId(const std::string &config,
                     const std::string &workload, unsigned retries,
                     const WorkloadParams &params);

/** Canonical id of an analyze job (same shape, "analyze" prefix). */
std::string analyzeJobId(const std::string &config,
                         const std::string &workload,
                         unsigned retries,
                         const WorkloadParams &params);

/** Canonical id of a sweep job: "sweep{<16-hex options hash>}". */
std::string sweepJobId(const SweepOptions &opts);

/** Canonical id of an audit job: "audit{<16-hex options hash>}". */
std::string auditJobId(const AuditOptions &opts);

/** Where a duplicate request's answer can come from. */
enum class DedupeSource
{
    /** Nothing matches: execute. */
    None,
    /** A job with this id is queued or running: subscribe to it. */
    InFlight,
    /** A finished job with this id is in memory: answer from it. */
    Completed,
    /** The on-disk sweep cache holds this exact sweep. */
    DiskCache,
};

/** Wire "state" value announced in the ack for each source. */
const char *dedupeStateName(DedupeSource source);

/**
 * The dedupe index the scheduler consults before queueing work.
 * Jobs move from in-flight to completed; failed and cancelled jobs
 * are *removed* instead (a retry of a failed spec should execute
 * again, not be deduped into the stale failure).
 */
class DedupeIndex
{
  public:
    explicit DedupeIndex(SweepCacheStore store = SweepCacheStore(""));

    /** Record a job as queued/running. */
    void markInFlight(const std::string &id);

    /** Move a job to the completed set, remembering @p payload. */
    void markCompleted(const std::string &id,
                       const std::string &format,
                       const std::string &payload);

    /** Forget a job (failed, cancelled). */
    void forget(const std::string &id);

    /**
     * Classify @p id. For Completed, @p format / @p payload are
     * filled from memory; for sweep ids, a miss falls through to
     * the on-disk cache, which needs the original options to
     * validate the hash — pass them via @p sweep_opts (nullptr for
     * non-sweep jobs).
     */
    DedupeSource classify(const std::string &id,
                          const SweepOptions *sweep_opts,
                          std::string &format,
                          std::string &payload) const;

    const SweepCacheStore &store() const { return store_; }

  private:
    struct CompletedJob
    {
        std::string format;
        std::string payload;
    };

    SweepCacheStore store_;
    std::map<std::string, bool> inFlight_;
    std::map<std::string, CompletedJob> completed_;
};

} // namespace clearsim

#endif // CLEARSIM_SERVICE_DEDUPE_HH
