/**
 * @file
 * The scheduler's mailbox: the single intake point for everything
 * that happens in clearsimd.
 *
 * Two lanes feed one consumer (the scheduler thread):
 *
 *  - the *client* lane carries parsed requests from the
 *    per-connection reader threads. It is bounded: when clients
 *    outpace the scheduler, pushClient() blocks the reader, the
 *    reader stops draining its socket, the kernel buffer fills and
 *    the client's own send() stalls — end-to-end backpressure with
 *    no unbounded queue anywhere.
 *  - the *internal* lane carries events from the executor (cell
 *    finished, progress, job done) and connection lifecycle
 *    notices. It is unbounded and popped with priority, which is
 *    what makes blocking the client lane safe: the scheduler can
 *    always drain internal events, so the executor never deadlocks
 *    against a full mailbox.
 *
 * close() wakes every waiter; producers then drop messages and
 * consumers read the remaining backlog before seeing closed.
 */

#ifndef CLEARSIM_SERVICE_MAILBOX_HH
#define CLEARSIM_SERVICE_MAILBOX_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "service/dead_letter.hh"
#include "service/wire.hh"

namespace clearsim
{

/** What one mailbox entry describes. */
enum class MailKind
{
    /** A validated client request (message set, from a reader). */
    Request,
    /** A connection closed; its subscriptions must be dropped. */
    Disconnect,
    /** Executor: one sweep cell finished (payload = CSV row). */
    CellDone,
    /** Executor: progress sample (done/total set). */
    Progress,
    /** Executor: job reached a terminal state (payload varies). */
    JobDone,
};

/** One unit of scheduler work. */
struct Mail
{
    MailKind kind = MailKind::Request;

    /** Originating connection (Request/Disconnect). */
    std::uint64_t connection = 0;

    /** The parsed request (Request only). */
    WireMessage message;

    /** Job the event belongs to (executor lanes). */
    std::string jobId;

    /** Event payload: a cell row, or a terminal result. */
    std::string payload;

    std::uint64_t done = 0;
    std::uint64_t total = 0;

    /** JobDone: "done", "failed" or "cancelled". */
    std::string state;

    /** JobDone(done): payload format name ("sweep-cache-csv"...). */
    std::string format;

    /** JobDone(failed): the first failing point's message. */
    std::string error;

    /** JobDone(failed): every failed point, DLQ-ready. */
    std::vector<DeadLetter> failures;
};

class Mailbox
{
  public:
    /** @p capacity bounds the client lane only. */
    explicit Mailbox(std::size_t capacity = 64);

    /**
     * Enqueue a client request, blocking while the lane is full.
     * @retval false when the mailbox closed (message dropped)
     */
    bool pushClient(Mail mail);

    /**
     * Enqueue an internal event; never blocks.
     * @retval false when the mailbox closed (message dropped)
     */
    bool pushInternal(Mail mail);

    /**
     * Dequeue the next message, internal lane first; blocks while
     * both lanes are empty.
     * @retval false when closed and fully drained
     */
    bool pop(Mail &out);

    /** Like pop() but gives up after @p ms milliseconds. */
    bool popFor(Mail &out, std::uint64_t ms);

    /** Wake all producers and consumers; no further pushes land. */
    void close();

    bool closed() const;

  private:
    bool popLocked(Mail &out, std::unique_lock<std::mutex> &lock);

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable readable_;
    std::condition_variable writable_;
    std::deque<Mail> client_;
    std::deque<Mail> internal_;
    bool closed_ = false;
};

} // namespace clearsim

#endif // CLEARSIM_SERVICE_MAILBOX_HH
