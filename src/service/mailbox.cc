#include "service/mailbox.hh"

#include <chrono>

namespace clearsim
{

Mailbox::Mailbox(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

bool
Mailbox::pushClient(Mail mail)
{
    std::unique_lock<std::mutex> lock(mutex_);
    writable_.wait(lock, [this] {
        return closed_ || client_.size() < capacity_;
    });
    if (closed_)
        return false;
    client_.push_back(std::move(mail));
    readable_.notify_one();
    return true;
}

bool
Mailbox::pushInternal(Mail mail)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
        return false;
    internal_.push_back(std::move(mail));
    readable_.notify_one();
    return true;
}

bool
Mailbox::popLocked(Mail &out, std::unique_lock<std::mutex> &lock)
{
    if (!internal_.empty()) {
        out = std::move(internal_.front());
        internal_.pop_front();
        return true;
    }
    if (!client_.empty()) {
        out = std::move(client_.front());
        client_.pop_front();
        // A slot opened: unblock one waiting reader thread.
        lock.unlock();
        writable_.notify_one();
        return true;
    }
    return false;
}

bool
Mailbox::pop(Mail &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    readable_.wait(lock, [this] {
        return closed_ || !internal_.empty() || !client_.empty();
    });
    return popLocked(out, lock);
}

bool
Mailbox::popFor(Mail &out, std::uint64_t ms)
{
    std::unique_lock<std::mutex> lock(mutex_);
    readable_.wait_for(lock, std::chrono::milliseconds(ms), [this] {
        return closed_ || !internal_.empty() || !client_.empty();
    });
    return popLocked(out, lock);
}

void
Mailbox::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    readable_.notify_all();
    writable_.notify_all();
}

bool
Mailbox::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

} // namespace clearsim
