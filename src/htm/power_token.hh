/**
 * @file
 * The PowerTM power-mode token.
 *
 * PowerTM (Dice, Herlihy, Kogan; TACO 2018) raises the priority of a
 * transaction that has already failed once, but allows only one
 * power-mode transaction system-wide. This class is that single
 * token: a retrying transaction tries to acquire it, and holds it
 * until commit or final abort.
 */

#ifndef CLEARSIM_HTM_POWER_TOKEN_HH
#define CLEARSIM_HTM_POWER_TOKEN_HH

#include <cstdint>

#include "common/types.hh"

namespace clearsim
{

/** The single system-wide power-mode slot. */
class PowerToken
{
  public:
    /** Try to take the token. @retval true if now held by core. */
    bool
    tryAcquire(CoreId core)
    {
        if (holder_ == core)
            return true;
        if (holder_ != kNoCore)
            return false;
        holder_ = core;
        ++acquisitions_;
        return true;
    }

    /** Release the token if held by core. */
    void
    release(CoreId core)
    {
        if (holder_ == core)
            holder_ = kNoCore;
    }

    /** True if core currently runs in power mode. */
    bool isHolder(CoreId core) const { return holder_ == core; }

    /** The current holder, or kNoCore. */
    CoreId holder() const { return holder_; }

    /** Total successful acquisitions (stats). */
    std::uint64_t acquisitions() const { return acquisitions_; }

    /** Drop the token unconditionally. */
    void reset() { holder_ = kNoCore; }

  private:
    CoreId holder_ = kNoCore;
    std::uint64_t acquisitions_ = 0;
};

} // namespace clearsim

#endif // CLEARSIM_HTM_POWER_TOKEN_HH
