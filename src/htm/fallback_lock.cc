#include "htm/fallback_lock.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"

namespace clearsim
{

bool
FallbackLock::tryAcquireWrite(CoreId core)
{
    if (writer_ != kNoCore || readers_ != 0) {
        if (tracer_) {
            tracer_->emitAt(
                TraceKind::FallbackContended, core,
                FallbackPayload{readers_, writer_ != kNoCore});
        }
        return false;
    }
    writer_ = core;
    ++writerAcqs_;

    // The fallback executor's first non-speculative store to the
    // lock line invalidates it out of every subscriber's read set:
    // all in-flight speculative attempts abort.
    std::vector<std::pair<CoreId, TxParticipant *>> doomed;
    doomed.swap(subscribers_);
    for (auto &[c, tx] : doomed) {
        (void)c;
        tx->doomRemote(AbortReason::OtherFallback, line_);
    }
    return true;
}

void
FallbackLock::releaseWrite(CoreId core)
{
    CLEARSIM_ASSERT(writer_ == core,
                    "releaseWrite by a core that is not the writer");
    writer_ = kNoCore;
    if (tracer_) {
        tracer_->emitAt(TraceKind::FallbackReleased, core,
                        FallbackPayload{readers_, false});
    }
    fireWaiters();
}

bool
FallbackLock::tryAcquireRead(CoreId core)
{
    if (writer_ != kNoCore) {
        if (tracer_) {
            tracer_->emitAt(TraceKind::FallbackContended, core,
                            FallbackPayload{readers_, true});
        }
        return false;
    }
    ++readers_;
    if (tracer_) {
        tracer_->emitAt(TraceKind::FallbackReadAcquired, core,
                        FallbackPayload{readers_, false});
    }
    return true;
}

void
FallbackLock::releaseRead(CoreId core)
{
    CLEARSIM_ASSERT(readers_ > 0, "releaseRead with no readers");
    --readers_;
    if (tracer_) {
        tracer_->emitAt(TraceKind::FallbackReleased, core,
                        FallbackPayload{readers_, false});
    }
    if (readers_ == 0)
        fireWaiters();
}

void
FallbackLock::subscribe(CoreId core, TxParticipant *tx)
{
    CLEARSIM_ASSERT(writer_ == kNoCore,
                    "speculative subscribe while fallback lock held");
    subscribers_.emplace_back(core, tx);
}

void
FallbackLock::unsubscribe(CoreId core)
{
    subscribers_.erase(
        std::remove_if(subscribers_.begin(), subscribers_.end(),
                       [core](const auto &p) {
                           return p.first == core;
                       }),
        subscribers_.end());
}

void
FallbackLock::onRelease(WakeCallback cb)
{
    if (writer_ == kNoCore && readers_ == 0) {
        cb();
        return;
    }
    waiters_.push_back(std::move(cb));
}

void
FallbackLock::fireWaiters()
{
    std::vector<WakeCallback> waiters = std::move(waiters_);
    waiters_.clear();
    for (auto &cb : waiters)
        cb();
}

void
FallbackLock::reset()
{
    writer_ = kNoCore;
    readers_ = 0;
    subscribers_.clear();
    waiters_.clear();
}

} // namespace clearsim
