/**
 * @file
 * The fallback lock of one lock domain (one workload's global lock).
 *
 * Semantics follow Section 2.1 and 4.3/4.4 of the paper:
 *
 *  - A thread giving up on speculation acquires the lock exclusively
 *    (write mode) and executes serialized. At acquisition, every
 *    subscribed speculative transaction aborts ("Other Fallback"),
 *    because the lock line sits in their read sets.
 *  - A speculative attempt subscribes at begin; if the lock is
 *    already write-held the attempt aborts immediately
 *    ("Explicit Fallback") and the thread spins until free.
 *  - NS-CL and S-CL executions acquire the lock in read (shared)
 *    mode before cacheline locking, which keeps them mutually
 *    exclusive with fallback execution but concurrent with each
 *    other (Figures 3 and 4).
 */

#ifndef CLEARSIM_HTM_FALLBACK_LOCK_HH
#define CLEARSIM_HTM_FALLBACK_LOCK_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/trace.hh"
#include "common/types.hh"
#include "htm/conflict_manager.hh"

namespace clearsim
{

/** Reader/writer fallback lock with speculative subscription. */
class FallbackLock
{
  public:
    using WakeCallback = std::function<void()>;

    /**
     * @param line the simulated cacheline the lock variable lives
     *        in; charged as a memory access by callers
     */
    explicit FallbackLock(LineAddr line) : line_(line) {}

    /** The cacheline holding the lock variable. */
    LineAddr line() const { return line_; }

    /** True if a fallback executor holds the lock exclusively. */
    bool writerHeld() const { return writer_ != kNoCore; }

    /** The writer core, or kNoCore. */
    CoreId writer() const { return writer_; }

    /** Number of NS-CL / S-CL read holders. */
    unsigned readerCount() const { return readers_; }

    /**
     * Try to take the lock exclusively. Succeeds only with no
     * writer and no readers; on success every subscribed
     * speculative transaction is doomed with OtherFallback.
     */
    bool tryAcquireWrite(CoreId core);

    /** Release exclusive ownership; wakes all waiters. */
    void releaseWrite(CoreId core);

    /** Try to take the lock shared (NS-CL / S-CL prologue). */
    bool tryAcquireRead(CoreId core);

    /** Release one shared hold; wakes waiters when count drops. */
    void releaseRead(CoreId core);

    /**
     * Subscribe a speculative transaction: it aborts if a writer
     * acquires. Must not be called while a writer holds the lock.
     */
    void subscribe(CoreId core, TxParticipant *tx);

    /** Remove a subscription (commit or abort). */
    void unsubscribe(CoreId core);

    /**
     * One-shot callback fired at the next release event (write
     * release, or reader count reaching zero).
     */
    void onRelease(WakeCallback cb);

    /** Total exclusive acquisitions (stats). */
    std::uint64_t writerAcquisitions() const { return writerAcqs_; }

    /** Report contention events through t (null = disabled). */
    void attachTracer(const Tracer *t) { tracer_ = t; }

    /** Drop all state. */
    void reset();

  private:
    void fireWaiters();

    LineAddr line_;
    CoreId writer_ = kNoCore;
    unsigned readers_ = 0;
    std::vector<std::pair<CoreId, TxParticipant *>> subscribers_;
    std::vector<WakeCallback> waiters_;
    std::uint64_t writerAcqs_ = 0;
    const Tracer *tracer_ = nullptr;
};

} // namespace clearsim

#endif // CLEARSIM_HTM_FALLBACK_LOCK_HH
