/**
 * @file
 * Counters collected during one simulation run.
 *
 * Every figure of the paper's evaluation is computed from these:
 * commits by mode (Fig. 12), commits by retry count (Fig. 13),
 * aborts by category (Fig. 11), aborts per commit (Fig. 9),
 * discovery overhead cycles (Fig. 8 overlay), and the per-region
 * mutability profiles behind Table 1 and Figure 1.
 */

#ifndef CLEARSIM_HTM_HTM_STATS_HH
#define CLEARSIM_HTM_HTM_STATS_HH

#include <array>
#include <cstdint>
#include <map>

#include "common/stats.hh"
#include "common/types.hh"
#include "htm/htm_types.hh"

namespace clearsim
{

/** Dynamic mutability profile of one static atomic region. */
struct RegionProfile
{
    /** Completed invocations. */
    std::uint64_t invocations = 0;

    /** Invocations that needed at least one retry. */
    std::uint64_t retryingInvocations = 0;

    /**
     * Retrying invocations where both the first attempt and the
     * first retry produced complete footprints (i.e., the abort was
     * a memory conflict observed through failed-mode discovery, not
     * a fallback-lock or capacity event). The Figure 1 denominator.
     */
    std::uint64_t comparableRetries = 0;

    /**
     * Comparable retries whose first retry touched exactly the
     * cachelines of the first attempt and fit in 32 lines
     * (the Figure 1 numerator).
     */
    std::uint64_t immutableRetries = 0;

    /** The region ever used a load-derived address or branch. */
    bool sawIndirection = false;

    /** Footprint differed between two attempts of one invocation. */
    bool footprintChanged = false;

    /** Largest footprint (in cachelines) observed. */
    std::uint64_t maxFootprintLines = 0;

    // --- abort attribution / per-attempt maxima (the dynamic side
    // of the static analyzer's dominance cross-check) ---

    /** Aborts of this region with a capacity/structure cause. */
    std::uint64_t capacityAborts = 0;

    /** Aborts whose failed-mode discovery ran out of SQ entries. */
    std::uint64_t sqFullAborts = 0;

    /** Largest micro-op count of any single attempt. */
    std::uint64_t maxAttemptUops = 0;

    /** Largest load count of any single attempt. */
    std::uint64_t maxAttemptLoads = 0;

    /** Largest store count of any single attempt. */
    std::uint64_t maxAttemptStores = 0;
};

/** All counters for one run of one workload under one config. */
struct HtmStats
{
    // --- commits ---
    std::uint64_t commits = 0;
    std::array<std::uint64_t, kNumExecModes> commitsByMode{};

    /**
     * Histogram over the number of counted retries a non-fallback
     * commit needed (bucket 0 = committed first try).
     */
    BoundedHistogram commitsByRetries{32};

    /** Retry counts of commits that ended on the fallback path. */
    BoundedHistogram fallbackCommitRetries{32};

    // --- aborts ---
    std::uint64_t aborts = 0;
    std::array<std::uint64_t, kNumAbortCategories> abortsByCategory{};

    // --- timing decomposition ---
    /** Cycles spent continuing discovery after a conflict. */
    std::uint64_t discoveryFailedModeCycles = 0;

    // --- work executed (energy inputs) ---
    std::uint64_t committedUops = 0;
    std::uint64_t abortedUops = 0;

    // --- CLEAR machinery ---
    std::uint64_t nsClAttempts = 0;
    std::uint64_t sClAttempts = 0;
    std::uint64_t cachelineLocksAcquired = 0;
    std::uint64_t crtInsertions = 0;
    std::uint64_t discoveryDisabled = 0;

    // --- fallback lock ---
    std::uint64_t fallbackAcquisitions = 0;

    // --- backoff ---
    /**
     * Cycles spent in each backoff wait (speculative retry delays,
     * lock-retry waits, fallback spins). Feeds the
     * cycles-in-backoff distribution of the stats export.
     */
    Distribution backoffWaits;

    // --- per-static-region profiling (Table 1, Figure 1) ---
    std::map<RegionPc, RegionProfile> regions;

    /** Record a committed attempt. */
    void
    recordCommit(ExecMode mode, std::uint64_t counted_retries)
    {
        ++commits;
        ++commitsByMode[static_cast<unsigned>(mode)];
        if (mode == ExecMode::Fallback)
            fallbackCommitRetries.record(counted_retries);
        else
            commitsByRetries.record(counted_retries);
    }

    /** Record an abort event. */
    void
    recordAbort(AbortReason reason)
    {
        ++aborts;
        ++abortsByCategory[static_cast<unsigned>(categorize(reason))];
    }

    /** Aborts per committed transaction (Figure 9). */
    double
    abortsPerCommit() const
    {
        return commits == 0
            ? 0.0
            : static_cast<double>(aborts) /
                  static_cast<double>(commits);
    }

    /** Fraction of commits that took the fallback path. */
    double
    fallbackFraction() const
    {
        if (commits == 0)
            return 0.0;
        const auto fb =
            commitsByMode[static_cast<unsigned>(ExecMode::Fallback)];
        return static_cast<double>(fb) / static_cast<double>(commits);
    }

    /**
     * Among commits that needed at least one counted retry, the
     * fraction that committed after exactly one (Figure 13).
     */
    double
    singleRetryFraction() const
    {
        const std::uint64_t retried = commitsByRetries.total() -
                                      commitsByRetries.count(0) +
                                      fallbackCommitRetries.total();
        if (retried == 0)
            return 0.0;
        return static_cast<double>(commitsByRetries.count(1)) /
               static_cast<double>(retried);
    }

    /** Merge counters from another run (multi-seed aggregation). */
    void
    merge(const HtmStats &other)
    {
        commits += other.commits;
        for (unsigned i = 0; i < kNumExecModes; ++i)
            commitsByMode[i] += other.commitsByMode[i];
        commitsByRetries.merge(other.commitsByRetries);
        fallbackCommitRetries.merge(other.fallbackCommitRetries);
        aborts += other.aborts;
        for (unsigned i = 0; i < kNumAbortCategories; ++i)
            abortsByCategory[i] += other.abortsByCategory[i];
        discoveryFailedModeCycles += other.discoveryFailedModeCycles;
        committedUops += other.committedUops;
        abortedUops += other.abortedUops;
        nsClAttempts += other.nsClAttempts;
        sClAttempts += other.sClAttempts;
        cachelineLocksAcquired += other.cachelineLocksAcquired;
        crtInsertions += other.crtInsertions;
        discoveryDisabled += other.discoveryDisabled;
        fallbackAcquisitions += other.fallbackAcquisitions;
        backoffWaits.merge(other.backoffWaits);
        for (const auto &[pc, profile] : other.regions) {
            RegionProfile &mine = regions[pc];
            mine.invocations += profile.invocations;
            mine.retryingInvocations += profile.retryingInvocations;
            mine.comparableRetries += profile.comparableRetries;
            mine.immutableRetries += profile.immutableRetries;
            mine.sawIndirection |= profile.sawIndirection;
            mine.footprintChanged |= profile.footprintChanged;
            if (profile.maxFootprintLines > mine.maxFootprintLines)
                mine.maxFootprintLines = profile.maxFootprintLines;
            mine.capacityAborts += profile.capacityAborts;
            mine.sqFullAborts += profile.sqFullAborts;
            if (profile.maxAttemptUops > mine.maxAttemptUops)
                mine.maxAttemptUops = profile.maxAttemptUops;
            if (profile.maxAttemptLoads > mine.maxAttemptLoads)
                mine.maxAttemptLoads = profile.maxAttemptLoads;
            if (profile.maxAttemptStores > mine.maxAttemptStores)
                mine.maxAttemptStores = profile.maxAttemptStores;
        }
    }
};

} // namespace clearsim

#endif // CLEARSIM_HTM_HTM_STATS_HH
