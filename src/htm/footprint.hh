/**
 * @file
 * Recording of the cacheline footprint of one atomic-region
 * execution attempt: the raw material of CLEAR's discovery phase
 * and of the mutability measurements behind Table 1 and Figure 1.
 */

#ifndef CLEARSIM_HTM_FOOTPRINT_HH
#define CLEARSIM_HTM_FOOTPRINT_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace clearsim
{

/** One distinct cacheline touched by an attempt. */
struct FootprintEntry
{
    LineAddr line = 0;
    /** The attempt wrote this line (Needs Locking candidate). */
    bool wrote = false;
};

/**
 * Ordered set of distinct cachelines accessed by one attempt.
 *
 * Recording capacity is bounded; past the bound only the overflow
 * flag is kept, since a footprint too large for the ALT can never
 * be cacheline-locked anyway.
 */
class Footprint
{
  public:
    explicit Footprint(std::size_t capacity = 64)
        : capacity_(capacity)
    {
    }

    /** Record one access. Returns false once overflowed. */
    bool
    record(LineAddr line, bool wrote)
    {
        // Word-granular accesses hit the same 64-byte line in runs,
        // so remembering the last entry skips the hash probe for
        // the common repeat.
        if (!entries_.empty() && entries_[last_].line == line) {
            entries_[last_].wrote |= wrote;
            return true;
        }
        std::size_t *at = index_.find(line);
        if (at != nullptr) {
            last_ = *at;
            entries_[*at].wrote |= wrote;
            return true;
        }
        if (entries_.size() >= capacity_) {
            overflowed_ = true;
            return false;
        }
        index_[line] = entries_.size();
        last_ = entries_.size();
        entries_.push_back(FootprintEntry{line, wrote});
        return true;
    }

    /** Distinct lines recorded (excludes overflowed accesses). */
    std::size_t size() const { return entries_.size(); }

    /** True if the footprint exceeded recording capacity. */
    bool overflowed() const { return overflowed_; }

    /** True if line was recorded. */
    bool contains(LineAddr line) const
    {
        return index_.contains(line);
    }

    /** True if line was recorded as written. */
    bool
    wrote(LineAddr line) const
    {
        const std::size_t *at = index_.find(line);
        return at != nullptr && entries_[*at].wrote;
    }

    const std::vector<FootprintEntry> &entries() const
    {
        return entries_;
    }

    /**
     * True if both footprints are complete and touch exactly the
     * same set of cachelines (write flags ignored: Figure 1 asks
     * about the accessed set).
     */
    bool
    sameLines(const Footprint &other) const
    {
        if (overflowed_ || other.overflowed_)
            return false;
        if (entries_.size() != other.entries_.size())
            return false;
        return std::all_of(entries_.begin(), entries_.end(),
                           [&other](const FootprintEntry &e) {
                               return other.contains(e.line);
                           });
    }

    /** Drop all recorded entries. */
    void
    clear()
    {
        entries_.clear();
        index_.clear();
        overflowed_ = false;
        last_ = 0;
    }

  private:
    std::size_t capacity_;
    std::vector<FootprintEntry> entries_;
    FlatMap<LineAddr, std::size_t> index_;
    /** Index of the most recently recorded entry (0 when empty). */
    std::size_t last_ = 0;
    bool overflowed_ = false;
};

} // namespace clearsim

#endif // CLEARSIM_HTM_FOOTPRINT_HH
