#include "htm/conflict_manager.hh"

#include "common/log.hh"
#include "fault/fault_injector.hh"

namespace clearsim
{

ConflictManager::ConflictManager(const SystemConfig &cfg,
                                 PowerToken &power)
    : cfg_(cfg), policy_(makeConflictPolicy(cfg)), power_(power),
      participants_(cfg.numCores, nullptr)
{
    CLEARSIM_ASSERT(cfg.numCores <= 64,
                    "reader/writer masks are 64-bit");
}

void
ConflictManager::registerParticipant(CoreId core, TxParticipant *tx)
{
    CLEARSIM_ASSERT(core < participants_.size(),
                    "participant core out of range");
    participants_[core] = tx;
}

void
ConflictManager::addRead(CoreId core, LineAddr line)
{
    lines_[line].readers |= (1ull << core);
}

void
ConflictManager::addWrite(CoreId core, LineAddr line)
{
    lines_[line].writers |= (1ull << core);
}

void
ConflictManager::remove(CoreId core, LineAddr line)
{
    LineSets *sets = lines_.find(line);
    if (sets == nullptr)
        return;
    const std::uint64_t mask = ~(1ull << core);
    sets->readers &= mask;
    sets->writers &= mask;
    if (sets->readers == 0 && sets->writers == 0)
        lines_.erase(line);
}

bool
ConflictManager::hasRemoteWriter(CoreId core, LineAddr line) const
{
    const LineSets *sets = lines_.find(line);
    if (sets == nullptr)
        return false;
    return (sets->writers & ~(1ull << core)) != 0;
}

ArbitrationOutcome
ConflictManager::arbitrate(CoreId requester, LineAddr line,
                           bool is_write, RequesterClass cls)
{
    ArbitrationOutcome outcome;

    // Failed-mode discovery requests are flagged as non-aborting:
    // they never damage other transactions (Section 4.1), and the
    // issuer is already doomed.
    if (cls == RequesterClass::FailedDiscovery)
        return outcome;

    const LineSets *sets = lines_.find(line);
    if (sets == nullptr)
        return outcome;

    std::uint64_t conflicting = sets->writers;
    if (is_write)
        conflicting |= sets->readers;
    conflicting &= ~(1ull << requester);
    if (conflicting == 0)
        return outcome;

    RequesterView req;
    req.cls = cls;
    req.powerMode = power_.isHolder(requester);
    const bool reqIsScl = cls == RequesterClass::SclUnlocked ||
                          cls == RequesterClass::SclLocking;

    // Non-speculative and NS-CL requesters cannot abort; they
    // always win (their victims were reachable only because the
    // request is part of enforcing mutual exclusion).
    const bool canLose =
        cls == RequesterClass::Speculative || reqIsScl;

    // Pass 1: can any holder force the requester to abort? If so,
    // the request is answered with a nack and nobody else is
    // harmed. The policy owns the priority rules (PowerTM, CLEAR's
    // Section 5.2 S-CL/power nacks).
    // The reader/writer masks are 64-bit, so 64 cores is already a
    // hard design bound; a stack array avoids a heap allocation on
    // every contested arbitration.
    TxParticipant *victims[64];
    unsigned numVictims = 0;
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        if (!(conflicting & (1ull << c)))
            continue;
        TxParticipant *holder = participants_[c];
        if (!holder || !holder->conflictable())
            continue;

        HolderView view;
        view.powerMode = holder->inPowerMode();
        view.sclMode = holder->execMode() == ExecMode::SCl;

        if (canLose && policy_->holderNacksRequester(req, view)) {
            outcome.abortSelf = true;
            outcome.selfReason = AbortReason::Nacked;
            ++resolved_;
            if (tracer_) {
                tracer_->emitAt(TraceKind::ConflictVerdict, requester,
                                ConflictPayload{line, 0, false});
            }
            return outcome;
        }
        victims[numVictims++] = holder;
    }

    // Fault seam: adversarially flip a verdict the requester was
    // about to win into a nack (only offered where the requester
    // can lose; must-commit requesters always keep their win).
    if (faults_ != nullptr && canLose && numVictims != 0 &&
        faults_->flipVerdict(line, requester)) {
        outcome.abortSelf = true;
        outcome.selfReason = AbortReason::Nacked;
        ++resolved_;
        if (tracer_) {
            tracer_->emitAt(TraceKind::ConflictVerdict, requester,
                            ConflictPayload{line, 0, false});
        }
        return outcome;
    }

    // Pass 2: the requester wins; doom every conflicting holder.
    for (unsigned v = 0; v < numVictims; ++v) {
        victims[v]->doomRemote(AbortReason::MemoryConflict, line);
        ++resolved_;
    }
    if (tracer_ && numVictims != 0) {
        tracer_->emitAt(TraceKind::ConflictVerdict, requester,
                        ConflictPayload{line, numVictims, true});
    }
    return outcome;
}

void
ConflictManager::reset()
{
    lines_.clear();
}

} // namespace clearsim
