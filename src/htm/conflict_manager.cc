#include "htm/conflict_manager.hh"

#include "common/log.hh"
#include "fault/fault_injector.hh"

namespace clearsim
{

ConflictManager::ConflictManager(const SystemConfig &cfg,
                                 PowerToken &power)
    : cfg_(cfg), policy_(makeConflictPolicy(cfg)), power_(power),
      participants_(cfg.numCores, nullptr)
{
}

void
ConflictManager::registerParticipant(CoreId core, TxParticipant *tx)
{
    CLEARSIM_ASSERT(core < participants_.size(),
                    "participant core out of range");
    participants_[core] = tx;
}

void
ConflictManager::addRead(CoreId core, LineAddr line)
{
    lines_[line].readers |= (1ull << core);
}

void
ConflictManager::addWrite(CoreId core, LineAddr line)
{
    lines_[line].writers |= (1ull << core);
}

void
ConflictManager::remove(CoreId core, LineAddr line)
{
    auto it = lines_.find(line);
    if (it == lines_.end())
        return;
    const std::uint64_t mask = ~(1ull << core);
    it->second.readers &= mask;
    it->second.writers &= mask;
    if (it->second.readers == 0 && it->second.writers == 0)
        lines_.erase(it);
}

bool
ConflictManager::hasRemoteWriter(CoreId core, LineAddr line) const
{
    auto it = lines_.find(line);
    if (it == lines_.end())
        return false;
    return (it->second.writers & ~(1ull << core)) != 0;
}

ArbitrationOutcome
ConflictManager::arbitrate(CoreId requester, LineAddr line,
                           bool is_write, RequesterClass cls)
{
    ArbitrationOutcome outcome;

    // Failed-mode discovery requests are flagged as non-aborting:
    // they never damage other transactions (Section 4.1), and the
    // issuer is already doomed.
    if (cls == RequesterClass::FailedDiscovery)
        return outcome;

    auto it = lines_.find(line);
    if (it == lines_.end())
        return outcome;

    std::uint64_t conflicting = it->second.writers;
    if (is_write)
        conflicting |= it->second.readers;
    conflicting &= ~(1ull << requester);
    if (conflicting == 0)
        return outcome;

    RequesterView req;
    req.cls = cls;
    req.powerMode = power_.isHolder(requester);
    const bool reqIsScl = cls == RequesterClass::SclUnlocked ||
                          cls == RequesterClass::SclLocking;

    // Non-speculative and NS-CL requesters cannot abort; they
    // always win (their victims were reachable only because the
    // request is part of enforcing mutual exclusion).
    const bool canLose =
        cls == RequesterClass::Speculative || reqIsScl;

    // Pass 1: can any holder force the requester to abort? If so,
    // the request is answered with a nack and nobody else is
    // harmed. The policy owns the priority rules (PowerTM, CLEAR's
    // Section 5.2 S-CL/power nacks).
    std::vector<TxParticipant *> victims;
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        if (!(conflicting & (1ull << c)))
            continue;
        TxParticipant *holder = participants_[c];
        if (!holder || !holder->conflictable())
            continue;

        HolderView view;
        view.powerMode = holder->inPowerMode();
        view.sclMode = holder->execMode() == ExecMode::SCl;

        if (canLose && policy_->holderNacksRequester(req, view)) {
            outcome.abortSelf = true;
            outcome.selfReason = AbortReason::Nacked;
            ++resolved_;
            if (tracer_) {
                tracer_->emitAt(TraceKind::ConflictVerdict, requester,
                                ConflictPayload{line, 0, false});
            }
            return outcome;
        }
        victims.push_back(holder);
    }

    // Fault seam: adversarially flip a verdict the requester was
    // about to win into a nack (only offered where the requester
    // can lose; must-commit requesters always keep their win).
    if (faults_ != nullptr && canLose && !victims.empty() &&
        faults_->flipVerdict(line, requester)) {
        outcome.abortSelf = true;
        outcome.selfReason = AbortReason::Nacked;
        ++resolved_;
        if (tracer_) {
            tracer_->emitAt(TraceKind::ConflictVerdict, requester,
                            ConflictPayload{line, 0, false});
        }
        return outcome;
    }

    // Pass 2: the requester wins; doom every conflicting holder.
    for (TxParticipant *victim : victims) {
        victim->doomRemote(AbortReason::MemoryConflict, line);
        ++resolved_;
    }
    if (tracer_ && !victims.empty()) {
        tracer_->emitAt(
            TraceKind::ConflictVerdict, requester,
            ConflictPayload{
                line, static_cast<unsigned>(victims.size()), true});
    }
    return outcome;
}

void
ConflictManager::reset()
{
    lines_.clear();
}

} // namespace clearsim
