/**
 * @file
 * TxContext: the per-core transactional execution context.
 *
 * One TxContext drives every execution attempt of the atomic regions
 * running on a core, in any of the four modes (speculative, S-CL,
 * NS-CL, fallback). It owns the read/write sets, the speculative
 * write buffer (redo log), the discovery footprint, the failed-mode
 * continuation, and the interaction with the conflict manager, the
 * lock manager and the fallback lock.
 *
 * Atomic-region bodies run as coroutines calling the awaitable body
 * API (load/store/alu/toAddr/branchOn). An abort unwinds the body by
 * throwing TxAbort from the next awaited operation.
 */

#ifndef CLEARSIM_HTM_TX_CONTEXT_HH
#define CLEARSIM_HTM_TX_CONTEXT_HH

#include <coroutine>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/types.hh"
#include "cpu/core_resources.hh"
#include "cpu/tx_value.hh"
#include "htm/conflict_manager.hh"
#include "htm/fallback_lock.hh"
#include "htm/footprint.hh"
#include "htm/htm_stats.hh"
#include "htm/htm_types.hh"
#include "htm/power_token.hh"
#include "htm/region_record.hh"
#include "mem/memory_system.hh"
#include "sim/task.hh"

namespace clearsim
{

class FaultInjector;

/** One cacheline of an S-CL / NS-CL lock plan. */
struct LockPlanEntry
{
    LineAddr line = 0;
    /** Lock this line (NS-CL: all; S-CL: writes + CRT reads). */
    bool needsLock = false;
    /** Set by the locker once the lock is held. */
    bool locked = false;
};

/** Per-core transactional execution context. */
class TxContext : public TxParticipant
{
  public:
    TxContext(CoreId core, const SystemConfig &cfg, EventQueue &queue,
              MemorySystem &mem, ConflictManager &conflicts,
              FallbackLock &fallback, PowerToken &power,
              HtmStats &stats);

    TxContext(const TxContext &) = delete;
    TxContext &operator=(const TxContext &) = delete;

    // ------------------------------------------------------------
    // Invocation lifecycle (one dynamic execution of a static AR)
    // ------------------------------------------------------------

    /** Start a new invocation of the region at pc. */
    void beginInvocation(RegionPc pc);

    /** Finish the invocation (after a successful commit). */
    void endInvocation();

    // ------------------------------------------------------------
    // Attempt lifecycle
    // ------------------------------------------------------------

    /**
     * Arm the context for one execution attempt.
     * @param mode execution mode of this attempt
     * @param discovery_active track footprint/taint and continue in
     *        failed mode after a conflict (CLEAR discovery or
     *        profile mode)
     */
    void beginAttempt(ExecMode mode, bool discovery_active);

    /**
     * Install the cacheline lock plan for an S-CL/NS-CL attempt.
     * Entries must be sorted by (directory set, line).
     */
    void setLockPlan(std::vector<LockPlanEntry> plan);

    /**
     * Commit the attempt: charge commit latency, flush the write
     * buffer to memory, release all transactional state.
     * Must only be called when !doomed().
     * @retval false if a conflict arrived during the commit itself;
     *         the caller must abort instead.
     */
    Task<bool> commit();

    /**
     * Abort the attempt: charge the abort penalty, discard the
     * write buffer, drop speculatively acquired lines, release all
     * transactional state. Marks discovery complete if the body ran
     * to its end in failed mode (reached_end).
     */
    SimTask abortAttempt(bool reached_end);

    // ------------------------------------------------------------
    // Body API (used by workload AR coroutines)
    // ------------------------------------------------------------

    /** Transactional load; the result is tainted (load-derived). */
    Task<TxValue> load(Addr addr);

    /** Transactional store (buffered until commit). */
    SimTask store(Addr addr, TxValue value);

    /** Account n ALU micro-ops (latency folded into next op). */
    void alu(unsigned n = 1);

    /**
     * Use a value as a memory address. A tainted value marks the
     * region as containing an indirection.
     */
    Addr toAddr(const TxValue &value);

    /**
     * Branch on a value. A tainted condition marks the region's
     * control flow as value-dependent (treated as an indirection).
     */
    bool branchOn(const TxValue &value);

    /** A value from a non-deterministic source (always tainted). */
    TxValue nonDeterministic(std::uint64_t raw) const
    {
        return TxValue(raw, true);
    }

    /** Explicit XABORT. */
    [[noreturn]] void explicitAbort();

    // ------------------------------------------------------------
    // Lock-plan coordination (used by the CLEAR executor)
    // ------------------------------------------------------------

    std::vector<LockPlanEntry> &lockPlan() { return lockPlan_; }

    /** Mark a planned line locked; wakes the body if waiting. */
    void notifyPlannedLocked(LineAddr line);

    /** Locker finished (all locks held, or it gave up). */
    void notifyLockerDone();

    /** Awaitable: park the driver until the locker is done. */
    auto
    waitLockerDone()
    {
        struct Awaiter
        {
            TxContext &tx;

            bool await_ready() const { return tx.lockerDone_; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                tx.lockerWaiter_ = h;
            }

            void await_resume() const {}
        };
        return Awaiter{*this};
    }

    // ------------------------------------------------------------
    // State queries (used by the region driver)
    // ------------------------------------------------------------

    CoreId coreId() const { return core_; }
    ExecMode mode() const { return mode_; }
    bool active() const { return active_; }
    bool doomed() const { return doomReason_ != AbortReason::None; }
    AbortReason doomReason() const { return doomReason_; }

    /** Culprit cacheline of the doom (0 if unknown/none). */
    LineAddr doomLine() const { return doomLine_; }

    bool inFailedMode() const { return failedMode_; }

    /** Footprint of the current/last attempt. */
    const Footprint &footprint() const { return footprint_; }

    /** The attempt saw a tainted address or branch. */
    bool sawIndirection() const
    {
        return indirectionSeen_ || taintedBranchSeen_;
    }

    /** Discovery observed the complete AR (commit or failed-mode
     *  execution that reached the region's end). */
    bool discoveryComplete() const { return discoveryComplete_; }

    /** The failed-mode discovery ran out of SQ entries. */
    bool sqOverflowed() const { return sqOverflowEvent_; }

    /** Core structures overflowed during the attempt. */
    bool structuresOverflowed() const { return structOverflowEvent_; }

    /** Read lines that received conflicting invalidations (CRT feed). */
    const std::vector<LineAddr> &conflictingReads() const
    {
        return conflictingReads_;
    }

    /** Micro-ops executed in the current attempt. */
    const CoreResources &resources() const { return resources_; }

    /**
     * Override the speculation scope for subsequent attempts. The
     * adaptive preset's Sle action speculates selected regions
     * in-core while the rest of the run stays on the configured
     * scope; the executor re-asserts the scope at every invocation,
     * so an override never leaks into the next region.
     */
    void setScope(SpeculationScope scope)
    {
        scope_ = scope;
        resources_.setScope(scope);
    }

    /** The speculation scope attempts currently run under. */
    SpeculationScope scope() const { return scope_; }

    /** Current region PC. */
    RegionPc regionPc() const { return pc_; }

    /**
     * Doom the running attempt locally (e.g., nacked request).
     * @param line conflicting cacheline if known (abort attribution)
     */
    void doomLocal(AbortReason reason, LineAddr line = 0);

    /**
     * Install (or clear, with nullptr) the region-record sink.
     * While installed, every body operation is reported to it in
     * program order with address provenance; without one, each
     * operation costs a single null-pointer branch, so a recording
     * run is cycle-identical to a plain run.
     */
    void setRecorder(RegionRecordSink *recorder)
    {
        recorder_ = recorder;
    }

    /**
     * Install (or clear, with nullptr) the fault injector. While
     * installed, accesses may be forced to abort, free lines may
     * answer with spurious NACK/Retry responses, and lock-retry
     * backoffs may be stretched; without one, each seam costs a
     * single null-pointer branch.
     */
    void setFaults(FaultInjector *faults) { faults_ = faults; }

    // ------------------------------------------------------------
    // TxParticipant interface
    // ------------------------------------------------------------

    bool conflictable() const override;
    bool inPowerMode() const override;
    ExecMode execMode() const override { return mode_; }
    void doomRemote(AbortReason reason, LineAddr line) override;

  private:
    friend class PlannedLockAwaiter;

    /**
     * Throw TxAbort or transition into failed-mode discovery. The
     * not-doomed fast path (the overwhelming majority of the checks
     * at access boundaries) stays inline.
     */
    void
    handleDoomAtBoundary()
    {
        if (doomReason_ == AbortReason::None || failedMode_)
            return;
        handleDoomSlow();
    }

    /** The doomed tail of handleDoomAtBoundary(). */
    void handleDoomSlow();

    /** Record an access in the discovery footprint. */
    void recordAccess(LineAddr line, bool wrote)
    {
        footprint_.record(line, wrote);
    }

    /** Fold pending ALU work into the next memory op's latency. */
    Cycle takePendingAluCycles();

    /** Buffer-aware functional read. */
    std::uint64_t readData(Addr addr) const;

    /** Wait while a remote core holds the line locked. */
    SimTask resolveLineLock(LineAddr line, bool is_write);

    /** Wait until the locker has locked a planned line. */
    SimTask waitPlannedLock(LineAddr line);

    /** True if this attempt follows a lock plan. */
    bool
    usesLockPlan() const
    {
        return mode_ == ExecMode::SCl || mode_ == ExecMode::NsCl;
    }

    /** Plan entry for a line, or nullptr. */
    LockPlanEntry *findPlanEntry(LineAddr line);

    /** Release sets, pins, buffer, subscriptions. */
    void releaseAttemptState(bool keep_ownership);

    CoreId core_;
    const SystemConfig &cfg_;
    EventQueue &queue_;
    MemorySystem &mem_;
    ConflictManager &conflicts_;
    FallbackLock &fallback_;
    PowerToken &power_;
    HtmStats &stats_;

    // Invocation state.
    RegionPc pc_ = 0;

    /** Effective scope; cfg.scope unless overridden per region. */
    SpeculationScope scope_;

    // Attempt state.
    bool active_ = false;
    ExecMode mode_ = ExecMode::Speculative;
    bool discoveryActive_ = false;
    AbortReason doomReason_ = AbortReason::None;
    LineAddr doomLine_ = 0;
    bool failedMode_ = false;
    Cycle failedModeStart_ = 0;
    std::uint64_t failedModeStoreBase_ = 0;
    bool discoveryComplete_ = false;
    bool sqOverflowEvent_ = false;
    bool structOverflowEvent_ = false;
    bool indirectionSeen_ = false;
    bool taintedBranchSeen_ = false;

    /** Analysis hook; null unless a recording run is active. */
    RegionRecordSink *recorder_ = nullptr;

    /** Fault seam; null unless fault injection is active. */
    FaultInjector *faults_ = nullptr;

    /**
     * Provenance of the most recent toAddr() result, consumed by
     * the next load/store as its address provenance. A best-effort
     * attribution: bodies that materialize several addresses before
     * using them under-attribute per-op depth, but the per-region
     * maximum is always captured at the AddrUse op itself.
     */
    std::uint16_t pendingAddrDepth_ = 0;
    bool pendingAddrTainted_ = false;

    CoreResources resources_;
    Footprint footprint_;
    FlatSet<LineAddr> readSet_;
    FlatSet<LineAddr> writeSet_;
    FlatMap<Addr, std::uint64_t> writeBuffer_;
    std::vector<LineAddr> conflictingReads_;
    unsigned pendingAluUops_ = 0;

    // Lock plan (S-CL / NS-CL).
    std::vector<LockPlanEntry> lockPlan_;
    std::unordered_map<LineAddr, std::size_t> lockPlanIndex_;
    bool lockerDone_ = true;
    std::coroutine_handle<> lockerWaiter_;
    LineAddr plannedWaitLine_ = 0;
    bool waitingPlannedLock_ = false;
    std::coroutine_handle<> plannedWaiter_;
};

} // namespace clearsim

#endif // CLEARSIM_HTM_TX_CONTEXT_HH
