/**
 * @file
 * Shared vocabulary of the transactional layer: execution modes,
 * abort reasons, and the exception type used to unwind an aborted
 * atomic-region body.
 */

#ifndef CLEARSIM_HTM_HTM_TYPES_HH
#define CLEARSIM_HTM_HTM_TYPES_HH

#include <cstdint>

#include "common/types.hh"

namespace clearsim
{

/**
 * Mode an atomic-region attempt executes in (Figure 12's commit
 * breakdown uses these four categories).
 */
enum class ExecMode : std::uint8_t
{
    /** Plain speculative execution (HTM transaction). */
    Speculative,
    /** Speculative cacheline-locked execution (CLEAR S-CL). */
    SCl,
    /** Non-speculative cacheline-locked execution (CLEAR NS-CL). */
    NsCl,
    /** Serialized execution under the fallback lock. */
    Fallback,
};

/** Number of ExecMode values, for array-indexed stats. */
constexpr unsigned kNumExecModes = 4;

/**
 * Why an attempt aborted. The first four map onto Figure 11's
 * breakdown; the remaining values are folded into its "Others"
 * category when reporting.
 */
enum class AbortReason : std::uint8_t
{
    None,
    /** Read/write-set conflict with another AR. */
    MemoryConflict,
    /** A request was nacked (locked line, power/S-CL nack). */
    Nacked,
    /** Wanted to begin but found the fallback lock taken. */
    ExplicitFallback,
    /** Another thread took the fallback lock mid-execution. */
    OtherFallback,
    /** Speculative resources exhausted (L1 set pinning, SQ). */
    CapacityOverflow,
    /** S-CL accessed a line outside the discovery-learned set. */
    Deviation,
    /** Explicit XABORT from the workload. */
    Explicit,
};

/** Figure 11's four abort categories. */
enum class AbortCategory : std::uint8_t
{
    MemoryConflict,
    ExplicitFallback,
    OtherFallback,
    Others,
};

/** Number of AbortCategory values. */
constexpr unsigned kNumAbortCategories = 4;

/** Map a detailed abort reason onto the paper's four categories. */
constexpr AbortCategory
categorize(AbortReason reason)
{
    switch (reason) {
      case AbortReason::MemoryConflict:
      case AbortReason::Nacked:
        return AbortCategory::MemoryConflict;
      case AbortReason::ExplicitFallback:
        return AbortCategory::ExplicitFallback;
      case AbortReason::OtherFallback:
        return AbortCategory::OtherFallback;
      default:
        return AbortCategory::Others;
    }
}

/**
 * True if this abort increments the retry counter that eventually
 * triggers the fallback path. Fallback-lock related aborts do not
 * (Section 7: "certain types of aborts do not increase the counter
 * to take the fallback path").
 */
constexpr bool
countsTowardRetryLimit(AbortReason reason)
{
    return reason != AbortReason::ExplicitFallback &&
           reason != AbortReason::OtherFallback;
}

/** Who is issuing the request being arbitrated. */
enum class RequesterClass : std::uint8_t
{
    /** Load/store of a plain speculative transaction. */
    Speculative,
    /** Load of a failed-mode discovery (flagged non-aborting). */
    FailedDiscovery,
    /** Non-locked load inside an S-CL execution. */
    SclUnlocked,
    /** S-CL locker acquiring a planned cacheline lock. */
    SclLocking,
    /** NS-CL locker acquiring a planned cacheline lock. */
    NsClLocking,
    /** Non-speculative access (fallback execution). */
    NonSpeculative,
};

/**
 * Exception thrown from a memory-op awaitable to unwind an aborted
 * AR body coroutine back to its region driver.
 */
struct TxAbort
{
    AbortReason reason = AbortReason::None;
};

} // namespace clearsim

#endif // CLEARSIM_HTM_HTM_TYPES_HH
