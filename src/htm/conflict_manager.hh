/**
 * @file
 * Conflict detection and resolution among in-flight atomic regions.
 *
 * The conflict manager mirrors the coherence-embedded read/write-set
 * tracking of the modeled HTM: for every cacheline it knows which
 * cores have it in their transactional read or write set, and on
 * each request it arbitrates between the requester and the holders
 * according to the active policy (requester-wins or PowerTM) and
 * the CLEAR interaction rules of Section 5.2.
 */

#ifndef CLEARSIM_HTM_CONFLICT_MANAGER_HH
#define CLEARSIM_HTM_CONFLICT_MANAGER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "htm/htm_types.hh"
#include "htm/power_token.hh"
#include "policy/conflict_policy.hh"

namespace clearsim
{

class FaultInjector;

/**
 * What a transaction must expose so the conflict manager can
 * arbitrate against it. Implemented by TxContext.
 */
class TxParticipant
{
  public:
    virtual ~TxParticipant() = default;

    /**
     * True if this participant can lose a conflict: it is running a
     * speculative attempt (Speculative or S-CL) and is not already
     * doomed or in failed-mode discovery.
     */
    virtual bool conflictable() const = 0;

    /** True if it currently holds the PowerTM token. */
    virtual bool inPowerMode() const = 0;

    /** Current execution mode. */
    virtual ExecMode execMode() const = 0;

    /**
     * Lose a conflict: mark the transaction doomed. The victim
     * unwinds at its next instruction boundary.
     * @param reason why it aborts
     * @param line the conflicting cacheline
     */
    virtual void doomRemote(AbortReason reason, LineAddr line) = 0;
};

/** Outcome of arbitrating one request. */
struct ArbitrationOutcome
{
    /** The requester lost and must abort before performing it. */
    bool abortSelf = false;
    /** Reason to use when aborting self. */
    AbortReason selfReason = AbortReason::None;
};

/** Global read/write-set registry plus the arbitration policy. */
class ConflictManager
{
  public:
    /**
     * The conflict-resolution rules are delegated to the
     * ConflictResolutionPolicy the configuration selects
     * (requester-wins or PowerTM, with the Section 5.2 CLEAR
     * interaction when enabled).
     */
    ConflictManager(const SystemConfig &cfg, PowerToken &power);

    /** Register the participant occupying a core slot. */
    void registerParticipant(CoreId core, TxParticipant *tx);

    /** Add a line to a core's transactional read set. */
    void addRead(CoreId core, LineAddr line);

    /** Add a line to a core's transactional write set. */
    void addWrite(CoreId core, LineAddr line);

    /** Remove one line from a core's sets (both directions). */
    void remove(CoreId core, LineAddr line);

    /** True if any other core has line in its write set. */
    bool hasRemoteWriter(CoreId core, LineAddr line) const;

    /**
     * Arbitrate a request against all conflicting holders.
     *
     * If the requester wins, every conflicting, conflictable holder
     * is doomed (doomRemote) before this returns. If the requester
     * loses (PowerTM priority, Section 5.2 nacks) nobody is doomed
     * and abortSelf is set.
     *
     * @param requester issuing core
     * @param line target cacheline
     * @param is_write exclusive-intent request
     * @param cls requester class
     */
    ArbitrationOutcome arbitrate(CoreId requester, LineAddr line,
                                 bool is_write, RequesterClass cls);

    /** Total conflicts resolved (stats). */
    std::uint64_t conflictsResolved() const { return resolved_; }

    /** The resolution policy in force. */
    const ConflictResolutionPolicy &policy() const { return *policy_; }

    /** Report arbitration verdicts through t (null = disabled). */
    void attachTracer(const Tracer *t) { tracer_ = t; }

    /**
     * Adversarial verdicts through f (null = faithful arbitration):
     * a winning requester that could lose may be flipped to a nack.
     */
    void setFaults(FaultInjector *faults) { faults_ = faults; }

    /** Drop all registry state (between runs). */
    void reset();

  private:
    struct LineSets
    {
        std::uint64_t readers = 0;
        std::uint64_t writers = 0;
    };

    SystemConfig cfg_;
    std::unique_ptr<ConflictResolutionPolicy> policy_;
    PowerToken &power_;
    std::vector<TxParticipant *> participants_;
    FlatMap<LineAddr, LineSets> lines_;
    std::uint64_t resolved_ = 0;
    const Tracer *tracer_ = nullptr;
    FaultInjector *faults_ = nullptr;
};

} // namespace clearsim

#endif // CLEARSIM_HTM_CONFLICT_MANAGER_HH
