/**
 * @file
 * Region-recording interface: the hook layer that lifts atomic-region
 * executions into the analyzable IR consumed by src/analysis.
 *
 * A RegionRecordSink installed on a System (System::setRegionRecorder)
 * receives one callback per body operation of every execution attempt,
 * in program order, together with the address provenance that the
 * TxValue taint machinery tracks (cpu/tx_value.hh): whether the
 * address or branch condition derived from an in-AR load, and through
 * how many dependent loads (the pointer-chase depth).
 *
 * The hooks mirror the Tracer discipline: a null-unless-installed
 * pointer per TxContext, so the disabled path costs one branch per
 * operation and a recording run is cycle-identical to a plain run.
 */

#ifndef CLEARSIM_HTM_REGION_RECORD_HH
#define CLEARSIM_HTM_REGION_RECORD_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "htm/htm_types.hh"

namespace clearsim
{

/** Kind of one recorded IR operation. */
enum class IrOpKind : std::uint8_t
{
    Load,    ///< transactional load of a cacheline
    Store,   ///< transactional (buffered) store
    Alu,     ///< batch of ALU/branch micro-ops
    AddrUse, ///< a TxValue was materialized as a memory address
    Branch,  ///< control flow depended on a TxValue
};

/**
 * One operation of the region IR. Loads and stores carry the line
 * they touch and the provenance of the address that named it; ALU
 * ops carry the batch size; AddrUse/Branch carry the provenance of
 * the consumed value.
 */
struct IrOp
{
    IrOpKind kind = IrOpKind::Alu;

    /** Touched cacheline (Load/Store only). */
    LineAddr line = 0;

    /** Micro-ops in this op (Alu batch size; 1 for Load/Store). */
    std::uint32_t count = 1;

    /**
     * Pointer-chase depth of the address (Load/Store/AddrUse) or
     * condition (Branch): the longest chain of in-AR loads feeding
     * the value, 0 for region-invariant values.
     */
    std::uint16_t chaseDepth = 0;

    /** The value derived from an in-AR load (indirection taint). */
    bool tainted = false;
};

/** Ordered IR of one execution attempt of a region. */
struct RegionAttemptIr
{
    RegionPc pc = 0;
    ExecMode mode = ExecMode::Speculative;
    std::vector<IrOp> ops;

    /** The body ran to the region's end (footprint complete). */
    bool reachedEnd = false;

    /** The attempt committed. */
    bool committed = false;
};

/**
 * Receiver of region-recording callbacks. Implemented by the
 * analysis layer (analysis/region_ir.hh); the htm layer only
 * depends on this interface.
 */
class RegionRecordSink
{
  public:
    virtual ~RegionRecordSink() = default;

    /** A new invocation of the region at pc starts on core. */
    virtual void onInvocationBegin(CoreId core, RegionPc pc) = 0;

    /** The invocation on core committed. */
    virtual void onInvocationEnd(CoreId core) = 0;

    /** An execution attempt starts on core. */
    virtual void onAttemptBegin(CoreId core, RegionPc pc,
                                ExecMode mode) = 0;

    /** One body operation executed on core (program order). */
    virtual void onOp(CoreId core, const IrOp &op) = 0;

    /**
     * The attempt on core ended.
     * @param reached_end body ran to the region's end
     * @param committed the attempt committed
     */
    virtual void onAttemptEnd(CoreId core, bool reached_end,
                              bool committed) = 0;
};

} // namespace clearsim

#endif // CLEARSIM_HTM_REGION_RECORD_HH
