#include "htm/tx_context.hh"

#include <limits>

#include "common/log.hh"
#include "fault/fault_injector.hh"

namespace clearsim
{

namespace
{

/**
 * Awaitable that parks the coroutine until a remotely locked line
 * is released, then applies the retry backoff of the Figure 6 fix.
 */
class LockWaitAwaiter
{
  public:
    LockWaitAwaiter(LockManager &locks, EventQueue &queue,
                    LineAddr line, Cycle backoff)
        : locks_(locks), queue_(queue), line_(line), backoff_(backoff)
    {
    }

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> handle)
    {
        EventQueue &queue = queue_;
        const Cycle backoff = backoff_;
        locks_.onUnlock(line_, [&queue, backoff, handle] {
            queue.scheduleAfter(backoff,
                                [handle] { handle.resume(); });
        });
    }

    void await_resume() const {}

  private:
    LockManager &locks_;
    EventQueue &queue_;
    LineAddr line_;
    Cycle backoff_;
};

/** Awaitable parking the body until the locker locks a plan line. */
class PlannedLockWait
{
  public:
    PlannedLockWait(TxContext &tx, LineAddr line,
                    bool &waiting_flag, LineAddr &wait_line,
                    std::coroutine_handle<> &waiter_slot)
        : line_(line), waitingFlag_(waiting_flag),
          waitLine_(wait_line), waiterSlot_(waiter_slot)
    {
        (void)tx;
    }

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> handle)
    {
        waitingFlag_ = true;
        waitLine_ = line_;
        waiterSlot_ = handle;
    }

    void await_resume() const {}

  private:
    LineAddr line_;
    bool &waitingFlag_;
    LineAddr &waitLine_;
    std::coroutine_handle<> &waiterSlot_;
};

} // namespace

TxContext::TxContext(CoreId core, const SystemConfig &cfg,
                     EventQueue &queue, MemorySystem &mem,
                     ConflictManager &conflicts, FallbackLock &fallback,
                     PowerToken &power, HtmStats &stats)
    : core_(core), cfg_(cfg), queue_(queue), mem_(mem),
      conflicts_(conflicts), fallback_(fallback), power_(power),
      stats_(stats), scope_(cfg.scope),
      resources_(cfg.core, cfg.scope),
      footprint_(footprintCapacity(cfg.clear))
{
    // The analyzer and the retry policy both reason about the
    // recording bound; it must extend past the lockable (ALT) bound
    // or "just fits" and "overflows" would be indistinguishable.
    CLEARSIM_ASSERT(footprintCapacity(cfg.clear) > cfg.clear.altEntries,
                    "footprint capacity must exceed the ALT size");
    conflicts_.registerParticipant(core, this);
}

void
TxContext::beginInvocation(RegionPc pc)
{
    pc_ = pc;
    if (recorder_)
        recorder_->onInvocationBegin(core_, pc);
}

void
TxContext::endInvocation()
{
    power_.release(core_);
    if (recorder_)
        recorder_->onInvocationEnd(core_);
}

void
TxContext::beginAttempt(ExecMode mode, bool discovery_active)
{
    CLEARSIM_ASSERT(!active_, "beginAttempt while an attempt is active");
    active_ = true;
    mode_ = mode;
    discoveryActive_ = discovery_active;
    doomReason_ = AbortReason::None;
    doomLine_ = 0;
    failedMode_ = false;
    failedModeStart_ = 0;
    failedModeStoreBase_ = 0;
    discoveryComplete_ = false;
    sqOverflowEvent_ = false;
    structOverflowEvent_ = false;
    indirectionSeen_ = false;
    taintedBranchSeen_ = false;
    resources_.reset();
    footprint_.clear();
    readSet_.clear();
    writeSet_.clear();
    writeBuffer_.clear();
    conflictingReads_.clear();
    pendingAluUops_ = 0;
    pendingAddrDepth_ = 0;
    pendingAddrTainted_ = false;
    lockPlan_.clear();
    lockPlanIndex_.clear();
    lockerDone_ = true;
    lockerWaiter_ = nullptr;
    waitingPlannedLock_ = false;
    plannedWaiter_ = nullptr;
    if (recorder_)
        recorder_->onAttemptBegin(core_, pc_, mode);
}

void
TxContext::setLockPlan(std::vector<LockPlanEntry> plan)
{
    lockPlan_ = std::move(plan);
    lockPlanIndex_.clear();
    for (std::size_t i = 0; i < lockPlan_.size(); ++i)
        lockPlanIndex_.emplace(lockPlan_[i].line, i);
    lockerDone_ = false;
}

LockPlanEntry *
TxContext::findPlanEntry(LineAddr line)
{
    auto it = lockPlanIndex_.find(line);
    return it == lockPlanIndex_.end() ? nullptr
                                      : &lockPlan_[it->second];
}

void
TxContext::doomLocal(AbortReason reason, LineAddr line)
{
    if (doomReason_ == AbortReason::None) {
        doomReason_ = reason;
        doomLine_ = line;
    }
}

void
TxContext::doomRemote(AbortReason reason, LineAddr line)
{
    if (!active_)
        return;
    // A conflicting invalidation of a read-only line feeds the CRT
    // so a future S-CL execution locks it too (Section 5).
    if (reason == AbortReason::MemoryConflict &&
        readSet_.count(line) != 0 && writeSet_.count(line) == 0) {
        conflictingReads_.push_back(line);
    }
    doomLocal(reason, line);
}

bool
TxContext::conflictable() const
{
    return active_ && doomReason_ == AbortReason::None &&
           !failedMode_ &&
           (mode_ == ExecMode::Speculative || mode_ == ExecMode::SCl);
}

bool
TxContext::inPowerMode() const
{
    return power_.isHolder(core_);
}

void
TxContext::handleDoomSlow()
{
    // Section 4.1: on a conflict, a discovery-enabled speculative
    // attempt does not abort; it continues in failed mode so the
    // whole footprint can be learned.
    const bool conflict_like =
        doomReason_ == AbortReason::MemoryConflict ||
        doomReason_ == AbortReason::Nacked;
    if (discoveryActive_ && mode_ == ExecMode::Speculative &&
        conflict_like && cfg_.clear.failedModeDiscovery) {
        failedMode_ = true;
        failedModeStart_ = queue_.now();
        failedModeStoreBase_ = resources_.stores();
        return;
    }
    throw TxAbort{doomReason_};
}

Cycle
TxContext::takePendingAluCycles()
{
    const unsigned width = cfg_.core.issueWidth;
    const Cycle cycles = (pendingAluUops_ + width - 1) / width;
    pendingAluUops_ = 0;
    return cycles;
}

std::uint64_t
TxContext::readData(Addr addr) const
{
    const Addr word = addr & ~Addr(7);
    const std::uint64_t *data = writeBuffer_.find(word);
    if (data != nullptr)
        return *data;
    return mem_.store().read(word);
}

void
TxContext::alu(unsigned n)
{
    resources_.countAlu(n);
    pendingAluUops_ += n;
    if (recorder_) {
        recorder_->onOp(core_,
                        IrOp{IrOpKind::Alu, 0, n, 0, false});
    }
}

Addr
TxContext::toAddr(const TxValue &value)
{
    alu(1);
    if (value.tainted())
        indirectionSeen_ = true;
    pendingAddrDepth_ = value.chaseDepth();
    pendingAddrTainted_ = value.tainted();
    if (recorder_) {
        recorder_->onOp(core_,
                        IrOp{IrOpKind::AddrUse, 0, 1,
                             value.chaseDepth(), value.tainted()});
    }
    return value.raw();
}

bool
TxContext::branchOn(const TxValue &value)
{
    alu(1);
    if (value.tainted())
        taintedBranchSeen_ = true;
    if (recorder_) {
        recorder_->onOp(core_,
                        IrOp{IrOpKind::Branch, 0, 1,
                             value.chaseDepth(), value.tainted()});
    }
    return value.raw() != 0;
}

void
TxContext::explicitAbort()
{
    doomLocal(AbortReason::Explicit);
    throw TxAbort{AbortReason::Explicit};
}

SimTask
TxContext::resolveLineLock(LineAddr line, bool is_write)
{
    (void)is_write;
    for (;;) {
        const bool nackable =
            failedMode_ ||
            (mode_ == ExecMode::SCl &&
             !mem_.locks().isLockedBy(line, core_));
        LockedLineResponse resp =
            mem_.locks().classifyAccess(line, core_, nackable);
        if (resp == LockedLineResponse::Free && faults_ != nullptr &&
            !mem_.locks().isLockedBy(line, core_)) {
            // Fault seam: a genuinely free line may still answer
            // with a spurious NACK (only where the protocol could
            // nack, i.e. the requester can abort) or a spurious
            // Retry (always safe: the wait below fires immediately
            // and the loop re-checks, modelling a delayed directory
            // retry). Never perturbed for self-held lines.
            switch (faults_->perturbFreeResponse(line, core_,
                                                 nackable)) {
              case FaultInjector::FreeResponse::Keep:
                break;
              case FaultInjector::FreeResponse::Nack:
                resp = LockedLineResponse::Nack;
                break;
              case FaultInjector::FreeResponse::Retry:
                resp = LockedLineResponse::Retry;
                break;
            }
        }
        if (resp == LockedLineResponse::Free)
            co_return;
        if (resp == LockedLineResponse::Nack) {
            mem_.locks().countNack(line, core_);
            doomLocal(AbortReason::Nacked, line);
            // A nacked load has no data: discovery cannot continue.
            throw TxAbort{doomReason_};
        }
        // Retry response: wait for the unlock, back off, re-issue.
        mem_.locks().countRetry(line, core_);
        Cycle backoff = cfg_.timing.lockRetryBackoff;
        if (faults_ != nullptr)
            backoff += faults_->extraRetryDelay(line, core_);
        co_await LockWaitAwaiter(mem_.locks(), queue_, line, backoff);
        if (doomed() && !failedMode_)
            handleDoomAtBoundary();
    }
}

SimTask
TxContext::waitPlannedLock(LineAddr line)
{
    LockPlanEntry *entry = findPlanEntry(line);
    CLEARSIM_ASSERT(entry != nullptr, "waiting for an unplanned line");
    while (!entry->locked) {
        if (lockerDone_) {
            // The locker gave up (e.g., nacked by a power-mode
            // transaction); the attempt is doomed.
            CLEARSIM_ASSERT(doomed(),
                            "locker finished without locking a "
                            "planned line and without dooming");
            handleDoomAtBoundary();
            co_return;
        }
        co_await PlannedLockWait(*this, line, waitingPlannedLock_,
                                 plannedWaitLine_, plannedWaiter_);
        if (doomed() && !failedMode_)
            handleDoomAtBoundary();
    }
}

void
TxContext::notifyPlannedLocked(LineAddr line)
{
    if (!waitingPlannedLock_)
        return;
    if (plannedWaitLine_ != line)
        return;
    waitingPlannedLock_ = false;
    std::coroutine_handle<> handle = plannedWaiter_;
    plannedWaiter_ = nullptr;
    queue_.scheduleAfter(0, [handle] { handle.resume(); });
}

void
TxContext::notifyLockerDone()
{
    lockerDone_ = true;
    if (waitingPlannedLock_) {
        waitingPlannedLock_ = false;
        std::coroutine_handle<> handle = plannedWaiter_;
        plannedWaiter_ = nullptr;
        queue_.scheduleAfter(0, [handle] { handle.resume(); });
    }
    if (lockerWaiter_) {
        std::coroutine_handle<> handle = lockerWaiter_;
        lockerWaiter_ = nullptr;
        queue_.scheduleAfter(0, [handle] { handle.resume(); });
    }
}

Task<TxValue>
TxContext::load(Addr addr)
{
    CLEARSIM_ASSERT(active_, "load outside an attempt");
    if (doomed() && !failedMode_)
        handleDoomAtBoundary();

    resources_.countLoad();
    const Cycle alu_extra = takePendingAluCycles();
    const LineAddr line = lineOf(addr);
    const std::uint16_t addr_depth = pendingAddrDepth_;
    const bool addr_tainted = pendingAddrTainted_;
    pendingAddrDepth_ = 0;
    pendingAddrTainted_ = false;
    if (recorder_) {
        recorder_->onOp(core_, IrOp{IrOpKind::Load, line, 1,
                                    addr_depth, addr_tainted});
    }
    if (discoveryActive_)
        recordAccess(line, false);

    // Fault seam: force this (abortable) attempt to abort here, as
    // if a remote conflict had hit the accessed line. Must-commit
    // modes (NS-CL, fallback) are never targeted.
    if (faults_ != nullptr && conflictable() &&
        faults_->forceAbort(line, core_)) {
        doomLocal(AbortReason::MemoryConflict, line);
        handleDoomAtBoundary();
    }

    // In-core (SLE) speculation: the whole AR must fit the window.
    // Non-speculative modes (NS-CL, fallback) retire freely
    // (Section 4.4.1) and are exempt.
    if (scope_ == SpeculationScope::InCore &&
        (mode_ == ExecMode::Speculative || mode_ == ExecMode::SCl) &&
        resources_.overflowed(failedMode_)) {
        structOverflowEvent_ = true;
        if (failedMode_)
            throw TxAbort{doomReason_};
        doomLocal(AbortReason::CapacityOverflow);
        throw TxAbort{doomReason_};
    }

    // Planned-lock coordination (S-CL / NS-CL).
    if (usesLockPlan()) {
        LockPlanEntry *entry = findPlanEntry(line);
        if (entry) {
            if (entry->needsLock && !entry->locked)
                co_await waitPlannedLock(line);
        } else if (mode_ == ExecMode::NsCl) {
            // Discovery guaranteed immutability; a deviating access
            // in NS-CL indicates the guarantee was wrong. Abort
            // defensively (the write buffer makes this safe).
            logMessage(LogLevel::Warn,
                       "core %u: NS-CL deviation on line %llu",
                       unsigned(core_),
                       static_cast<unsigned long long>(line));
            doomLocal(AbortReason::Deviation);
            throw TxAbort{doomReason_};
        }
        // S-CL reads outside the plan stay speculative.
    }

    co_await resolveLineLock(line, false);
    if (doomed() && !failedMode_)
        handleDoomAtBoundary();

    // Conflict arbitration.
    const bool locked_by_me = mem_.locks().isLockedBy(line, core_);
    const bool speculative_tracking =
        (mode_ == ExecMode::Speculative && !failedMode_) ||
        (mode_ == ExecMode::SCl && !locked_by_me);
    if (failedMode_) {
        // Flagged non-aborting; never harms others.
    } else if (speculative_tracking || mode_ == ExecMode::Fallback) {
        const RequesterClass cls =
            failedMode_ ? RequesterClass::FailedDiscovery
            : mode_ == ExecMode::Speculative
                ? RequesterClass::Speculative
            : mode_ == ExecMode::SCl ? RequesterClass::SclUnlocked
                                     : RequesterClass::NonSpeculative;
        const ArbitrationOutcome out =
            conflicts_.arbitrate(core_, line, false, cls);
        if (out.abortSelf) {
            doomLocal(out.selfReason, line);
            handleDoomAtBoundary();
        }
    }

    if (speculative_tracking && !failedMode_ && !doomed()) {
        readSet_.insert(line);
        conflicts_.addRead(core_, line);
    }

    // Timing and cache state.
    const bool pin = speculative_tracking && !failedMode_ && !doomed();
    const MemAccessResult res = mem_.access(core_, line, false, pin);
    if (res.capacityOverflow) {
        structOverflowEvent_ = true;
        if (failedMode_)
            throw TxAbort{doomReason_};
        doomLocal(AbortReason::CapacityOverflow);
        throw TxAbort{doomReason_};
    }

    // Fault seam: spuriously evict the fresh sharer bit again (a
    // timing-only perturbation: the next access re-fetches).
    if (faults_ != nullptr && !pin &&
        faults_->dropSharerAfterRead(line, core_)) {
        mem_.directory().dropSharer(core_, line);
    }

    co_await delayFor(queue_, res.latency + alu_extra);
    if (doomed() && !failedMode_)
        handleDoomAtBoundary();

    // The loaded value sits one dependent load deeper than the
    // value that named its address (saturating; depth only feeds
    // the analyzer's provenance view, never execution).
    const std::uint16_t depth =
        addr_depth == std::numeric_limits<std::uint16_t>::max()
            ? addr_depth
            : static_cast<std::uint16_t>(addr_depth + 1);
    co_return TxValue(readData(addr), true, depth);
}

SimTask
TxContext::store(Addr addr, TxValue value)
{
    CLEARSIM_ASSERT(active_, "store outside an attempt");
    if (doomed() && !failedMode_)
        handleDoomAtBoundary();

    resources_.countStore();
    const Cycle alu_extra = takePendingAluCycles();
    const LineAddr line = lineOf(addr);
    const std::uint16_t addr_depth = pendingAddrDepth_;
    const bool addr_tainted = pendingAddrTainted_;
    pendingAddrDepth_ = 0;
    pendingAddrTainted_ = false;
    if (recorder_) {
        recorder_->onOp(core_, IrOp{IrOpKind::Store, line, 1,
                                    addr_depth, addr_tainted});
    }
    if (discoveryActive_)
        recordAccess(line, true);

    // Fault seam: forced abort, as in load().
    if (faults_ != nullptr && conflictable() &&
        faults_->forceAbort(line, core_)) {
        doomLocal(AbortReason::MemoryConflict, line);
        handleDoomAtBoundary();
    }

    if (failedMode_) {
        // Stores are held in the SQ: no cache or coherence action
        // (Section 5.1: "in failed mode, stores do not exit the SQ
        // to go to the cache").
        if (resources_.stores() - failedModeStoreBase_ >
            cfg_.core.sqEntries) {
            sqOverflowEvent_ = true;
            structOverflowEvent_ = true;
            throw TxAbort{doomReason_};
        }
        writeBuffer_[addr & ~Addr(7)] = value.raw();
        co_await delayFor(queue_, 1 + alu_extra);
        co_return;
    }

    if (scope_ == SpeculationScope::InCore &&
        (mode_ == ExecMode::Speculative || mode_ == ExecMode::SCl) &&
        resources_.overflowed(false)) {
        structOverflowEvent_ = true;
        doomLocal(AbortReason::CapacityOverflow);
        throw TxAbort{doomReason_};
    }

    if (usesLockPlan()) {
        LockPlanEntry *entry = findPlanEntry(line);
        if (!entry || !entry->needsLock) {
            // A write the discovery did not learn (or learned as a
            // read): the footprint mutated; cacheline-locked
            // execution cannot proceed.
            doomLocal(AbortReason::Deviation);
            throw TxAbort{doomReason_};
        }
        if (!entry->locked)
            co_await waitPlannedLock(line);
        if (doomed())
            handleDoomAtBoundary();
    }

    co_await resolveLineLock(line, true);
    if (doomed() && !failedMode_)
        handleDoomAtBoundary();

    const bool locked_by_me = mem_.locks().isLockedBy(line, core_);
    const bool speculative_tracking =
        mode_ == ExecMode::Speculative && !failedMode_;
    CLEARSIM_ASSERT(!(mode_ == ExecMode::SCl && !locked_by_me),
                    "S-CL store to an unlocked line");

    if (speculative_tracking || mode_ == ExecMode::Fallback) {
        const RequesterClass cls =
            mode_ == ExecMode::Speculative
                ? RequesterClass::Speculative
                : RequesterClass::NonSpeculative;
        const ArbitrationOutcome out =
            conflicts_.arbitrate(core_, line, true, cls);
        if (out.abortSelf) {
            doomLocal(out.selfReason, line);
            handleDoomAtBoundary();
        }
    }

    if (speculative_tracking && !doomed()) {
        writeSet_.insert(line);
        conflicts_.addWrite(core_, line);
    }

    const bool pin = speculative_tracking && !doomed();
    const MemAccessResult res = mem_.access(core_, line, true, pin);
    if (res.capacityOverflow) {
        structOverflowEvent_ = true;
        doomLocal(AbortReason::CapacityOverflow);
        throw TxAbort{doomReason_};
    }

    writeBuffer_[addr & ~Addr(7)] = value.raw();

    co_await delayFor(queue_, res.latency + alu_extra);
    if (doomed() && !failedMode_)
        handleDoomAtBoundary();
}

Task<bool>
TxContext::commit()
{
    CLEARSIM_ASSERT(active_, "commit outside an attempt");
    CLEARSIM_ASSERT(!doomed(), "commit of a doomed attempt");

    const Cycle latency =
        cfg_.timing.commitLatency + takePendingAluCycles();
    co_await delayFor(queue_, latency);

    // A conflict may have arrived while XEND was in flight.
    if (doomed())
        co_return false;

    for (const auto &[word, data] : writeBuffer_)
        mem_.store().write(word, data);
    writeBuffer_.clear();

    discoveryComplete_ = true;
    stats_.committedUops += resources_.uops();
    releaseAttemptState(true);
    active_ = false;
    if (recorder_)
        recorder_->onAttemptEnd(core_, true, true);
    co_return true;
}

SimTask
TxContext::abortAttempt(bool reached_end)
{
    CLEARSIM_ASSERT(active_, "abort outside an attempt");

    if (failedMode_) {
        stats_.discoveryFailedModeCycles +=
            queue_.now() - failedModeStart_;
    }
    // The footprint is complete iff the body ran to its end
    // (whether in failed mode or doomed at the commit point).
    discoveryComplete_ = reached_end;

    stats_.abortedUops += resources_.uops();
    co_await delayFor(queue_, cfg_.timing.abortPenalty);

    writeBuffer_.clear();
    releaseAttemptState(false);
    active_ = false;
    if (recorder_)
        recorder_->onAttemptEnd(core_, reached_end, false);
}

void
TxContext::releaseAttemptState(bool keep_ownership)
{
    for (LineAddr line : readSet_)
        conflicts_.remove(core_, line);
    for (LineAddr line : writeSet_) {
        conflicts_.remove(core_, line);
        if (!keep_ownership)
            mem_.dropLine(core_, line);
    }
    readSet_.clear();
    writeSet_.clear();
    fallback_.unsubscribe(core_);
    mem_.unpinAll(core_);
}

} // namespace clearsim
