/**
 * @file
 * The Explored Region Table (ERT), Section 5, structure 2.
 *
 * A 16-entry, fully-associative, LRU-replaced table, one per core,
 * storing per static atomic region (identified by the PC of its
 * first instruction):
 *
 *  - Is Convertible: cacheline locking may be employed on a retry;
 *  - Is Immutable: a retry can start in NS-CL mode;
 *  - SQ-Full Counter: a 2-bit saturating counter of failed
 *    discoveries that ran out of SQ resources. Saturation disables
 *    discovery for the region; commits decrement it.
 */

#ifndef CLEARSIM_CORE_ERT_HH
#define CLEARSIM_CORE_ERT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace clearsim
{

/** One ERT entry. */
struct ErtEntry
{
    bool valid = false;
    RegionPc pc = 0;
    bool isConvertible = true;
    bool isImmutable = true;
    unsigned sqFullCounter = 0;
    std::uint64_t lruStamp = 0;
};

/** The per-core Explored Region Table. */
class Ert
{
  public:
    /**
     * @param entries table capacity (paper: 16)
     * @param sq_saturation value at which the SQ-Full counter
     *        saturates (paper: 3, a 2-bit counter)
     */
    explicit Ert(unsigned entries = 16, unsigned sq_saturation = 3);

    /**
     * Find the entry for a region, allocating (and LRU-evicting)
     * if absent. New entries get the paper's defaults: convertible,
     * immutable, zero SQ-full count.
     */
    ErtEntry &lookupOrInsert(RegionPc pc);

    /** Find without allocation; nullptr if absent. */
    ErtEntry *find(RegionPc pc);
    const ErtEntry *find(RegionPc pc) const;

    /**
     * True if discovery should run for this region: either unknown
     * (will be allocated), or convertible with an unsaturated
     * SQ-Full counter.
     */
    bool discoveryEnabled(RegionPc pc) const;

    /** Record a failed discovery that ran out of SQ entries. */
    void recordSqOverflow(RegionPc pc);

    /** Record a commit (decrements the SQ-Full counter). */
    void recordCommit(RegionPc pc);

    /** Saturation threshold of the SQ-Full counter. */
    unsigned sqSaturation() const { return sqSaturation_; }

    /** Number of valid entries. */
    unsigned occupancy() const;

    /** Invalidate all entries. */
    void reset();

  private:
    std::vector<ErtEntry> entries_;
    unsigned sqSaturation_;
    std::uint64_t stamp_ = 0;
};

} // namespace clearsim

#endif // CLEARSIM_CORE_ERT_HH
