#include "core/trace.hh"

namespace clearsim
{

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::AttemptBegin:
        return "begin";
      case TraceKind::Commit:
        return "commit";
      case TraceKind::Abort:
        return "abort";
      case TraceKind::FallbackAcquired:
        return "fallback-acquired";
    }
    return "?";
}

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Speculative:
        return "spec";
      case ExecMode::SCl:
        return "s-cl";
      case ExecMode::NsCl:
        return "ns-cl";
      case ExecMode::Fallback:
        return "fallback";
    }
    return "?";
}

const char *
abortReasonName(AbortReason reason)
{
    switch (reason) {
      case AbortReason::None:
        return "none";
      case AbortReason::MemoryConflict:
        return "conflict";
      case AbortReason::Nacked:
        return "nacked";
      case AbortReason::ExplicitFallback:
        return "explicit-fallback";
      case AbortReason::OtherFallback:
        return "other-fallback";
      case AbortReason::CapacityOverflow:
        return "capacity";
      case AbortReason::Deviation:
        return "deviation";
      case AbortReason::Explicit:
        return "explicit";
    }
    return "?";
}

} // namespace clearsim
