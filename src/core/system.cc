#include "core/system.hh"

#include "common/log.hh"
#include "core/region_executor.hh"
#include "fault/fault_injector.hh"
#include "fault/invariant_checker.hh"

namespace clearsim
{

System::System(const SystemConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), policies_(cfg), mem_(cfg), conflicts_(cfg, power_),
      rng_(seed),
      alt_(cfg.clear.altEntries, cfg.cache.dirSets, cfg.cache.l1Sets,
           cfg.cache.l1Ways)
{
    // The fallback lock variable occupies its own cacheline in
    // simulated memory.
    fallback_ = std::make_unique<FallbackLock>(
        lineOf(mem_.store().allocateLines(1)));

    txs_.reserve(cfg.numCores);
    executors_.reserve(cfg.numCores);
    erts_.reserve(cfg.numCores);
    crts_.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        txs_.push_back(std::make_unique<TxContext>(
            static_cast<CoreId>(c), cfg_, queue_, mem_, conflicts_,
            *fallback_, power_, stats_));
        erts_.emplace_back(cfg.clear.ertEntries,
                           cfg.clear.sqFullSaturation);
        crts_.emplace_back(cfg.clear.crtEntries, cfg.clear.crtWays);
        executors_.push_back(std::make_unique<RegionExecutor>(
            *this, static_cast<CoreId>(c)));
    }

    if (cfg.fault.anyActive()) {
        faults_ = std::make_unique<FaultInjector>(cfg.fault);
        faults_->bindQueue(&queue_);
        queue_.setPerturber([this] {
            return faults_->perturbSchedule();
        });
        mem_.locks().setWakeDeliverer(
            [this](LockManager::WakeCallback cb) {
                faults_->deliverWake(std::move(cb));
            });
        conflicts_.setFaults(faults_.get());
        for (auto &tx : txs_)
            tx->setFaults(faults_.get());
    }

    if (cfg.fault.watchdog) {
        checker_ = std::make_unique<InvariantChecker>(cfg_);
        checker_->attachLocks(&mem_.locks());
        // Activate the tracer now so the checker taps every event
        // even before (or without) a user sink.
        applySink();
    }
}

System::~System() = default;

void
System::setTraceSink(TraceSink sink)
{
    userSink_ = std::move(sink);
    applySink();
}

void
System::setTraceTap(TraceSink tap)
{
    traceTap_ = std::move(tap);
    applySink();
}

void
System::applySink()
{
    // Chain: invariant checker → observer tap → user sink. None of
    // the stages mutates the event, so every stage sees exactly
    // what the machine emitted; absent stages collapse out of the
    // chain entirely.
    TraceSink effective;
    InvariantChecker *checker = checker_.get();
    if (checker != nullptr || traceTap_) {
        TraceSink tap = traceTap_;
        TraceSink user = userSink_;
        effective = [checker, tap, user](const TraceEvent &event) {
            if (checker != nullptr)
                checker->onTrace(event);
            if (tap)
                tap(event);
            if (user)
                user(event);
        };
    } else {
        effective = userSink_;
    }
    tracer_.setSink(std::move(effective));
    tracer_.bindClock(queue_.nowPtr());

    // Attach (or detach) the component layers: they see a non-null
    // tracer only while a sink is installed, so the disabled path
    // stays a single null-pointer branch per event site.
    const Tracer *t = tracer_.active() ? &tracer_ : nullptr;
    mem_.locks().attachTracer(t);
    mem_.directory().attachTracer(t);
    conflicts_.attachTracer(t);
    fallback_->attachTracer(t);
    if (faults_ != nullptr)
        faults_->attachTracer(t);
}

void
System::setRegionRecorder(RegionRecordSink *recorder)
{
    for (auto &tx : txs_)
        tx->setRecorder(recorder);
}

SimTask
System::runRegion(CoreId core, RegionPc pc, BodyFn body)
{
    // Flat nesting (TSX semantics): a region started while the
    // core is already inside an attempt is subsumed into the
    // enclosing transaction — its body simply runs inline, and the
    // outer region's commit/abort covers it.
    if (tx(core).active())
        return body(tx(core));

    // Stash the body in the executor so that no coroutine in the
    // execution path takes a non-trivially-copyable parameter.
    executor(core).setBody(std::move(body));
    return executor(core).runRegion(pc);
}

Cycle
System::runToCompletion(Cycle limit)
{
    if (checker_ == nullptr) {
        queue_.run(limit);
    } else {
        // Step one event at a time so the watchdog can observe
        // progress (and raise a violation) at event granularity
        // instead of only after the queue drains.
        while (!queue_.empty() && queue_.nextCycle() <= limit) {
            queue_.runOne();
            checker_->afterEvent(queue_.now(), !queue_.empty());
            if (checker_->violated())
                checker_->raise();
        }
        checker_->atEnd(queue_.now());
        if (checker_->violated())
            checker_->raise();
    }
    if (!queue_.empty())
        fatal("simulation exceeded the cycle limit (%llu)",
              static_cast<unsigned long long>(limit));
    return queue_.now();
}

} // namespace clearsim
