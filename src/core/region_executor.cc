#include "core/region_executor.hh"

#include <utility>

#include "common/log.hh"
#include "fault/fault_injector.hh"
#include "policy/region_policy.hh"

namespace clearsim
{

namespace
{

/** Awaitable: resumes after the fallback lock's next release event,
 *  plus the configured spin interval. */
class FallbackReleaseAwaiter
{
  public:
    /**
     * @param writer_only true when the waiter only needs the writer
     *        gone (speculative / NS-CL / S-CL starts run fine
     *        alongside read holders); false for fallback-writer
     *        aspirants, who need readers drained too
     */
    FallbackReleaseAwaiter(FallbackLock &lock, EventQueue &queue,
                           Cycle spin, bool writer_only)
        : lock_(lock), queue_(queue), spin_(spin),
          writerOnly_(writer_only)
    {
    }

    bool
    await_ready() const
    {
        if (writerOnly_)
            return !lock_.writerHeld();
        return !lock_.writerHeld() && lock_.readerCount() == 0;
    }

    void
    await_suspend(std::coroutine_handle<> handle)
    {
        EventQueue &queue = queue_;
        const Cycle spin = spin_;
        lock_.onRelease([&queue, spin, handle] {
            queue.scheduleAfter(spin, [handle] { handle.resume(); });
        });
    }

    void await_resume() const {}

  private:
    FallbackLock &lock_;
    EventQueue &queue_;
    Cycle spin_;
    bool writerOnly_;
};

/** Awaitable: resumes (via the queue) once a line lock releases. */
class LineUnlockAwaiter
{
  public:
    LineUnlockAwaiter(LockManager &locks, EventQueue &queue,
                      LineAddr line, Cycle backoff)
        : locks_(locks), queue_(queue), line_(line), backoff_(backoff)
    {
    }

    bool await_ready() const { return !locks_.isLocked(line_); }

    void
    await_suspend(std::coroutine_handle<> handle)
    {
        EventQueue &queue = queue_;
        const Cycle backoff = backoff_;
        locks_.onUnlock(line_, [&queue, backoff, handle] {
            queue.scheduleAfter(backoff,
                                [handle] { handle.resume(); });
        });
    }

    void await_resume() const {}

  private:
    LockManager &locks_;
    EventQueue &queue_;
    LineAddr line_;
    Cycle backoff_;
};

/** Awaitable: resumes once a directory-set lock releases. */
class DirSetUnlockAwaiter
{
  public:
    DirSetUnlockAwaiter(LockManager &locks, EventQueue &queue,
                        unsigned set, Cycle backoff)
        : locks_(locks), queue_(queue), set_(set), backoff_(backoff)
    {
    }

    bool await_ready() const { return false; }

    void
    await_suspend(std::coroutine_handle<> handle)
    {
        EventQueue &queue = queue_;
        const Cycle backoff = backoff_;
        locks_.onDirSetUnlock(set_, [&queue, backoff, handle] {
            queue.scheduleAfter(backoff,
                                [handle] { handle.resume(); });
        });
    }

    void await_resume() const {}

  private:
    LockManager &locks_;
    EventQueue &queue_;
    unsigned set_;
    Cycle backoff_;
};

} // namespace

RegionExecutor::RegionExecutor(System &sys, CoreId core)
    : sys_(sys), core_(core),
      savedFootprint_(footprintCapacity(sys.config().clear))
{
}

SimTask
RegionExecutor::waitFallbackRelease(bool writer_only)
{
    const Cycle start = sys_.queue().now();
    co_await FallbackReleaseAwaiter(
        sys_.fallback(), sys_.queue(),
        sys_.policies().backoff().fallbackSpinDelay(), writer_only);
    noteBackoff(BackoffWaitKind::FallbackSpin,
                sys_.queue().now() - start);
}

void
RegionExecutor::noteBackoff(BackoffWaitKind kind, Cycle waited)
{
    if (waited == 0)
        return;
    sys_.stats().backoffWaits.record(waited);
    if (sys_.tracing()) {
        TxContext &tx = sys_.tx(core_);
        sys_.emitTrace(TraceEvent{sys_.queue().now(), core_,
                                  tx.regionPc(),
                                  TraceKind::BackoffWait, tx.mode(),
                                  AbortReason::None, 0,
                                  BackoffPayload{kind, waited}});
    }
}

SimTask
RegionExecutor::runRegion(RegionPc pc)
{
    const SystemConfig &cfg = sys_.config();
    auto trace = [this, pc](TraceKind kind, ExecMode mode,
                            AbortReason reason, unsigned retries,
                            TracePayload payload = {}) {
        if (sys_.tracing()) {
            sys_.emitTrace(TraceEvent{sys_.queue().now(), core_, pc,
                                      kind, mode, reason, retries,
                                      std::move(payload)});
        }
    };
    TxContext &tx = sys_.tx(core_);
    HtmStats &stats = sys_.stats();
    Ert &ert = sys_.ert(core_);
    Crt &crt = sys_.crt(core_);
    const RetryPolicy &retry_policy = sys_.policies().retry();
    const ConflictResolutionPolicy &conflict_policy =
        sys_.policies().conflict();
    const BackoffPolicy &backoff_policy = sys_.policies().backoff();

    tx.beginInvocation(pc);

    // Adaptive per-region policy (preset "A"): the decision that
    // the capture pass resolved for this region overrides the retry
    // budget, discovery gating, locked-mode eligibility and the
    // speculation scope. Without an installed table (every static
    // preset) this is a single null branch and nothing changes.
    const RegionDecision *decision = nullptr;
    if (const RegionPolicyTable *table = sys_.regionPolicy()) {
        decision = table->lookup(pc);
        tx.setScope(decision && decision->inCoreSpeculation
                        ? SpeculationScope::InCore
                        : cfg.scope);
    }

    unsigned counted_retries = 0;
    unsigned attempts_made = 0;
    bool any_counted_abort = false;
    RetryMode next = RetryMode::SpeculativeRetry;
    ExecMode committed_mode = ExecMode::Speculative;

    // Per-invocation mutability profiling (Table 1 / Figure 1).
    Footprint first_footprint{footprintCapacity(cfg.clear)};
    bool first_complete = false;
    bool have_first = false;
    bool retry_compared = false;
    bool comparable_retry = false;
    bool immutable_retry = false;
    bool footprint_changed = false;
    bool saw_indirection = false;
    std::uint64_t max_lines = 0;

    // Per-attempt resource maxima and abort attribution: the
    // dynamic side of the static analyzer's dominance cross-check
    // (tests/property/static_dynamic_bounds_test.cc).
    std::uint64_t capacity_aborts = 0;
    std::uint64_t sq_full_aborts = 0;
    std::uint64_t max_uops = 0;
    std::uint64_t max_loads = 0;
    std::uint64_t max_stores = 0;

    auto note_attempt = [&]() {
        const CoreResources &r = tx.resources();
        if (r.uops() > max_uops)
            max_uops = r.uops();
        if (r.loads() > max_loads)
            max_loads = r.loads();
        if (r.stores() > max_stores)
            max_stores = r.stores();
    };

    auto capture_profile = [&]() {
        saw_indirection |= tx.sawIndirection();
        if (tx.footprint().size() > max_lines)
            max_lines = tx.footprint().size();
        const bool complete = tx.discoveryComplete();
        if (!have_first) {
            first_footprint = tx.footprint();
            first_complete = complete;
            have_first = true;
        } else if (first_complete && complete) {
            const bool same =
                first_footprint.sameLines(tx.footprint());
            if (!same)
                footprint_changed = true;
            if (!retry_compared) {
                // The Figure 1 question is specifically about the
                // first retry.
                retry_compared = true;
                comparable_retry = true;
                if (same &&
                    first_footprint.size() <= cfg.clear.altEntries)
                    immutable_retry = true;
            }
        }
    };

    for (;;) {
        if (next != RetryMode::Fallback &&
            (decision ? counted_retries >= decision->retryBudget
                      : retry_policy.exhausted(counted_retries))) {
            next = RetryMode::Fallback;
        }

        if (next == RetryMode::Fallback) {
            trace(TraceKind::AttemptBegin, ExecMode::Fallback,
                  AbortReason::None, counted_retries);
            co_await runFallback();
            trace(TraceKind::FallbackAcquired, ExecMode::Fallback,
                  AbortReason::None, counted_retries);
            committed_mode = ExecMode::Fallback;
            ++attempts_made;
            note_attempt();
            break;
        }

        if (next == RetryMode::NsCl || next == RetryMode::SCl) {
            const bool nscl = next == RetryMode::NsCl;
            if (nscl)
                ++stats.nsClAttempts;
            else
                ++stats.sClAttempts;
            trace(TraceKind::AttemptBegin,
                  nscl ? ExecMode::NsCl : ExecMode::SCl,
                  AbortReason::None, counted_retries);
            const bool committed = co_await runCacheLocked(nscl);
            ++attempts_made;
            note_attempt();
            if (committed) {
                committed_mode = nscl ? ExecMode::NsCl : ExecMode::SCl;
                ert.recordCommit(pc);
                break;
            }
            const AbortReason reason = tx.doomReason();
            trace(TraceKind::Abort,
                  nscl ? ExecMode::NsCl : ExecMode::SCl, reason,
                  counted_retries, AbortPayload{tx.doomLine()});
            stats.recordAbort(reason);
            if (reason == AbortReason::CapacityOverflow)
                ++capacity_aborts;
            if (retry_policy.countsRetry(reason)) {
                ++counted_retries;
                any_counted_abort = true;
            }
            for (LineAddr line : tx.conflictingReads()) {
                crt.insert(line);
                ++stats.crtInsertions;
            }
            const LockedAbortDecision after =
                retry_policy.decideAfterLockedAbort(reason);
            if (after.disableDiscovery) {
                ert.lookupOrInsert(pc).isConvertible = false;
                ++stats.discoveryDisabled;
            }
            next = after.next;
            if (reason == AbortReason::OtherFallback ||
                reason == AbortReason::ExplicitFallback) {
                co_await waitFallbackRelease();
            }
            continue;
        }

        // --- speculative attempt ---

        const Cycle backoff = backoff_policy.speculativeRetryDelay(
            counted_retries, core_);
        if (backoff > 0) {
            co_await delayFor(sys_.queue(), backoff);
            noteBackoff(BackoffWaitKind::SpeculativeRetry, backoff);
        }

        if (conflict_policy.usesPowerToken() && any_counted_abort)
            sys_.power().tryAcquire(core_);

        if (sys_.fallback().writerHeld()) {
            // Explicit fallback: wanted to start, lock was taken.
            trace(TraceKind::Abort, ExecMode::Speculative,
                  AbortReason::ExplicitFallback, counted_retries,
                  AbortPayload{sys_.fallback().line()});
            stats.recordAbort(AbortReason::ExplicitFallback);
            co_await waitFallbackRelease();
            continue;
        }

        // A decision that forbids discovery (bounded-retry, SLE)
        // keeps the region out of the CLEAR machinery entirely;
        // profile mode still records, it never locks.
        const bool discovery =
            ((cfg.clear.enabled && ert.discoveryEnabled(pc)) &&
             (!decision || decision->allowDiscovery)) ||
            cfg.profileMode;
        trace(TraceKind::AttemptBegin, ExecMode::Speculative,
              AbortReason::None, counted_retries);
        const bool committed =
            co_await runSpeculative(pc, discovery);
        ++attempts_made;
        note_attempt();

        if (discovery)
            capture_profile();

        if (committed) {
            committed_mode = ExecMode::Speculative;
            if (discovery && tx.discoveryComplete()) {
                ErtEntry &e = ert.lookupOrInsert(pc);
                e.isImmutable = !tx.sawIndirection();
            }
            ert.recordCommit(pc);
            break;
        }

        // --- aborted speculative attempt ---
        const AbortReason reason = tx.doomReason();
        trace(TraceKind::Abort, ExecMode::Speculative, reason,
              counted_retries, AbortPayload{tx.doomLine()});
        stats.recordAbort(reason);
        if (reason == AbortReason::CapacityOverflow)
            ++capacity_aborts;
        if (tx.sqOverflowed())
            ++sq_full_aborts;
        if (countsTowardRetryLimit(reason)) {
            ++counted_retries;
            any_counted_abort = true;
        }
        for (LineAddr line : tx.conflictingReads()) {
            crt.insert(line);
            ++stats.crtInsertions;
        }

        if (discovery) {
            ErtEntry &e = ert.lookupOrInsert(pc);
            if (tx.sqOverflowed()) {
                ert.recordSqOverflow(pc);
                if (e.sqFullCounter >= ert.sqSaturation())
                    ++stats.discoveryDisabled;
            } else if (tx.structuresOverflowed()) {
                // The footprint cannot even be tracked: hopeless to
                // convert (discovery assessment 1).
                e.isConvertible = false;
                ++stats.discoveryDisabled;
            }
            if (tx.discoveryComplete())
                e.isImmutable = !tx.sawIndirection();
            else
                e.isImmutable = e.isImmutable && !tx.sawIndirection();
        }

        next = retry_policy.decideRetryMode(
            gatherRetryInput(pc, discovery));
        if (decision && !decision->allowCacheLocked &&
            (next == RetryMode::SCl || next == RetryMode::NsCl)) {
            // Conservative-lock regions run discovery but never
            // enter a cacheline-locked mode; they serialize on the
            // fallback lock once the budget is spent.
            next = RetryMode::SpeculativeRetry;
        }
        if (next == RetryMode::SCl || next == RetryMode::NsCl) {
            // The footprint that justified the locked mode builds
            // the S-CL / NS-CL lock plan.
            savedFootprint_ = tx.footprint();
        }

        if (reason == AbortReason::OtherFallback ||
            reason == AbortReason::ExplicitFallback) {
            co_await waitFallbackRelease();
        }
    }

    trace(TraceKind::Commit, committed_mode, AbortReason::None,
          counted_retries);
    stats.recordCommit(committed_mode, counted_retries);

    // Invocation-level profiling.
    RegionProfile &profile = stats.regions[pc];
    ++profile.invocations;
    if (attempts_made > 1)
        ++profile.retryingInvocations;
    if (comparable_retry)
        ++profile.comparableRetries;
    if (immutable_retry)
        ++profile.immutableRetries;
    profile.sawIndirection |= saw_indirection;
    profile.footprintChanged |= footprint_changed;
    if (max_lines > profile.maxFootprintLines)
        profile.maxFootprintLines = max_lines;
    profile.capacityAborts += capacity_aborts;
    profile.sqFullAborts += sq_full_aborts;
    if (max_uops > profile.maxAttemptUops)
        profile.maxAttemptUops = max_uops;
    if (max_loads > profile.maxAttemptLoads)
        profile.maxAttemptLoads = max_loads;
    if (max_stores > profile.maxAttemptStores)
        profile.maxAttemptStores = max_stores;

    tx.endInvocation();
}

RetryDecisionInput
RegionExecutor::gatherRetryInput(RegionPc pc, bool discovery_ran)
{
    TxContext &tx = sys_.tx(core_);

    RetryDecisionInput in;
    in.discoveryRan = discovery_ran;
    in.structuresOverflowed = tx.structuresOverflowed();
    in.discoveryComplete = tx.discoveryComplete();
    in.footprintLockable = sys_.alt().lockable(tx.footprint());
    const ErtEntry *e = sys_.ert(core_).find(pc);
    in.regionConvertible = !e || e->isConvertible;
    in.sawIndirection = tx.sawIndirection();
    return in;
}

Task<bool>
RegionExecutor::runSpeculative(RegionPc pc, bool discovery)
{
    (void)pc;
    const SystemConfig &cfg = sys_.config();
    TxContext &tx = sys_.tx(core_);

    // A power-mode transaction must be able to finish: instead of
    // subscribing to the fallback lock (and dying whenever a
    // fallback executor starts), it read-locks it, like the
    // cacheline-locked modes do. Fallback writers wait for it.
    const bool power_mode =
        sys_.policies().conflict().usesPowerToken() &&
        sys_.power().isHolder(core_);
    if (power_mode) {
        while (!sys_.fallback().tryAcquireRead(core_))
            co_await waitFallbackRelease();
    }

    tx.beginAttempt(ExecMode::Speculative, discovery);
    if (!power_mode)
        sys_.fallback().subscribe(core_, &tx);

    // XBEGIN: checkpoint cost plus the read of the fallback lock
    // (which thereby sits in the read set).
    const MemAccessResult fb = sys_.mem().access(
        core_, sys_.fallback().line(), false, false);
    co_await delayFor(sys_.queue(),
                      cfg.timing.beginLatency + fb.latency);

    bool reached_end = false;
    bool committed = false;
    try {
        co_await body_(tx);
        reached_end = true;
        if (!tx.doomed())
            committed = co_await tx.commit();
    } catch (const TxAbort &) {
        // The body unwound; state is handled below.
    }

    if (!committed)
        co_await tx.abortAttempt(reached_end);
    if (power_mode)
        sys_.fallback().releaseRead(core_);
    co_return committed;
}

Task<bool>
RegionExecutor::runCacheLocked(bool nscl)
{
    const SystemConfig &cfg = sys_.config();
    TxContext &tx = sys_.tx(core_);

    // Read-lock the fallback mutex: NS-CL/S-CL may not run
    // concurrently with a fallback execution (Figures 3, 4).
    for (;;) {
        const MemAccessResult fb = sys_.mem().access(
            core_, sys_.fallback().line(), false, false);
        co_await delayFor(sys_.queue(), fb.latency);
        if (sys_.fallback().tryAcquireRead(core_))
            break;
        co_await waitFallbackRelease();
    }

    tx.beginAttempt(nscl ? ExecMode::NsCl : ExecMode::SCl, false);

    const bool lock_all = nscl || cfg.clear.sclLockAllReads;
    std::vector<LockPlanEntry> plan = sys_.alt().buildPlan(
        savedFootprint_, sys_.crt(core_), lock_all);
    if (plan.empty()) {
        // The saved footprint is no longer lockable (defensive).
        tx.doomLocal(AbortReason::CapacityOverflow);
        co_await tx.abortAttempt(false);
        sys_.fallback().releaseRead(core_);
        co_return false;
    }
    tx.setLockPlan(std::move(plan));

    // Start the locker; the body begins at the same time and blocks
    // on lines the locker has not yet acquired.
    locker_ = runLocker(tx);
    locker_.start();

    bool reached_end = false;
    bool committed = false;
    try {
        co_await body_(tx);
        reached_end = true;
        if (!tx.doomed())
            committed = co_await tx.commit();
    } catch (const TxAbort &) {
    }

    co_await tx.waitLockerDone();
    if (!committed)
        co_await tx.abortAttempt(reached_end);

    // XEND: bulk-unlock all held cachelines, then release the
    // fallback read lock.
    sys_.mem().locks().unlockAll(core_, sys_.queue().now());
    sys_.fallback().releaseRead(core_);
    co_return committed;
}

SimTask
RegionExecutor::runLocker(TxContext &tx)
{
    const SystemConfig &cfg = sys_.config();
    LockManager &locks = sys_.mem().locks();
    std::vector<LockPlanEntry> &plan = tx.lockPlan();
    const std::vector<AltGroup> groups = sys_.alt().groupsOf(plan);

    for (const AltGroup &group : groups) {
        if (tx.doomed())
            break;

        // Count lock-needing members.
        unsigned members = 0;
        for (std::size_t i = group.begin; i < group.end; ++i) {
            if (plan[i].needsLock)
                ++members;
        }

        if (members <= 1) {
            bool ok = true;
            for (std::size_t i = group.begin; i < group.end; ++i) {
                if (!plan[i].needsLock)
                    continue;
                ok = co_await acquireOne(tx, plan[i]);
                if (!ok)
                    break;
            }
            if (!ok)
                break;
            continue;
        }

        // Lexicographical conflict group (Section 5): if every
        // member is already held exclusively and free, lock all at
        // once without any communication (Hit-bit fast path).
        bool all_hit = true;
        for (std::size_t i = group.begin; i < group.end; ++i) {
            if (!plan[i].needsLock)
                continue;
            const LineAddr line = plan[i].line;
            if (!sys_.mem().hasExclusive(core_, line) ||
                locks.isLocked(line) ||
                locks.dirSetLockedByOther(line, core_)) {
                all_hit = false;
                break;
            }
        }
        if (all_hit) {
            for (std::size_t i = group.begin; i < group.end; ++i) {
                if (!plan[i].needsLock)
                    continue;
                const bool got = locks.tryLock(plan[i].line, core_,
                                               sys_.queue().now());
                CLEARSIM_ASSERT(got, "hit-path lock must succeed");
                ++sys_.stats().cachelineLocksAcquired;
                plan[i].locked = true;
                tx.notifyPlannedLocked(plan[i].line);
            }
            co_await delayFor(sys_.queue(), 1);
            continue;
        }

        // Slow path: lock the directory set, then each member.
        while (!locks.tryLockDirSet(group.dirSet, core_)) {
            const Cycle wait_start = sys_.queue().now();
            co_await DirSetUnlockAwaiter(
                locks, sys_.queue(), group.dirSet,
                sys_.policies().backoff().lockRetryDelay());
            noteBackoff(BackoffWaitKind::LockRetry,
                        sys_.queue().now() - wait_start);
            if (tx.doomed())
                break;
        }
        if (tx.doomed()) {
            if (locks.tryLockDirSet(group.dirSet, core_))
                locks.unlockDirSet(group.dirSet, core_);
            break;
        }
        // Charge the directory round trip for the set lock.
        co_await delayFor(sys_.queue(), cfg.cache.remoteLatency);

        bool ok = true;
        for (std::size_t i = group.begin; i < group.end && ok; ++i) {
            if (!plan[i].needsLock)
                continue;
            ok = co_await acquireOne(tx, plan[i]);
        }
        locks.unlockDirSet(group.dirSet, core_);
        if (!ok)
            break;
    }

    tx.notifyLockerDone();
}

Task<bool>
RegionExecutor::acquireOne(TxContext &tx, LockPlanEntry &entry)
{
    const Cycle lock_backoff =
        sys_.policies().backoff().lockRetryDelay();
    LockManager &locks = sys_.mem().locks();

    for (;;) {
        if (tx.doomed())
            co_return false;

        if (locks.tryLock(entry.line, core_, sys_.queue().now())) {
            // The lock request is an exclusive-intent access:
            // arbitrate against speculative holders.
            const RequesterClass cls =
                tx.mode() == ExecMode::NsCl
                    ? RequesterClass::NsClLocking
                    : RequesterClass::SclLocking;
            const ArbitrationOutcome out = sys_.conflicts().arbitrate(
                core_, entry.line, true, cls);
            if (out.abortSelf) {
                // Section 5.2: nacked by a power-mode transaction.
                locks.unlock(entry.line, core_, sys_.queue().now());
                tx.doomLocal(out.selfReason);
                co_return false;
            }

            Cycle latency = 1; // Hit bit: already exclusive
            if (!sys_.mem().hasExclusive(core_, entry.line)) {
                const MemAccessResult res = sys_.mem().access(
                    core_, entry.line, true, false);
                latency = res.latency;
            }
            ++sys_.stats().cachelineLocksAcquired;
            co_await delayFor(sys_.queue(), latency);
            entry.locked = true;
            tx.notifyPlannedLocked(entry.line);
            co_return true;
        }

        // Held elsewhere: wait for the blocking resource.
        const Cycle wait_start = sys_.queue().now();
        if (locks.dirSetLockedByOther(entry.line, core_)) {
            co_await DirSetUnlockAwaiter(
                locks, sys_.queue(), locks.dirSetOf(entry.line),
                lock_backoff);
        } else {
            co_await LineUnlockAwaiter(locks, sys_.queue(),
                                       entry.line, lock_backoff);
        }
        noteBackoff(BackoffWaitKind::LockRetry,
                    sys_.queue().now() - wait_start);
    }
}

SimTask
RegionExecutor::runFallback()
{
    TxContext &tx = sys_.tx(core_);

    for (;;) {
        // Write-intent access to the lock line: invalidates it out
        // of every subscriber's read set.
        const MemAccessResult res = sys_.mem().access(
            core_, sys_.fallback().line(), true, false);
        co_await delayFor(sys_.queue(), res.latency);
        if (sys_.fallback().tryAcquireWrite(core_))
            break;
        co_await waitFallbackRelease(false);
    }
    ++sys_.stats().fallbackAcquisitions;

    tx.beginAttempt(ExecMode::Fallback, false);
    bool committed = false;
    try {
        co_await body_(tx);
        if (!tx.doomed())
            committed = co_await tx.commit();
    } catch (const TxAbort &) {
    }
    CLEARSIM_ASSERT(committed, "fallback execution must commit");

    // Fault seam: stretch the fallback hold, turning every waiter
    // into a convoy (the paper's worst case for subscribers).
    if (FaultInjector *faults = sys_.faults()) {
        const Cycle extra = faults->extendFallbackHold(core_);
        if (extra != 0)
            co_await delayFor(sys_.queue(), extra);
    }

    sys_.fallback().releaseWrite(core_);
}

} // namespace clearsim
