/**
 * @file
 * RegionExecutor: the per-core atomic-region retry driver.
 *
 * Mechanises one AR invocation against the policies the System's
 * PolicySet selected:
 *
 *  - baseline speculative attempts, with the power token taken when
 *    the ConflictResolutionPolicy uses one;
 *  - CLEAR discovery (footprint + taint tracking, failed-mode
 *    continuation) gated by the ERT;
 *  - mode selection for each re-execution delegated to the
 *    RetryPolicy (the Figure 2 tree lives in policy/retry_policy.hh;
 *    the executor gathers the RetryDecisionInput snapshot and
 *    applies the verdict);
 *  - waits charged per the BackoffPolicy;
 *  - the cacheline locker coroutine acquiring locks in
 *    lexicographical (directory set) order with group/set locking
 *    and the Hit-bit fast path (Section 5);
 *  - the fallback path under the global lock.
 */

#ifndef CLEARSIM_CORE_REGION_EXECUTOR_HH
#define CLEARSIM_CORE_REGION_EXECUTOR_HH

#include <cstdint>

#include "core/system.hh"
#include "htm/footprint.hh"
#include "policy/retry_policy.hh"
#include "sim/task.hh"

namespace clearsim
{

/** Per-core region retry driver. */
class RegionExecutor
{
  public:
    RegionExecutor(System &sys, CoreId core);

    RegionExecutor(const RegionExecutor &) = delete;
    RegionExecutor &operator=(const RegionExecutor &) = delete;

    /**
     * Install the body factory for the next invocation. Kept in a
     * member (not a coroutine parameter) so that all coroutine
     * parameters in the executor stay trivially copyable.
     */
    void setBody(BodyFn body) { body_ = std::move(body); }

    /**
     * Run one invocation of the region at pc to commit, applying
     * the configured retry policy. setBody must have been called.
     */
    SimTask runRegion(RegionPc pc);

  private:
    /** One speculative attempt. @retval true on commit. */
    Task<bool> runSpeculative(RegionPc pc, bool discovery);

    /** One S-CL or NS-CL attempt. @retval true on commit. */
    Task<bool> runCacheLocked(bool nscl);

    /** The fallback path; always commits. */
    SimTask runFallback();

    /** Locker coroutine: acquires the plan's locks in order. */
    SimTask runLocker(TxContext &tx);

    /** Acquire one planned line. @retval false if doomed. */
    Task<bool> acquireOne(TxContext &tx, LockPlanEntry &entry);

    /**
     * Snapshot what the RetryPolicy inspects (discovery outcome,
     * ALT lockability, ERT verdict) from the live structures.
     */
    RetryDecisionInput gatherRetryInput(RegionPc pc,
                                        bool discovery_ran);

    /**
     * Park until the fallback lock frees up, with the configured
     * spin interval.
     * @param writer_only wait only for the writer to leave (enough
     *        for speculative/NS-CL/S-CL starts); pass false when
     *        aspiring to take the lock exclusively
     */
    SimTask waitFallbackRelease(bool writer_only = true);

    /**
     * Record a completed backoff wait: feeds the cycles-in-backoff
     * distribution and emits a BackoffWait trace event. No-op for
     * zero-cycle waits.
     */
    void noteBackoff(BackoffWaitKind kind, Cycle waited);

    System &sys_;
    CoreId core_;

    /** Body factory of the current invocation. */
    BodyFn body_;

    /** Footprint saved by the last completed discovery, used to
     *  build S-CL / NS-CL lock plans. Capacity follows the
     *  configured ALT size (footprintCapacity). */
    Footprint savedFootprint_;

    /** The in-flight locker coroutine of the current attempt. */
    SimTask locker_;
};

} // namespace clearsim

#endif // CLEARSIM_CORE_REGION_EXECUTOR_HH
