/**
 * @file
 * System: the complete simulated machine.
 *
 * Owns the event queue, the memory hierarchy, the HTM machinery
 * (conflict manager, fallback lock, power token), the per-core
 * transactional contexts and CLEAR structures (ERT, CRT), and the
 * per-run statistics. Workloads execute against a System instance;
 * the harness builds one System per (configuration, workload, seed)
 * run.
 */

#ifndef CLEARSIM_CORE_SYSTEM_HH
#define CLEARSIM_CORE_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "core/alt.hh"
#include "core/crt.hh"
#include "core/ert.hh"
#include "common/trace.hh"
#include "htm/conflict_manager.hh"
#include "htm/fallback_lock.hh"
#include "htm/htm_stats.hh"
#include "htm/power_token.hh"
#include "htm/tx_context.hh"
#include "mem/memory_system.hh"
#include "policy/policy_set.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"

namespace clearsim
{

class FaultInjector;
class InvariantChecker;
class RegionExecutor;
class RegionPolicyTable;

/** A factory invoked once per execution attempt of an AR body. */
using BodyFn = std::function<SimTask(TxContext &)>;

/** The complete simulated machine. */
class System
{
  public:
    /**
     * @param cfg system configuration (one of B/P/C/W presets)
     * @param seed master seed; all stochastic behavior derives
     *        from it, making runs bit-exact reproducible
     */
    System(const SystemConfig &cfg, std::uint64_t seed);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    const SystemConfig &config() const { return cfg_; }

    /** The execution policies the configuration selected. */
    const PolicySet &policies() const { return policies_; }

    EventQueue &queue() { return queue_; }
    MemorySystem &mem() { return mem_; }
    ConflictManager &conflicts() { return conflicts_; }
    FallbackLock &fallback() { return *fallback_; }
    PowerToken &power() { return power_; }
    HtmStats &stats() { return stats_; }
    Rng &rng() { return rng_; }

    /**
     * Install (or clear) the trace sink. While a sink is installed,
     * every layer of the machine — lock manager, directory,
     * conflict manager, fallback lock, and the region executor —
     * reports its lifecycle events to it; without one, each event
     * site costs a single branch.
     */
    void setTraceSink(TraceSink sink);

    /**
     * Install (or clear) an observer tap on the trace stream. The
     * tap sees every event after the invariant checker but before
     * the user sink, never mutates events, and follows the same
     * null-unless-installed discipline: without one, nothing
     * changes. The analysis-layer CertChecker attaches here, so the
     * core keeps no downward knowledge of certificates.
     */
    void setTraceTap(TraceSink tap);

    /** The event funnel components emit through. */
    const Tracer &tracer() const { return tracer_; }

    /** Emit a trace event if a sink is installed. */
    void emitTrace(const TraceEvent &event) { tracer_.emit(event); }

    /** True if tracing is active. */
    bool tracing() const { return tracer_.active(); }

    /**
     * The fault injector, or nullptr when the configuration's fault
     * plan is inactive. Seam sites (lock manager, TxContext,
     * conflict manager, region executor) hold this pointer and pay
     * one branch when it is null, mirroring the Tracer discipline —
     * a run without faults is cycle-identical to a pre-fault build.
     */
    FaultInjector *faults() { return faults_.get(); }

    /**
     * The invariant checker + watchdog, or nullptr unless
     * fault.watchdog is set. When installed, it taps the trace
     * stream (before any user sink) and is stepped after every
     * event by runToCompletion(), which throws
     * InvariantViolationError on a latched violation.
     */
    InvariantChecker *checker() { return checker_.get(); }

    /**
     * Install (or clear, with nullptr) the region-record sink on
     * every core's TxContext. While installed, each body operation
     * of every attempt is lifted into the analysis IR
     * (htm/region_record.hh); recording never perturbs execution,
     * so a recording run is cycle-identical to a plain run with the
     * same configuration and seed.
     */
    void setRegionRecorder(RegionRecordSink *recorder);

    /**
     * Install (or clear, with nullptr) the per-region policy table
     * of the adaptive preset "A". Follows the null-unless-installed
     * sink discipline: without a table the executor behaves exactly
     * as before the adaptive layer existed. The table must outlive
     * the runs that consult it; System does not take ownership.
     */
    void setRegionPolicy(const RegionPolicyTable *table)
    {
        regionPolicy_ = table;
    }

    /** The installed per-region policy table, or nullptr. */
    const RegionPolicyTable *regionPolicy() const
    {
        return regionPolicy_;
    }

    TxContext &tx(CoreId core) { return *txs_[core]; }
    Ert &ert(CoreId core) { return erts_[core]; }
    Crt &crt(CoreId core) { return crts_[core]; }
    Alt &alt() { return alt_; }
    RegionExecutor &executor(CoreId core) { return *executors_[core]; }

    /**
     * Execute one invocation of the atomic region at pc on the
     * given core, retrying per the configuration's policy until it
     * commits. This is the primary public entry point used by
     * workload thread coroutines.
     */
    SimTask runRegion(CoreId core, RegionPc pc, BodyFn body);

    /**
     * Drive the event queue until all started tasks finish and the
     * queue drains.
     * @param limit optional cycle budget (fatal if exceeded)
     * @return total simulated cycles
     */
    Cycle runToCompletion(Cycle limit = kNoCycle);

  private:
    /** Re-derive the effective sink (checker tap + user sink). */
    void applySink();

    SystemConfig cfg_;
    PolicySet policies_;
    EventQueue queue_;
    Tracer tracer_;
    MemorySystem mem_;
    PowerToken power_;
    ConflictManager conflicts_;
    std::unique_ptr<FallbackLock> fallback_;
    HtmStats stats_;
    Rng rng_;
    Alt alt_;
    std::vector<std::unique_ptr<TxContext>> txs_;
    std::vector<Ert> erts_;
    std::vector<Crt> crts_;
    std::vector<std::unique_ptr<RegionExecutor>> executors_;
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<InvariantChecker> checker_;
    const RegionPolicyTable *regionPolicy_ = nullptr;
    /** Observer tap chained between the checker and the user sink. */
    TraceSink traceTap_;
    /** The externally installed sink, kept apart from the taps. */
    TraceSink userSink_;
};

} // namespace clearsim

#endif // CLEARSIM_CORE_SYSTEM_HH
