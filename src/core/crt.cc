#include "core/crt.hh"

#include "common/log.hh"

namespace clearsim
{

Crt::Crt(unsigned entries, unsigned ways)
    : sets_(entries / ways), ways_(ways), entries_(entries)
{
    CLEARSIM_ASSERT(ways != 0 && entries % ways == 0,
                    "CRT capacity must be a multiple of ways");
    CLEARSIM_ASSERT(sets_ != 0 && (sets_ & (sets_ - 1)) == 0,
                    "CRT sets must be a power of two");
}

unsigned
Crt::setOf(LineAddr line) const
{
    return static_cast<unsigned>(line & (sets_ - 1));
}

void
Crt::insert(LineAddr line)
{
    Entry *base = &entries_[setOf(line) * ways_];
    Entry *victim = base;
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].line == line) {
            base[w].lruStamp = ++stamp_;
            return;
        }
        if (!base[w].valid) {
            victim = &base[w];
        } else if (victim->valid &&
                   base[w].lruStamp < victim->lruStamp) {
            victim = &base[w];
        }
    }
    victim->valid = true;
    victim->line = line;
    victim->lruStamp = ++stamp_;
}

bool
Crt::lookup(LineAddr line)
{
    Entry *base = &entries_[setOf(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].line == line) {
            base[w].lruStamp = ++stamp_;
            return true;
        }
    }
    return false;
}

bool
Crt::contains(LineAddr line) const
{
    const Entry *base = &entries_[setOf(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].line == line)
            return true;
    }
    return false;
}

unsigned
Crt::occupancy() const
{
    unsigned n = 0;
    for (const Entry &e : entries_) {
        if (e.valid)
            ++n;
    }
    return n;
}

void
Crt::reset()
{
    for (Entry &e : entries_)
        e = Entry{};
}

} // namespace clearsim
