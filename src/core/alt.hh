/**
 * @file
 * The Addresses-to-Lock Table (ALT), Section 5, structure 3.
 *
 * A 32-entry CAM (one per core's cache controller) holding the
 * cacheline addresses learned during discovery, sorted by the
 * lexicographical locking order — the set index of the smallest
 * shared structure, here the directory cache. Entries carry:
 *
 *  - Needs Locking: NS-CL locks every entry; S-CL locks written
 *    lines plus reads recorded in the CRT (or all, in the -all-
 *    ablation);
 *  - Locked: set by the locker as acquisition progresses;
 *  - Hit / Conflict: the Conflict bit delimits groups of entries
 *    that share a directory set (a lexicographical conflict); the
 *    Hit bit marks lines already held exclusively, enabling the
 *    communication-free group-lock fast path.
 */

#ifndef CLEARSIM_CORE_ALT_HH
#define CLEARSIM_CORE_ALT_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "htm/footprint.hh"
#include "htm/tx_context.hh"
#include "core/crt.hh"

namespace clearsim
{

/** A run of lock-plan entries sharing one directory set. */
struct AltGroup
{
    std::size_t begin = 0; ///< index into the lock plan
    std::size_t end = 0;   ///< one past the last member
    unsigned dirSet = 0;
};

/**
 * Builds and checks cacheline lock plans from discovery footprints.
 */
class Alt
{
  public:
    /**
     * @param entries CAM capacity (paper: 32)
     * @param dir_sets directory sets (lexicographic order key)
     * @param l1_sets / l1_ways the private cache geometry that must
     *        hold all locked lines simultaneously
     */
    Alt(unsigned entries, unsigned dir_sets, unsigned l1_sets,
        unsigned l1_ways);

    /**
     * Can the footprint's lines be held locked in the cache all at
     * once? True when the footprint is complete, fits the ALT, and
     * no L1 set would need more ways than it has (discovery
     * assessment 2, Section 4.1).
     */
    bool lockable(const Footprint &footprint) const;

    /**
     * Build a lock plan from a discovery footprint, sorted in
     * lexicographical (directory set, line) order.
     *
     * @param footprint the discovery-learned footprint
     * @param crt conflicting-reads table consulted for reads that
     *        must be locked in S-CL
     * @param lock_all true for NS-CL (and the S-CL -all- ablation):
     *        every entry needs locking
     * @return the ordered lock plan (empty if !lockable)
     */
    std::vector<LockPlanEntry> buildPlan(const Footprint &footprint,
                                         const Crt &crt,
                                         bool lock_all) const;

    /**
     * Partition the lock-needing entries of a plan into
     * lexicographical conflict groups (same directory set).
     * Entries with needsLock false are skipped.
     */
    std::vector<AltGroup>
    groupsOf(const std::vector<LockPlanEntry> &plan) const;

    unsigned entries() const { return entries_; }

  private:
    unsigned entries_;
    unsigned dirSets_;
    unsigned l1Sets_;
    unsigned l1Ways_;
};

} // namespace clearsim

#endif // CLEARSIM_CORE_ALT_HH
