#include "core/ert.hh"

#include "common/log.hh"

namespace clearsim
{

Ert::Ert(unsigned entries, unsigned sq_saturation)
    : entries_(entries), sqSaturation_(sq_saturation)
{
    CLEARSIM_ASSERT(entries != 0, "ERT needs at least one entry");
}

ErtEntry &
Ert::lookupOrInsert(RegionPc pc)
{
    ErtEntry *victim = &entries_[0];
    for (ErtEntry &e : entries_) {
        if (e.valid && e.pc == pc) {
            e.lruStamp = ++stamp_;
            return e;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid &&
                   e.lruStamp < victim->lruStamp) {
            victim = &e;
        }
    }
    *victim = ErtEntry{};
    victim->valid = true;
    victim->pc = pc;
    victim->lruStamp = ++stamp_;
    return *victim;
}

ErtEntry *
Ert::find(RegionPc pc)
{
    for (ErtEntry &e : entries_) {
        if (e.valid && e.pc == pc)
            return &e;
    }
    return nullptr;
}

const ErtEntry *
Ert::find(RegionPc pc) const
{
    return const_cast<Ert *>(this)->find(pc);
}

bool
Ert::discoveryEnabled(RegionPc pc) const
{
    const ErtEntry *e = find(pc);
    if (!e)
        return true; // unknown region: discover by default
    return e->isConvertible && e->sqFullCounter < sqSaturation_;
}

void
Ert::recordSqOverflow(RegionPc pc)
{
    ErtEntry &e = lookupOrInsert(pc);
    if (e.sqFullCounter < sqSaturation_)
        ++e.sqFullCounter;
}

void
Ert::recordCommit(RegionPc pc)
{
    if (ErtEntry *e = find(pc)) {
        if (e->sqFullCounter > 0)
            --e->sqFullCounter;
    }
}

unsigned
Ert::occupancy() const
{
    unsigned n = 0;
    for (const ErtEntry &e : entries_) {
        if (e.valid)
            ++n;
    }
    return n;
}

void
Ert::reset()
{
    for (ErtEntry &e : entries_)
        e = ErtEntry{};
}

} // namespace clearsim
