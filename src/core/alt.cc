#include "core/alt.hh"

#include <algorithm>
#include <unordered_map>

#include "common/log.hh"

namespace clearsim
{

Alt::Alt(unsigned entries, unsigned dir_sets, unsigned l1_sets,
         unsigned l1_ways)
    : entries_(entries), dirSets_(dir_sets), l1Sets_(l1_sets),
      l1Ways_(l1_ways)
{
    CLEARSIM_ASSERT(entries != 0, "ALT needs at least one entry");
}

bool
Alt::lockable(const Footprint &footprint) const
{
    if (footprint.overflowed())
        return false;
    if (footprint.size() == 0 || footprint.size() > entries_)
        return false;

    // All locked lines must be resident simultaneously: no L1 set
    // may be oversubscribed.
    std::unordered_map<unsigned, unsigned> per_set;
    for (const FootprintEntry &e : footprint.entries()) {
        const unsigned set =
            static_cast<unsigned>(e.line & (l1Sets_ - 1));
        if (++per_set[set] > l1Ways_)
            return false;
    }
    return true;
}

std::vector<LockPlanEntry>
Alt::buildPlan(const Footprint &footprint, const Crt &crt,
               bool lock_all) const
{
    std::vector<LockPlanEntry> plan;
    if (!lockable(footprint))
        return plan;

    plan.reserve(footprint.size());
    for (const FootprintEntry &e : footprint.entries()) {
        LockPlanEntry entry;
        entry.line = e.line;
        entry.needsLock = lock_all || e.wrote || crt.contains(e.line);
        plan.push_back(entry);
    }

    // Lexicographical order: directory set index, then line address
    // to make the order total (ties within a set are handled by
    // group locking, but a deterministic order keeps runs
    // reproducible).
    const unsigned mask = dirSets_ - 1;
    std::sort(plan.begin(), plan.end(),
              [mask](const LockPlanEntry &a, const LockPlanEntry &b) {
                  const unsigned sa =
                      static_cast<unsigned>(a.line & mask);
                  const unsigned sb =
                      static_cast<unsigned>(b.line & mask);
                  if (sa != sb)
                      return sa < sb;
                  return a.line < b.line;
              });
    return plan;
}

std::vector<AltGroup>
Alt::groupsOf(const std::vector<LockPlanEntry> &plan) const
{
    std::vector<AltGroup> groups;
    const unsigned mask = dirSets_ - 1;
    std::size_t i = 0;
    while (i < plan.size()) {
        if (!plan[i].needsLock) {
            ++i;
            continue;
        }
        const unsigned set = static_cast<unsigned>(plan[i].line & mask);
        std::size_t j = i + 1;
        // Entries not needing a lock are transparent to grouping:
        // the plan is sorted by set, so lock-needing members of one
        // set are contiguous among lock-needing entries.
        std::size_t last = i;
        while (j < plan.size()) {
            if (!plan[j].needsLock) {
                ++j;
                continue;
            }
            if (static_cast<unsigned>(plan[j].line & mask) != set)
                break;
            last = j;
            ++j;
        }
        groups.push_back(AltGroup{i, last + 1, set});
        i = j;
    }
    return groups;
}

} // namespace clearsim
