/**
 * @file
 * Execution tracing.
 *
 * An optional per-System trace sink receives one event per
 * attempt-level action of the region executor (attempt begin,
 * commit, abort, fallback acquisition). Used by the CLI's --trace
 * flag and by tests that assert on execution structure; costs one
 * branch per event when disabled.
 */

#ifndef CLEARSIM_CORE_TRACE_HH
#define CLEARSIM_CORE_TRACE_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "htm/htm_types.hh"

namespace clearsim
{

/** What happened. */
enum class TraceKind : std::uint8_t
{
    /** An execution attempt started (mode says how). */
    AttemptBegin,
    /** The invocation committed (mode + counted retries). */
    Commit,
    /** An attempt aborted (reason). */
    Abort,
    /** The fallback lock was acquired exclusively. */
    FallbackAcquired,
};

/** One trace record. */
struct TraceEvent
{
    Cycle cycle = 0;
    CoreId core = 0;
    RegionPc pc = 0;
    TraceKind kind = TraceKind::AttemptBegin;
    ExecMode mode = ExecMode::Speculative;
    AbortReason reason = AbortReason::None;
    unsigned countedRetries = 0;
};

/** Receives every trace event of a System. */
using TraceSink = std::function<void(const TraceEvent &)>;

/** Short name of a trace kind ("begin", "commit", ...). */
const char *traceKindName(TraceKind kind);

/** Short name of an execution mode ("spec", "s-cl", ...). */
const char *execModeName(ExecMode mode);

/** Short name of an abort reason ("conflict", "nacked", ...). */
const char *abortReasonName(AbortReason reason);

} // namespace clearsim

#endif // CLEARSIM_CORE_TRACE_HH
