/**
 * @file
 * The Conflicting Reads Table (CRT), Section 5, structure 4.
 *
 * A 64-entry, 8-way set-associative, LRU-replaced table, one per
 * core, holding the addresses of cachelines that were only read by
 * an AR but received a conflicting invalidation that caused an
 * abort. Before an S-CL re-execution, lines present in the CRT are
 * marked Needs Locking in the ALT so the same conflict cannot
 * recur.
 */

#ifndef CLEARSIM_CORE_CRT_HH
#define CLEARSIM_CORE_CRT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace clearsim
{

/** The per-core Conflicting Reads Table. */
class Crt
{
  public:
    /**
     * @param entries total capacity (paper: 64)
     * @param ways associativity (paper: 8)
     */
    explicit Crt(unsigned entries = 64, unsigned ways = 8);

    /** Insert a conflicting read line (LRU within its set). */
    void insert(LineAddr line);

    /** True if line is present (refreshes LRU). */
    bool lookup(LineAddr line);

    /** True if line is present (no LRU update). */
    bool contains(LineAddr line) const;

    /** Number of valid entries. */
    unsigned occupancy() const;

    /** Invalidate all entries. */
    void reset();

  private:
    struct Entry
    {
        bool valid = false;
        LineAddr line = 0;
        std::uint64_t lruStamp = 0;
    };

    unsigned setOf(LineAddr line) const;

    unsigned sets_;
    unsigned ways_;
    std::vector<Entry> entries_;
    std::uint64_t stamp_ = 0;
};

} // namespace clearsim

#endif // CLEARSIM_CORE_CRT_HH
