/**
 * @file
 * Unit tests for RetryPolicy: every branch of the Figure 2 decision
 * tree, driven through RetryDecisionInput snapshots — no System,
 * TxContext or memory hierarchy behind them.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "policy/retry_policy.hh"

namespace clearsim
{
namespace
{

/** Input that satisfies every Figure 2 precondition for NS-CL. */
RetryDecisionInput
perfectDiscovery()
{
    RetryDecisionInput in;
    in.discoveryRan = true;
    in.structuresOverflowed = false;
    in.discoveryComplete = true;
    in.footprintLockable = true;
    in.regionConvertible = true;
    in.sawIndirection = false;
    return in;
}

TEST(ClearRetryPolicyTest, NoDiscoveryRetriesSpeculatively)
{
    const ClearRetryPolicy policy(4);
    RetryDecisionInput in = perfectDiscovery();
    in.discoveryRan = false;
    EXPECT_EQ(policy.decideRetryMode(in),
              RetryMode::SpeculativeRetry);
}

TEST(ClearRetryPolicyTest, OverflowRetriesSpeculatively)
{
    const ClearRetryPolicy policy(4);
    RetryDecisionInput in = perfectDiscovery();
    in.structuresOverflowed = true;
    EXPECT_EQ(policy.decideRetryMode(in),
              RetryMode::SpeculativeRetry);
}

TEST(ClearRetryPolicyTest, IncompleteDiscoveryRetriesSpeculatively)
{
    const ClearRetryPolicy policy(4);
    RetryDecisionInput in = perfectDiscovery();
    in.discoveryComplete = false;
    EXPECT_EQ(policy.decideRetryMode(in),
              RetryMode::SpeculativeRetry);
}

TEST(ClearRetryPolicyTest, UnlockableFootprintRetriesSpeculatively)
{
    const ClearRetryPolicy policy(4);
    RetryDecisionInput in = perfectDiscovery();
    in.footprintLockable = false;
    EXPECT_EQ(policy.decideRetryMode(in),
              RetryMode::SpeculativeRetry);
}

TEST(ClearRetryPolicyTest, ErtVetoRetriesSpeculatively)
{
    const ClearRetryPolicy policy(4);
    RetryDecisionInput in = perfectDiscovery();
    in.regionConvertible = false;
    EXPECT_EQ(policy.decideRetryMode(in),
              RetryMode::SpeculativeRetry);
}

TEST(ClearRetryPolicyTest, CleanDiscoveryConvertsToNsCl)
{
    const ClearRetryPolicy policy(4);
    EXPECT_EQ(policy.decideRetryMode(perfectDiscovery()),
              RetryMode::NsCl);
}

TEST(ClearRetryPolicyTest, IndirectionForcesSCl)
{
    const ClearRetryPolicy policy(4);
    RetryDecisionInput in = perfectDiscovery();
    in.sawIndirection = true;
    EXPECT_EQ(policy.decideRetryMode(in), RetryMode::SCl);
}

TEST(BaselineRetryPolicyTest, AlwaysRetriesSpeculatively)
{
    const BaselineRetryPolicy policy(4);
    // Even a perfect discovery outcome never converts: the baseline
    // has no cacheline-locked modes.
    EXPECT_EQ(policy.decideRetryMode(perfectDiscovery()),
              RetryMode::SpeculativeRetry);
    RetryDecisionInput in = perfectDiscovery();
    in.sawIndirection = true;
    EXPECT_EQ(policy.decideRetryMode(in),
              RetryMode::SpeculativeRetry);
}

TEST(RetryPolicyTest, FallbackAbortsDoNotCountTowardTheLimit)
{
    const ClearRetryPolicy policy(4);
    EXPECT_TRUE(policy.countsRetry(AbortReason::MemoryConflict));
    EXPECT_TRUE(policy.countsRetry(AbortReason::Nacked));
    EXPECT_TRUE(policy.countsRetry(AbortReason::CapacityOverflow));
    EXPECT_TRUE(policy.countsRetry(AbortReason::Deviation));
    EXPECT_TRUE(policy.countsRetry(AbortReason::Explicit));
    EXPECT_FALSE(policy.countsRetry(AbortReason::ExplicitFallback));
    EXPECT_FALSE(policy.countsRetry(AbortReason::OtherFallback));
}

TEST(RetryPolicyTest, ExhaustedAtTheConfiguredBudget)
{
    const BaselineRetryPolicy policy(4);
    EXPECT_EQ(policy.maxRetries(), 4u);
    EXPECT_FALSE(policy.exhausted(0));
    EXPECT_FALSE(policy.exhausted(3));
    EXPECT_TRUE(policy.exhausted(4));
    EXPECT_TRUE(policy.exhausted(5));

    // maxRetries=0 means the first abort already goes to fallback.
    const BaselineRetryPolicy none(0);
    EXPECT_TRUE(none.exhausted(0));
}

TEST(RetryPolicyTest, LockedAbortConflictRerunsSCl)
{
    const ClearRetryPolicy policy(4);
    for (const AbortReason reason :
         {AbortReason::MemoryConflict, AbortReason::Nacked}) {
        const LockedAbortDecision d =
            policy.decideAfterLockedAbort(reason);
        EXPECT_EQ(d.next, RetryMode::SCl);
        EXPECT_FALSE(d.disableDiscovery);
    }
}

TEST(RetryPolicyTest, LockedAbortDeviationDisablesDiscovery)
{
    const ClearRetryPolicy policy(4);
    for (const AbortReason reason :
         {AbortReason::Deviation, AbortReason::CapacityOverflow,
          AbortReason::OtherFallback, AbortReason::Explicit}) {
        const LockedAbortDecision d =
            policy.decideAfterLockedAbort(reason);
        EXPECT_EQ(d.next, RetryMode::SpeculativeRetry);
        EXPECT_TRUE(d.disableDiscovery);
    }
}

TEST(RetryPolicyFactoryTest, ConfigSelectsThePolicy)
{
    const auto baseline = makeRetryPolicy(makeBaselineConfig());
    EXPECT_STREQ(baseline->name(), "baseline");

    const auto power = makeRetryPolicy(makePowerTmConfig());
    EXPECT_STREQ(power->name(), "baseline");

    const auto clear = makeRetryPolicy(makeClearConfig());
    EXPECT_STREQ(clear->name(), "clear");

    const auto clear_power =
        makeRetryPolicy(makeClearPowerConfig());
    EXPECT_STREQ(clear_power->name(), "clear");
}

TEST(RetryPolicyFactoryTest, MaxRetriesPropagates)
{
    SystemConfig cfg = makeClearConfig();
    cfg.maxRetries = 7;
    const auto policy = makeRetryPolicy(cfg);
    EXPECT_EQ(policy->maxRetries(), 7u);
    EXPECT_FALSE(policy->exhausted(6));
    EXPECT_TRUE(policy->exhausted(7));
}

} // namespace
} // namespace clearsim
