/**
 * @file
 * Unit tests for the ConfigRegistry and its spec-string grammar
 * (preset[+modifier...][:key=value...]).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/config.hh"
#include "common/json.hh"
#include "policy/config_registry.hh"

namespace clearsim
{
namespace
{

SystemConfig
mustMake(const std::string &spec)
{
    SystemConfig cfg;
    std::string error;
    const bool ok =
        ConfigRegistry::instance().tryMake(spec, cfg, error);
    EXPECT_TRUE(ok) << "spec '" << spec << "': " << error;
    return cfg;
}

std::string
mustFail(const std::string &spec)
{
    SystemConfig cfg;
    std::string error;
    EXPECT_FALSE(
        ConfigRegistry::instance().tryMake(spec, cfg, error))
        << "spec '" << spec << "' unexpectedly parsed";
    return error;
}

TEST(ConfigRegistryTest, FourPresetsAreRegistered)
{
    const ConfigRegistry &reg = ConfigRegistry::instance();
    for (const char *name : {"B", "P", "C", "W"})
        EXPECT_TRUE(reg.hasPreset(name)) << name;
    EXPECT_FALSE(reg.hasPreset("X"));

    const std::vector<std::string> names = reg.presetNames();
    EXPECT_EQ(names.size(), reg.presets().size());
    EXPECT_NE(std::find(names.begin(), names.end(), "C"),
              names.end());
}

TEST(ConfigRegistryTest, PlainPresetsMatchTheLegacyFactories)
{
    EXPECT_FALSE(mustMake("B").clear.enabled);
    EXPECT_EQ(mustMake("B").htmPolicy, HtmPolicy::RequesterWins);
    EXPECT_EQ(mustMake("P").htmPolicy, HtmPolicy::PowerTm);
    EXPECT_TRUE(mustMake("C").clear.enabled);
    EXPECT_TRUE(mustMake("W").clear.enabled);
    EXPECT_EQ(mustMake("W").htmPolicy, HtmPolicy::PowerTm);
}

TEST(ConfigRegistryTest, SpecBecomesTheConfigName)
{
    EXPECT_EQ(mustMake("C").name, "C");
    EXPECT_EQ(mustMake("C+scl-all-reads").name, "C+scl-all-reads");
    EXPECT_EQ(mustMake("B:maxRetries=8").name, "B:maxRetries=8");
}

TEST(ConfigRegistryTest, ModifiersApply)
{
    EXPECT_FALSE(mustMake("C").clear.sclLockAllReads);
    EXPECT_TRUE(mustMake("C+scl-all-reads").clear.sclLockAllReads);
    EXPECT_TRUE(mustMake("C").clear.failedModeDiscovery);
    EXPECT_FALSE(
        mustMake("C+no-failed-mode").clear.failedModeDiscovery);
    EXPECT_EQ(mustMake("C+sle").scope, SpeculationScope::InCore);
    EXPECT_EQ(mustMake("C+htm").scope, SpeculationScope::OutOfCore);
    EXPECT_TRUE(mustMake("C+profile").profileMode);

    // Modifiers compose left to right.
    const SystemConfig cfg = mustMake("C+sle+scl-all-reads");
    EXPECT_EQ(cfg.scope, SpeculationScope::InCore);
    EXPECT_TRUE(cfg.clear.sclLockAllReads);
}

TEST(ConfigRegistryTest, OverridesApply)
{
    EXPECT_EQ(mustMake("B:maxRetries=8").maxRetries, 8u);
    EXPECT_EQ(mustMake("C:altEntries=16").clear.altEntries, 16u);
    EXPECT_EQ(mustMake("C:numCores=16").numCores, 16u);
    EXPECT_EQ(mustMake("C:retryBackoffBase=0").timing
                  .retryBackoffBase,
              0u);

    // Overrides and modifiers mix in one spec.
    const SystemConfig cfg =
        mustMake("C+scl-all-reads:maxRetries=2:altEntries=8");
    EXPECT_TRUE(cfg.clear.sclLockAllReads);
    EXPECT_EQ(cfg.maxRetries, 2u);
    EXPECT_EQ(cfg.clear.altEntries, 8u);
}

TEST(ConfigRegistryTest, UnknownPresetListsTheRegisteredOnes)
{
    const std::string error = mustFail("Z");
    EXPECT_NE(error.find("unknown configuration 'Z'"),
              std::string::npos)
        << error;
    // The message must name the actual registered presets.
    for (const char *name : {"B", "P", "C", "W"})
        EXPECT_NE(error.find(name), std::string::npos) << error;
}

TEST(ConfigRegistryTest, UnknownModifierListsTheKnownOnes)
{
    const std::string error = mustFail("C+bogus");
    EXPECT_NE(error.find("unknown modifier '+bogus'"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("scl-all-reads"), std::string::npos)
        << error;
}

TEST(ConfigRegistryTest, UnknownOverrideKeyListsTheKnownOnes)
{
    const std::string error = mustFail("C:bogus=1");
    EXPECT_NE(error.find("unknown override key 'bogus'"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("maxRetries"), std::string::npos) << error;
}

TEST(ConfigRegistryTest, MalformedSpecsAreRejected)
{
    mustFail("");
    mustFail("C:maxRetries");        // no '='
    mustFail("C:=4");                // empty key
    mustFail("C:maxRetries=");       // empty value
    mustFail("C:maxRetries=abc");    // not an integer
    mustFail("C:maxRetries=-1");     // signs rejected
    mustFail("C:maxRetries=4x");     // trailing garbage
    mustFail("C:numCores=0");        // below the minimum
    mustFail("C:numCores=65");       // above the maximum
    mustFail("C+");                  // empty modifier
}

TEST(ConfigRegistryTest, DuplicateOverrideKeysAreAHardError)
{
    // A spec giving the same key twice is ambiguous (which value
    // did the user mean?) and used to silently apply last-wins.
    // Now it is rejected, and the message names both occurrences.
    const std::string error =
        mustFail("C:maxRetries=2:altEntries=8:maxRetries=4");
    EXPECT_NE(error.find("'maxRetries'"), std::string::npos)
        << error;
    EXPECT_NE(error.find(":maxRetries=2"), std::string::npos)
        << error;
    EXPECT_NE(error.find(":maxRetries=4"), std::string::npos)
        << error;

    // Distinct keys still compose fine.
    mustMake("C:maxRetries=2:altEntries=8");
}

TEST(ConfigRegistryTest, CanonicalStringIgnoresSpecSpelling)
{
    // Semantically identical specs — a modifier vs the override it
    // expands to, or a reordered modifier list — canonicalize to
    // the same bytes; that string is what dedupe and the sweep
    // cache hash.
    EXPECT_EQ(canonicalConfigString(mustMake("C+watchdog")),
              canonicalConfigString(
                  mustMake("C:fault.watchdog=1")));
    EXPECT_EQ(canonicalConfigString(
                  mustMake("C+watchdog+scl-all-reads")),
              canonicalConfigString(
                  mustMake("C+scl-all-reads+watchdog")));
    // A no-op override does not change identity either.
    EXPECT_EQ(canonicalConfigString(mustMake("C")),
              canonicalConfigString(mustMake(
                  "C:maxRetries=" +
                  std::to_string(mustMake("C").maxRetries))));

    // ...while every execution-relevant difference shows.
    EXPECT_NE(canonicalConfigString(mustMake("C")),
              canonicalConfigString(mustMake("C:maxRetries=9")));
    EXPECT_NE(canonicalConfigString(mustMake("C")),
              canonicalConfigString(mustMake("A")));
    EXPECT_NE(canonicalConfigString(mustMake("A")),
              canonicalConfigString(mustMake("A:adapt.retries=2")));

    // The display name is presentation, not identity.
    SystemConfig renamed = mustMake("C");
    renamed.name = "something-else";
    EXPECT_EQ(canonicalConfigString(mustMake("C")),
              canonicalConfigString(renamed));
}

TEST(ConfigRegistryTest, DescriptionsAreNonEmpty)
{
    const ConfigRegistry &reg = ConfigRegistry::instance();
    for (const ConfigPreset &p : reg.presets())
        EXPECT_FALSE(p.description.empty()) << p.name;
    for (const ConfigModifier &m : reg.modifiers())
        EXPECT_FALSE(m.description.empty()) << m.name;
    for (const ConfigOverrideKey &k : reg.overrideKeys())
        EXPECT_FALSE(k.description.empty()) << k.name;
}

TEST(ConfigRegistryTest, FaultModifiersAreEnumerated)
{
    // Daemon clients discover the spec grammar by enumerating the
    // registry, so every "+name" the parser accepts must be listed —
    // including the canned fault plans and the watchdog, which were
    // historically registered but easy to miss in listings.
    const ConfigRegistry &reg = ConfigRegistry::instance();
    auto listed = [&reg](const std::string &name) {
        return std::any_of(reg.modifiers().begin(),
                           reg.modifiers().end(),
                           [&name](const ConfigModifier &m) {
                               return m.name == name;
                           });
    };
    EXPECT_TRUE(listed("watchdog"));
    EXPECT_TRUE(listed("faults-nack-storm"));
    EXPECT_TRUE(listed("faults-delay-jitter"));
    EXPECT_TRUE(listed("faults-forced-abort"));
}

TEST(ConfigRegistryTest, CatalogueJsonCoversTheWholeGrammar)
{
    const ConfigRegistry &reg = ConfigRegistry::instance();
    const std::string text = reg.catalogueJson();

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(text, doc, error)) << error;
    EXPECT_EQ(doc.find("schema")->text,
              "clearsim-config-catalogue-v1");

    auto names = [&doc](const char *section) {
        std::vector<std::string> out;
        for (const JsonValue &entry : doc.find(section)->items)
            out.push_back(entry.find("name")->text);
        return out;
    };
    auto has = [](const std::vector<std::string> &list,
                  const std::string &name) {
        return std::find(list.begin(), list.end(), name) !=
               list.end();
    };

    // Every registry entry appears, with a non-empty description.
    EXPECT_EQ(names("presets").size(), reg.presets().size());
    EXPECT_EQ(names("modifiers").size(), reg.modifiers().size());
    EXPECT_EQ(names("overrides").size(), reg.overrideKeys().size());
    for (const char *section : {"presets", "modifiers", "overrides"})
        for (const JsonValue &entry : doc.find(section)->items)
            EXPECT_FALSE(entry.find("description")->text.empty())
                << section << "/" << entry.find("name")->text;

    EXPECT_TRUE(has(names("modifiers"), "watchdog"));
    EXPECT_TRUE(has(names("modifiers"), "faults-nack-storm"));
    EXPECT_TRUE(has(names("overrides"), "fault.forced-abort"));

    // Override entries carry their accepted range.
    const JsonValue &first = doc.find("overrides")->items.front();
    EXPECT_NE(first.find("min"), nullptr);
    EXPECT_NE(first.find("max"), nullptr);

    // Deterministic: two serializations are byte-identical.
    EXPECT_EQ(text, reg.catalogueJson());
}

TEST(ConfigRegistryTest, MakeConfigByNameUsesTheRegistry)
{
    // The legacy entry point accepts full spec strings now.
    EXPECT_EQ(makeConfigByName("C").name, "C");
    EXPECT_EQ(makeConfigByName("C:maxRetries=3").maxRetries, 3u);
    EXPECT_EQ(makeConfigFromSpec("W").htmPolicy, HtmPolicy::PowerTm);
}

} // namespace
} // namespace clearsim
