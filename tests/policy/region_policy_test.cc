/**
 * @file
 * Unit tests for the adaptive preset "A" machinery: verdict ->
 * decision resolution, the RegionPolicyTable, the registered preset
 * and its :adapt.* override keys.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "policy/config_registry.hh"
#include "policy/region_policy.hh"

namespace clearsim
{
namespace
{

TEST(AdaptConfigTest, ActionNamesAreStable)
{
    EXPECT_STREQ("clear", adaptActionName(AdaptAction::Clear));
    EXPECT_STREQ("fallback", adaptActionName(AdaptAction::Fallback));
    EXPECT_STREQ("bounded-retry",
                 adaptActionName(AdaptAction::BoundedRetry));
    EXPECT_STREQ("conservative-lock",
                 adaptActionName(AdaptAction::ConservativeLock));
    EXPECT_STREQ("sle", adaptActionName(AdaptAction::Sle));
}

TEST(AdaptConfigTest, VerdictNamesMatchTheAnalyzerReport)
{
    EXPECT_STREQ("ELIGIBLE",
                 regionVerdictName(RegionVerdict::Eligible));
    EXPECT_STREQ("CAPACITY-DOOMED",
                 regionVerdictName(RegionVerdict::CapacityDoomed));
    EXPECT_STREQ("UNBOUNDED-INDIRECTION",
                 regionVerdictName(
                     RegionVerdict::UnboundedIndirection));
    EXPECT_STREQ("LOCK-ORDER-RISK",
                 regionVerdictName(RegionVerdict::LockOrderRisk));
}

TEST(RegionDecisionTest, DefaultMappingOfPresetA)
{
    const SystemConfig cfg = makeAdaptiveConfig();
    ASSERT_TRUE(cfg.adapt.enabled);

    const RegionDecision eligible =
        resolveRegionDecision(RegionVerdict::Eligible, cfg);
    EXPECT_EQ(AdaptAction::Clear, eligible.action);
    EXPECT_EQ(cfg.maxRetries, eligible.retryBudget);
    EXPECT_TRUE(eligible.allowDiscovery);
    EXPECT_TRUE(eligible.allowCacheLocked);
    EXPECT_FALSE(eligible.inCoreSpeculation);

    const RegionDecision doomed =
        resolveRegionDecision(RegionVerdict::CapacityDoomed, cfg);
    EXPECT_EQ(AdaptAction::Fallback, doomed.action);
    EXPECT_EQ(0u, doomed.retryBudget);
    EXPECT_FALSE(doomed.allowDiscovery);
    EXPECT_FALSE(doomed.allowCacheLocked);

    const RegionDecision indirect = resolveRegionDecision(
        RegionVerdict::UnboundedIndirection, cfg);
    EXPECT_EQ(AdaptAction::BoundedRetry, indirect.action);
    EXPECT_EQ(cfg.adapt.boundedRetries, indirect.retryBudget);
    EXPECT_FALSE(indirect.allowDiscovery);

    const RegionDecision risky =
        resolveRegionDecision(RegionVerdict::LockOrderRisk, cfg);
    EXPECT_EQ(AdaptAction::ConservativeLock, risky.action);
    EXPECT_EQ(cfg.maxRetries, risky.retryBudget);
    EXPECT_TRUE(risky.allowDiscovery);
    EXPECT_FALSE(risky.allowCacheLocked);
}

TEST(RegionDecisionTest, BoundedRetryBudgetClampsToMaxRetries)
{
    // The single-retry-bound invariant requires every per-region
    // budget to stay within the global maxRetries: a config asking
    // for more bounded retries than the run allows is clamped, not
    // honoured.
    SystemConfig cfg = makeAdaptiveConfig();
    cfg.maxRetries = 1;
    cfg.adapt.boundedRetries = 7;
    EXPECT_EQ(1u, resolveRegionDecision(
                      RegionVerdict::UnboundedIndirection, cfg)
                      .retryBudget);

    cfg.maxRetries = 8;
    EXPECT_EQ(7u, resolveRegionDecision(
                      RegionVerdict::UnboundedIndirection, cfg)
                      .retryBudget);
}

TEST(RegionDecisionTest, SleActionSpeculatesInCore)
{
    SystemConfig cfg = makeAdaptiveConfig();
    cfg.adapt.unboundedIndirection = AdaptAction::Sle;
    const RegionDecision decision = resolveRegionDecision(
        RegionVerdict::UnboundedIndirection, cfg);
    EXPECT_EQ(AdaptAction::Sle, decision.action);
    EXPECT_TRUE(decision.inCoreSpeculation);
    EXPECT_FALSE(decision.allowCacheLocked);
}

TEST(RegionPolicyTableTest, FromVerdictsBuildsOrderedDecisions)
{
    const SystemConfig cfg = makeAdaptiveConfig();
    RegionVerdictMap verdicts;
    verdicts[0x200] = RegionVerdict::CapacityDoomed;
    verdicts[0x100] = RegionVerdict::Eligible;

    const RegionPolicyTable table =
        RegionPolicyTable::fromVerdicts(verdicts, cfg);
    EXPECT_FALSE(table.empty());
    ASSERT_EQ(2u, table.decisions().size());

    const RegionDecision *eligible = table.lookup(0x100);
    ASSERT_NE(nullptr, eligible);
    EXPECT_EQ(AdaptAction::Clear, eligible->action);

    const RegionDecision *doomed = table.lookup(0x200);
    ASSERT_NE(nullptr, doomed);
    EXPECT_EQ(AdaptAction::Fallback, doomed->action);

    // A region the capture never saw has no decision: the executor
    // then runs it with the static policy.
    EXPECT_EQ(nullptr, table.lookup(0x300));
}

TEST(RegionPolicyTableTest, ReportListsEveryRegionInPcOrder)
{
    const SystemConfig cfg = makeAdaptiveConfig();
    RegionVerdictMap verdicts;
    verdicts[0x200] = RegionVerdict::CapacityDoomed;
    verdicts[0x100] = RegionVerdict::Eligible;
    const std::string report =
        RegionPolicyTable::fromVerdicts(verdicts, cfg).report();

    const std::string::size_type first = report.find("region 0x100");
    const std::string::size_type second = report.find("region 0x200");
    ASSERT_NE(std::string::npos, first);
    ASSERT_NE(std::string::npos, second);
    EXPECT_LT(first, second);
    EXPECT_NE(std::string::npos, report.find("ELIGIBLE"));
    EXPECT_NE(std::string::npos, report.find("-> clear"));
    EXPECT_NE(std::string::npos, report.find("-> fallback"));
    EXPECT_NE(std::string::npos, report.find("budget=0"));
    EXPECT_TRUE(RegionPolicyTable().report().empty());
}

TEST(AdaptivePresetTest, PresetAIsRegistered)
{
    EXPECT_TRUE(ConfigRegistry::instance().hasPreset("A"));
    const SystemConfig cfg = makeConfigFromSpec("A");
    EXPECT_EQ("A", cfg.name);
    EXPECT_TRUE(cfg.adapt.enabled);
    EXPECT_TRUE(cfg.clear.enabled); // A routes *onto* CLEAR
    // Static presets never enable the adaptive routing.
    for (const char *name : {"B", "P", "C", "W"})
        EXPECT_FALSE(makeConfigFromSpec(name).adapt.enabled) << name;
}

TEST(AdaptivePresetTest, AdaptOverrideKeysApply)
{
    // The whole verdict->action mapping is spec-addressable.
    EXPECT_TRUE(makeConfigFromSpec("C:adapt.enabled=1").adapt.enabled);
    EXPECT_FALSE(makeConfigFromSpec("A:adapt.enabled=0").adapt.enabled);
    EXPECT_EQ(AdaptAction::Sle,
              makeConfigFromSpec("A:adapt.indirection=4")
                  .adapt.unboundedIndirection);
    EXPECT_EQ(AdaptAction::BoundedRetry,
              makeConfigFromSpec("A:adapt.capacity=2")
                  .adapt.capacityDoomed);
    EXPECT_EQ(AdaptAction::Fallback,
              makeConfigFromSpec("A:adapt.eligible=1")
                  .adapt.eligible);
    EXPECT_EQ(AdaptAction::Clear,
              makeConfigFromSpec("A:adapt.lock-order=0")
                  .adapt.lockOrderRisk);
    EXPECT_EQ(3u,
              makeConfigFromSpec("A:adapt.retries=3")
                  .adapt.boundedRetries);

    // Out-of-range action codes are rejected by the grammar.
    SystemConfig cfg;
    std::string error;
    EXPECT_FALSE(ConfigRegistry::instance().tryMake(
        "A:adapt.eligible=5", cfg, error));
}

} // namespace
} // namespace clearsim
