/**
 * @file
 * Unit tests for ConflictResolutionPolicy: requester-wins, PowerTM
 * priority, and the Section 5.2 S-CL/power nack rules of CLEAR over
 * PowerTM — exercised through RequesterView/HolderView pairs.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "policy/conflict_policy.hh"

namespace clearsim
{
namespace
{

RequesterView
requester(RequesterClass cls, bool power = false)
{
    RequesterView view;
    view.cls = cls;
    view.powerMode = power;
    return view;
}

HolderView
holder(bool power, bool scl)
{
    HolderView view;
    view.powerMode = power;
    view.sclMode = scl;
    return view;
}

TEST(RequesterWinsPolicyTest, NeverNacks)
{
    const RequesterWinsPolicy policy;
    EXPECT_FALSE(policy.usesPowerToken());
    for (const RequesterClass cls :
         {RequesterClass::Speculative, RequesterClass::SclUnlocked,
          RequesterClass::SclLocking}) {
        EXPECT_FALSE(policy.holderNacksRequester(
            requester(cls), holder(false, false)));
        EXPECT_FALSE(policy.holderNacksRequester(
            requester(cls), holder(true, true)));
    }
}

TEST(PowerTmPolicyTest, PowerHolderNacksNonPowerRequester)
{
    const PowerTmPolicy policy(/*clear_interop=*/false);
    EXPECT_TRUE(policy.usesPowerToken());
    EXPECT_TRUE(policy.holderNacksRequester(
        requester(RequesterClass::Speculative),
        holder(/*power=*/true, /*scl=*/false)));
    EXPECT_FALSE(policy.holderNacksRequester(
        requester(RequesterClass::Speculative),
        holder(/*power=*/false, /*scl=*/false)));
}

TEST(PowerTmPolicyTest, PowerRequesterIsNotNackedByPowerHolder)
{
    // There is a single power token system-wide, but the rule must
    // still be asymmetric: a power-mode requester never loses to a
    // power-mode holder.
    const PowerTmPolicy policy(/*clear_interop=*/false);
    EXPECT_FALSE(policy.holderNacksRequester(
        requester(RequesterClass::Speculative, /*power=*/true),
        holder(/*power=*/true, /*scl=*/false)));
}

TEST(PowerTmPolicyTest, WithoutClearInteropSclIsNotSpecial)
{
    const PowerTmPolicy policy(/*clear_interop=*/false);
    // An S-CL holder does not nack a power requester...
    EXPECT_FALSE(policy.holderNacksRequester(
        requester(RequesterClass::Speculative, /*power=*/true),
        holder(/*power=*/false, /*scl=*/true)));
    // ...and an S-CL requester is treated like any non-power one.
    EXPECT_TRUE(policy.holderNacksRequester(
        requester(RequesterClass::SclUnlocked),
        holder(/*power=*/true, /*scl=*/false)));
}

TEST(PowerTmPolicyTest, ClearInteropAppliesSection52)
{
    const PowerTmPolicy policy(/*clear_interop=*/true);
    // S-CL holder nacks a power-mode requester instead of dying.
    EXPECT_TRUE(policy.holderNacksRequester(
        requester(RequesterClass::Speculative, /*power=*/true),
        holder(/*power=*/false, /*scl=*/true)));
    // Power holder nacks S-CL requests (both flavours).
    EXPECT_TRUE(policy.holderNacksRequester(
        requester(RequesterClass::SclUnlocked),
        holder(/*power=*/true, /*scl=*/false)));
    EXPECT_TRUE(policy.holderNacksRequester(
        requester(RequesterClass::SclLocking),
        holder(/*power=*/true, /*scl=*/false)));
    // Plain speculative vs plain holder stays requester-wins.
    EXPECT_FALSE(policy.holderNacksRequester(
        requester(RequesterClass::Speculative),
        holder(/*power=*/false, /*scl=*/false)));
    // S-CL holder vs non-power speculative requester: the holder
    // has no priority of its own; the requester wins.
    EXPECT_FALSE(policy.holderNacksRequester(
        requester(RequesterClass::Speculative),
        holder(/*power=*/false, /*scl=*/true)));
}

TEST(ConflictPolicyFactoryTest, ConfigSelectsThePolicy)
{
    EXPECT_STREQ(makeConflictPolicy(makeBaselineConfig())->name(),
                 "requester-wins");
    EXPECT_STREQ(makeConflictPolicy(makeClearConfig())->name(),
                 "requester-wins");
    EXPECT_STREQ(makeConflictPolicy(makePowerTmConfig())->name(),
                 "powertm");
    EXPECT_STREQ(makeConflictPolicy(makeClearPowerConfig())->name(),
                 "powertm");

    EXPECT_FALSE(
        makeConflictPolicy(makeBaselineConfig())->usesPowerToken());
    EXPECT_TRUE(
        makeConflictPolicy(makePowerTmConfig())->usesPowerToken());
}

TEST(ConflictPolicyFactoryTest, ClearInteropOnlyUnderW)
{
    // P: PowerTM without CLEAR — no Section 5.2 rules.
    const auto p = makeConflictPolicy(makePowerTmConfig());
    EXPECT_FALSE(p->holderNacksRequester(
        requester(RequesterClass::Speculative, /*power=*/true),
        holder(/*power=*/false, /*scl=*/true)));

    // W: CLEAR over PowerTM — S-CL holders nack power requesters.
    const auto w = makeConflictPolicy(makeClearPowerConfig());
    EXPECT_TRUE(w->holderNacksRequester(
        requester(RequesterClass::Speculative, /*power=*/true),
        holder(/*power=*/false, /*scl=*/true)));
}

} // namespace
} // namespace clearsim
