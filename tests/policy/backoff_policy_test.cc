/** @file Unit tests for BackoffPolicy. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "policy/backoff_policy.hh"

namespace clearsim
{
namespace
{

TEST(LinearBackoffPolicyTest, FirstAttemptWaitsNothing)
{
    const LinearBackoffPolicy policy(/*retry_base=*/50,
                                     /*lock_retry=*/12,
                                     /*fallback_spin=*/30);
    for (CoreId core = 0; core < 16; ++core)
        EXPECT_EQ(policy.speculativeRetryDelay(0, core), 0u);
}

TEST(LinearBackoffPolicyTest, ZeroBaseDisablesBackoff)
{
    const LinearBackoffPolicy policy(/*retry_base=*/0,
                                     /*lock_retry=*/12,
                                     /*fallback_spin=*/30);
    EXPECT_EQ(policy.speculativeRetryDelay(1, 0), 0u);
    EXPECT_EQ(policy.speculativeRetryDelay(5, 3), 0u);
}

TEST(LinearBackoffPolicyTest, DelayGrowsLinearly)
{
    const LinearBackoffPolicy policy(/*retry_base=*/50,
                                     /*lock_retry=*/12,
                                     /*fallback_spin=*/30);
    EXPECT_EQ(policy.speculativeRetryDelay(1, 0), 50u);
    EXPECT_EQ(policy.speculativeRetryDelay(2, 0), 100u);
    EXPECT_EQ(policy.speculativeRetryDelay(3, 0), 150u);
}

TEST(LinearBackoffPolicyTest, PerCoreStaggerDeclustersRetries)
{
    const LinearBackoffPolicy policy(/*retry_base=*/50,
                                     /*lock_retry=*/12,
                                     /*fallback_spin=*/30);
    // Each of 8 neighbouring cores gets a distinct offset...
    EXPECT_EQ(policy.speculativeRetryDelay(1, 0), 50u);
    EXPECT_EQ(policy.speculativeRetryDelay(1, 1), 59u);
    EXPECT_EQ(policy.speculativeRetryDelay(1, 7), 50u + 7 * 9);
    // ...and the stagger wraps modulo 8.
    EXPECT_EQ(policy.speculativeRetryDelay(1, 8),
              policy.speculativeRetryDelay(1, 0));
}

TEST(LinearBackoffPolicyTest, FixedLockAndFallbackIntervals)
{
    const LinearBackoffPolicy policy(/*retry_base=*/50,
                                     /*lock_retry=*/12,
                                     /*fallback_spin=*/30);
    EXPECT_EQ(policy.lockRetryDelay(), 12u);
    EXPECT_EQ(policy.fallbackSpinDelay(), 30u);
}

TEST(BackoffPolicyFactoryTest, TimingConfigPropagates)
{
    SystemConfig cfg = makeClearConfig();
    cfg.timing.retryBackoffBase = 25;
    cfg.timing.lockRetryBackoff = 7;
    cfg.timing.fallbackSpinInterval = 19;
    const auto policy = makeBackoffPolicy(cfg);
    EXPECT_STREQ(policy->name(), "linear");
    EXPECT_EQ(policy->speculativeRetryDelay(2, 0), 50u);
    EXPECT_EQ(policy->lockRetryDelay(), 7u);
    EXPECT_EQ(policy->fallbackSpinDelay(), 19u);
}

} // namespace
} // namespace clearsim
