/**
 * @file
 * Differential determinism suite for the calendar event queue.
 *
 * The simulator's byte-identity guarantees rest on the event queue
 * popping events in exactly (cycle, schedule-order) sequence — the
 * contract the old std::priority_queue implementation provided.
 * These tests replay randomized schedules against a reference model
 * with that exact ordering and require identical pop sequences,
 * covering same-cycle FIFO ties, far-future overflow delays, events
 * scheduling further events, and perturber jitter.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"

namespace clearsim
{
namespace
{

/** Reference ordering model: a (when, seq) min-heap, like the old
 *  std::priority_queue-backed queue. */
class ReferenceQueue
{
  public:
    void
    schedule(Cycle when, int id)
    {
        heap_.push(Entry{when, nextSeq_++, id});
    }

    bool empty() const { return heap_.empty(); }

    /** Pop the earliest (when, seq) entry; returns its id. */
    int
    pop(Cycle *when = nullptr)
    {
        Entry e = heap_.top();
        heap_.pop();
        if (when != nullptr)
            *when = e.when;
        return e.id;
    }

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        int id;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>,
                        std::greater<Entry>>
        heap_;
    std::uint64_t nextSeq_ = 0;
};

/**
 * Schedule the same randomized workload into both queues and demand
 * identical pop order. Delays are drawn from mixed ranges so events
 * land in the calendar ring, in the overflow heap, and on already
 * occupied cycles (FIFO ties).
 */
void
runDifferential(std::uint64_t seed, unsigned initial_events,
                Cycle max_delay, unsigned chain_depth)
{
    EventQueue q;
    ReferenceQueue ref;
    Rng rng(seed);
    std::vector<int> got;
    std::vector<int> want;
    int nextId = 0;

    for (unsigned i = 0; i < initial_events; ++i) {
        const Cycle when = rng.nextBelow(max_delay) + 1;
        const int id = nextId++;
        q.schedule(when, [&got, id] { got.push_back(id); });
        ref.schedule(when, id);
    }

    // Drain both queues in lockstep; whenever an event fires, give
    // it a chance to schedule a follow-up in both worlds.
    unsigned chained = 0;
    while (!ref.empty()) {
        Cycle refWhen = 0;
        want.push_back(ref.pop(&refWhen));
        ASSERT_FALSE(q.empty());
        ASSERT_EQ(q.nextCycle(), refWhen);
        ASSERT_TRUE(q.runOne());
        ASSERT_EQ(q.now(), refWhen);

        if (chained < chain_depth) {
            ++chained;
            const Cycle delay = rng.nextBelow(max_delay) + 1;
            const int id = nextId++;
            q.scheduleAfter(delay,
                            [&got, id] { got.push_back(id); });
            ref.schedule(q.now() + delay, id);
        }
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(got, want);
}

TEST(CalendarQueueDiffTest, MatchesReferenceWithinWindow)
{
    // All delays fit the 1024-cycle calendar window.
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        runDifferential(seed, 200, 1000, 50);
}

TEST(CalendarQueueDiffTest, MatchesReferenceAcrossOverflow)
{
    // Delays up to 100k cycles force heavy overflow-heap traffic
    // and repeated migration into the ring.
    for (std::uint64_t seed = 100; seed <= 107; ++seed)
        runDifferential(seed, 200, 100000, 50);
}

TEST(CalendarQueueDiffTest, MatchesReferenceWithDenseTies)
{
    // Only 4 distinct cycles for 300 events: almost every pop is a
    // same-cycle FIFO tie-break.
    for (std::uint64_t seed = 200; seed <= 203; ++seed)
        runDifferential(seed, 300, 4, 100);
}

TEST(CalendarQueueDiffTest, MatchesReferenceAtWindowBoundary)
{
    // Delays straddle the exact window size, exercising the
    // in-window/overflow routing decision on both sides.
    EventQueue q;
    ReferenceQueue ref;
    std::vector<int> got;
    std::vector<int> want;
    int id = 0;
    for (Cycle delay : {1023u, 1024u, 1025u, 1023u, 1024u, 1u}) {
        const int thisId = id++;
        q.schedule(delay, [&got, thisId] { got.push_back(thisId); });
        ref.schedule(delay, thisId);
    }
    while (!ref.empty()) {
        want.push_back(ref.pop());
        ASSERT_TRUE(q.runOne());
    }
    EXPECT_EQ(got, want);
}

TEST(CalendarQueueDiffTest, MatchesReferenceUnderPerturbation)
{
    // A deterministic perturber jitters every schedule; the
    // reference applies the same jitter stream, so pop order must
    // still match exactly.
    EventQueue q;
    ReferenceQueue ref;
    Rng qJitter(42);
    Rng refJitter(42);
    q.setPerturber(
        [&qJitter]() -> Cycle { return qJitter.nextBelow(3); });

    Rng rng(7);
    std::vector<int> got;
    std::vector<int> want;
    for (int i = 0; i < 400; ++i) {
        const Cycle when = rng.nextBelow(5000) + 1;
        q.schedule(when, [&got, i] { got.push_back(i); });
        ref.schedule(when + refJitter.nextBelow(3), i);
    }
    while (!ref.empty()) {
        want.push_back(ref.pop());
        ASSERT_TRUE(q.runOne());
    }
    EXPECT_EQ(got, want);
}

TEST(CalendarQueueDiffTest, LongRunningChainStaysOrdered)
{
    // A self-rescheduling chain sweeps now() across many window
    // wraps; every hop must land exactly where scheduled.
    EventQueue q;
    Cycle expected = 0;
    int hops = 0;
    std::function<void()> chain = [&] {
        EXPECT_EQ(q.now(), expected);
        if (++hops < 2000) {
            const Cycle delay = 1 + (hops % 7) * 300;
            expected = q.now() + delay;
            q.scheduleAfter(delay, chain);
        }
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(hops, 2000);
}

} // namespace
} // namespace clearsim
