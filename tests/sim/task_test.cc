/** @file Unit tests for the coroutine task type. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/event_queue.hh"
#include "sim/task.hh"

namespace clearsim
{
namespace
{

SimTask
setFlag(bool &flag)
{
    flag = true;
    co_return;
}

TEST(TaskTest, LazyStart)
{
    bool ran = false;
    SimTask task = setFlag(ran);
    EXPECT_FALSE(ran);
    EXPECT_FALSE(task.done());
    task.start();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(task.done());
}

SimTask
outer(bool &inner_ran, bool &after)
{
    co_await setFlag(inner_ran);
    after = true;
}

TEST(TaskTest, NestedAwaitRunsChildFirst)
{
    bool inner = false;
    bool after = false;
    SimTask task = outer(inner, after);
    task.start();
    EXPECT_TRUE(inner);
    EXPECT_TRUE(after);
}

Task<int>
makeValue(int v)
{
    co_return v * 2;
}

SimTask
awaitValue(int &out)
{
    out = co_await makeValue(21);
}

TEST(TaskTest, ValueTaskReturnsValue)
{
    int out = 0;
    SimTask task = awaitValue(out);
    task.start();
    EXPECT_EQ(out, 42);
}

SimTask
throwing()
{
    throw std::runtime_error("boom");
    co_return; // unreachable; makes this a coroutine
}

SimTask
catching(bool &caught)
{
    try {
        co_await throwing();
    } catch (const std::runtime_error &) {
        caught = true;
    }
}

TEST(TaskTest, ExceptionPropagatesAcrossAwait)
{
    bool caught = false;
    SimTask task = catching(caught);
    task.start();
    EXPECT_TRUE(caught);
    EXPECT_TRUE(task.done());
}

SimTask
delayed(EventQueue &q, Cycle delay, Cycle &resumed_at)
{
    co_await delayFor(q, delay);
    resumed_at = q.now();
}

TEST(TaskTest, DelayAwaiterParksOnQueue)
{
    EventQueue q;
    Cycle resumed_at = 0;
    SimTask task = delayed(q, 25, resumed_at);
    task.start();
    EXPECT_FALSE(task.done());
    q.run();
    EXPECT_TRUE(task.done());
    EXPECT_EQ(resumed_at, 25u);
}

TEST(TaskTest, ZeroDelayDoesNotSuspend)
{
    EventQueue q;
    Cycle resumed_at = 99;
    SimTask task = delayed(q, 0, resumed_at);
    task.start();
    EXPECT_TRUE(task.done());
    EXPECT_EQ(resumed_at, 0u);
}

SimTask
twoStage(EventQueue &q, std::vector<Cycle> &stamps)
{
    co_await delayFor(q, 10);
    stamps.push_back(q.now());
    co_await delayFor(q, 10);
    stamps.push_back(q.now());
}

TEST(TaskTest, InterleavedTasksShareTheQueue)
{
    EventQueue q;
    std::vector<Cycle> a_stamps;
    std::vector<Cycle> b_stamps;
    SimTask a = twoStage(q, a_stamps);
    SimTask b = twoStage(q, b_stamps);
    a.start();
    b.start();
    q.run();
    EXPECT_EQ(a_stamps, (std::vector<Cycle>{10, 20}));
    EXPECT_EQ(b_stamps, (std::vector<Cycle>{10, 20}));
}

TEST(TaskTest, MoveTransfersOwnership)
{
    bool ran = false;
    SimTask a = setFlag(ran);
    SimTask b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    b.start();
    EXPECT_TRUE(ran);
}

TEST(TaskTest, DestroyWithoutStartIsSafe)
{
    bool ran = false;
    {
        SimTask task = setFlag(ran);
        (void)task;
    }
    EXPECT_FALSE(ran);
}

} // namespace
} // namespace clearsim
