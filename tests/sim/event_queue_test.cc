/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace clearsim
{
namespace
{

TEST(EventQueueTest, StartsAtZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueueTest, FifoTieBreakAtSameCycle)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ScheduleAfterIsRelative)
{
    EventQueue q;
    Cycle seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(5, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 5)
            q.scheduleAfter(1, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 4u);
}

TEST(EventQueueTest, RunRespectsLimit)
{
    EventQueue q;
    int ran = 0;
    q.schedule(10, [&] { ++ran; });
    q.schedule(20, [&] { ++ran; });
    q.run(15);
    EXPECT_EQ(ran, 1);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(ran, 2);
}

TEST(EventQueueTest, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(i, [] {});
    q.run();
    EXPECT_EQ(q.executedEvents(), 7u);
}

} // namespace
} // namespace clearsim
