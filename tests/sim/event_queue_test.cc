/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace clearsim
{
namespace
{

TEST(EventQueueTest, StartsAtZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueueTest, FifoTieBreakAtSameCycle)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ScheduleAfterIsRelative)
{
    EventQueue q;
    Cycle seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(5, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 5)
            q.scheduleAfter(1, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 4u);
}

TEST(EventQueueTest, RunRespectsLimit)
{
    EventQueue q;
    int ran = 0;
    q.schedule(10, [&] { ++ran; });
    q.schedule(20, [&] { ++ran; });
    q.run(15);
    EXPECT_EQ(ran, 1);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(ran, 2);
}

TEST(EventQueueTest, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(i, [] {});
    q.run();
    EXPECT_EQ(q.executedEvents(), 7u);
}

TEST(EventQueueTest, ExecutedEventsAccumulateAcrossRuns)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.run(10);
    EXPECT_EQ(q.executedEvents(), 1u);
    q.run();
    EXPECT_EQ(q.executedEvents(), 2u);
}

TEST(EventQueueTest, RunLimitIsInclusive)
{
    // An event at exactly the limit cycle must run; now() lands on
    // the limit, not past it.
    EventQueue q;
    int ran = 0;
    q.schedule(15, [&] { ++ran; });
    q.schedule(16, [&] { ++ran; });
    q.run(15);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(q.now(), 15u);
    EXPECT_EQ(q.nextCycle(), 16u);
}

TEST(EventQueueTest, NowStaysAtLastExecutedCycle)
{
    // run() never advances now() past the last executed event, even
    // when later events remain pending beyond the limit.
    EventQueue q;
    q.schedule(7, [] {});
    q.schedule(900, [] {});
    q.run(100);
    EXPECT_EQ(q.now(), 7u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, NextCycleReportsEarliestPending)
{
    EventQueue q;
    EXPECT_EQ(q.nextCycle(), kNoCycle);
    q.schedule(5000, [] {}); // overflow-range (beyond the ring)
    q.schedule(3, [] {});    // in-window
    EXPECT_EQ(q.nextCycle(), 3u);
    q.runOne();
    EXPECT_EQ(q.nextCycle(), 5000u);
    q.runOne();
    EXPECT_EQ(q.nextCycle(), kNoCycle);
}

TEST(EventQueueTest, FarFutureEventsExecuteInOrder)
{
    // Events far beyond the calendar window spill to the overflow
    // heap and must still interleave correctly with near events.
    EventQueue q;
    std::vector<int> order;
    q.schedule(100000, [&] { order.push_back(4); });
    q.schedule(2, [&] { order.push_back(1); });
    q.schedule(5000, [&] { order.push_back(3); });
    q.schedule(1500, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(q.now(), 100000u);
}

TEST(EventQueueTest, FifoTieBreakSurvivesOverflowMigration)
{
    // Same-cycle events scheduled while the cycle was beyond the
    // window keep their FIFO order after migrating into the ring.
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(20000, [&order, i] { order.push_back(i); });
    q.schedule(1, [] {});
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ScheduleAfterSaturatesNearMaxCycle)
{
    // A delay that would overflow Cycle clamps to kNoCycle instead
    // of wrapping into the past.
    EventQueue q;
    bool ran = false;
    q.schedule(10, [&] {
        q.scheduleAfter(kNoCycle, [&] { ran = true; });
    });
    q.run(1000);
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.nextCycle(), kNoCycle);
    q.runOne();
    EXPECT_TRUE(ran);
    EXPECT_EQ(q.now(), kNoCycle);
}

TEST(EventQueueTest, PerturberJitterSaturates)
{
    // Perturbation jitter near kNoCycle saturates instead of
    // wrapping.
    EventQueue q;
    q.setPerturber([] { return kNoCycle; });
    bool ran = false;
    q.schedule(5, [&] { ran = true; });
    EXPECT_EQ(q.nextCycle(), kNoCycle);
    q.runOne();
    EXPECT_TRUE(ran);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(50, [] {});
    q.runOne();
    EXPECT_DEATH(q.schedule(10, [] {}),
                 "cannot schedule an event in the past");
}

} // namespace
} // namespace clearsim
