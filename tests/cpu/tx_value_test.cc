/** @file Unit tests for taint-tracked values (indirection bits). */

#include <gtest/gtest.h>

#include "cpu/tx_value.hh"

namespace clearsim
{
namespace
{

TEST(TxValueTest, ConstantsAreUntainted)
{
    const TxValue v(42);
    EXPECT_EQ(v.raw(), 42u);
    EXPECT_FALSE(v.tainted());
}

TEST(TxValueTest, ExplicitTaint)
{
    const TxValue v(42, true);
    EXPECT_TRUE(v.tainted());
}

TEST(TxValueTest, ArithmeticValues)
{
    const TxValue a(10);
    const TxValue b(3);
    EXPECT_EQ((a + b).raw(), 13u);
    EXPECT_EQ((a - b).raw(), 7u);
    EXPECT_EQ((a * b).raw(), 30u);
    EXPECT_EQ((a / b).raw(), 3u);
    EXPECT_EQ((a % b).raw(), 1u);
    EXPECT_EQ((a & b).raw(), 2u);
    EXPECT_EQ((a | b).raw(), 11u);
    EXPECT_EQ((a ^ b).raw(), 9u);
    EXPECT_EQ((a << 2).raw(), 40u);
    EXPECT_EQ((a >> 1).raw(), 5u);
}

TEST(TxValueTest, DivisionByZeroYieldsZero)
{
    // Simulated code must not crash the simulator.
    EXPECT_EQ((TxValue(10) / TxValue(0)).raw(), 0u);
    EXPECT_EQ((TxValue(10) % TxValue(0)).raw(), 0u);
}

TEST(TxValueTest, TaintPropagatesThroughEveryOperator)
{
    const TxValue clean(5);
    const TxValue dirty(7, true);
    EXPECT_TRUE((clean + dirty).tainted());
    EXPECT_TRUE((dirty - clean).tainted());
    EXPECT_TRUE((dirty * clean).tainted());
    EXPECT_TRUE((dirty / clean).tainted());
    EXPECT_TRUE((dirty % clean).tainted());
    EXPECT_TRUE((dirty & clean).tainted());
    EXPECT_TRUE((dirty | clean).tainted());
    EXPECT_TRUE((dirty ^ clean).tainted());
    EXPECT_TRUE((dirty << 1).tainted());
    EXPECT_TRUE((dirty >> 1).tainted());
}

TEST(TxValueTest, CleanOpsStayClean)
{
    const TxValue a(5);
    const TxValue b(6);
    EXPECT_FALSE((a + b).tainted());
    EXPECT_FALSE((a == b).tainted());
}

TEST(TxValueTest, ComparisonsYieldZeroOne)
{
    const TxValue a(5);
    const TxValue b(6);
    EXPECT_EQ((a == b).raw(), 0u);
    EXPECT_EQ((a != b).raw(), 1u);
    EXPECT_EQ((a < b).raw(), 1u);
    EXPECT_EQ((a <= b).raw(), 1u);
    EXPECT_EQ((a > b).raw(), 0u);
    EXPECT_EQ((a >= b).raw(), 0u);
}

TEST(TxValueTest, ComparisonTaintSurvives)
{
    // The taint of the condition is what branchOn inspects: this is
    // the hardware checking indirection bits of branch sources.
    const TxValue dirty(7, true);
    EXPECT_TRUE((dirty == TxValue(7)).tainted());
    EXPECT_TRUE((TxValue(1) < dirty).tainted());
}

TEST(TxValueTest, TaintChainsAcrossExpressions)
{
    const TxValue loaded(100, true);
    const TxValue derived = (loaded + TxValue(4)) * TxValue(2);
    const TxValue still = derived % TxValue(97);
    EXPECT_TRUE(still.tainted());
}

TEST(TxValueTest, SignedView)
{
    const TxValue v(static_cast<std::uint64_t>(-5));
    EXPECT_EQ(v.rawSigned(), -5);
}

} // namespace
} // namespace clearsim
