/** @file Unit tests for the core speculative-window model. */

#include <gtest/gtest.h>

#include "cpu/core_resources.hh"

namespace clearsim
{
namespace
{

CoreConfig
tinyCore()
{
    CoreConfig cfg;
    cfg.robEntries = 8;
    cfg.lqEntries = 4;
    cfg.sqEntries = 2;
    return cfg;
}

TEST(CoreResourcesTest, CountsUops)
{
    CoreResources res(tinyCore());
    res.countLoad();
    res.countStore();
    res.countAlu(3);
    EXPECT_EQ(res.uops(), 5u);
    EXPECT_EQ(res.loads(), 1u);
    EXPECT_EQ(res.stores(), 1u);
}

TEST(CoreResourcesTest, ResetClears)
{
    CoreResources res(tinyCore());
    res.countLoad();
    res.reset();
    EXPECT_EQ(res.uops(), 0u);
}

TEST(CoreResourcesTest, OutOfCoreOnlyBoundsFailedMode)
{
    CoreResources res(tinyCore(), SpeculationScope::OutOfCore);
    for (int i = 0; i < 100; ++i)
        res.countStore();
    // HTM speculation: stores drain; no overflow in normal mode.
    EXPECT_FALSE(res.overflowed(false));
    // Failed-mode discovery: stores are stuck in the SQ.
    EXPECT_TRUE(res.overflowed(true));
    EXPECT_TRUE(res.sqOverflowed());
}

TEST(CoreResourcesTest, InCoreBoundsRob)
{
    CoreResources res(tinyCore(), SpeculationScope::InCore);
    for (int i = 0; i < 9; ++i)
        res.countAlu();
    EXPECT_TRUE(res.overflowed(false));
}

TEST(CoreResourcesTest, InCoreBoundsLq)
{
    CoreResources res(tinyCore(), SpeculationScope::InCore);
    for (int i = 0; i < 5; ++i)
        res.countLoad();
    EXPECT_TRUE(res.overflowed(false));
}

TEST(CoreResourcesTest, InCoreBoundsSq)
{
    CoreResources res(tinyCore(), SpeculationScope::InCore);
    res.countStore();
    res.countStore();
    EXPECT_FALSE(res.overflowed(false));
    res.countStore();
    EXPECT_TRUE(res.overflowed(false));
}

TEST(CoreResourcesTest, UnderLimitNoOverflow)
{
    CoreResources res(tinyCore(), SpeculationScope::InCore);
    res.countLoad();
    res.countStore();
    res.countAlu(2);
    EXPECT_FALSE(res.overflowed(false));
    EXPECT_FALSE(res.overflowed(true));
}

} // namespace
} // namespace clearsim
