/**
 * @file
 * Determinism contract of the observability exports: the serialized
 * trace (JSONL) and the clearsim-stats-v1 JSON of a run are
 * byte-identical across repeats and across CLEARSIM_JOBS settings.
 * A simulation is a single-threaded event-queue program and the
 * serializers use fixed key order and lossless number formats, so
 * nothing about the bytes may vary.
 *
 * Registered under the ctest label "determinism"
 * (ctest -L determinism).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "clearsim/clearsim.hh"
#include "metrics/json_export.hh"
#include "metrics/trace_export.hh"

namespace clearsim
{
namespace
{

/** Run a contended workload and serialize its trace as JSONL. */
std::string
tracedRunJsonl()
{
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = 8;
    System sys(cfg, 3);
    std::ostringstream os;
    TraceJsonlWriter writer(os);
    sys.setTraceSink(std::ref(writer));

    WorkloadParams params;
    params.threads = 8;
    params.opsPerThread = 8;
    params.seed = 3;
    auto workload = makeWorkload("bitcoin", params);
    runWorkloadThreads(sys, *workload);
    return os.str();
}

std::string
statsJsonOfRun()
{
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = 8;
    WorkloadParams params;
    params.threads = 8;
    params.opsPerThread = 8;
    params.seed = 3;
    return statsJsonString({runOnce(cfg, "bitcoin", params)});
}

TEST(ObservabilityDeterminismTest, TraceJsonlBytesIdentical)
{
    setenv("CLEARSIM_JOBS", "1", 1);
    const std::string serial = tracedRunJsonl();
    setenv("CLEARSIM_JOBS", "4", 1);
    const std::string parallel = tracedRunJsonl();
    unsetenv("CLEARSIM_JOBS");

    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial, tracedRunJsonl()); // and across repeats
}

TEST(ObservabilityDeterminismTest, StatsJsonBytesIdentical)
{
    setenv("CLEARSIM_JOBS", "1", 1);
    const std::string serial = statsJsonOfRun();
    setenv("CLEARSIM_JOBS", "4", 1);
    const std::string parallel = statsJsonOfRun();
    unsetenv("CLEARSIM_JOBS");

    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial, statsJsonOfRun());
}

/** The traced run and the untraced run agree on the statistics:
 *  installing a sink must never perturb simulation behavior. */
TEST(ObservabilityDeterminismTest, TracingDoesNotPerturbResults)
{
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = 8;
    WorkloadParams params;
    params.threads = 8;
    params.opsPerThread = 8;
    params.seed = 3;

    const RunResult untraced = runOnce(cfg, "bitcoin", params);

    System sys(cfg, params.seed);
    std::uint64_t events = 0;
    sys.setTraceSink([&events](const TraceEvent &) { ++events; });
    auto workload = makeWorkload("bitcoin", params);
    const Cycle cycles = runWorkloadThreads(sys, *workload);

    EXPECT_GT(events, 0u);
    EXPECT_EQ(cycles, untraced.cycles);
    EXPECT_EQ(sys.stats().commits, untraced.htm.commits);
    EXPECT_EQ(sys.stats().aborts, untraced.htm.aborts);
    EXPECT_EQ(sys.stats().abortsByCategory,
              untraced.htm.abortsByCategory);
}

} // namespace
} // namespace clearsim
